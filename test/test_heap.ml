module Heap = Ksurf_sim.Heap

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek_time h = None)

let test_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:0 ~pid:0 "c";
  Heap.push h ~time:1.0 ~seq:1 ~pid:0 "a";
  Heap.push h ~time:2.0 ~seq:2 ~pid:0 "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "sorted by time" [ "a"; "b"; "c" ] order

let test_fifo_tie_break () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5.0 ~seq:i ~pid:0 i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list int)) "ties in insertion order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let test_peek () =
  let h = Heap.create () in
  Heap.push h ~time:7.0 ~seq:0 ~pid:0 ();
  Heap.push h ~time:2.0 ~seq:1 ~pid:0 ();
  Alcotest.(check (option (float 1e-9))) "peek min" (Some 2.0) (Heap.peek_time h);
  Alcotest.(check int) "size unchanged by peek" 2 (Heap.size h)

let test_growth () =
  let h = Heap.create () in
  for i = 0 to 999 do
    Heap.push h ~time:(float_of_int (999 - i)) ~seq:i ~pid:0 i
  done;
  Alcotest.(check int) "size" 1000 (Heap.size h);
  let first = Option.get (Heap.pop h) in
  Alcotest.(check (float 1e-9)) "min time" 0.0 (fst first)

let qcheck_pop_sorted =
  QCheck.Test.make ~name:"pops come out time-sorted" ~count:200
    QCheck.(list (float_bound_exclusive 1e6))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:t ~seq:i ~pid:0 i) times;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (t, _) -> if t < prev then false else drain t
      in
      drain neg_infinity)

let qcheck_size_tracks =
  QCheck.Test.make ~name:"size tracks pushes and pops" ~count:200
    QCheck.(list (float_bound_exclusive 100.0))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:t ~seq:i ~pid:0 ()) times;
      let n = List.length times in
      let ok = ref (Heap.size h = n) in
      for expected = n - 1 downto 0 do
        ignore (Heap.pop h);
        if Heap.size h <> expected then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo tie break" `Quick test_fifo_tie_break;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "growth" `Quick test_growth;
    QCheck_alcotest.to_alcotest qcheck_pop_sorted;
    QCheck_alcotest.to_alcotest qcheck_size_tracks;
  ]
