open Ksurf

let test_uncontended () =
  let engine = Engine.create () in
  let lock = Lock.create ~engine ~name:"l" in
  let t = ref nan in
  Engine.spawn engine (fun () ->
      Lock.with_hold lock 10.0;
      t := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "just the hold" 10.0 !t;
  Alcotest.(check int) "one acquisition" 1 (Lock.acquisitions lock);
  Alcotest.(check int) "no contention" 0 (Lock.contended_acquisitions lock)

let test_mutual_exclusion () =
  let engine = Engine.create () in
  let lock = Lock.create ~engine ~name:"l" in
  let holders = ref 0 in
  let violated = ref false in
  for _ = 1 to 8 do
    Engine.spawn engine (fun () ->
        for _ = 1 to 10 do
          Lock.acquire lock;
          incr holders;
          if !holders > 1 then violated := true;
          Engine.delay 3.0;
          decr holders;
          Lock.release lock
        done)
  done;
  Engine.run engine;
  Alcotest.(check bool) "never two holders" false !violated

let test_fifo_fairness () =
  let engine = Engine.create () in
  let lock = Lock.create ~engine ~name:"l" in
  let order = ref [] in
  (* Process 0 grabs the lock; 1..4 queue in arrival order. *)
  Engine.spawn engine (fun () ->
      Lock.acquire lock;
      Engine.delay 100.0;
      Lock.release lock);
  for i = 1 to 4 do
    Engine.spawn ~at:(float_of_int i) engine (fun () ->
        Lock.acquire lock;
        order := i :: !order;
        Engine.delay 1.0;
        Lock.release lock)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "granted in arrival order" [ 1; 2; 3; 4 ]
    (List.rev !order)

let test_queueing_delay () =
  let engine = Engine.create () in
  let lock = Lock.create ~engine ~name:"l" in
  let finish = Array.make 3 nan in
  for i = 0 to 2 do
    Engine.spawn engine (fun () ->
        Lock.with_hold lock 10.0;
        finish.(i) <- Engine.now engine)
  done;
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "first" 10.0 finish.(0);
  Alcotest.(check (float 1e-9)) "second" 20.0 finish.(1);
  Alcotest.(check (float 1e-9)) "third" 30.0 finish.(2)

let test_release_unheld_fails () =
  let engine = Engine.create () in
  let lock = Lock.create ~engine ~name:"naked" in
  Engine.spawn engine (fun () -> Lock.release lock);
  Alcotest.(check bool) "raises, naming the lock" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Invalid_argument msg) ->
       (* The message must identify the offending lock. *)
       Test_util.contains ~sub:"naked" msg)

let test_with_lock_releases_on_exception () =
  let engine = Engine.create () in
  let lock = Lock.create ~engine ~name:"l" in
  let reacquired = ref false in
  Engine.spawn engine (fun () ->
      (try Lock.with_lock lock (fun () -> failwith "inner") with
      | Failure _ -> ());
      Lock.acquire lock;
      reacquired := true;
      Lock.release lock);
  Engine.run engine;
  Alcotest.(check bool) "released after exception" true !reacquired

let test_wait_statistics () =
  let engine = Engine.create () in
  let lock = Lock.create ~engine ~name:"l" in
  for _ = 1 to 2 do
    Engine.spawn engine (fun () -> Lock.with_hold lock 50.0)
  done;
  Engine.run engine;
  Alcotest.(check int) "contended once" 1 (Lock.contended_acquisitions lock);
  Alcotest.(check (float 1e-9)) "max wait is the hold" 50.0
    (Welford.max_value (Lock.wait_stats lock));
  Alcotest.(check (float 1e-9)) "hold mean" 50.0
    (Welford.mean (Lock.hold_stats lock))

let qcheck_serialization =
  QCheck.Test.make ~name:"n holders serialise to n*hold" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 1 20))
    (fun (procs, hold) ->
      let hold = float_of_int hold in
      let engine = Engine.create () in
      let lock = Lock.create ~engine ~name:"q" in
      let last = ref nan in
      for _ = 1 to procs do
        Engine.spawn engine (fun () ->
            Lock.with_hold lock hold;
            last := Engine.now engine)
      done;
      Engine.run engine;
      Float.abs (!last -. (float_of_int procs *. hold)) < 1e-6)

let suite =
  [
    Alcotest.test_case "uncontended" `Quick test_uncontended;
    Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
    Alcotest.test_case "fifo fairness" `Quick test_fifo_fairness;
    Alcotest.test_case "queueing delay" `Quick test_queueing_delay;
    Alcotest.test_case "release unheld" `Quick test_release_unheld_fails;
    Alcotest.test_case "with_lock on exception" `Quick
      test_with_lock_releases_on_exception;
    Alcotest.test_case "wait statistics" `Quick test_wait_statistics;
    QCheck_alcotest.to_alcotest qcheck_serialization;
  ]
