open Ksurf
module E = Experiments

(* The kpar worker pool and the guarantees the sweeps build on it:
   order-preserving merge, deterministic failure, nested submission,
   and byte-identical study output at any job count. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_dir f =
  let dir = Filename.temp_file "ksurf-par" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* --- Pool semantics ------------------------------------------------ *)

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let cells = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "input order" (List.map (fun x -> x * x) cells)
        (Pool.map ~pool (fun x -> x * x) cells))

let test_map_empty_and_single () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map ~pool succ []);
      Alcotest.(check (list int)) "single" [ 2 ] (Pool.map ~pool succ [ 1 ]))

let test_jobs_one_is_sequential () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      Alcotest.(check (list int))
        "map" [ 2; 3; 4 ]
        (Pool.map ~pool succ [ 1; 2; 3 ]))

let test_earliest_exception_wins () =
  (* Cells 3 and 11 both fail; whichever domain gets there first, the
     reported failure must be cell 3's — deterministically, every time. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 5 do
        match
          Pool.map ~pool
            (fun i -> if i = 3 || i = 11 then failwith (string_of_int i) else i)
            (List.init 16 Fun.id)
        with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure msg ->
            Alcotest.(check string) "earliest cell" "3" msg
      done)

let test_nested_map_no_deadlock () =
  (* A worker task submitting its own batch must drain it itself even
     when every other domain is busy: jobs:2 and 4 outer cells would
     deadlock otherwise. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let sums =
        Pool.map ~pool
          (fun i ->
            Pool.map ~pool (fun j -> (10 * i) + j) [ 0; 1; 2 ]
            |> List.fold_left ( + ) 0)
          [ 0; 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "nested" [ 3; 33; 63; 93 ] sums)

let test_default_jobs_env () =
  let saved = Sys.getenv_opt "KSURF_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "KSURF_JOBS" (Option.value saved ~default:""))
    (fun () ->
      Unix.putenv "KSURF_JOBS" "3";
      Alcotest.(check int) "env honored" 3 (Pool.default_jobs ());
      Unix.putenv "KSURF_JOBS" "0";
      Alcotest.(check bool) "zero falls back" true (Pool.default_jobs () >= 1);
      Unix.putenv "KSURF_JOBS" "nope";
      Alcotest.(check bool) "garbage falls back" true (Pool.default_jobs () >= 1))

let test_shutdown () =
  let pool = Pool.create ~jobs:4 () in
  Alcotest.(check (list int)) "before" [ 1; 2 ] (Pool.map ~pool succ [ 0; 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check bool) "map after shutdown" true
    (try
       ignore (Pool.map ~pool succ [ 0 ]);
       false
     with Invalid_argument _ -> true)

(* --- Chunked claiming ----------------------------------------------- *)

(* A cell whose cost is wildly index-dependent: cell 0 does ~300x the
   work of the median cell, and cost is otherwise sawtoothed.  With
   chunked claiming this is the adversarial shape — a chunk containing
   cell 0 finishes long after every other chunk — so identical output
   at jobs=1 and jobs=8 pins that chunking changed the schedule only,
   never the merge order or the per-cell values. *)
let skewed_cell i =
  let rounds = if i = 0 then 300_000 else 1 + (i * 97 mod 1_000) in
  let h = ref i in
  for _ = 1 to rounds do
    h := Stable_hash.combine !h (!h lxor i)
  done;
  (i, !h)

let test_skewed_runtime_identity () =
  let cells = List.init 64 Fun.id in
  let seq = Pool.with_pool ~jobs:1 (fun pool -> Pool.map ~pool skewed_cell cells) in
  let par = Pool.with_pool ~jobs:8 (fun pool -> Pool.map ~pool skewed_cell cells) in
  Alcotest.(check (list (pair int int))) "jobs 1 = jobs 8" seq par

(* Many small batches in quick succession: every submit wakes at most
   (chunks - 1) workers instead of broadcasting, so this pins the
   no-lost-wakeup invariant — a lost wakeup would leave a batch
   unclaimed and hang the suite, and a miscounted [left] would hang the
   submitter's completion wait. *)
let test_many_small_batches () =
  Pool.with_pool ~jobs:4 (fun pool ->
      for round = 0 to 299 do
        let n = 1 + (round mod 5) in
        let expect = List.init n (fun i -> (round * 7) + i + 1) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          expect
          (Pool.map ~pool succ (List.init n (fun i -> (round * 7) + i)))
      done)

(* Mapping while another domain shuts the pool down must be
   deterministic per call: each map either completes with full, correct
   results (its batch was accepted before the state flipped; the
   submitter drains it itself even with every worker gone) or raises
   Invalid_argument — never a hang, never partial output.  The state
   check runs under [pool.lock], so the flip cannot slip between check
   and enqueue. *)
let test_map_racing_shutdown () =
  let pool = Pool.create ~jobs:4 () in
  let closer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.02;
        Pool.shutdown pool)
  in
  let refused = ref false in
  (try
     while not !refused do
       match Pool.map ~pool succ [ 1; 2; 3; 4; 5; 6 ] with
       | r -> Alcotest.(check (list int)) "complete result" [ 2; 3; 4; 5; 6; 7 ] r
       | exception Invalid_argument _ -> refused := true
     done
   with e ->
     Domain.join closer;
     raise e);
  Domain.join closer;
  Alcotest.(check bool) "eventually refused" true !refused;
  (* And every map after the shutdown fails the same way. *)
  for _ = 1 to 3 do
    Alcotest.(check bool) "still refused" true
      (try
         ignore (Pool.map ~pool succ [ 1 ]);
         false
       with Invalid_argument _ -> true)
  done

(* --- Determinism under parallelism --------------------------------- *)

let dose_seq = lazy (E.Dose.run ~seed:11 ~scale:E.Quick ())

let test_dose_deterministic () =
  let seq = Lazy.force dose_seq in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        E.Dose.run ~seed:11 ~scale:E.Quick ~pool ())
  in
  let render t = Format.asprintf "%a" E.Dose.pp t in
  Alcotest.(check int)
    "pretty table hash"
    (Stable_hash.string (render seq))
    (Stable_hash.string (render par));
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          match (Export.dose ~dir:d1 seq, Export.dose ~dir:d2 par) with
          | [ p1 ], [ p2 ] ->
              Alcotest.(check string)
                "csv bytes" (read_file p1) (read_file p2)
          | _ -> Alcotest.fail "expected one file each"))

let test_specialize_deterministic () =
  let seq = E.Specialize.run ~seed:11 ~scale:E.Quick () in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        E.Specialize.run ~seed:11 ~scale:E.Quick ~pool ())
  in
  let render t = Format.asprintf "%a" E.Specialize.pp t in
  Alcotest.(check int)
    "pretty table hash"
    (Stable_hash.string (render seq))
    (Stable_hash.string (render par));
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          match (Export.specialize ~dir:d1 seq, Export.specialize ~dir:d2 par) with
          | [ p1 ], [ p2 ] ->
              Alcotest.(check string)
                "csv bytes" (read_file p1) (read_file p2)
          | _ -> Alcotest.fail "expected one file each"))

(* --- The journal as single writer under parallel cells -------------- *)

let temp_journal () =
  let p = Filename.temp_file "ksurf-par" ".journal" in
  Sys.remove p;
  p

let test_journal_parallel_single_writer () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let j = Recov_journal.load ~flush_every:1 ~path () in
      let keys = List.init 32 (Printf.sprintf "cell:%d") in
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore (Pool.map ~pool (fun k -> Recov_journal.record j k) keys));
      Recov_journal.flush j;
      let reloaded = Recov_journal.load ~path () in
      List.iter
        (fun k ->
          Alcotest.(check bool) ("recorded " ^ k) true
            (Recov_journal.mem reloaded k))
        keys;
      Alcotest.(check int) "no duplicates" 32
        (List.length (Recov_journal.cells reloaded)))

let test_journal_kill_mid_sweep () =
  (* A process dying between batched persists loses at most
     [flush_every - 1] cells — never a torn file, never spurious
     cells.  Recording 10 cells with flush_every:4 persists at 4 and
     8; the 2 unflushed cells are the recomputed-on-resume remainder. *)
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let j = Recov_journal.load ~flush_every:4 ~path () in
      let key i = Printf.sprintf "cell:%d" i in
      for i = 0 to 9 do
        Recov_journal.record j (key i)
      done;
      (* No flush: simulates the kill. *)
      let survivor = Recov_journal.load ~path () in
      Alcotest.(check int) "persisted batches" 8
        (List.length (Recov_journal.cells survivor));
      for i = 0 to 7 do
        Alcotest.(check bool) ("kept " ^ key i) true
          (Recov_journal.mem survivor (key i))
      done;
      for i = 8 to 9 do
        Alcotest.(check bool) ("lost " ^ key i) false
          (Recov_journal.mem survivor (key i))
      done)

let test_dose_resume_equivalence () =
  (* Resuming from a journal that already has some cells recomputes
     exactly the missing cells, with values identical to an
     uninterrupted run. *)
  let full = Lazy.force dose_seq in
  let keys =
    List.map
      (fun (c : E.Dose.cell) -> Printf.sprintf "dose:%s:%.2f" c.env c.intensity)
      full.E.Dose.cells
  in
  let done_n = 5 in
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let j = Recov_journal.load ~path () in
      List.iteri (fun i k -> if i < done_n then Recov_journal.record j k) keys;
      Recov_journal.flush j;
      let resumed =
        Pool.with_pool ~jobs:4 (fun pool ->
            E.Dose.run ~seed:11 ~scale:E.Quick ~pool
              ~journal:(Recov_journal.load ~path ())
              ())
      in
      let expect =
        List.filteri (fun i _ -> i >= done_n) full.E.Dose.cells
      in
      Alcotest.(check int) "remaining cells"
        (List.length expect)
        (List.length resumed.E.Dose.cells);
      List.iter2
        (fun (a : E.Dose.cell) (b : E.Dose.cell) ->
          Alcotest.(check bool) ("cell " ^ a.env) true (a = b))
        expect resumed.E.Dose.cells;
      (* The resumed sweep journalled the cells it computed. *)
      let after = Recov_journal.load ~path () in
      Alcotest.(check int) "journal complete" (List.length keys)
        (List.length (Recov_journal.cells after)))

(* --- Atomic writes under concurrency -------------------------------- *)

let test_write_atomic_concurrent_same_path () =
  (* Unique temp names mean concurrent writers to one path cannot
     clobber each other's temp file: the survivor is one writer's
     complete payload, never an interleaving, and no temp litter
     remains. *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out.txt" in
      let payload i = String.concat "\n" (List.init 512 (fun j ->
          Printf.sprintf "writer-%d line %d" i j)) in
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore
            (Pool.map ~pool
               (fun i ->
                 Fileio.write_atomic ~path (fun oc ->
                     output_string oc (payload i)))
               (List.init 8 Fun.id)));
      let final = read_file path in
      Alcotest.(check bool) "complete payload" true
        (List.exists (fun i -> final = payload i) (List.init 8 Fun.id));
      let litter =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> f <> "out.txt")
      in
      Alcotest.(check (list string)) "no temp litter" [] litter)

(* --- Csv ragged-row error path -------------------------------------- *)

let test_csv_ragged_message () =
  let path = Filename.temp_file "ksurf-par" ".csv" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      match
        Csv.write ~path ~header:[ "x"; "y" ]
          ~rows:[ [ "1"; "2" ]; [ "3" ] ]
      with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "names row" true
            (Test_util.contains ~sub:"ragged row 1" msg);
          Alcotest.(check bool) "names widths" true
            (Test_util.contains ~sub:"header has 2" msg))

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map empty/single" `Quick test_map_empty_and_single;
    Alcotest.test_case "jobs 1 sequential" `Quick test_jobs_one_is_sequential;
    Alcotest.test_case "earliest exception" `Quick test_earliest_exception_wins;
    Alcotest.test_case "nested map" `Quick test_nested_map_no_deadlock;
    Alcotest.test_case "default jobs env" `Quick test_default_jobs_env;
    Alcotest.test_case "shutdown" `Quick test_shutdown;
    Alcotest.test_case "skewed runtimes jobs 1 = jobs 8" `Quick
      test_skewed_runtime_identity;
    Alcotest.test_case "many small batches" `Quick test_many_small_batches;
    Alcotest.test_case "map racing shutdown" `Quick test_map_racing_shutdown;
    Alcotest.test_case "dose jobs 1 = jobs 4" `Slow test_dose_deterministic;
    Alcotest.test_case "specialize jobs 1 = jobs 4" `Slow
      test_specialize_deterministic;
    Alcotest.test_case "journal single writer" `Quick
      test_journal_parallel_single_writer;
    Alcotest.test_case "journal kill mid-sweep" `Quick
      test_journal_kill_mid_sweep;
    Alcotest.test_case "dose resume equivalence" `Slow
      test_dose_resume_equivalence;
    Alcotest.test_case "write_atomic concurrent" `Quick
      test_write_atomic_concurrent_same_path;
    Alcotest.test_case "csv ragged message" `Quick test_csv_ragged_message;
  ]
