open Ksurf
module E = Experiments

(* Experiment drivers at Quick scale: structural checks plus the key
   directional properties of the paper that survive the reduced sample
   sizes.  Shape-versus-paper comparisons at Full scale live in
   EXPERIMENTS.md and the bench harness. *)

let quick_corpus = lazy (E.default_corpus E.Quick)

let test_scale_parsing () =
  Alcotest.(check bool) "quick" true (E.scale_of_string "quick" = Some E.Quick);
  Alcotest.(check bool) "full" true (E.scale_of_string "full" = Some E.Full);
  Alcotest.(check bool) "junk" true (E.scale_of_string "junk" = None)

let test_default_corpus_deterministic () =
  let a = Corpus.to_string (E.default_corpus ~seed:7 E.Quick) in
  let b = Corpus.to_string (E.default_corpus ~seed:7 E.Quick) in
  Alcotest.(check string) "same corpus" a b

let test_table1 () =
  let t = E.Table1.run () in
  Alcotest.(check int) "seven rows" 7 (List.length t);
  let vms, first = List.hd t in
  Alcotest.(check int) "first row 1 VM" 1 vms;
  Alcotest.(check int) "64 cores" 64 (Partition.total_cores first);
  let rendered = Format.asprintf "%a" E.Table1.pp t in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let table2 = lazy (E.Table2.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) ())

let test_table2_structure () =
  let t = Lazy.force table2 in
  Alcotest.(check int) "three environments" 3 (List.length t.E.Table2.rows);
  Alcotest.(check (list string)) "env names" [ "native"; "kvm-64"; "docker-64" ]
    (List.map (fun r -> r.E.Table2.env) t.E.Table2.rows);
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Table2.pp t) > 0)

let row_of t env =
  List.find (fun r -> r.E.Table2.env = env) t.E.Table2.rows

let test_table2_virt_median_overhead () =
  (* The paper's first observation: native has more sub-1us medians than
     the 64-VM environment. *)
  let t = Lazy.force table2 in
  let native = row_of t "native" and kvm = row_of t "kvm-64" in
  Alcotest.(check bool) "native medians faster at 1us" true
    (native.E.Table2.median.Buckets.le_1us > kvm.E.Table2.median.Buckets.le_1us)

let test_table2_kvm_bounds_worst_case () =
  (* And the second: KVM bounds the tail — fewer max values above 10ms
     than native. *)
  let t = Lazy.force table2 in
  let native = row_of t "native" and kvm = row_of t "kvm-64" in
  Alcotest.(check bool) "kvm max above 10ms <= native's" true
    (kvm.E.Table2.max.Buckets.gt_10ms <= native.E.Table2.max.Buckets.gt_10ms)

let test_fig2_structure () =
  let t = E.Fig2.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) () in
  Alcotest.(check int) "7 vm counts x 6 categories" 42
    (List.length t.E.Fig2.cells);
  Alcotest.(check bool) "filter keeps a subset" true
    (t.E.Fig2.filtered_sites <= t.E.Fig2.total_sites);
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Fig2.pp t) > 0)

let test_table3_structure () =
  let t = E.Table3.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) () in
  Alcotest.(check (list int)) "container counts" [ 1; 2; 4; 8; 16; 32; 64 ]
    (List.map (fun r -> r.E.Table3.containers) t.E.Table3.rows);
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Table3.pp t) > 0)

let test_fig3_smoke () =
  let apps = List.filter_map Apps.by_name [ "silo" ] in
  let t = E.Fig3.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) ~apps () in
  Alcotest.(check int) "4 cells for one app" 4 (List.length t.E.Fig3.cells);
  (match E.Fig3.cell t ~app:"silo" ~kind:"kvm" ~contended:false with
  | Some r -> Alcotest.(check bool) "positive p99" true (r.Runner.p99 > 0.0)
  | None -> Alcotest.fail "missing cell");
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Fig3.pp t) > 0)

let test_fig4_smoke () =
  let apps = List.filter_map Apps.by_name [ "silo" ] in
  let t = E.Fig4.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) ~apps () in
  Alcotest.(check int) "4 cells" 4 (List.length t.E.Fig4.cells);
  (match E.Fig4.cell t ~app:"silo" ~kind:"docker" ~contended:true with
  | Some r -> Alcotest.(check bool) "positive runtime" true (r.Cluster.runtime_ns > 0.0)
  | None -> Alcotest.fail "missing cell");
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Fig4.pp t) > 0)

let test_fig4_paper_apps () =
  (* shore (no SSDs) and specjbb (JVM failures) are excluded, as in the
     paper. *)
  Alcotest.(check bool) "no shore" true
    (not (List.mem "shore" E.Fig4.paper_apps));
  Alcotest.(check bool) "no specjbb" true
    (not (List.mem "specjbb" E.Fig4.paper_apps));
  Alcotest.(check int) "six apps" 6 (List.length E.Fig4.paper_apps)

let test_ablation_quietest_variant_wins () =
  let t = E.Ablate.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) () in
  Alcotest.(check int) "five variants" 5 (List.length t.E.Ablate.rows);
  let find v = List.find (fun r -> r.E.Ablate.variant = v) t.E.Ablate.rows in
  let default = find "default" and off = find "all-off" in
  (* With every mechanism off, worst cases cannot be heavier. *)
  Alcotest.(check bool) "all-off has no heavier tail" true
    (off.E.Ablate.max.Buckets.gt_10ms <= default.E.Ablate.max.Buckets.gt_10ms);
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Ablate.pp t) > 0)

let test_ablate_virt_monotone_interest () =
  let apps = List.filter_map Apps.by_name [ "silo" ] in
  let t = E.Ablate_virt.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) ~apps () in
  Alcotest.(check int) "four scales" 4 (List.length t.E.Ablate_virt.rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "kvm runtime positive" true (r.E.Ablate_virt.kvm_runtime_ns > 0.0))
    t.E.Ablate_virt.rows;
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Ablate_virt.pp t) > 0)

let suite =
  [
    Alcotest.test_case "scale parsing" `Quick test_scale_parsing;
    Alcotest.test_case "corpus deterministic" `Quick
      test_default_corpus_deterministic;
    Alcotest.test_case "table1" `Quick test_table1;
    Alcotest.test_case "table2 structure" `Slow test_table2_structure;
    Alcotest.test_case "table2 virt median overhead" `Slow
      test_table2_virt_median_overhead;
    Alcotest.test_case "table2 kvm bounds worst case" `Slow
      test_table2_kvm_bounds_worst_case;
    Alcotest.test_case "fig2 structure" `Slow test_fig2_structure;
    Alcotest.test_case "table3 structure" `Slow test_table3_structure;
    Alcotest.test_case "fig3 smoke" `Slow test_fig3_smoke;
    Alcotest.test_case "fig4 smoke" `Slow test_fig4_smoke;
    Alcotest.test_case "fig4 paper apps" `Quick test_fig4_paper_apps;
    Alcotest.test_case "ablation" `Slow test_ablation_quietest_variant_wins;
    Alcotest.test_case "ablate-virt" `Slow test_ablate_virt_monotone_interest;
  ]

let test_lightweight_presets () =
  Alcotest.(check int) "five technologies" 5 (List.length Lightweight.all);
  let fc = Lightweight.firecracker and kvm = Virt_config.default in
  Alcotest.(check bool) "firecracker cheaper exits" true
    (fc.Virt_config.exit_cost < kvm.Virt_config.exit_cost);
  Alcotest.(check bool) "nabla nearly exit-free" true
    (Lightweight.nabla.Virt_config.exits_per_syscall
    < 0.2 *. kvm.Virt_config.exits_per_syscall);
  Alcotest.(check bool) "kata proxies more" true
    (Lightweight.kata.Virt_config.exits_per_syscall
    > kvm.Virt_config.exits_per_syscall);
  Alcotest.(check bool) "gvisor intercepts everything" true
    (Lightweight.gvisor.Virt_config.exits_per_syscall >= 1.0)

let test_lwvm_experiment () =
  let t = E.Lwvm.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) () in
  Alcotest.(check int) "seven environments" 7 (List.length t.E.Lwvm.rows);
  let find env = List.find (fun r -> r.E.Lwvm.env = env) t.E.Lwvm.rows in
  (* Every virtualised environment bounds the worst case at least as
     well as Docker's shared kernel. *)
  let docker = find "docker-64" in
  List.iter
    (fun env ->
      let r = find env in
      Alcotest.(check bool) (env ^ " bounds the tail") true
        (r.E.Lwvm.max.Buckets.gt_10ms <= docker.E.Lwvm.max.Buckets.gt_10ms))
    [ "kvm-64"; "firecracker-64"; "kata-64"; "nabla-64"; "gvisor-64" ];
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Lwvm.pp t) > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "lightweight presets" `Quick test_lightweight_presets;
      Alcotest.test_case "lwvm experiment" `Slow test_lwvm_experiment;
    ]

let test_locks_experiment () =
  let t = E.Locks.run ~scale:E.Quick ~corpus:(Lazy.force quick_corpus) () in
  let envs =
    List.sort_uniq String.compare (List.map (fun r -> r.E.Locks.env) t.E.Locks.rows)
  in
  Alcotest.(check (list string)) "three environments"
    [ "kvm-64"; "kvm-8"; "native" ] envs;
  (* The surface-area claim at the lock level: the audit lock's mean
     wait shrinks as kernels shrink. *)
  let audit env =
    List.find
      (fun r -> r.E.Locks.env = env && r.E.Locks.lock = "audit")
      t.E.Locks.rows
  in
  Alcotest.(check bool) "audit wait shrinks with surface area" true
    ((audit "native").E.Locks.mean_wait_ns > (audit "kvm-64").E.Locks.mean_wait_ns);
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Locks.pp t) > 0)

let suite =
  suite @ [ Alcotest.test_case "locks experiment" `Slow test_locks_experiment ]

(* --- specialization study (kspec) ------------------------------------- *)

let specialize = lazy (E.Specialize.run ~scale:E.Quick ())

let test_specialize_structure () =
  let t = Lazy.force specialize in
  Alcotest.(check (list string)) "arm names"
    [ "native-64"; "native-64-kspec"; "kvm-64" ]
    (List.map (fun (r : E.Specialize.row) -> r.E.Specialize.env) t.E.Specialize.rows);
  Alcotest.(check bool) "spec retains file-io" true
    (List.mem Category.File_io t.E.Specialize.spec.Kspec.retained);
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" E.Specialize.pp t) > 0)

let test_specialize_recovers_variability () =
  (* The acceptance inequality: at the fixed default seed, per-tenant
     specialized kernels strictly beat the shared native kernel on the
     tail ratio, on absolute p99, and on both bucket rows. *)
  let t = Lazy.force specialize in
  let native = Option.get (E.Specialize.row t ~env:"native-64") in
  let spec = Option.get (E.Specialize.row t ~env:"native-64-kspec") in
  Alcotest.(check bool) "strictly lower tail ratio" true
    (spec.E.Specialize.tail_ratio < native.E.Specialize.tail_ratio);
  Alcotest.(check bool) "strictly lower p99" true
    (spec.E.Specialize.p99 < native.E.Specialize.p99);
  let bucket_leq (a : Buckets.row) (b : Buckets.row) =
    (* cumulative fractions: higher is better (more samples under each
       threshold).  The claim lives in the tail cells (>= 10us): [a] at
       least as good everywhere there and better somewhere.  The sub-us
       cell measures the non-contended fast path at one-cell granularity
       (quick scale has ~44 cells, so one boundary call moves it by
       ~2.3 points); allow it one cell of jitter instead of strictness. *)
    let tail_cells (r : Buckets.row) =
      [ r.Buckets.le_10us; r.Buckets.le_100us;
        r.Buckets.le_1ms; r.Buckets.le_10ms ]
    in
    a.Buckets.le_1us >= b.Buckets.le_1us -. 2.5
    && List.for_all2 (fun x y -> x >= y) (tail_cells a) (tail_cells b)
    && List.exists2 (fun x y -> x > y) (tail_cells a) (tail_cells b)
  in
  Alcotest.(check bool) "p99 buckets strictly better" true
    (bucket_leq spec.E.Specialize.p99_bucket native.E.Specialize.p99_bucket);
  Alcotest.(check bool) "max buckets strictly better" true
    (bucket_leq spec.E.Specialize.max_bucket native.E.Specialize.max_bucket)

let test_specialize_surface_and_denials () =
  let t = Lazy.force specialize in
  let native = Option.get (E.Specialize.row t ~env:"native-64") in
  let spec = Option.get (E.Specialize.row t ~env:"native-64-kspec") in
  Alcotest.(check bool) "surface area collapses" true
    (spec.E.Specialize.surface_area < 0.1 *. native.E.Specialize.surface_area);
  List.iter
    (fun (r : E.Specialize.row) ->
      Alcotest.(check int)
        (r.E.Specialize.env ^ " denials") 0 r.E.Specialize.denials)
    t.E.Specialize.rows

let suite =
  suite
  @ [
      Alcotest.test_case "specialize structure" `Slow test_specialize_structure;
      Alcotest.test_case "specialize recovers variability" `Slow
        test_specialize_recovers_variability;
      Alcotest.test_case "specialize surface and denials" `Slow
        test_specialize_surface_and_denials;
    ]
