open Ksurf

let test_delay_advances_time () =
  let engine = Engine.create () in
  let finish = ref nan in
  Engine.spawn engine (fun () ->
      Engine.delay 100.0;
      Engine.delay 50.0;
      finish := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "time" 150.0 !finish

let test_spawn_at () =
  let engine = Engine.create () in
  let seen = ref [] in
  Engine.spawn ~at:20.0 engine (fun () -> seen := "late" :: !seen);
  Engine.spawn ~at:10.0 engine (fun () -> seen := "early" :: !seen);
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "late"; "early" ] !seen

let test_spawn_in_past_raises () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () -> Engine.delay 100.0);
  Engine.run engine;
  Alcotest.(check bool) "past spawn raises" true
    (try
       Engine.spawn ~at:5.0 engine (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_same_time_fifo () =
  let engine = Engine.create () in
  let seen = ref [] in
  for i = 1 to 5 do
    Engine.spawn engine (fun () -> seen := i :: !seen)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "creation order" [ 5; 4; 3; 2; 1 ] !seen

let test_determinism () =
  let run () =
    let engine = Engine.create ~seed:5 () in
    let log = Buffer.create 64 in
    for i = 1 to 4 do
      Engine.spawn engine (fun () ->
          let rng = Prng.split (Engine.rng engine) (string_of_int i) in
          Engine.delay (Prng.float rng 100.0);
          Buffer.add_string log (Printf.sprintf "%d@%.3f;" i (Engine.now engine)))
    done;
    Engine.run engine;
    Buffer.contents log
  in
  Alcotest.(check string) "identical runs" (run ()) (run ())

let test_suspend_wake () =
  let engine = Engine.create () in
  let wake_fn = ref (fun () -> ()) in
  let resumed_at = ref nan in
  Engine.spawn engine (fun () ->
      Engine.suspend (fun wake -> wake_fn := wake);
      resumed_at := Engine.now engine);
  Engine.spawn engine (fun () ->
      Engine.delay 77.0;
      !wake_fn ());
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "resumed when woken" 77.0 !resumed_at

let test_double_wake_fails () =
  let engine = Engine.create () in
  let wake_fn = ref (fun () -> ()) in
  Engine.spawn engine (fun () -> Engine.suspend (fun wake -> wake_fn := wake));
  Engine.spawn engine (fun () ->
      Engine.delay 1.0;
      !wake_fn ();
      !wake_fn ());
  Alcotest.(check bool) "second wake raises" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Failure _) -> true)

let test_run_until () =
  let engine = Engine.create () in
  let count = ref 0 in
  Engine.spawn engine (fun () ->
      for _ = 1 to 10 do
        Engine.delay 10.0;
        incr count
      done);
  Engine.run ~until:35.0 engine;
  Alcotest.(check int) "only events before the horizon" 3 !count;
  Engine.run engine;
  Alcotest.(check int) "resumable" 10 !count

let test_until_advances_clock_when_idle () =
  let engine = Engine.create () in
  Engine.run ~until:500.0 engine;
  Alcotest.(check (float 1e-9)) "clock at horizon" 500.0 (Engine.now engine)

let test_stop_predicate () =
  let engine = Engine.create () in
  let count = ref 0 in
  Engine.spawn engine (fun () ->
      (* Infinite loop in virtual time. *)
      let rec loop () =
        Engine.delay 1.0;
        incr count;
        loop ()
      in
      loop ());
  Engine.run ~stop:(fun () -> !count >= 42) engine;
  Alcotest.(check int) "stopped by predicate" 42 !count

let test_negative_delay_raises () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () -> Engine.delay (-1.0));
  Alcotest.(check bool) "negative delay" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Invalid_argument _) -> true)

let test_zero_delay_is_noop () =
  let engine = Engine.create () in
  let steps = ref 0 in
  Engine.spawn engine (fun () ->
      Engine.delay 0.0;
      incr steps;
      Engine.delay 0.0;
      incr steps);
  Engine.run engine;
  Alcotest.(check int) "both steps ran" 2 !steps;
  (* A zero delay consumes no event. *)
  Alcotest.(check int) "single event" 1 (Engine.events_executed engine)

let test_exception_wrapped () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () -> failwith "boom");
  Alcotest.(check bool) "wrapped" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Failure msg) -> msg = "boom")

let test_delay_outside_process_fails () =
  Alcotest.(check bool) "delay outside" true
    (try
       Engine.delay 1.0;
       false
     with Failure _ -> true)

let test_pending () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () -> ());
  Engine.spawn engine (fun () -> ());
  Alcotest.(check int) "two pending" 2 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "drained" 0 (Engine.pending engine)

let test_probe_event_sequence () =
  let engine = Engine.create () in
  Alcotest.(check bool) "unobserved by default" false (Engine.observed engine);
  let events = ref [] in
  Engine.add_probe engine (fun e -> events := e :: !events);
  Alcotest.(check bool) "observed once registered" true
    (Engine.observed engine);
  Alcotest.(check int) "no process outside run" 0 (Engine.current_pid engine);
  let wake_fn = ref (fun () -> ()) in
  let inner_pid = ref 0 in
  Engine.spawn engine (fun () ->
      inner_pid := Engine.current_pid engine;
      Engine.suspend (fun wake -> wake_fn := wake));
  Engine.spawn engine (fun () ->
      Engine.delay 5.0;
      !wake_fn ());
  Engine.run engine;
  Alcotest.(check int) "process sees its own pid" 1 !inner_pid;
  Alcotest.(check int) "pid restored after drain" 0
    (Engine.current_pid engine);
  let expected =
    [
      Engine.Scheduled { now = 0.0; at = 0.0; pid = 1 };
      Engine.Scheduled { now = 0.0; at = 0.0; pid = 2 };
      Engine.Executed { now = 0.0; pid = 1 };
      Engine.Suspended { now = 0.0; pid = 1; token = 1 };
      Engine.Executed { now = 0.0; pid = 2 };
      Engine.Scheduled { now = 0.0; at = 5.0; pid = 2 };
      Engine.Executed { now = 5.0; pid = 2 };
      (* The wake is attributed to the suspended process (pid 1), not
         the waker (pid 2): ownership transfers back on resume. *)
      Engine.Woken { now = 5.0; pid = 1; token = 1 };
      Engine.Scheduled { now = 5.0; at = 5.0; pid = 1 };
      Engine.Executed { now = 5.0; pid = 1 };
    ]
  in
  Alcotest.(check int) "event count" (List.length expected)
    (List.length (List.rev !events));
  Alcotest.(check bool) "exact probe sequence" true
    (List.rev !events = expected);
  Engine.clear_probes engine;
  Alcotest.(check bool) "cleared" false (Engine.observed engine)

let test_suspend_double_wake_probe () =
  (* The second wake still reaches probes before the engine raises, so
     sanitizers can report it with full context. *)
  let engine = Engine.create () in
  let wakes = ref [] in
  Engine.add_probe engine (fun e ->
      match e with
      | Engine.Woken { token; _ } -> wakes := token :: !wakes
      | _ -> ());
  let wake_fn = ref (fun () -> ()) in
  Engine.spawn engine (fun () -> Engine.suspend (fun wake -> wake_fn := wake));
  Engine.spawn engine (fun () ->
      Engine.delay 1.0;
      !wake_fn ();
      !wake_fn ());
  Alcotest.(check bool) "second wake raises" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Failure _) -> true);
  Alcotest.(check (list int)) "both wakes observed, same token" [ 1; 1 ]
    !wakes

let qcheck_delays_sum =
  QCheck.Test.make ~name:"sequential delays accumulate" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_exclusive 1000.0))
    (fun delays ->
      let engine = Engine.create () in
      let finish = ref nan in
      Engine.spawn engine (fun () ->
          List.iter Engine.delay delays;
          finish := Engine.now engine);
      Engine.run engine;
      Float.abs (!finish -. List.fold_left ( +. ) 0.0 delays) < 1e-6)

let suite =
  [
    Alcotest.test_case "delay advances time" `Quick test_delay_advances_time;
    Alcotest.test_case "spawn at" `Quick test_spawn_at;
    Alcotest.test_case "spawn in past" `Quick test_spawn_in_past_raises;
    Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
    Alcotest.test_case "double wake" `Quick test_double_wake_fails;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "until advances idle clock" `Quick
      test_until_advances_clock_when_idle;
    Alcotest.test_case "stop predicate" `Quick test_stop_predicate;
    Alcotest.test_case "negative delay" `Quick test_negative_delay_raises;
    Alcotest.test_case "zero delay" `Quick test_zero_delay_is_noop;
    Alcotest.test_case "exception wrapped" `Quick test_exception_wrapped;
    Alcotest.test_case "delay outside process" `Quick
      test_delay_outside_process_fails;
    Alcotest.test_case "pending" `Quick test_pending;
    Alcotest.test_case "probe event sequence" `Quick test_probe_event_sequence;
    Alcotest.test_case "double wake reaches probes" `Quick
      test_suspend_double_wake_probe;
    QCheck_alcotest.to_alcotest qcheck_delays_sum;
  ]
