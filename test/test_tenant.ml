open Ksurf

let quick cfg =
  {
    cfg with
    Fleet.tenants = 16;
    day_ns = 4e8;
    days = 1.0;
    mean_rate_per_s = 40.0;
    epoch_ns = 5e7;
    host_cores = 16;
    host_mem_mb = 32_768;
  }

let run_quick ?(churn = 8.0) ?(policy = Tenant_policy.Static Tenant_policy.Docker)
    ?(seed = 42) () =
  Fleet.run (quick { Fleet.default_config with churn_per_day = churn; policy; seed })

let test_fleet_serves () =
  let r = run_quick () in
  Alcotest.(check bool) "requests served" true (r.Fleet.completed > 0);
  Alcotest.(check bool) "latencies positive" true (r.Fleet.p50 > 0.0);
  Alcotest.(check bool) "p50 <= p99" true (r.Fleet.p50 <= r.Fleet.p99 +. 1e-9)

let test_churn_storms_visible () =
  let r = run_quick ~churn:16.0 () in
  Alcotest.(check bool) "departures happened" true (r.Fleet.departures > 0);
  Alcotest.(check bool) "creates = initial + churn arrivals" true
    (r.Fleet.cgroup_creates = r.Fleet.arrivals);
  Alcotest.(check bool) "every departure destroyed its cgroup" true
    (r.Fleet.cgroup_destroys = r.Fleet.departures);
  Alcotest.(check bool) "peak cgroups >= initial population" true
    (r.Fleet.peak_cgroups >= 16);
  (* Lifecycle events are depart/admit pairs (and a losing fiber whose
     victim was already torn down skips its paired admit), so the live
     population never drifts away from the steady state. *)
  Alcotest.(check int) "population steady under churn" 16
    (r.Fleet.arrivals - r.Fleet.departures)

let test_zero_churn_is_quiet () =
  let r = run_quick ~churn:0.0 () in
  Alcotest.(check int) "no departures" 0 r.Fleet.departures;
  Alcotest.(check int) "arrivals = population" 16 r.Fleet.arrivals

let test_native_has_no_cgroups () =
  let r = run_quick ~policy:(Tenant_policy.Static Tenant_policy.Native) () in
  Alcotest.(check int) "no creates" 0 r.Fleet.cgroup_creates;
  Alcotest.(check int) "no destroys" 0 r.Fleet.cgroup_destroys;
  Alcotest.(check int) "peak cgroups" 0 r.Fleet.peak_cgroups

let test_slo_accounting_sane () =
  let r = run_quick () in
  Alcotest.(check bool) "measured <= arrivals" true
    (r.Fleet.measured <= r.Fleet.arrivals);
  Alcotest.(check bool) "slo_met <= measured" true
    (r.Fleet.slo_met <= r.Fleet.measured);
  Alcotest.(check bool) "attainment in [0,1]" true
    (r.Fleet.attainment >= 0.0 && r.Fleet.attainment <= 1.0);
  Alcotest.(check int) "replicas match autoscaler targets" 0
    r.Fleet.replica_imbalance

(* Regression for the retire-by-id bug: after a scale-down, replicas
   spawned by a later scale-up used to retire on their first request
   (replica id >= target), so scale-out after scale-in never added
   capacity.  Diurnal swings at this rate/SLO drive tenants down at the
   trough and back up at the next peak; retirement by count must leave
   every live tenant with exactly target_replicas fibers serving. *)
let test_scale_down_then_up_serves () =
  let cfg =
    {
      (quick { Fleet.default_config with churn_per_day = 0.0; slo_ns = 5e4 }) with
      Fleet.days = 3.0;
      mean_rate_per_s = 160.0;
    }
  in
  let r = Fleet.run cfg in
  Alcotest.(check bool) "autoscaler scaled down" true (r.Fleet.scale_downs > 0);
  Alcotest.(check bool) "autoscaler scaled up" true (r.Fleet.scale_ups > 0);
  Alcotest.(check int) "re-added replicas actually serve" 0
    r.Fleet.replica_imbalance

let test_deterministic () =
  let a = run_quick () and b = run_quick () in
  Alcotest.(check bool) "bit-identical results" true (a = b)

let test_seed_sensitivity () =
  let a = run_quick () and b = run_quick ~seed:43 () in
  Alcotest.(check bool) "different seeds diverge" true (a <> b)

let test_request_target_stops_early () =
  let cfg =
    quick
      {
        Fleet.default_config with
        churn_per_day = 4.0;
        request_target = Some 100;
        days = 50.0;
      }
  in
  let r = Fleet.run cfg in
  Alcotest.(check bool) "stopped near the target" true
    (r.Fleet.completed >= 100 && r.Fleet.completed < 1000)

let test_adaptive_can_migrate () =
  (* A tight SLO with one replica available forces escalation. *)
  let cfg =
    quick
      {
        Fleet.default_config with
        churn_per_day = 0.0;
        policy = Tenant_policy.Adaptive;
        slo_ns = 1.0;
        max_replicas = 1;
        escalate_after = 1;
      }
  in
  let r = Fleet.run cfg in
  Alcotest.(check bool) "migrations happened" true (r.Fleet.migrations > 0);
  Alcotest.(check bool) "tenants ended as multikernel" true (r.Fleet.final_mk > 0)

let test_mk_config_prunes () =
  let pruned = Fleet.mk_kernel_config Kernel_config.default Workload.service_mix in
  (* File_io/Fs_mgmt/Ipc keep the journal (and io charge path) but need
     no balancer, tick, reclaim or shootdown machinery. *)
  Alcotest.(check bool) "journal kept" true
    pruned.Kernel_config.enable_journal_daemon;
  Alcotest.(check bool) "balancer pruned" false
    pruned.Kernel_config.enable_load_balancer;
  Alcotest.(check bool) "kswapd pruned" false pruned.Kernel_config.enable_kswapd

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Tenant_policy.of_string (Tenant_policy.name p) with
      | Some p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | None -> Alcotest.fail "name did not parse")
    Tenant_policy.all

let test_workload_rate_positive () =
  let rng = Prng.create 7 in
  let profile = Workload.make ~rng ~params:Workload.default_params in
  let day = Workload.default_params.Workload.day_ns in
  for i = 0 to 100 do
    let t = float_of_int i *. day /. 100.0 in
    if Workload.rate_at profile ~day_ns:day t <= 0.0 then
      Alcotest.fail "non-positive arrival rate"
  done

let suite =
  [
    Alcotest.test_case "fleet serves" `Quick test_fleet_serves;
    Alcotest.test_case "churn storms visible" `Quick test_churn_storms_visible;
    Alcotest.test_case "zero churn quiet" `Quick test_zero_churn_is_quiet;
    Alcotest.test_case "native has no cgroups" `Quick test_native_has_no_cgroups;
    Alcotest.test_case "slo accounting sane" `Quick test_slo_accounting_sane;
    Alcotest.test_case "scale down then up serves" `Quick
      test_scale_down_then_up_serves;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "request target" `Quick test_request_target_stops_early;
    Alcotest.test_case "adaptive migrates" `Quick test_adaptive_can_migrate;
    Alcotest.test_case "mk config prunes" `Quick test_mk_config_prunes;
    Alcotest.test_case "policy names roundtrip" `Quick test_policy_names_roundtrip;
    Alcotest.test_case "workload rate positive" `Quick test_workload_rate_positive;
  ]
