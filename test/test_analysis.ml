open Ksurf
module Finding = Ksurf_analysis.Finding
module Invariants = Ksurf_analysis.Invariants
module Determinism = Ksurf_analysis.Determinism
module Scenarios = Ksurf_analysis.Scenarios
module Sanitizer = Ksurf_analysis.Sanitizer

let codes findings = List.map (fun (f : Finding.t) -> f.Finding.code) findings

(* --- invariants on synthetic event streams ---------------------------- *)

let test_invariants_scheduled_in_past () =
  let state = Invariants.create () in
  Invariants.on_event state (Engine.Scheduled { now = 10.0; at = 5.0; pid = 1 });
  Alcotest.(check (list string)) "flagged" [ "scheduled-in-past" ]
    (codes (Invariants.finish ~drained:false state))

let test_invariants_double_wake () =
  let state = Invariants.create () in
  Invariants.on_event state (Engine.Suspended { now = 0.0; pid = 1; token = 1 });
  Invariants.on_event state (Engine.Woken { now = 1.0; pid = 1; token = 1 });
  Invariants.on_event state (Engine.Woken { now = 2.0; pid = 1; token = 1 });
  Alcotest.(check (list string)) "flagged" [ "double-wake" ]
    (codes (Invariants.finish ~drained:false state))

let test_invariants_wake_without_suspend () =
  let state = Invariants.create () in
  Invariants.on_event state (Engine.Woken { now = 1.0; pid = 1; token = 9 });
  Alcotest.(check (list string)) "flagged" [ "wake-without-suspend" ]
    (codes (Invariants.finish ~drained:false state))

let test_invariants_barrier_generation () =
  let state = Invariants.create () in
  let arrive generation arrived =
    Invariants.on_event state
      (Engine.Sync
         {
           now = 0.0;
           pid = 1;
           name = "bar";
           op = Engine.Barrier_arrive { generation; arrived; parties = 2 };
         })
  in
  arrive 2 1;
  arrive 1 2;
  Alcotest.(check (list string)) "regression flagged"
    [ "barrier-generation-regressed" ]
    (codes (Invariants.finish ~drained:false state))

let test_invariants_stuck_suspension () =
  let state = Invariants.create () in
  Invariants.on_event state (Engine.Suspended { now = 0.0; pid = 1; token = 3 });
  Alcotest.(check (list string)) "stuck at drain" [ "suspended-at-drain" ]
    (codes (Invariants.finish ~drained:true state));
  Alcotest.(check (list string)) "quiet when stopped early" []
    (codes (Invariants.finish ~drained:false state))

let test_invariants_clean_on_real_run () =
  (* A full simulated engine run satisfies every invariant. *)
  let state = Invariants.create () in
  Scenarios.run Scenarios.Inversion ~seed:3 ~on_engine:(fun engine ->
      Engine.add_probe engine (Invariants.on_event state));
  Alcotest.(check bool) "events flowed" true (Invariants.events state > 0);
  Alcotest.(check (list string)) "clean" []
    (codes (Invariants.finish ~drained:true state))

(* --- determinism checker ---------------------------------------------- *)

let deterministic_run ~probe =
  let engine = Engine.create ~seed:11 () in
  Engine.add_probe engine probe;
  let lock = Lock.create ~engine ~name:"det" in
  for _ = 1 to 3 do
    Engine.spawn engine (fun () -> Lock.with_hold lock 5.0)
  done;
  Engine.run engine

let test_determinism_passes () =
  let result = Determinism.check ~run:deterministic_run () in
  Alcotest.(check bool) "deterministic" true (Determinism.deterministic result);
  Alcotest.(check bool) "events counted" true (result.Determinism.events_first > 0);
  Alcotest.(check int) "same event count" result.Determinism.events_first
    result.Determinism.events_second;
  Alcotest.(check (list string)) "no findings" []
    (codes (Determinism.to_findings result))

let test_determinism_catches_divergence () =
  (* A scenario that secretly changes between runs — the checker must
     pinpoint the first divergent event. *)
  let calls = ref 0 in
  let run ~probe =
    incr calls;
    let extra = if !calls > 1 then 1.0 else 0.0 in
    let engine = Engine.create () in
    Engine.add_probe engine probe;
    Engine.spawn engine (fun () -> Engine.delay (10.0 +. extra));
    Engine.run engine
  in
  let result = Determinism.check ~run () in
  Alcotest.(check bool) "divergence detected" false
    (Determinism.deterministic result);
  (match result.Determinism.divergence with
  | None -> Alcotest.fail "expected a divergence record"
  | Some d ->
      Alcotest.(check bool) "both runs present" true
        (d.Determinism.first <> None && d.Determinism.second <> None));
  Alcotest.(check (list string)) "one finding" [ "divergent-replay" ]
    (codes (Determinism.to_findings result))

(* --- sanitizer orchestration ------------------------------------------ *)

let test_checks_of_string () =
  (match Sanitizer.checks_of_string "lockdep,determinism,invariants" with
  | Ok [ Sanitizer.Lockdep; Sanitizer.Determinism; Sanitizer.Invariants ] -> ()
  | _ -> Alcotest.fail "full selection should parse in order");
  (match Sanitizer.checks_of_string " lockdep , invariants " with
  | Ok [ Sanitizer.Lockdep; Sanitizer.Invariants ] -> ()
  | _ -> Alcotest.fail "whitespace should be tolerated");
  match Sanitizer.checks_of_string "lockdep,bogus" with
  | Error "bogus" -> ()
  | _ -> Alcotest.fail "unknown check should be reported by name"

let test_stock_scenarios_clean () =
  (* Acceptance: every stock scenario, all three checks, two seeds. *)
  List.iter
    (fun scenario ->
      List.iter
        (fun seed ->
          let outcome =
            Sanitizer.run ~scenario ~seed ~checks:Sanitizer.all_checks ()
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s seed=%d clean"
               (Scenarios.to_string scenario)
               seed)
            []
            (codes outcome.Sanitizer.findings);
          Alcotest.(check bool) "probes saw traffic" true
            (outcome.Sanitizer.events > 0);
          Alcotest.(check int) "static run + determinism double-run" 3
            outcome.Sanitizer.runs)
        [ 42; 7 ])
    Scenarios.stock

let test_inversion_scenario_flagged () =
  let outcome =
    Sanitizer.run ~scenario:Scenarios.Inversion ~seed:42
      ~checks:Sanitizer.all_checks ()
  in
  let cycle_codes =
    List.filter (fun c -> c = "lock-order-cycle")
      (codes outcome.Sanitizer.findings)
  in
  Alcotest.(check int) "exactly one cycle" 1 (List.length cycle_codes);
  Alcotest.(check bool) "errors present" true
    (Finding.errors outcome.Sanitizer.findings <> [])

let test_finding_sort_and_csv () =
  let w = Finding.make ~severity:Finding.Warning ~check:"b" ~code:"w"
      ~message:"later" ()
  in
  let e =
    Finding.make ~severity:Finding.Error ~check:"a" ~code:"e" ~message:"first"
      ~witness:[ "line1"; "line2" ] ()
  in
  (match Finding.sort [ w; e ] with
  | [ f1; f2 ] ->
      Alcotest.(check string) "errors first" "e" f1.Finding.code;
      Alcotest.(check string) "warnings after" "w" f2.Finding.code
  | _ -> Alcotest.fail "sort changed cardinality");
  let path = Filename.temp_file "ksan" ".csv" in
  Finding.export_csv ~path [ e; w ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "header + two rows" 3 (List.length lines);
  Alcotest.(check bool) "header labels columns" true
    (Test_util.contains ~sub:"severity" (List.hd lines));
  Alcotest.(check bool) "witness joined into one cell" true
    (List.exists (Test_util.contains ~sub:"line1 | line2") lines)

let suite =
  [
    Alcotest.test_case "invariants: scheduled in past" `Quick
      test_invariants_scheduled_in_past;
    Alcotest.test_case "invariants: double wake" `Quick
      test_invariants_double_wake;
    Alcotest.test_case "invariants: wake without suspend" `Quick
      test_invariants_wake_without_suspend;
    Alcotest.test_case "invariants: barrier generation" `Quick
      test_invariants_barrier_generation;
    Alcotest.test_case "invariants: stuck suspension" `Quick
      test_invariants_stuck_suspension;
    Alcotest.test_case "invariants: clean on real run" `Quick
      test_invariants_clean_on_real_run;
    Alcotest.test_case "determinism: passes" `Quick test_determinism_passes;
    Alcotest.test_case "determinism: catches divergence" `Quick
      test_determinism_catches_divergence;
    Alcotest.test_case "checks parsing" `Quick test_checks_of_string;
    Alcotest.test_case "stock scenarios clean" `Slow test_stock_scenarios_clean;
    Alcotest.test_case "inversion flagged" `Quick
      test_inversion_scenario_flagged;
    Alcotest.test_case "finding sort and csv" `Quick test_finding_sort_and_csv;
  ]
