open Ksurf
module Trace = Ksurf_sim.Trace

let test_records_in_order () =
  let engine = Engine.create () in
  let trace = Trace.create ~engine () in
  Engine.spawn engine (fun () ->
      Trace.record trace "start";
      Engine.delay 100.0;
      Trace.record trace "middle";
      Engine.delay 50.0;
      Trace.recordf trace "end at %g" (Engine.now engine));
  Engine.run engine;
  match Trace.events trace with
  | [ (0.0, "start"); (100.0, "middle"); (150.0, "end at 150") ] -> ()
  | events ->
      Alcotest.failf "unexpected events: %s"
        (String.concat "; " (List.map snd events))

let test_ring_drops_oldest () =
  let engine = Engine.create () in
  let trace = Trace.create ~capacity:3 ~engine () in
  List.iter (Trace.record trace) [ "a"; "b"; "c"; "d"; "e" ];
  Alcotest.(check (list string)) "last three retained" [ "c"; "d"; "e" ]
    (List.map snd (Trace.events trace));
  Alcotest.(check int) "recorded" 5 (Trace.recorded trace);
  Alcotest.(check int) "dropped" 2 (Trace.dropped trace)

let test_ring_accounting_at_boundary () =
  (* Exactly at capacity: everything retained, nothing dropped. *)
  let engine = Engine.create () in
  let trace = Trace.create ~capacity:3 ~engine () in
  List.iter (Trace.record trace) [ "a"; "b"; "c" ];
  Alcotest.(check int) "recorded at capacity" 3 (Trace.recorded trace);
  Alcotest.(check int) "nothing dropped at capacity" 0 (Trace.dropped trace);
  Alcotest.(check (list string)) "all retained" [ "a"; "b"; "c" ]
    (List.map snd (Trace.events trace));
  (* One past capacity: exactly one drop, newest suffix retained. *)
  Trace.record trace "d";
  Alcotest.(check int) "recorded past capacity" 4 (Trace.recorded trace);
  Alcotest.(check int) "one dropped" 1 (Trace.dropped trace);
  Alcotest.(check (list string)) "oldest evicted" [ "b"; "c"; "d" ]
    (List.map snd (Trace.events trace));
  (* Invariant: recorded = dropped + retained, at every point. *)
  Alcotest.(check int) "recorded = dropped + retained"
    (Trace.recorded trace)
    (Trace.dropped trace + List.length (Trace.events trace))

let test_clear () =
  let engine = Engine.create () in
  let trace = Trace.create ~capacity:4 ~engine () in
  Trace.record trace "x";
  Trace.clear trace;
  Alcotest.(check int) "empty" 0 (List.length (Trace.events trace));
  Alcotest.(check int) "counter reset" 0 (Trace.recorded trace)

let test_invalid_capacity () =
  let engine = Engine.create () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Trace.create ~capacity:0 ~engine ());
       false
     with Invalid_argument _ -> true)

let test_pp () =
  let engine = Engine.create () in
  let trace = Trace.create ~engine () in
  Trace.record trace "hello";
  let out = Format.asprintf "%a" Trace.pp trace in
  Alcotest.(check bool) "renders" true (String.length out > 5)

let qcheck_ring_retains_suffix =
  QCheck.Test.make ~name:"ring retains the newest suffix" ~count:200
    QCheck.(pair (int_range 1 16) (list small_string))
    (fun (capacity, labels) ->
      let engine = Engine.create () in
      let trace = Trace.create ~capacity ~engine () in
      List.iter (Trace.record trace) labels;
      let expected =
        let n = List.length labels in
        let keep = min n capacity in
        List.filteri (fun i _ -> i >= n - keep) labels
      in
      List.map snd (Trace.events trace) = expected)

let test_csv_after_ring_drop () =
  let engine = Engine.create () in
  let trace = Trace.create ~capacity:3 ~engine () in
  List.iter (Trace.record trace) [ "a"; "b,comma"; "c"; "d\"quote" ];
  let csv = Trace.to_csv trace in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 3 retained rows" 4 (List.length lines);
  Alcotest.(check string) "header" "time_ns,label" (List.hd lines);
  (* Oldest event fell out of the ring; the dump starts at the
     survivor. *)
  Alcotest.(check bool) "dropped event absent" false
    (List.exists (fun l -> l = "0.0,a") lines);
  Alcotest.(check bool) "comma field quoted" true
    (List.exists (fun l -> l = "0.0,\"b,comma\"") lines);
  Alcotest.(check bool) "quote field escaped" true
    (List.exists (fun l -> l = "0.0,\"d\"\"quote\"") lines)

let test_write_csv_roundtrip () =
  let engine = Engine.create () in
  let trace = Trace.create ~engine () in
  Engine.spawn engine (fun () ->
      Trace.record trace "start";
      Engine.delay 100.0;
      Trace.record trace "stop");
  Engine.run engine;
  let path = Filename.temp_file "ksurf_trace" ".csv" in
  Trace.write_csv trace path;
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file matches to_csv" (Trace.to_csv trace) contents

let suite =
  [
    Alcotest.test_case "records in order" `Quick test_records_in_order;
    Alcotest.test_case "csv after ring drop" `Quick test_csv_after_ring_drop;
    Alcotest.test_case "write csv roundtrip" `Quick test_write_csv_roundtrip;
    Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
    Alcotest.test_case "ring accounting at boundary" `Quick
      test_ring_accounting_at_boundary;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest qcheck_ring_retains_suffix;
  ]
