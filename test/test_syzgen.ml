open Ksurf

(* --- programs --------------------------------------------------------- *)

let test_random_program_length () =
  let rng = Prng.create 1 in
  for _ = 1 to 50 do
    let p = Program.random rng ~id:0 ~min_len:3 ~max_len:7 in
    let n = Program.length p in
    if n < 3 || n > 7 then Alcotest.failf "length %d out of bounds" n
  done

let test_program_roundtrip () =
  let rng = Prng.create 2 in
  for id = 0 to 20 do
    let p = Program.random rng ~id ~min_len:1 ~max_len:10 in
    match Program.of_string ~id (Program.to_string p) with
    | Ok p' ->
        Alcotest.(check bool) "roundtrip equal" true (Program.equal p p')
    | Error e -> Alcotest.failf "parse failed: %s" e
  done

let test_parse_errors () =
  let bad input =
    match Program.of_string ~id:0 input with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown syscall" true (bad "frobnicate(0:0:0)");
  Alcotest.(check bool) "bad args" true (bad "read(x)");
  Alcotest.(check bool) "missing paren" true (bad "read");
  Alcotest.(check bool) "empty program" true (bad "   \n  ")

let test_site_names () =
  let rng = Prng.create 3 in
  let p = Program.random rng ~id:17 ~min_len:2 ~max_len:2 in
  let name = Program.site_name p 1 in
  Alcotest.(check bool) "prefix" true
    (String.length name > 5 && String.sub name 0 3 = "17/")

let test_call_site_out_of_range () =
  let rng = Prng.create 4 in
  let p = Program.random rng ~id:0 ~min_len:1 ~max_len:1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Program.call_site p 5);
       false
     with Invalid_argument _ -> true)

(* --- coverage --------------------------------------------------------- *)

let test_coverage_deterministic () =
  let rng = Prng.create 5 in
  let p = Program.random rng ~id:0 ~min_len:5 ~max_len:5 in
  let a = Coverage.of_program p and b = Coverage.of_program p in
  Alcotest.(check int) "same size" (Coverage.Set.cardinal a)
    (Coverage.Set.cardinal b);
  Alcotest.(check bool) "subset both ways" true
    (Coverage.Set.subset a b && Coverage.Set.subset b a)

let test_coverage_nonempty () =
  let spec = Option.get (Syscalls.by_name "open") in
  let cov = Coverage.blocks_of_call ~prev:None spec Arg.default in
  Alcotest.(check bool) "has blocks" true (Coverage.Set.cardinal cov > 0)

let test_edge_blocks () =
  let open_ = Option.get (Syscalls.by_name "open") in
  let read = Option.get (Syscalls.by_name "read") in
  let without = Coverage.blocks_of_call ~prev:None read Arg.default in
  let with_edge = Coverage.blocks_of_call ~prev:(Some open_) read Arg.default in
  Alcotest.(check int) "edge adds exactly one block"
    (Coverage.Set.cardinal without + 1)
    (Coverage.Set.cardinal with_edge)

let test_arg_selects_paths () =
  (* Different size buckets cover different blocks for size-sensitive
     calls. *)
  let read = Option.get (Syscalls.by_name "read") in
  let small = Coverage.blocks_of_call ~prev:None read { Arg.size = 64; obj = 0; flags = 0 } in
  let large =
    Coverage.blocks_of_call ~prev:None read { Arg.size = 1 lsl 20; obj = 0; flags = 0 }
  in
  Alcotest.(check bool) "distinct blocks" false
    (Coverage.Set.subset large small && Coverage.Set.subset small large)

let test_universe_estimate () =
  Alcotest.(check bool) "positive" true (Coverage.universe_estimate () > 1000)

(* --- mutation --------------------------------------------------------- *)

let base_program seed =
  Program.random (Prng.create seed) ~id:0 ~min_len:4 ~max_len:4

let test_mutate_never_empty () =
  let rng = Prng.create 7 in
  List.iter
    (fun op ->
      let p = ref (base_program 11) in
      for i = 1 to 30 do
        p :=
          Mutate.apply rng
            ~corpus_pick:(fun () -> Some (base_program (i + 50)))
            ~id:i op !p;
        if Program.length !p = 0 then
          Alcotest.failf "%s produced an empty program" (Mutate.op_name op)
      done)
    Mutate.all_ops

let test_insert_grows () =
  let rng = Prng.create 8 in
  let p = base_program 1 in
  let p' = Mutate.apply rng ~corpus_pick:(fun () -> None) ~id:1 Mutate.Insert p in
  Alcotest.(check int) "one longer" (Program.length p + 1) (Program.length p')

let test_remove_shrinks () =
  let rng = Prng.create 9 in
  let p = base_program 2 in
  let p' = Mutate.apply rng ~corpus_pick:(fun () -> None) ~id:1 Mutate.Remove p in
  Alcotest.(check int) "one shorter" (Program.length p - 1) (Program.length p')

let test_replace_arg_keeps_structure () =
  let rng = Prng.create 10 in
  let p = base_program 3 in
  let p' =
    Mutate.apply rng ~corpus_pick:(fun () -> None) ~id:1 Mutate.Replace_arg p
  in
  Alcotest.(check int) "same length" (Program.length p) (Program.length p');
  List.iteri
    (fun i (c : Program.call) ->
      let c' = Program.call_site p' i in
      Alcotest.(check string) "same syscall" c.Program.spec.Spec.name
        c'.Program.spec.Spec.name)
    p.Program.calls

let test_swap_preserves_multiset () =
  let rng = Prng.create 11 in
  let p = base_program 4 in
  let p' = Mutate.apply rng ~corpus_pick:(fun () -> None) ~id:1 Mutate.Swap p in
  let names prog =
    List.map (fun (c : Program.call) -> c.Program.spec.Spec.name) prog.Program.calls
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "same multiset" (names p) (names p')

(* --- generator -------------------------------------------------------- *)

let quick_params =
  { Generator.default_params with Generator.target_programs = 12; max_rounds = 2000 }

let test_generator_deterministic () =
  let a = Generator.run ~params:quick_params () in
  let b = Generator.run ~params:quick_params () in
  Alcotest.(check int) "same corpus size"
    (Corpus.program_count a.Generator.corpus)
    (Corpus.program_count b.Generator.corpus);
  Alcotest.(check int) "same coverage" a.Generator.coverage_blocks
    b.Generator.coverage_blocks;
  Alcotest.(check string) "identical corpora"
    (Corpus.to_string a.Generator.corpus)
    (Corpus.to_string b.Generator.corpus)

let test_generator_seed_changes_corpus () =
  let a = Generator.run ~params:quick_params () in
  let b = Generator.run ~params:{ quick_params with Generator.seed = 77 } () in
  Alcotest.(check bool) "different corpora" true
    (Corpus.to_string a.Generator.corpus <> Corpus.to_string b.Generator.corpus)

let test_admission_property () =
  (* Each program must cover blocks no earlier program covers. *)
  let report = Generator.run ~params:quick_params () in
  let programs = Corpus.programs report.Generator.corpus in
  let seen = ref Coverage.Set.empty in
  Array.iter
    (fun p ->
      let cov = Coverage.of_program p in
      if Coverage.Set.diff_cardinal cov !seen = 0 then
        Alcotest.failf "program %d adds no coverage" p.Program.id;
      seen := Coverage.Set.union !seen cov)
    programs

let test_minimise_preserves_contribution () =
  let rng = Prng.create 21 in
  let against = Coverage.of_program (Program.random rng ~id:0 ~min_len:5 ~max_len:5) in
  let p = Program.random rng ~id:1 ~min_len:8 ~max_len:8 in
  let m = Generator.minimise ~against p in
  Alcotest.(check bool) "not longer" true (Program.length m <= Program.length p);
  Alcotest.(check bool) "nonempty" true (Program.length m >= 1);
  Alcotest.(check int) "same new-block contribution"
    (Coverage.Set.diff_cardinal (Coverage.of_program p) against)
    (Coverage.Set.diff_cardinal (Coverage.of_program m) against)

(* --- corpus ----------------------------------------------------------- *)

let test_corpus_roundtrip () =
  let report = Generator.run ~params:quick_params () in
  let corpus = report.Generator.corpus in
  match Corpus.of_string (Corpus.to_string corpus) with
  | Ok corpus' ->
      Alcotest.(check int) "program count" (Corpus.program_count corpus)
        (Corpus.program_count corpus');
      Alcotest.(check int) "call count" (Corpus.total_calls corpus)
        (Corpus.total_calls corpus');
      Alcotest.(check int) "coverage preserved"
        (Coverage.Set.cardinal (Corpus.coverage corpus))
        (Coverage.Set.cardinal (Corpus.coverage corpus'))
  | Error e -> Alcotest.failf "reload failed: %s" e

let test_corpus_save_load () =
  let report = Generator.run ~params:quick_params () in
  let path = Filename.temp_file "ksurf-test" ".corpus" in
  Corpus.save report.Generator.corpus path;
  (match Corpus.load path with
  | Ok c ->
      Alcotest.(check int) "calls" (Corpus.total_calls report.Generator.corpus)
        (Corpus.total_calls c)
  | Error e -> Alcotest.failf "load: %s" e);
  Sys.remove path

let test_corpus_category_histogram () =
  let report = Generator.run ~params:quick_params () in
  let hist = Corpus.category_histogram report.Generator.corpus in
  Alcotest.(check int) "six categories" 6 (List.length hist);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  (* Multi-category calls count once per category. *)
  Alcotest.(check bool) "at least one site per category sum" true
    (total >= Corpus.total_calls report.Generator.corpus)

let test_corpus_empty_rejected () =
  Alcotest.(check bool) "empty list" true
    (try
       ignore (Corpus.of_programs []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty string" true
    (match Corpus.of_string "" with Error _ -> true | Ok _ -> false)

let suite =
  [
    Alcotest.test_case "random program length" `Quick test_random_program_length;
    Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "site names" `Quick test_site_names;
    Alcotest.test_case "call_site bounds" `Quick test_call_site_out_of_range;
    Alcotest.test_case "coverage deterministic" `Quick test_coverage_deterministic;
    Alcotest.test_case "coverage nonempty" `Quick test_coverage_nonempty;
    Alcotest.test_case "edge blocks" `Quick test_edge_blocks;
    Alcotest.test_case "args select paths" `Quick test_arg_selects_paths;
    Alcotest.test_case "universe estimate" `Quick test_universe_estimate;
    Alcotest.test_case "mutants never empty" `Quick test_mutate_never_empty;
    Alcotest.test_case "insert grows" `Quick test_insert_grows;
    Alcotest.test_case "remove shrinks" `Quick test_remove_shrinks;
    Alcotest.test_case "replace keeps structure" `Quick
      test_replace_arg_keeps_structure;
    Alcotest.test_case "swap preserves multiset" `Quick
      test_swap_preserves_multiset;
    Alcotest.test_case "generator deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "seed changes corpus" `Quick
      test_generator_seed_changes_corpus;
    Alcotest.test_case "admission property" `Quick test_admission_property;
    Alcotest.test_case "minimise preserves contribution" `Quick
      test_minimise_preserves_contribution;
    Alcotest.test_case "corpus roundtrip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus save/load" `Quick test_corpus_save_load;
    Alcotest.test_case "category histogram" `Quick test_corpus_category_histogram;
    Alcotest.test_case "empty corpus rejected" `Quick test_corpus_empty_rejected;
  ]

let test_filter_by_category () =
  let report = Generator.run ~params:quick_params () in
  let corpus = report.Generator.corpus in
  (match Corpus.filter_by_category corpus Ksurf_kernel.Category.Memory with
  | Some filtered ->
      Alcotest.(check bool) "smaller or equal" true
        (Corpus.program_count filtered <= Corpus.program_count corpus);
      Array.iter
        (fun (p : Program.t) ->
          if
            not
              (List.exists
                 (fun (c : Program.call) ->
                   Ksurf_syscalls.Spec.in_category c.Program.spec
                     Ksurf_kernel.Category.Memory)
                 p.Program.calls)
          then Alcotest.fail "program without a memory call survived")
        (Corpus.programs filtered)
  | None -> Alcotest.fail "no memory programs in corpus")

let test_distill_preserves_coverage () =
  let report = Generator.run ~params:quick_params () in
  let corpus = report.Generator.corpus in
  let distilled = Corpus.distill corpus in
  Alcotest.(check int) "same coverage"
    (Coverage.Set.cardinal (Corpus.coverage corpus))
    (Coverage.Set.cardinal (Corpus.coverage distilled));
  Alcotest.(check bool) "no larger" true
    (Corpus.program_count distilled <= Corpus.program_count corpus)

let test_distill_deterministic () =
  let report = Generator.run ~params:quick_params () in
  let a = Corpus.distill report.Generator.corpus in
  let b = Corpus.distill report.Generator.corpus in
  Alcotest.(check string) "same result" (Corpus.to_string a) (Corpus.to_string b)

let suite =
  suite
  @ [
      Alcotest.test_case "filter by category" `Quick test_filter_by_category;
      Alcotest.test_case "distill preserves coverage" `Quick
        test_distill_preserves_coverage;
      Alcotest.test_case "distill deterministic" `Quick test_distill_deterministic;
    ]

let test_paper_scale_growth () =
  let params =
    { quick_params with Generator.target_calls = Some 600 }
  in
  let report = Generator.run ~params () in
  let corpus = report.Generator.corpus in
  Alcotest.(check bool) "reaches the call target" true
    (Corpus.total_calls corpus >= 600);
  (* Growth must not lose coverage relative to the strict corpus. *)
  let strict = (Generator.run ~params:quick_params ()).Generator.corpus in
  Alcotest.(check bool) "coverage at least the strict corpus's" true
    (Coverage.Set.cardinal (Corpus.coverage corpus)
    >= Coverage.Set.cardinal (Corpus.coverage strict))

let test_paper_scale_deterministic () =
  let params = { quick_params with Generator.target_calls = Some 300 } in
  let a = Generator.run ~params () and b = Generator.run ~params () in
  Alcotest.(check string) "same corpus"
    (Corpus.to_string a.Generator.corpus)
    (Corpus.to_string b.Generator.corpus)

let suite =
  suite
  @ [
      Alcotest.test_case "paper-scale growth" `Quick test_paper_scale_growth;
      Alcotest.test_case "paper-scale deterministic" `Quick
        test_paper_scale_deterministic;
    ]

(* --- serialisation and ordering properties ---------------------------- *)

(* Satellite of the kspec PR: Profile serialisation leans on corpus
   round-trips and on Coverage.Set's stable iteration order, so both
   are pinned here as properties over seeded corpora. *)

let seeded_corpus seed =
  (Generator.run ~params:{ quick_params with Generator.seed } ()).Generator.corpus

let test_corpus_roundtrip_property () =
  List.iter
    (fun seed ->
      let c = seeded_corpus seed in
      match Corpus.of_string (Corpus.to_string c) with
      | Error e -> Alcotest.failf "seed %d: parse failed: %s" seed e
      | Ok c' ->
          Alcotest.(check int) "program count" (Corpus.program_count c)
            (Corpus.program_count c');
          Alcotest.(check int) "coverage cardinal"
            (Coverage.Set.cardinal (Corpus.coverage c))
            (Coverage.Set.cardinal (Corpus.coverage c'));
          Alcotest.(check bool) "category histogram" true
            (Corpus.category_histogram c = Corpus.category_histogram c'))
    [ 1; 2; 3; 5; 8; 13; 21; 42 ]

let test_coverage_order_stable () =
  let c = seeded_corpus 42 in
  let cov = Corpus.coverage c in
  let l = Coverage.Set.to_list cov in
  Alcotest.(check bool) "to_list sorted ascending" true
    (l = List.sort_uniq compare l);
  let folded = List.rev (Coverage.Set.fold (fun b acc -> b :: acc) cov []) in
  Alcotest.(check (list int)) "fold agrees with to_list" l folded;
  Alcotest.(check int) "of_list round-trips"
    (Coverage.Set.cardinal cov)
    (Coverage.Set.cardinal (Coverage.Set.of_list (List.rev l)))

let suite =
  suite
  @ [
      Alcotest.test_case "corpus roundtrip property" `Quick
        test_corpus_roundtrip_property;
      Alcotest.test_case "coverage iteration order stable" `Quick
        test_coverage_order_stable;
    ]
