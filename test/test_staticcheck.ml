(* The static analysis layer (lib/staticcheck): soundness against the
   dynamic simulator, stock-table certification, and the negative
   controls (a seeded AB/BA inversion and a deliberately gapped
   allowlist) that prove the pass actually flags what it claims to. *)

open Ksurf
module Finding = Ksurf_analysis.Finding
module Lockdep = Ksurf_analysis.Lockdep
module S = Staticcheck

let codes fs = List.map (fun (f : Finding.t) -> f.Finding.code) fs

(* --- footprints -------------------------------------------------------- *)

let footprint name =
  match Footprint.find (Footprint.all ()) name with
  | Some fp -> fp
  | None -> Alcotest.failf "no footprint for %s" name

let test_footprint_spots () =
  let locks name =
    List.map Ops.lock_ref_name (footprint name).Footprint.locks
  in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "rename takes %s" l)
        true
        (List.mem l (locks "rename")))
    [ "dcache"; "inode"; "journal" ];
  (* Implied acquisitions: a page-cache probe can miss and fill under
     the tree lock even though the op program never names it. *)
  Alcotest.(check bool) "read may take the page-cache tree" true
    (List.mem "pct" (Footprint.lock_classes (footprint "read")));
  Alcotest.(check bool) "munmap broadcasts IPIs" true
    (footprint "munmap").Footprint.ipi;
  Alcotest.(check bool) "getpid takes no locks" true
    ((footprint "getpid").Footprint.locks = []);
  Alcotest.(check int) "one footprint per table entry"
    (Array.length Ksurf_syscalls.Syscalls.all)
    (List.length (Footprint.all ()));
  List.iter
    (fun fp ->
      Alcotest.(check bool)
        (fp.Footprint.name ^ " enumerated a non-empty lattice")
        true
        (fp.Footprint.arg_points > 0))
    (Footprint.all ())

(* --- static/dynamic lock agreement ------------------------------------- *)

(* Execute every syscall's op program through a real Instance at every
   lattice point and assert the locks actually acquired are a subset of
   the static footprint.  This is the soundness direction the whole
   layer rests on: static ⊇ dynamic, point by point. *)
let test_agreement_locks () =
  Array.iter
    (fun (spec : Spec.t) ->
      let observed = ref [] in
      let engine = Engine.create ~seed:42 () in
      Engine.add_probe engine (fun ev ->
          match ev with
          | Engine.Sync
              {
                name;
                op =
                  ( Engine.Acquire _ | Engine.Read_acquire _
                  | Engine.Write_acquire _ );
                _;
              } ->
              let cls = Lockdep.class_of_instance name in
              if not (List.mem cls !observed) then observed := cls :: !observed
          | _ -> ());
      let inst =
        Instance.boot ~engine ~config:Kernel_config.default ~id:0 ~cores:4
          ~mem_mb:1024 ()
      in
      let cg = Instance.register_cgroup inst in
      Engine.spawn ~at:0.0 engine (fun () ->
          List.iter
            (fun (arg : Arg.t) ->
              let ctx =
                {
                  Instance.core = 0;
                  tenant = 0;
                  key = arg.Arg.obj;
                  cgroup = Some cg;
                }
              in
              Instance.exec_program inst ctx (spec.Spec.ops arg))
            (Footprint.lattice_points spec.Spec.arg_model));
      Engine.run engine;
      let static = Footprint.lock_classes (footprint spec.Spec.name) in
      List.iter
        (fun cls ->
          if not (List.mem cls static) then
            Alcotest.failf
              "%s dynamically acquired %s, absent from its static footprint \
               [%s]"
              spec.Spec.name cls
              (String.concat " " static))
        !observed)
    Ksurf_syscalls.Syscalls.all

(* --- static/dynamic reachability agreement ------------------------------ *)

let quick_corpus seed =
  (Generator.run ~params:{ Generator.default_params with seed } ())
    .Generator.corpus

let test_agreement_reachability () =
  let corpus = quick_corpus 42 in
  (* Full workload: the profile's syscall set must sit inside the
     whole-table static reachability set (trivially all names, but the
     subset must hold by name). *)
  let full_profile = Profile.of_corpus ~name:"full" corpus in
  let all_names = S.reachable_names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " statically reachable") true
        (List.mem n all_names))
    full_profile.Profile.syscalls;
  (* fs workload: restrict like the kspec study does, then the
     restricted profile must sit inside the File_io+Fs_mgmt static
     reachability set. *)
  let keep = [ Category.File_io; Category.Fs_mgmt ] in
  match Profile.restrict corpus ~keep with
  | None -> Alcotest.fail "fs restriction dropped the whole corpus"
  | Some fs_corpus ->
      let fs_profile = Profile.of_corpus ~name:"fs" fs_corpus in
      let fs_names = S.reachable_names ~keep () in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " reachable under File_io+Fs_mgmt") true
            (List.mem n fs_names))
        fs_profile.Profile.syscalls;
      (* The static surface-area number upper-bounds the dynamic one:
         the allowlist's reachable universe contains everything the
         corpus actually covered. *)
      let spec = Specializer.compile fs_profile in
      let static = S.static_surface ~allowlist:spec.Kspec.allowlist in
      let dynamic = S.dynamic_surface fs_profile in
      Alcotest.(check bool)
        (Printf.sprintf "static %.4f >= dynamic %.4f" static dynamic)
        true (static >= dynamic)

(* --- lock-order graph --------------------------------------------------- *)

let test_stock_table_certified () =
  let g = Lockgraph.of_table () in
  Alcotest.(check (list string)) "stock table is cycle-free" []
    (codes (Lockgraph.cycles g));
  let has_edge src dst =
    List.exists
      (fun (e : Lockgraph.edge) -> e.Lockgraph.src = src && e.Lockgraph.dst = dst)
      g.Lockgraph.edges
  in
  Alcotest.(check bool) "dcache -> inode (rename family)" true
    (has_edge "dcache" "inode");
  Alcotest.(check bool) "inode -> journal (journalled updates)" true
    (has_edge "inode" "journal");
  Alcotest.(check bool) "hierarchy has no reverse edges" false
    (has_edge "inode" "dcache" || has_edge "journal" "inode"
    || has_edge "journal" "dcache")

let nested name number outer inner =
  Spec.make ~name ~number ~categories:[ Category.Ipc ] ~doc:"inversion control"
    (fun _ ->
      [
        Ops.With_lock
          (outer, Dist.constant 100.0, [ Ops.Lock (inner, Dist.constant 50.0) ]);
      ])

(* The AB/BA pattern the dynamic Inversion scenario only catches when
   the schedule interleaves the two sides: the static graph must flag
   it from the table alone. *)
let test_seeded_inversion_flagged () =
  let ab = nested "ab_control" 9001 Ops.Tasklist Ops.Zone in
  let ba = nested "ba_control" 9002 Ops.Zone Ops.Tasklist in
  Alcotest.(check (list string)) "AB alone is clean" []
    (codes (Lockgraph.cycles (Lockgraph.of_specs [ ab ])));
  let findings = Lockgraph.cycles (Lockgraph.of_specs [ ab; ba ]) in
  Alcotest.(check (list string)) "AB/BA is one cycle"
    [ "static-lock-order-cycle" ] (codes findings);
  let f = List.hd findings in
  Alcotest.(check bool) "names tasklist" true
    (Test_util.contains ~sub:"tasklist" f.Finding.message);
  Alcotest.(check bool) "names zone" true
    (Test_util.contains ~sub:"zone" f.Finding.message);
  Alcotest.(check bool) "witnesses both sides" true
    (List.length f.Finding.witness >= 2);
  Alcotest.(check bool) "severity error" true
    (f.Finding.severity = Finding.Error)

(* --- interference matrix ------------------------------------------------ *)

let test_interference () =
  let m = Interference.of_table () in
  Alcotest.(check bool) "creat and fsync contend on the journal" true
    (List.mem "journal" (Interference.shared_locks m "creat" "fsync"));
  Alcotest.(check (list string)) "getpid interferes with nothing" []
    (Interference.shared_locks m "getpid" "read");
  Alcotest.(check bool) "some but not all pairs interfere" true
    (Interference.interfering_pairs m > 0
    && Interference.interfering_pairs m < Interference.total_pairs m);
  (* Striped locks are excluded by construction. *)
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " is instance-global") true
        (List.mem cls Interference.global_classes))
    (List.map fst m.Interference.classes)

(* --- allowlist verification --------------------------------------------- *)

let keep_fs = [ Category.File_io; Category.Fs_mgmt ]

let profile_ctl =
  {
    Profile.name = "ctl";
    syscalls = [ "fsync"; "read" ];
    categories = [ (Category.File_io, 2); (Category.Fs_mgmt, 1) ];
    coverage = Coverage.Set.empty;
  }

let kspec ?(mode = Kspec.Enforce) allowlist =
  {
    Kspec.profile_name = "ctl";
    allowlist;
    retained = keep_fs;
    mode;
    reachable = 0.5;
  }

let verify ?(config = Kernel_config.default) spec =
  S.verify ~workload:"ctl" ~keep:keep_fs ~profile:profile_ctl ~spec ~config ()

let test_exact_allowlist_certifies () =
  let r = verify (kspec [ "fsync"; "read" ]) in
  Alcotest.(check (list string)) "no findings" [] (codes r.S.findings);
  Alcotest.(check (list string)) "no gaps" [] r.S.gaps;
  Alcotest.(check (list string)) "no slack" [] r.S.slack

let test_gapped_allowlist_flagged () =
  let r = verify (kspec [ "read" ]) in
  Alcotest.(check (list string)) "fsync is the gap" [ "fsync" ] r.S.gaps;
  (match r.S.findings with
  | [ f ] ->
      Alcotest.(check string) "code" "allowlist-gap" f.Finding.code;
      Alcotest.(check bool) "ENOSYS hazard is an error under Enforce" true
        (f.Finding.severity = Finding.Error);
      Alcotest.(check bool) "names the call" true
        (Test_util.contains ~sub:"fsync" f.Finding.message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  (* Audit mode: same gap, only a warning. *)
  let r = verify (kspec ~mode:Kspec.Audit [ "read" ]) in
  match r.S.findings with
  | [ f ] ->
      Alcotest.(check bool) "warning under Audit" true
        (f.Finding.severity = Finding.Warning)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_slack_flagged () =
  (* mmap is Memory-only: allowed but unreachable under File_io+Fs_mgmt. *)
  let r = verify (kspec [ "fsync"; "mmap"; "read" ]) in
  Alcotest.(check (list string)) "mmap is slack" [ "mmap" ] r.S.slack;
  match r.S.findings with
  | [ f ] ->
      Alcotest.(check string) "code" "allowlist-slack" f.Finding.code;
      Alcotest.(check bool) "slack is a warning" true
        (f.Finding.severity = Finding.Warning)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_machinery_pruned_flagged () =
  (* fsync dirties the journal; a config that pruned the journal
     daemon while still allowing fsync is a latent hazard. *)
  let config =
    Kernel_config.without_machinery Ops.Journal_daemon Kernel_config.default
  in
  let r = verify ~config (kspec [ "fsync"; "read" ]) in
  match r.S.findings with
  | [ f ] ->
      Alcotest.(check string) "code" "machinery-pruned" f.Finding.code;
      Alcotest.(check bool) "names fsync" true
        (Test_util.contains ~sub:"fsync" f.Finding.message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_stock_workload_verifies_clean () =
  (* The kspec study's own triple (profile, compiled allowlist, pruned
     config) must certify clean: exact allowlist, no slack, no
     machinery hazard — the specializer retains what its calls need. *)
  let corpus = quick_corpus 42 in
  match Profile.restrict corpus ~keep:keep_fs with
  | None -> Alcotest.fail "fs restriction dropped the whole corpus"
  | Some fs_corpus ->
      let profile = Profile.of_corpus ~name:"fs" fs_corpus in
      let spec = Specializer.compile profile in
      let config = Specializer.kernel_config spec in
      let r =
        S.verify ~workload:"fs" ~keep:keep_fs ~profile ~spec ~config ()
      in
      Alcotest.(check (list string)) "stock triple certifies clean" []
        (codes r.S.findings)

let suite =
  [
    Alcotest.test_case "footprint spot checks" `Quick test_footprint_spots;
    Alcotest.test_case "dynamic locks within static footprint" `Quick
      test_agreement_locks;
    Alcotest.test_case "dynamic profile within static reachability" `Quick
      test_agreement_reachability;
    Alcotest.test_case "stock table certified cycle-free" `Quick
      test_stock_table_certified;
    Alcotest.test_case "seeded AB/BA inversion flagged" `Quick
      test_seeded_inversion_flagged;
    Alcotest.test_case "interference matrix" `Quick test_interference;
    Alcotest.test_case "exact allowlist certifies" `Quick
      test_exact_allowlist_certifies;
    Alcotest.test_case "gapped allowlist flagged" `Quick
      test_gapped_allowlist_flagged;
    Alcotest.test_case "slack flagged" `Quick test_slack_flagged;
    Alcotest.test_case "pruned machinery flagged" `Quick
      test_machinery_pruned_flagged;
    Alcotest.test_case "stock fs triple clean" `Quick
      test_stock_workload_verifies_clean;
  ]
