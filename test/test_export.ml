open Ksurf
module E = Experiments

(* CSV writing + experiment exporters. *)

let test_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_line () =
  Alcotest.(check string) "joined" "a,\"b,c\",d" (Csv.line [ "a"; "b,c"; "d" ])

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_roundtrip () =
  let path = Filename.temp_file "ksurf-csv" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ];
  Alcotest.(check string) "content" "x,y\n1,2\n3,4\n" (read_file path);
  Sys.remove path

let test_write_ragged () =
  let path = Filename.temp_file "ksurf-csv" ".csv" in
  Alcotest.(check bool) "ragged rejected" true
    (try
       Csv.write ~path ~header:[ "x"; "y" ] ~rows:[ [ "1" ] ];
       false
     with Invalid_argument _ -> true);
  Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "ksurf-export" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let line_count path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> l <> "")
  |> List.length

let test_export_table2 () =
  with_temp_dir (fun dir ->
      let corpus = E.default_corpus E.Quick in
      let t = E.Table2.run ~scale:E.Quick ~corpus () in
      match Export.table2 ~dir t with
      | [ path ] ->
          (* 3 environments x 3 statistics + header. *)
          Alcotest.(check int) "rows" 10 (line_count path)
      | _ -> Alcotest.fail "expected one file")

let test_export_fig3 () =
  with_temp_dir (fun dir ->
      let corpus = E.default_corpus E.Quick in
      let apps = List.filter_map Apps.by_name [ "silo" ] in
      let t = E.Fig3.run ~scale:E.Quick ~corpus ~apps () in
      match Export.fig3 ~dir t with
      | [ path ] -> Alcotest.(check int) "4 cells + header" 5 (line_count path)
      | _ -> Alcotest.fail "expected one file")

let test_export_dose () =
  with_temp_dir (fun dir ->
      let t =
        {
          E.Dose.plan_name = "mixed";
          cells =
            [
              {
                E.Dose.env = "native";
                intensity = 1.0;
                p99 = 1234.6;
                cov = 0.25;
                injections = 42;
                retries = 7;
                degraded = true;
                survivors = 63;
              };
            ];
        }
      in
      match Export.dose ~dir t with
      | [ path ] ->
          Alcotest.(check int) "1 cell + header" 2 (line_count path);
          (* The degraded stamp and survivor count must reach the CSV. *)
          Alcotest.(check bool) "degraded stamped" true
            (let contents = read_file path in
             List.exists
               (fun line -> line = "native,1.00,1235,0.2500,42,7,true,63")
               (String.split_on_char '\n' contents))
      | _ -> Alcotest.fail "expected one file")

let suite =
  [
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "export dose" `Quick test_export_dose;
    Alcotest.test_case "line" `Quick test_line;
    Alcotest.test_case "write roundtrip" `Quick test_write_roundtrip;
    Alcotest.test_case "write ragged" `Quick test_write_ragged;
    Alcotest.test_case "export table2" `Slow test_export_table2;
    Alcotest.test_case "export fig3" `Slow test_export_fig3;
  ]
