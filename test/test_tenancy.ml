(* Tenancy sweep determinism (satellite of ktenant): the exported CSV
   must be byte-identical whatever the worker count, and a sweep killed
   mid-run must resume through the journal to exactly the cells a
   clean run produces. *)

module E = Ksurf.Experiments
module Policy = Ksurf.Tenant_policy

let policies = [ Policy.Static Policy.Native; Policy.Static Policy.Docker ]
let tenants = [ 8 ]
let churns = [ 0.0; 16.0 ]

let run ?journal ?pool () =
  E.Tenancy.run ~seed:7 ~scale:E.Quick ~tenants ~churns ~policies ?journal
    ?pool ()

let with_tmp_dir prefix f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let export_bytes t dir =
  match Ksurf.Export.tenancy ~dir t with
  | [ p ] -> read_file p
  | ps -> Alcotest.failf "expected one exported file, got %d" (List.length ps)

(* The tentpole acceptance bar: --jobs 1 and --jobs 4 must yield a
   byte-identical tenancy.csv.  Determinism lives in the merge, not
   the schedule (see Pool.map). *)
let test_jobs_invariant () =
  let seq = Ksurf.Pool.with_pool ~jobs:1 (fun pool -> run ~pool ()) in
  let par = Ksurf.Pool.with_pool ~jobs:4 (fun pool -> run ~pool ()) in
  let bytes_of t = with_tmp_dir "ksurf-tenancy" (fun dir -> export_bytes t dir) in
  Alcotest.(check string) "csv bytes identical across --jobs" (bytes_of seq)
    (bytes_of par)

(* Kill-mid-sweep equivalence: record only the first half of the cells
   in a journal (as if the process died after completing them), resume
   with the same journal, and check the union of the halves equals a
   clean uninterrupted run. *)
let test_journal_resume () =
  let full = run () in
  let keys =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun tenants ->
            List.map
              (fun churn -> E.Tenancy.cell_key (policy, tenants, churn))
              churns)
          tenants)
      policies
  in
  let half = List.filteri (fun i _ -> i < List.length keys / 2) keys in
  let jpath = Filename.temp_file "ksurf-tenancy" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove jpath)
    (fun () ->
      let journal = Ksurf.Recov_journal.load ~path:jpath () in
      List.iter (Ksurf.Recov_journal.record journal) half;
      Ksurf.Recov_journal.flush journal;
      let resumed = run ~journal () in
      Alcotest.(check int) "resume computes only the missing cells"
        (List.length keys - List.length half)
        (List.length resumed.E.Tenancy.cells);
      (* Every resumed cell matches the corresponding clean-run cell
         field for field (result is immutable scalars + strings, so
         structural equality is exact). *)
      List.iter
        (fun (c : E.Tenancy.cell) ->
          let key =
            E.Tenancy.cell_key
              ( (match Policy.of_string c.Ksurf.Fleet.policy with
                | Some p -> p
                | None -> Alcotest.failf "bad policy %s" c.Ksurf.Fleet.policy),
                c.Ksurf.Fleet.tenants,
                c.Ksurf.Fleet.churn_per_day )
          in
          ignore key;
          match
            E.Tenancy.cell full ~policy:c.Ksurf.Fleet.policy
              ~tenants:c.Ksurf.Fleet.tenants ~churn:c.Ksurf.Fleet.churn_per_day
          with
          | Some f -> Alcotest.(check bool) "cell equals clean run" true (f = c)
          | None -> Alcotest.fail "resumed cell missing from clean run")
        resumed.E.Tenancy.cells;
      (* A second resume with the now-complete journal is a no-op. *)
      List.iter
        (fun (c : E.Tenancy.cell)->
          Ksurf.Recov_journal.record journal
            (E.Tenancy.cell_key
               ( Option.get (Policy.of_string c.Ksurf.Fleet.policy),
                 c.Ksurf.Fleet.tenants,
                 c.Ksurf.Fleet.churn_per_day )))
        resumed.E.Tenancy.cells;
      Ksurf.Recov_journal.flush journal;
      let again = run ~journal:(Ksurf.Recov_journal.load ~path:jpath ()) () in
      Alcotest.(check int) "complete journal skips everything" 0
        (List.length again.E.Tenancy.cells))

let test_frontier_sane () =
  let t = run () in
  let frontier = E.Tenancy.frontier ~floor:0.0 t in
  Alcotest.(check int) "one frontier row per policy" (List.length policies)
    (List.length frontier);
  List.iter
    (fun (p, best) ->
      let has_data =
        List.exists
          (fun (c : E.Tenancy.cell) ->
            c.Ksurf.Fleet.policy = p && c.Ksurf.Fleet.measured > 0)
          t.E.Tenancy.cells
      in
      match best with
      | Some (c : E.Tenancy.cell) ->
          Alcotest.(check bool) "frontier cell carries a verdict" true
            (c.Ksurf.Fleet.measured > 0);
          Alcotest.(check bool) "attainment within [0,1]" true
            (c.Ksurf.Fleet.attainment >= 0.0 && c.Ksurf.Fleet.attainment <= 1.0)
      | None ->
          (* Even at floor 0 a policy whose cells are all no-data must
             yield no frontier cell; one with data must yield one. *)
          Alcotest.(check bool) "only no-data policies yield no cell" false
            has_data)
    frontier

(* A sparse cell (no tenant reached min_tenant_samples) reports
   attainment 0 but carries no verdict: the frontier must prefer a
   smaller measured cell over a larger measured=0 one, never reading
   the 0.0 as total SLO failure. *)
let test_frontier_excludes_no_data () =
  let cell ~tenants ~measured ~slo_met : E.Tenancy.cell =
    {
      Ksurf.Fleet.policy = "docker";
      tenants;
      churn_per_day = 0.0;
      completed = 100;
      mean = 1.0;
      p50 = 1.0;
      p95 = 1.0;
      p99 = 1.0;
      max = 1.0;
      slo_ns = 2.5e5;
      measured;
      slo_met;
      attainment =
        (if measured = 0 then 0.0
         else float_of_int slo_met /. float_of_int measured);
      epoch_violations = 0;
      arrivals = tenants;
      departures = 0;
      cgroup_creates = tenants;
      cgroup_destroys = 0;
      migrations = 0;
      scale_ups = 0;
      scale_downs = 0;
      replica_imbalance = 0;
      peak_cgroups = tenants;
      final_native = 0;
      final_docker = tenants;
      final_kvm = 0;
      final_mk = 0;
      virtual_ns = 1.0;
    }
  in
  let t =
    {
      E.Tenancy.slo_ns = 2.5e5;
      cells =
        [
          cell ~tenants:8 ~measured:8 ~slo_met:8;
          cell ~tenants:512 ~measured:0 ~slo_met:0;
        ];
    }
  in
  (match E.Tenancy.frontier ~floor:0.0 t with
  | [ (_, Some c) ] ->
      Alcotest.(check int) "measured cell wins over larger no-data cell" 8
        c.Ksurf.Fleet.tenants
  | _ -> Alcotest.fail "expected one frontier row with a cell");
  match E.Tenancy.frontier ~floor:0.95 (
    { t with E.Tenancy.cells = [ cell ~tenants:512 ~measured:0 ~slo_met:0 ] })
  with
  | [ (_, None) ] -> ()
  | _ -> Alcotest.fail "no-data-only policy must have an empty frontier"

let suite =
  [
    Alcotest.test_case "jobs invariant csv" `Quick test_jobs_invariant;
    Alcotest.test_case "journal resume" `Quick test_journal_resume;
    Alcotest.test_case "frontier sane" `Quick test_frontier_sane;
    Alcotest.test_case "frontier excludes no-data" `Quick
      test_frontier_excludes_no_data;
  ]
