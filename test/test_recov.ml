open Ksurf

(* krecov: failure detection, supervision, checkpoint/restart, and the
   engine liveness watchdog. *)

(* --- helpers ----------------------------------------------------------- *)

(* A synthetic iteration pool: the supervisor only needs an empirical
   distribution, not a full cluster simulation. *)
let pool =
  let rng = Prng.create 7 in
  Array.init 96 (fun _ -> 8e5 +. Prng.float rng 4e5)

let temp_path suffix =
  let p = Filename.temp_file "ksurf-recov" suffix in
  Sys.remove p;
  p

let cleanup p = if Sys.file_exists p then Sys.remove p

let crashy_plan = Option.get (Fault_plan.preset "crashy")

let permanent_crash_plan =
  {
    Fault_plan.name = "perma";
    actions =
      [ Fault_plan.Rank_crash { rank = 1; at_ns = 3e6; restart_after_ns = None } ];
  }

let base_config =
  { Supervisor.default_config with Supervisor.nodes = 16; iterations = 8; seed = 11 }

(* --- detector ---------------------------------------------------------- *)

let hb = Detector.default_config.Detector.bootstrap_interval_ns

(* A detector for one rank with [n] regular heartbeats behind it. *)
let warmed_detector n =
  let d = Detector.create ~now:0.0 ~ranks:[ 0 ] () in
  for i = 1 to n do
    Detector.heartbeat d ~rank:0 ~now:(float_of_int i *. hb)
  done;
  (d, float_of_int n *. hb)

let qcheck_phi_monotone_in_silence =
  QCheck.Test.make ~name:"phi is monotone in silence" ~count:100
    QCheck.(triple (int_range 1 20) (pair pos_float pos_float) small_int)
    (fun (beats, (s1, s2), _) ->
      let d, last = warmed_detector beats in
      let t1 = last +. Float.min s1 s2 and t2 = last +. Float.max s1 s2 in
      Detector.phi d ~rank:0 ~now:t1 <= Detector.phi d ~rank:0 ~now:t2)

let qcheck_no_dead_under_jitter =
  (* Heartbeats with bounded jitter around the nominal interval must
     never drive a rank to Dead (nor even Suspect with the default
     thresholds): phi <= 1.3/(0.7 ln 10) < 1 for +-30% jitter. *)
  QCheck.Test.make ~name:"no Dead under sub-threshold jitter" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 5 40) (float_range (-0.3) 0.3)))
    (fun (_, jitters) ->
      let d = Detector.create ~now:0.0 ~ranks:[ 0 ] () in
      let now = ref 0.0 in
      let ok = ref true in
      List.iter
        (fun j ->
          now := !now +. (hb *. (1.0 +. j));
          ignore (Detector.evaluate d ~now:!now);
          Detector.heartbeat d ~rank:0 ~now:!now;
          if Detector.state d ~rank:0 = Detector.Dead then ok := false)
        jitters;
      !ok)

(* First evaluation time (in steps of hb/10 after the last heartbeat)
   at which the rank is ruled Dead. *)
let detection_latency () =
  let d, last = warmed_detector 8 in
  let step = hb /. 10.0 in
  let rec go i =
    if i > 1000 then Alcotest.fail "never detected"
    else
      let now = last +. (float_of_int i *. step) in
      ignore (Detector.evaluate d ~now);
      if Detector.state d ~rank:0 = Detector.Dead then i else go (i + 1)
  in
  go 1

let test_detection_latency_deterministic () =
  let l1 = detection_latency () and l2 = detection_latency () in
  Alcotest.(check int) "same latency" l1 l2;
  Alcotest.(check bool) "not instant" true (l1 > 10)

let test_verdict_ladder () =
  let d, last = warmed_detector 8 in
  (* Climb: the rank passes through Suspect before Dead, and the
     transitions are reported exactly once each. *)
  let seen = ref [] in
  let step = hb /. 4.0 in
  for i = 1 to 400 do
    let now = last +. (float_of_int i *. step) in
    seen := !seen @ Detector.evaluate d ~now
  done;
  (match !seen with
  | [ (0, Detector.Alive, Detector.Suspect); (0, Detector.Suspect, Detector.Dead) ]
    ->
      ()
  | l -> Alcotest.failf "unexpected transition list (%d entries)" (List.length l));
  (* Dead is sticky: a late heartbeat does not resurrect... *)
  Detector.heartbeat d ~rank:0 ~now:(last +. 200.0 *. hb);
  ignore (Detector.evaluate d ~now:(last +. 200.0 *. hb));
  Alcotest.(check bool) "dead is sticky" true
    (Detector.state d ~rank:0 = Detector.Dead);
  (* ...only an explicit revival does. *)
  Detector.revive d ~rank:0 ~now:(last +. 201.0 *. hb);
  Alcotest.(check bool) "revived" true (Detector.state d ~rank:0 = Detector.Alive)

let test_suspect_recovers () =
  let d, last = warmed_detector 8 in
  (* Silence long enough for Suspect but not Dead, then a heartbeat. *)
  let suspect_at = last +. (3.0 *. hb) in
  ignore (Detector.evaluate d ~now:suspect_at);
  Alcotest.(check bool) "suspect" true
    (Detector.state d ~rank:0 = Detector.Suspect);
  Detector.heartbeat d ~rank:0 ~now:suspect_at;
  let trans = Detector.evaluate d ~now:suspect_at in
  Alcotest.(check bool) "recovers to alive" true
    (List.mem (0, Detector.Suspect, Detector.Alive) trans
    && Detector.state d ~rank:0 = Detector.Alive)

let test_retired_rank_accrues_nothing () =
  let d, last = warmed_detector 5 in
  Detector.retire d ~rank:0;
  let trans = Detector.evaluate d ~now:(last +. 1000.0 *. hb) in
  Alcotest.(check int) "no transitions" 0 (List.length trans)

let test_detector_save_restore () =
  let d, last = warmed_detector 6 in
  ignore (Detector.evaluate d ~now:(last +. 2.5 *. hb));
  let d' = Detector.restore (Detector.save d) in
  let now = last +. 3.7 *. hb in
  Alcotest.(check (float 1e-12)) "same phi" (Detector.phi d ~rank:0 ~now)
    (Detector.phi d' ~rank:0 ~now);
  Alcotest.(check bool) "same transitions" true
    (Detector.evaluate d ~now = Detector.evaluate d' ~now)

(* --- checkpoint -------------------------------------------------------- *)

let sample_state =
  {
    Checkpoint.superstep = 7;
    runtime_ns = 123456.789e3;
    membership = [ 0; 2; 3; 5 ];
    rejoins =
      [
        { Checkpoint.rj_rank = 1; rj_superstep = 9; rj_incident = 0; rj_died_at = 6 };
        { Checkpoint.rj_rank = 4; rj_superstep = 8; rj_incident = 1; rj_died_at = 7 };
      ];
    incidents = 2;
    prng_state = 0x9e3779b97f4a7c15L;
    prng_seed = 42;
    crashes = 2;
    restarts = 1;
    backups = 3;
    deaths = 2;
    transitions = 11;
    checkpoints = 4;
    degraded = true;
  }

let test_checkpoint_roundtrip () =
  let p = temp_path ".ckpt" in
  Checkpoint.write ~path:p sample_state;
  (match Checkpoint.read ~path:p with
  | Ok s -> Alcotest.(check bool) "round-trips" true (s = sample_state)
  | Error e -> Alcotest.failf "read failed: %s" e);
  Alcotest.(check bool) "no temp left behind" false
    (Sys.file_exists (p ^ ".tmp"));
  cleanup p

let test_checkpoint_detects_corruption () =
  let p = temp_path ".ckpt" in
  Checkpoint.write ~path:p sample_state;
  let contents =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let expect_error label s =
    let oc = open_out_bin p in
    output_string oc s;
    close_out oc;
    match Checkpoint.read ~path:p with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  (* Flip one byte of the payload. *)
  let flipped = Bytes.of_string contents in
  let i = String.length contents - 5 in
  Bytes.set flipped i (if Bytes.get flipped i = '0' then '1' else '0');
  expect_error "bit flip" (Bytes.to_string flipped);
  (* Truncate mid-payload (a torn write the atomic rename prevents). *)
  expect_error "truncation" (String.sub contents 0 (String.length contents / 2));
  expect_error "wrong magic" ("bogus v9\n" ^ contents);
  expect_error "empty file" "";
  cleanup p;
  match Checkpoint.read ~path:p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

(* --- journal ----------------------------------------------------------- *)

let test_journal_roundtrip () =
  let p = temp_path ".journal" in
  let j = Recov_journal.load ~path:p () in
  Alcotest.(check int) "starts empty" 0 (List.length (Recov_journal.cells j));
  Recov_journal.record j "dose:native:0.50";
  Recov_journal.record j "a key with spaces";
  Recov_journal.record j "dose:native:0.50";
  Recov_journal.flush j;
  let j' = Recov_journal.load ~path:p () in
  Alcotest.(check (list string))
    "reload keeps order, dedupes"
    [ "dose:native:0.50"; "a key with spaces" ]
    (Recov_journal.cells j');
  Alcotest.(check bool) "mem hit" true (Recov_journal.mem j' "a key with spaces");
  Alcotest.(check bool) "mem miss" false (Recov_journal.mem j' "other");
  cleanup p

let test_journal_drops_corrupt_lines () =
  let p = temp_path ".journal" in
  let j = Recov_journal.load ~path:p () in
  Recov_journal.record j "good-cell";
  Recov_journal.record j "another-good-cell";
  Recov_journal.flush j;
  (* Simulate a torn append plus line-level bit rot. *)
  let oc = open_out_gen [ Open_append ] 0o644 p in
  output_string oc "cell deadbeef tampered-checksum\ngarbage line\ncell 12";
  close_out oc;
  let j' = Recov_journal.load ~path:p () in
  Alcotest.(check (list string))
    "good cells survive, bad dropped"
    [ "good-cell"; "another-good-cell" ]
    (Recov_journal.cells j');
  cleanup p

let test_journal_missing_or_foreign_file () =
  let j = Recov_journal.load ~path:(temp_path ".journal") () in
  Alcotest.(check int) "missing file is empty" 0
    (List.length (Recov_journal.cells j));
  let p = temp_path ".journal" in
  let oc = open_out p in
  output_string oc "not a journal at all\n";
  close_out oc;
  let j' = Recov_journal.load ~path:p () in
  Alcotest.(check int) "foreign file is empty" 0
    (List.length (Recov_journal.cells j'));
  cleanup p

(* --- file I/O hardening ------------------------------------------------ *)

let test_write_atomic_no_partial_file () =
  let p = temp_path ".txt" in
  Fileio.write_atomic ~path:p (fun oc -> output_string oc "hello\n");
  Alcotest.(check bool) "written" true (Sys.file_exists p);
  Alcotest.(check bool) "no temp" false (Sys.file_exists (p ^ ".tmp"));
  cleanup p

let test_write_failure_raises_io_error () =
  let bad = Filename.concat (temp_path "-nodir") "out.csv" in
  (try
     Fileio.write_atomic ~path:bad (fun oc -> output_string oc "x");
     Alcotest.fail "no exception"
   with Fileio.Io_error _ -> ());
  try
    Csv.write ~path:bad ~header:[ "a" ] ~rows:[ [ "1" ] ];
    Alcotest.fail "csv write: no exception"
  with Fileio.Io_error _ -> ()

(* --- supervisor -------------------------------------------------------- *)

let test_all_policies_complete_crashy () =
  (* Acceptance: the 64-node BSP run under the crashy preset completes
     under every recovery policy without wedging. *)
  let config =
    { Supervisor.default_config with Supervisor.nodes = 64; iterations = 8; seed = 5; crash_rate = 0.01 }
  in
  List.iter
    (fun policy ->
      let o =
        Supervisor.run ~pool ~plan:crashy_plan
          ~config:{ config with Supervisor.policy } ()
      in
      Alcotest.(check int)
        (Supervisor.policy_name policy ^ " completes")
        8 o.Supervisor.supersteps;
      Alcotest.(check bool)
        (Supervisor.policy_name policy ^ " positive runtime")
        true
        (o.Supervisor.runtime_ns > 0.0);
      Alcotest.(check bool)
        (Supervisor.policy_name policy ^ " saw the planned crash")
        true
        (o.Supervisor.crashes >= 1))
    Supervisor.[ Survivors; Readmit; Speculative ]

let test_survivors_degrades () =
  let o =
    Supervisor.run ~pool ~plan:permanent_crash_plan
      ~config:{ base_config with Supervisor.policy = Supervisor.Survivors } ()
  in
  Alcotest.(check bool) "degraded" true o.Supervisor.degraded;
  Alcotest.(check bool) "lost a rank" true
    (o.Supervisor.survivors < base_config.Supervisor.nodes);
  Alcotest.(check bool) "death recorded" true (o.Supervisor.deaths >= 1);
  Alcotest.(check bool) "transitions probed" true (o.Supervisor.transitions >= 2)

let test_readmit_restores_membership () =
  let o =
    Supervisor.run ~pool ~plan:crashy_plan
      ~config:{ base_config with Supervisor.policy = Supervisor.Readmit } ()
  in
  Alcotest.(check bool) "restarted" true (o.Supervisor.restarts >= 1);
  Alcotest.(check int) "membership restored" base_config.Supervisor.nodes
    o.Supervisor.survivors;
  Alcotest.(check bool) "not degraded" false o.Supervisor.degraded

let test_speculative_launches_backups () =
  let o =
    Supervisor.run ~pool ~plan:permanent_crash_plan
      ~config:{ base_config with Supervisor.policy = Supervisor.Speculative } ()
  in
  Alcotest.(check bool) "backup launched" true (o.Supervisor.backups >= 1);
  Alcotest.(check int) "membership intact" base_config.Supervisor.nodes
    o.Supervisor.survivors

let test_outcome_deterministic () =
  let run () =
    Supervisor.run ~pool ~plan:crashy_plan
      ~config:
        { base_config with Supervisor.policy = Supervisor.Readmit; crash_rate = 0.02 }
      ()
  in
  Alcotest.(check bool) "bit-identical outcomes" true (run () = run ())

let test_crash_rate_costs_runtime () =
  let runtime rate =
    (Supervisor.run ~pool
       ~config:
         {
           base_config with
           Supervisor.policy = Supervisor.Speculative;
           crash_rate = rate;
         }
       ())
      .Supervisor.runtime_ns
  in
  Alcotest.(check bool) "crashes cost runtime" true
    (runtime 0.05 > runtime 0.0)

(* Kill-and-resume bit-identity, the central checkpoint property: for
   every kill point, a run killed there and resumed from its last
   checkpoint must produce the same outcome as the uninterrupted run. *)
let test_kill_resume_bit_identity () =
  let ckpt = temp_path ".ckpt" in
  let config =
    {
      base_config with
      Supervisor.policy = Supervisor.Readmit;
      crash_rate = 0.02;
      checkpoint_interval = 2;
      checkpoint_path = Some ckpt;
    }
  in
  let reference = Supervisor.run ~pool ~plan:crashy_plan ~config () in
  cleanup ckpt;
  List.iter
    (fun kill_after ->
      ignore (Supervisor.run ~pool ~plan:crashy_plan ~config ~kill_after ());
      let resumed =
        Supervisor.run ~pool ~plan:crashy_plan ~config ~resume_from:ckpt ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "kill at %d resumes bit-identically" kill_after)
        true
        ({ resumed with Supervisor.resumed_from = 0 }
        = { reference with Supervisor.resumed_from = 0 });
      cleanup ckpt)
    [ 1; 2; 3; 5; 7 ]

let test_resume_from_corrupt_checkpoint_fails_loudly () =
  let ckpt = temp_path ".ckpt" in
  let oc = open_out ckpt in
  output_string oc "ksurf-checkpoint v1\nchecksum 0\nsuperstep banana\n";
  close_out oc;
  (try
     ignore
       (Supervisor.run ~pool
          ~config:{ base_config with Supervisor.checkpoint_path = Some ckpt }
          ~resume_from:ckpt ());
     Alcotest.fail "corrupt checkpoint accepted"
   with Failure _ -> ());
  cleanup ckpt

(* --- liveness watchdog ------------------------------------------------- *)

let test_engine_deadline_converts_hang () =
  let engine = Engine.create ~seed:1 () in
  Engine.spawn engine (fun () ->
      let rec spin () =
        Engine.delay 10.0;
        spin ()
      in
      spin ());
  try
    Engine.run ~deadline:200.0 engine;
    Alcotest.fail "no Hung"
  with Engine.Hung msg ->
    Alcotest.(check bool) "diagnostic" true
      (Test_util.contains ~sub:"Engine hung" msg)

let test_engine_stall_limit () =
  (* A zero-delay ping-pong: every wake reschedules at the same virtual
     time, so time never advances — the livelock the no-progress
     detector exists for. *)
  let engine = Engine.create ~seed:1 () in
  let a = Mailbox.create ~engine ~name:"ping" in
  let b = Mailbox.create ~engine ~name:"pong" in
  Engine.spawn engine (fun () ->
      let rec loop () =
        Mailbox.send b 0;
        ignore (Mailbox.recv a);
        loop ()
      in
      loop ());
  Engine.spawn engine (fun () ->
      let rec loop () =
        ignore (Mailbox.recv b);
        Mailbox.send a 0;
        loop ()
      in
      loop ());
  try
    Engine.run ~stall_limit:64 engine;
    Alcotest.fail "no Hung"
  with Engine.Hung msg ->
    Alcotest.(check bool) "diagnostic" true
      (Test_util.contains ~sub:"Engine hung" msg)

let test_hung_diagnostic_lists_parked () =
  let engine = Engine.create ~seed:1 () in
  let lock = Lock.create ~engine ~name:"wedge" in
  (* Holder terminates without releasing; the waiter parks forever; a
     ticker keeps virtual time marching into the deadline. *)
  Engine.spawn engine (fun () -> Lock.acquire lock);
  Engine.spawn ~at:1.0 engine (fun () -> Lock.acquire lock);
  Engine.spawn ~at:2.0 engine (fun () ->
      let rec tick () =
        Engine.delay 10.0;
        tick ()
      in
      tick ());
  try
    Engine.run ~deadline:150.0 engine;
    Alcotest.fail "no Hung"
  with Engine.Hung msg ->
    Alcotest.(check bool) "lists parked process" true
      (Test_util.contains ~sub:"parked" msg)

let test_disabled_policy_wedge_aborts () =
  (* The hand-constructed hung case of the acceptance criteria: a
     permanent rank crash with recovery disabled wedges the barrier;
     the watchdog must convert the infinite wait into [Engine.Hung]. *)
  try
    ignore
      (Supervisor.run ~pool ~plan:permanent_crash_plan
         ~config:{ base_config with Supervisor.policy = Supervisor.Disabled }
         ());
    Alcotest.fail "wedged run completed"
  with Engine.Hung msg ->
    Alcotest.(check bool) "diagnostic names the wedge" true
      (Test_util.contains ~sub:"Engine hung" msg)

(* --- cluster integration ----------------------------------------------- *)

let tiny_cluster_config =
  {
    Cluster.default_config with
    Cluster.nodes_simulated = 1;
    sim_iterations_per_node = 6;
    warmup_iterations = 1;
    requests_per_iteration = 8;
    iterations = 8;
    units = 2;
    unit_cores = 4;
    unit_mem_mb = 2048;
  }

let tiny_corpus =
  lazy
    (Generator.run
       ~params:{ Generator.default_params with Generator.target_programs = 6 }
       ())
      .Generator.corpus

let cluster_cell ?on_env ?recovery ?plan ?resume_from () =
  let app = Option.get (Apps.by_name "silo") in
  Cluster.run ~app ~kind:Env.Native ~contended:false ~config:tiny_cluster_config
    ~noise_corpus:(Lazy.force tiny_corpus) ?on_env ?recovery ?plan ?resume_from
    ()

(* Satellite regression: a permanent [Rank_crash] during node simulation
   must not contribute partial-iteration samples to the pool — they are
   dropped, counted, and stamp the result degraded. *)
let test_cluster_permanent_crash_drops_samples () =
  let baseline = cluster_cell () in
  let armed = ref None in
  let on_env env =
    armed := Some (Kfault.arm ~env ~plan:permanent_crash_plan ~seed:3 ())
  in
  let r = cluster_cell ~on_env () in
  Option.iter Kfault.disarm !armed;
  Alcotest.(check bool) "crash happened" true (r.Cluster.crashes >= 1);
  Alcotest.(check bool) "samples dropped" true (r.Cluster.samples_dropped > 0);
  Alcotest.(check bool) "stamped degraded" true r.Cluster.degraded;
  Alcotest.(check bool) "pool visibly smaller" true
    (r.Cluster.iteration_samples < baseline.Cluster.iteration_samples);
  Alcotest.(check int) "baseline drops nothing" 0
    baseline.Cluster.samples_dropped

let test_cluster_supervised_run () =
  let recovery =
    { Supervisor.default_config with Supervisor.policy = Supervisor.Readmit }
  in
  let r = cluster_cell ~recovery ~plan:crashy_plan () in
  Alcotest.(check string) "policy stamped" "readmit" r.Cluster.policy;
  Alcotest.(check bool) "positive runtime" true (r.Cluster.runtime_ns > 0.0);
  Alcotest.(check bool) "crash seen" true (r.Cluster.crashes >= 1);
  Alcotest.(check bool) "straggler amplification" true
    (r.Cluster.straggler_factor >= 1.0);
  (* Supervised synthesis is deterministic too. *)
  let r' = cluster_cell ~recovery ~plan:crashy_plan () in
  Alcotest.(check (float 0.0)) "deterministic runtime" r.Cluster.runtime_ns
    r'.Cluster.runtime_ns

let test_cluster_unsupervised_unchanged () =
  let r = cluster_cell () in
  Alcotest.(check string) "no policy" "none" r.Cluster.policy;
  Alcotest.(check int) "full membership"
    tiny_cluster_config.Cluster.nodes_total r.Cluster.survivors

(* --- experiments ------------------------------------------------------- *)

let test_recover_study_and_journal () =
  let p = temp_path ".journal" in
  let journal = Recov_journal.load ~path:p () in
  let t =
    Experiments.Recover.run ~seed:9 ~scale:Experiments.Quick
      ~corpus:(Lazy.force tiny_corpus) ~rates:[ 0.0; 0.02 ] ~journal ()
  in
  Alcotest.(check int) "3 policies x 2 rates" 6
    (List.length t.Experiments.Recover.cells);
  List.iter
    (fun (c : Experiments.Recover.cell) ->
      Alcotest.(check bool) "cell completed" true
        (c.Experiments.Recover.supersteps = t.Experiments.Recover.iterations))
    t.Experiments.Recover.cells;
  (* Crashes must cost runtime for every policy. *)
  List.iter
    (fun policy ->
      match Experiments.Recover.overhead t ~policy with
      | [ (_, base); (_, stressed) ] ->
          Alcotest.(check (float 1e-9)) (policy ^ " baseline") 1.0 base;
          Alcotest.(check bool) (policy ^ " overhead >= 1") true
            (stressed >= 1.0)
      | l -> Alcotest.failf "%s: %d overhead points" policy (List.length l))
    [ "survivors"; "readmit"; "speculative" ];
  (* Second run with the same journal skips every cell. *)
  let t' =
    Experiments.Recover.run ~seed:9 ~scale:Experiments.Quick
      ~corpus:(Lazy.force tiny_corpus) ~rates:[ 0.0; 0.02 ]
      ~journal:(Recov_journal.load ~path:p ()) ()
  in
  Alcotest.(check int) "resume skips all" 0
    (List.length t'.Experiments.Recover.cells);
  cleanup p

let test_recovered_bsp_scenario_clean () =
  let module A = Ksurf_analysis in
  let outcome =
    A.Sanitizer.run ~scenario:A.Scenarios.Recovered_bsp ~seed:42
      ~checks:[ A.Sanitizer.Lockdep; A.Sanitizer.Determinism; A.Sanitizer.Invariants ]
      ()
  in
  Alcotest.(check int) "no findings" 0
    (List.length outcome.A.Sanitizer.findings)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_phi_monotone_in_silence;
    QCheck_alcotest.to_alcotest qcheck_no_dead_under_jitter;
    Alcotest.test_case "detection latency deterministic" `Quick
      test_detection_latency_deterministic;
    Alcotest.test_case "verdict ladder" `Quick test_verdict_ladder;
    Alcotest.test_case "suspect recovers" `Quick test_suspect_recovers;
    Alcotest.test_case "retired rank silent" `Quick
      test_retired_rank_accrues_nothing;
    Alcotest.test_case "detector save/restore" `Quick test_detector_save_restore;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint corruption" `Quick
      test_checkpoint_detects_corruption;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal corrupt lines" `Quick
      test_journal_drops_corrupt_lines;
    Alcotest.test_case "journal foreign file" `Quick
      test_journal_missing_or_foreign_file;
    Alcotest.test_case "write_atomic clean" `Quick
      test_write_atomic_no_partial_file;
    Alcotest.test_case "io failures raise" `Quick
      test_write_failure_raises_io_error;
    Alcotest.test_case "all policies complete crashy" `Quick
      test_all_policies_complete_crashy;
    Alcotest.test_case "survivors degrades" `Quick test_survivors_degrades;
    Alcotest.test_case "readmit restores membership" `Quick
      test_readmit_restores_membership;
    Alcotest.test_case "speculative backups" `Quick
      test_speculative_launches_backups;
    Alcotest.test_case "outcome deterministic" `Quick test_outcome_deterministic;
    Alcotest.test_case "crash rate costs runtime" `Quick
      test_crash_rate_costs_runtime;
    Alcotest.test_case "kill/resume bit-identity" `Quick
      test_kill_resume_bit_identity;
    Alcotest.test_case "corrupt checkpoint fails loudly" `Quick
      test_resume_from_corrupt_checkpoint_fails_loudly;
    Alcotest.test_case "deadline converts hang" `Quick
      test_engine_deadline_converts_hang;
    Alcotest.test_case "stall limit" `Quick test_engine_stall_limit;
    Alcotest.test_case "hung diagnostic lists parked" `Quick
      test_hung_diagnostic_lists_parked;
    Alcotest.test_case "disabled policy wedge aborts" `Quick
      test_disabled_policy_wedge_aborts;
    Alcotest.test_case "cluster crash drops samples" `Quick
      test_cluster_permanent_crash_drops_samples;
    Alcotest.test_case "cluster supervised run" `Quick
      test_cluster_supervised_run;
    Alcotest.test_case "cluster unsupervised unchanged" `Quick
      test_cluster_unsupervised_unchanged;
    Alcotest.test_case "recover study + journal" `Slow
      test_recover_study_and_journal;
    Alcotest.test_case "recovered-bsp scenario clean" `Slow
      test_recovered_bsp_scenario_clean;
  ]
