open Ksurf
module Plan = Fault_plan
module Determinism = Ksurf_analysis.Determinism
module Sanitizer = Ksurf_analysis.Sanitizer
module Scenarios = Ksurf_analysis.Scenarios

let tiny_corpus =
  lazy
    (Generator.run
       ~params:
         { Generator.default_params with Generator.seed = 9; target_programs = 6 }
       ())
      .Generator.corpus

let deploy ?(kind = Env.Native) ?(units = 2) ~seed () =
  let engine = Engine.create ~seed () in
  let env = Env.deploy ~engine kind (Partition.table1 units) in
  (engine, env)

let small_params = { Harness.iterations = 3; warmup_iterations = 1 }

(* --- plan language ----------------------------------------------------- *)

let test_presets_parse () =
  List.iter
    (fun (name, plan) ->
      Alcotest.(check bool)
        (name ^ " non-empty") true
        (plan.Plan.actions <> []))
    Plan.presets;
  Alcotest.(check bool) "unknown preset" true (Plan.preset "nope" = None)

let test_plan_roundtrip () =
  List.iter
    (fun (name, plan) ->
      match Plan.of_string (Plan.to_string plan) with
      | Error e -> Alcotest.failf "%s does not round-trip: %s" name e
      | Ok plan' ->
          Alcotest.(check bool) (name ^ " round-trips") true (plan = plan'))
    Plan.presets

let test_plan_parse_errors () =
  (match Plan.of_string "not-a-keyword 1 2 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted");
  match Plan.of_string "# only comments\n\n" with
  | Ok p -> Alcotest.(check bool) "empty plan" true (p.Plan.actions = [])
  | Error e -> Alcotest.failf "comments rejected: %s" e

let test_scale () =
  let mixed = Option.get (Plan.preset "mixed") in
  Alcotest.(check bool) "zero dose injects nothing" true
    ((Plan.scale 0.0 mixed).Plan.actions = []);
  let doubled = Plan.scale 2.0 mixed in
  Alcotest.(check bool) "doubling keeps every action" true
    (List.length doubled.Plan.actions = List.length mixed.Plan.actions);
  List.iter
    (fun a ->
      match a with
      | Plan.Syscall_failures { rates; _ } ->
          List.iter
            (fun (_, r) ->
              Alcotest.(check bool) "rates stay probabilities" true
                (r >= 0.0 && r <= 1.0))
            rates
      | _ -> ())
    (Plan.scale 100.0 mixed).Plan.actions;
  Alcotest.(check bool) "negative dose rejected" true
    (try
       ignore (Plan.scale (-1.0) mixed);
       false
     with Invalid_argument _ -> true)

(* --- injection mechanics ----------------------------------------------- *)

let faulted_run ~seed ~plan ?(kind = Env.Native) ?straggler_timeout_ns
    ?(probe = fun _ -> ()) () =
  let engine, env = deploy ~kind ~seed () in
  Engine.add_probe engine probe;
  let kf = Kfault.arm ~env ~plan ~seed () in
  let result =
    Harness.run ~env
      ~corpus:(Lazy.force tiny_corpus)
      ~params:small_params ?straggler_timeout_ns ()
  in
  Kfault.disarm kf;
  (result, kf)

let test_injections_fire_and_are_probed () =
  let injected = ref 0 in
  let _, kf =
    faulted_run ~seed:5
      ~plan:(Option.get (Plan.preset "mixed"))
      ~probe:(function Engine.Injected _ -> incr injected | _ -> ())
      ()
  in
  Alcotest.(check bool) "counters ticked" true (Kfault.total_injections kf > 0);
  (* Every firing must be visible to ksan through the probe stream. *)
  Alcotest.(check int) "probe saw every injection"
    (Kfault.total_injections kf) !injected

let test_syscall_faults_retried () =
  let result, kf =
    faulted_run ~seed:6 ~plan:(Option.get (Plan.preset "syscalls")) ()
  in
  Alcotest.(check bool) "faults injected" true
    ((Kfault.stats kf).Kfault.syscall_faults > 0);
  Alcotest.(check bool) "harness retried them" true
    (result.Harness.transient_retries > 0);
  Alcotest.(check bool) "run not degraded by transients" false
    result.Harness.degraded

let test_disarm_restores_stock () =
  let plan = Option.get (Plan.preset "mixed") in
  let baseline () =
    let engine, env = deploy ~seed:7 () in
    ignore engine;
    let kf = Kfault.arm ~env ~plan ~seed:7 () in
    Kfault.disarm kf;
    (* Armed-then-disarmed before running: stock behaviour, so a fresh
       faulted run and a never-armed run must inject nothing alike. *)
    let result =
      Harness.run ~env ~corpus:(Lazy.force tiny_corpus) ~params:small_params ()
    in
    (result.Harness.transient_retries, Kfault.total_injections kf)
  in
  let retries, injections = baseline () in
  Alcotest.(check int) "no retries after disarm" 0 retries;
  Alcotest.(check int) "no injections after disarm" 0 injections

(* --- harness robustness ------------------------------------------------ *)

let test_varbench_crash_degrades () =
  let result, _ =
    faulted_run ~seed:8 ~plan:(Option.get (Plan.preset "crashy")) ()
  in
  Alcotest.(check bool) "degraded" true result.Harness.degraded;
  Alcotest.(check int) "one rank lost"
    (result.Harness.ranks - 1)
    result.Harness.survivors;
  Alcotest.(check bool) "crashed rank recorded" true
    (result.Harness.dropped_ranks = [ 1 ]);
  (* Survivors kept collecting samples after the barrier shrank. *)
  Alcotest.(check bool) "survivors finished" true
    (Harness.total_invocations result > 0)

let test_straggler_timeout_no_false_positives () =
  (* A healthy faulted run with a watchdog armed: nobody stalls, so
     nobody may be dropped. *)
  let result, _ =
    faulted_run ~seed:9
      ~plan:(Option.get (Plan.preset "storms"))
      ~straggler_timeout_ns:1e6 ()
  in
  Alcotest.(check bool) "no spurious drops" false result.Harness.degraded

let test_straggler_timeout_validated () =
  let _, env = deploy ~seed:10 () in
  Alcotest.(check bool) "non-positive timeout rejected" true
    (try
       ignore
         (Harness.run ~env
            ~corpus:(Lazy.force tiny_corpus)
            ~params:small_params ~straggler_timeout_ns:0.0 ());
       false
     with Invalid_argument _ -> true)

let tail_config =
  {
    Runner.default_config with
    Runner.requests = 120;
    seed = 3;
    units = 2;
    unit_cores = 4;
    unit_mem_mb = 2048;
  }

let tail_run ~plan () =
  let app = Option.get (Apps.by_name "silo") in
  Runner.run_single_node ~app ~kind:Env.Native ~contended:false
    ~config:tail_config
    ~on_env:(fun env ->
      ignore (Kfault.arm ~env ~plan ~seed:tail_config.Runner.seed () : Kfault.t))
    ()

let test_tailbench_crash_restart () =
  let result = tail_run ~plan:(Option.get (Plan.preset "crashy")) () in
  Alcotest.(check int) "one crash" 1 result.Runner.crashes;
  Alcotest.(check int) "worker came back" 1 result.Runner.restarts;
  Alcotest.(check bool) "restart means not degraded" false
    result.Runner.degraded;
  Alcotest.(check bool) "requests still served" true (result.Runner.count > 0)

let test_tailbench_permanent_crash () =
  let crash =
    {
      Plan.name = "perma";
      actions =
        [ Plan.Rank_crash { rank = 0; at_ns = 1e6; restart_after_ns = None } ];
    }
  in
  let result = tail_run ~plan:crash () in
  Alcotest.(check bool) "degraded" true result.Runner.degraded;
  Alcotest.(check int) "one survivor fewer"
    (tail_config.Runner.unit_cores - 1)
    result.Runner.survivors;
  Alcotest.(check bool) "survivors kept serving" true (result.Runner.count > 0)

(* --- determinism under injection --------------------------------------- *)

let test_faulted_run_replays_bit_identically () =
  let plan = Option.get (Plan.preset "crashy") in
  let result =
    Determinism.check
      ~run:(fun ~probe ->
        ignore (faulted_run ~seed:11 ~plan ~probe () : Harness.result * Kfault.t))
      ()
  in
  Alcotest.(check bool) "events observed" true (result.Determinism.events_first > 0);
  Alcotest.(check bool) "hashes equal" true (Determinism.deterministic result)

let test_different_seed_differs () =
  let plan = Option.get (Plan.preset "mixed") in
  let hash seed =
    let h = ref 0 in
    let _ =
      faulted_run ~seed ~plan
        ~probe:(fun info ->
          h :=
            Stable_hash.combine !h
              (Stable_hash.string (Determinism.describe info).Determinism.key))
        ()
    in
    !h
  in
  Alcotest.(check bool) "seed changes the injection stream" true
    (hash 1 <> hash 2)

let test_faulted_scenarios_clean () =
  List.iter
    (fun scenario ->
      let outcome =
        Sanitizer.run ~scenario ~seed:13 ~checks:Sanitizer.all_checks ()
      in
      Alcotest.(check (list string))
        (Scenarios.to_string scenario ^ " clean")
        []
        (List.map
           (fun f -> Format.asprintf "%a" Ksurf_analysis.Finding.pp f)
           outcome.Sanitizer.findings))
    [ Scenarios.Faulted_varbench; Scenarios.Faulted_tailbench ]

(* --- dose-response ----------------------------------------------------- *)

let test_dose_response_directional () =
  let t =
    Experiments.Dose.run ~seed:42 ~scale:Experiments.Quick
      ~intensities:[ 0.0; 2.0 ] ()
  in
  let top env =
    match Experiments.Dose.degradation t ~env with
    | [ (_, base); (_, top) ] ->
        Alcotest.(check (float 1e-9)) (env ^ " baseline ratio") 1.0 base;
        top
    | _ -> Alcotest.failf "unexpected curve shape for %s" env
  in
  let native = top "native" and kvm = top "kvm-64" in
  Alcotest.(check bool) "faults degrade native p99" true (native > 1.0);
  (* The paper's partitioning claim under stress: the shared kernel
     amplifies injected contention, the partitioned one absorbs it. *)
  Alcotest.(check bool) "native degrades faster than kvm-64" true
    (native > kvm)

let suite =
  [
    Alcotest.test_case "presets parse" `Quick test_presets_parse;
    Alcotest.test_case "plan roundtrip" `Quick test_plan_roundtrip;
    Alcotest.test_case "plan parse errors" `Quick test_plan_parse_errors;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "injections probed" `Quick
      test_injections_fire_and_are_probed;
    Alcotest.test_case "syscall faults retried" `Quick
      test_syscall_faults_retried;
    Alcotest.test_case "disarm restores stock" `Quick test_disarm_restores_stock;
    Alcotest.test_case "varbench crash degrades" `Quick
      test_varbench_crash_degrades;
    Alcotest.test_case "straggler no false positives" `Quick
      test_straggler_timeout_no_false_positives;
    Alcotest.test_case "straggler timeout validated" `Quick
      test_straggler_timeout_validated;
    Alcotest.test_case "tailbench crash restart" `Quick
      test_tailbench_crash_restart;
    Alcotest.test_case "tailbench permanent crash" `Quick
      test_tailbench_permanent_crash;
    Alcotest.test_case "faulted replay identical" `Quick
      test_faulted_run_replays_bit_identically;
    Alcotest.test_case "seed changes stream" `Quick test_different_seed_differs;
    Alcotest.test_case "faulted scenarios clean" `Slow
      test_faulted_scenarios_clean;
    Alcotest.test_case "dose response directional" `Slow
      test_dose_response_directional;
  ]
