open Ksurf

let test_capacity_parallelism () =
  let engine = Engine.create () in
  let r = Resource.create ~engine ~name:"r" ~capacity:2 in
  let last = ref nan in
  for _ = 1 to 4 do
    Engine.spawn engine (fun () ->
        Resource.serve r 10.0;
        last := Engine.now engine)
  done;
  Engine.run engine;
  (* 4 jobs, 2 at a time, 10 each: finishes at 20. *)
  Alcotest.(check (float 1e-9)) "two waves" 20.0 !last

let test_capacity_one_is_lock () =
  let engine = Engine.create () in
  let r = Resource.create ~engine ~name:"r" ~capacity:1 in
  let last = ref nan in
  for _ = 1 to 3 do
    Engine.spawn engine (fun () ->
        Resource.serve r 5.0;
        last := Engine.now engine)
  done;
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "fully serialised" 15.0 !last

let test_invalid_capacity () =
  let engine = Engine.create () in
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore (Resource.create ~engine ~name:"r" ~capacity:0);
       false
     with Invalid_argument _ -> true)

let test_in_use_tracking () =
  let engine = Engine.create () in
  let r = Resource.create ~engine ~name:"r" ~capacity:3 in
  Engine.spawn engine (fun () ->
      Resource.acquire r;
      Alcotest.(check int) "one in use" 1 (Resource.in_use r);
      Resource.acquire r;
      Alcotest.(check int) "two in use" 2 (Resource.in_use r);
      Resource.release r;
      Resource.release r;
      Alcotest.(check int) "idle" 0 (Resource.in_use r));
  Engine.run engine

let test_release_idle_fails () =
  let engine = Engine.create () in
  let r = Resource.create ~engine ~name:"r" ~capacity:1 in
  Engine.spawn engine (fun () -> Resource.release r);
  Alcotest.(check bool) "raises, naming the station" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Invalid_argument msg) ->
       Test_util.contains ~sub:"r" msg)

let test_served_counter () =
  let engine = Engine.create () in
  let r = Resource.create ~engine ~name:"r" ~capacity:2 in
  for _ = 1 to 5 do
    Engine.spawn engine (fun () -> Resource.serve r 1.0)
  done;
  Engine.run engine;
  Alcotest.(check int) "served" 5 (Resource.served r)

let qcheck_makespan =
  QCheck.Test.make ~name:"makespan = ceil(jobs/capacity) * service" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 30))
    (fun (capacity, jobs) ->
      let engine = Engine.create () in
      let r = Resource.create ~engine ~name:"m" ~capacity in
      let last = ref 0.0 in
      for _ = 1 to jobs do
        Engine.spawn engine (fun () ->
            Resource.serve r 7.0;
            last := Engine.now engine)
      done;
      Engine.run engine;
      let waves = (jobs + capacity - 1) / capacity in
      Float.abs (!last -. (float_of_int waves *. 7.0)) < 1e-6)

let suite =
  [
    Alcotest.test_case "capacity parallelism" `Quick test_capacity_parallelism;
    Alcotest.test_case "capacity one" `Quick test_capacity_one_is_lock;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
    Alcotest.test_case "in_use tracking" `Quick test_in_use_tracking;
    Alcotest.test_case "release idle" `Quick test_release_idle_fails;
    Alcotest.test_case "served counter" `Quick test_served_counter;
    QCheck_alcotest.to_alcotest qcheck_makespan;
  ]
