open Ksurf

let test_table_size () =
  Alcotest.(check bool) "at least 150 modeled calls" true (Syscalls.count >= 150)

let test_names_unique () =
  let names = Syscalls.names () in
  Alcotest.(check int) "no duplicates" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_lookup_by_name () =
  (match Syscalls.by_name "read" with
  | Some s ->
      Alcotest.(check int) "read is syscall 0" 0 s.Spec.number;
      Alcotest.(check bool) "file-io" true (Spec.in_category s Category.File_io)
  | None -> Alcotest.fail "read missing");
  Alcotest.(check bool) "unknown" true (Syscalls.by_name "frobnicate" = None)

let test_lookup_by_number () =
  match Syscalls.by_number 57 with
  | Some s -> Alcotest.(check string) "fork" "fork" s.Spec.name
  | None -> Alcotest.fail "fork missing"

let test_every_category_populated () =
  List.iter
    (fun cat ->
      let n = List.length (Syscalls.in_category cat) in
      if n < 10 then
        Alcotest.failf "category %s has only %d calls"
          (Category.to_string cat) n)
    Category.all

let test_dual_category_chmod () =
  (* The paper's example: chmod is both fs-mgmt and permission. *)
  match Syscalls.by_name "chmod" with
  | Some s ->
      Alcotest.(check bool) "fs-mgmt" true (Spec.in_category s Category.Fs_mgmt);
      Alcotest.(check bool) "perm" true (Spec.in_category s Category.Perm)
  | None -> Alcotest.fail "chmod missing"

let test_every_spec_produces_ops () =
  let rng = Prng.create 99 in
  Array.iter
    (fun (s : Spec.t) ->
      for _ = 1 to 5 do
        let arg = Arg.generate s.Spec.arg_model rng in
        let ops = s.Spec.ops arg in
        if ops = [] then Alcotest.failf "%s: empty op program" s.Spec.name;
        if Ops.total_fixed_cost ops < 0.0 then
          Alcotest.failf "%s: negative fixed cost" s.Spec.name
      done)
    Syscalls.all

let test_spec_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty name rejected" true
    (raises (fun () ->
         ignore
           (Spec.make ~name:"" ~number:1 ~categories:[ Category.Ipc ]
              ~doc:"x" (fun _ -> []))));
  Alcotest.(check bool) "no categories rejected" true
    (raises (fun () ->
         ignore (Spec.make ~name:"x" ~number:1 ~categories:[] ~doc:"x" (fun _ -> []))))

let test_size_sensitivity () =
  (* read's op program grows with the transfer size. *)
  let read = Option.get (Syscalls.by_name "read") in
  let cost size =
    Ops.total_fixed_cost (read.Spec.ops { Arg.size; obj = 0; flags = 0 })
  in
  Alcotest.(check bool) "1MB costs more than 64B" true (cost (1 lsl 20) > cost 64)

let test_mm_calls_shootdown () =
  (* munmap must invalidate TLBs; getpid must not. *)
  let has_shootdown name =
    let s = Option.get (Syscalls.by_name name) in
    List.exists
      (function Ops.Tlb_shootdown -> true | _ -> false)
      (s.Spec.ops Arg.default)
  in
  Alcotest.(check bool) "munmap shoots down" true (has_shootdown "munmap");
  Alcotest.(check bool) "getpid does not" false (has_shootdown "getpid")

let qcheck_arg_roundtrip =
  QCheck.Test.make ~name:"arg to/of string roundtrip" ~count:300
    QCheck.(triple small_nat small_nat small_nat)
    (fun (size, obj, flags) ->
      let arg = { Arg.size; obj; flags } in
      Arg.of_string (Arg.to_string arg) = Some arg)

let test_arg_of_string_malformed () =
  Alcotest.(check bool) "garbage" true (Arg.of_string "garbage" = None);
  Alcotest.(check bool) "too few" true (Arg.of_string "1:2" = None);
  Alcotest.(check bool) "non-numeric" true (Arg.of_string "a:b:c" = None)

let qcheck_generate_within_model =
  QCheck.Test.make ~name:"generated args within model" ~count:300
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let model = Arg.io in
      let arg = Arg.generate model rng in
      Array.exists (fun s -> s = arg.Arg.size) model.Arg.sizes
      && arg.Arg.obj >= 0
      && arg.Arg.obj < model.Arg.max_obj
      && arg.Arg.flags >= 0
      && arg.Arg.flags < model.Arg.max_flags)

let test_size_bucket_monotone () =
  let prev = ref (-1) in
  List.iter
    (fun size ->
      let b = Arg.size_bucket size in
      if b < !prev then Alcotest.failf "bucket not monotone at %d" size;
      prev := b)
    [ 0; 1; 64; 4096; 65536; 1 lsl 20; 1 lsl 26 ];
  Alcotest.(check int) "zero size is bucket 0" 0 (Arg.size_bucket 0);
  Alcotest.(check bool) "4K and 1M differ" true
    (Arg.size_bucket 4096 <> Arg.size_bucket (1 lsl 20))

(* Eager table validation: malformed tables must die at build time
   with a message naming the offending entry, not surface later as a
   silently shadowed Hashtbl binding. *)
let test_table_validation () =
  let dummy ?(name = "zz_ctl") ?(number = 9990) () =
    Spec.make ~name ~number ~categories:[ Category.Ipc ] ~doc:"control"
      (fun _ -> [ Ops.Cpu 10.0 ])
  in
  let module Table = Ksurf_syscalls.Table in
  Alcotest.(check int) "a valid list passes through" 2
    (List.length (Table.validate [ dummy (); dummy ~name:"zz_two" ~number:9991 () ]));
  let expect_invalid label ~mentions specs =
    match Table.validate specs with
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s message mentions %s" label mentions)
          true
          (Test_util.contains ~sub:mentions msg)
    | _ -> Alcotest.failf "%s was accepted" label
  in
  expect_invalid "duplicate name" ~mentions:"zz_ctl"
    [ dummy (); dummy ~number:9991 () ];
  expect_invalid "duplicate number" ~mentions:"9990"
    [ dummy (); dummy ~name:"zz_two" () ];
  expect_invalid "empty categories" ~mentions:"zz_ctl"
    [ { (dummy ()) with Spec.categories = [] } ]

let test_duplicate_number_index () =
  (* Syscalls.all is built from the validated table, so the duplicate
     check in the number index is a backstop; assert the table itself
     carries unique numbers. *)
  let numbers =
    Array.to_list Syscalls.all |> List.map (fun s -> s.Spec.number)
  in
  Alcotest.(check int) "numbers unique" (List.length numbers)
    (List.length (List.sort_uniq Int.compare numbers))

let suite =
  [
    Alcotest.test_case "table size" `Quick test_table_size;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "numbers unique" `Quick test_duplicate_number_index;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "by_name" `Quick test_lookup_by_name;
    Alcotest.test_case "by_number" `Quick test_lookup_by_number;
    Alcotest.test_case "every category populated" `Quick
      test_every_category_populated;
    Alcotest.test_case "chmod dual category" `Quick test_dual_category_chmod;
    Alcotest.test_case "every spec produces ops" `Quick
      test_every_spec_produces_ops;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "size sensitivity" `Quick test_size_sensitivity;
    Alcotest.test_case "mm calls shoot down" `Quick test_mm_calls_shootdown;
    Alcotest.test_case "malformed arg strings" `Quick test_arg_of_string_malformed;
    Alcotest.test_case "size bucket monotone" `Quick test_size_bucket_monotone;
    QCheck_alcotest.to_alcotest qcheck_arg_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_generate_within_model;
  ]

let test_ops_pp () =
  List.iter
    (fun (op, expect) ->
      Alcotest.(check string) "pp" expect (Format.asprintf "%a" Ops.pp_op op))
    [
      (Ops.Cpu 100.0, "cpu(100ns)");
      (Ops.Lock (Ops.Journal, Dist.constant 1.0), "lock(journal)");
      (Ops.Tlb_shootdown, "tlb_shootdown");
      (Ops.Block_io { bytes = 64; write = true }, "block_write(64B)");
      (Ops.Page_alloc 2, "page_alloc(order=2)");
    ]

let test_global_lock_refs () =
  Alcotest.(check bool) "journal is global" true
    (List.mem Ops.Journal Ops.global_lock_refs);
  Alcotest.(check bool) "runqueue is not" false
    (List.mem Ops.Runqueue Ops.global_lock_refs)

let test_spec_pp () =
  let s = Option.get (Syscalls.by_name "chmod") in
  let rendered = Format.asprintf "%a" Spec.pp s in
  Alcotest.(check bool) "mentions both categories" true
    (String.length rendered > 0
    &&
    let has sub =
      let n = String.length sub and l = String.length rendered in
      let rec go i = i + n <= l && (String.sub rendered i n = sub || go (i + 1)) in
      go 0
    in
    has "fs-mgmt" && has "perm")

let suite =
  suite
  @ [
      Alcotest.test_case "ops pp" `Quick test_ops_pp;
      Alcotest.test_case "global lock refs" `Quick test_global_lock_refs;
      Alcotest.test_case "spec pp" `Quick test_spec_pp;
    ]
