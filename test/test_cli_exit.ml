(* CLI exit-code discipline: 0 success, 1 findings, 2 bad arguments,
   3 I/O failure.  Every subcommand that touches the filesystem must
   map file-system trouble to exit 3 through the one shared handler —
   pointing output at a path under /dev/null fails fast in
   Fileio.ensure_dir, so these spawns stay cheap even for commands
   whose happy path is a long sweep. *)

let cli = Filename.concat (Filename.concat ".." "bin") "ksurf_cli.exe"

let run args =
  let null = " >/dev/null 2>/dev/null" in
  (* Other suites in this process putenv KSURF_JOBS to junk on purpose;
     children would inherit it and die in cmdliner's env parsing. *)
  Sys.command
    ("unset KSURF_JOBS; exec " ^ Filename.quote cli ^ " " ^ args ^ null)

let check_exit name expected args =
  Alcotest.(check int) name expected (run args)

let test_io_failure_exits_3 () =
  List.iter
    (fun (name, args) -> check_exit name 3 args)
    [
      ("gen-corpus -o", "gen-corpus -o /dev/null/x/corpus");
      ("analyze --csv", "analyze --csv /dev/null/x/findings.csv");
      ("staticcheck --csv", "staticcheck --locks --csv /dev/null/x");
      ("dose --journal", "dose --journal /dev/null/x/sweep.journal");
      ("recover --journal", "recover --journal /dev/null/x/sweep.journal");
      ("tenancy --journal", "tenancy --journal /dev/null/x/sweep.journal");
      ("drift --journal", "drift --journal /dev/null/x/sweep.journal");
      ( "torture --export",
        "torture --dose 0 --path export --export /dev/null/x" );
      ( "specialize --journal",
        "specialize --journal /dev/null/x/sweep.journal" );
    ]

let test_bad_args_exit_2 () =
  List.iter
    (fun (name, args) -> check_exit name 2 args)
    [
      ("torture bad path", "torture --path bogus");
      ("analyze bad scenario", "analyze --scenario bogus");
      ("drift bad policy", "drift --policy bogus --dose 0");
    ]

let test_success_exits_0 () =
  check_exit "torture control cell" 0 "torture --dose 0 --path export"

let suite =
  [
    Alcotest.test_case "io failures exit 3" `Quick test_io_failure_exits_3;
    Alcotest.test_case "bad arguments exit 2" `Quick test_bad_args_exit_2;
    Alcotest.test_case "success exits 0" `Quick test_success_exits_0;
  ]
