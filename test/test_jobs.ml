(* Worker-count precedence (satellite of ktenant): an explicit --jobs
   always beats KSURF_JOBS, which beats the machine default.  Both
   ksurf_cli (via with_pool) and bench/main.exe route their parsed
   --jobs value through Pool.resolve_jobs, so this pins the order for
   both binaries. *)

let with_env value f =
  let old = Sys.getenv_opt "KSURF_JOBS" in
  Unix.putenv "KSURF_JOBS" value;
  Fun.protect
    ~finally:(fun () ->
      (* putenv cannot unset; an empty value parses as invalid and
         falls back, which is what an absent variable does too. *)
      Unix.putenv "KSURF_JOBS" (Option.value old ~default:""))
    f

let test_cli_beats_env () =
  with_env "7" (fun () ->
      Alcotest.(check int) "explicit flag wins" 3
        (Ksurf.Pool.resolve_jobs ~cli:3 ()))

let test_env_beats_default () =
  with_env "5" (fun () ->
      Alcotest.(check int) "env honoured without a flag" 5
        (Ksurf.Pool.resolve_jobs ()))

let test_invalid_env_falls_back () =
  with_env "not-a-number" (fun () ->
      let expected = max 1 (Domain.recommended_domain_count () - 1) in
      Alcotest.(check int) "garbage env ignored" expected
        (Ksurf.Pool.resolve_jobs ()))

let test_cli_clamped () =
  with_env "5" (fun () ->
      Alcotest.(check int) "nonpositive flag clamps to 1" 1
        (Ksurf.Pool.resolve_jobs ~cli:0 ()))

let suite =
  [
    Alcotest.test_case "cli beats env" `Quick test_cli_beats_env;
    Alcotest.test_case "env beats default" `Quick test_env_beats_default;
    Alcotest.test_case "invalid env falls back" `Quick test_invalid_env_falls_back;
    Alcotest.test_case "cli clamped" `Quick test_cli_clamped;
  ]
