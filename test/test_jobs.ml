(* Worker-count precedence (satellite of ktenant): an explicit --jobs
   always beats KSURF_JOBS, which beats the machine default.  Both
   ksurf_cli (via with_pool) and bench/main.exe route their parsed
   --jobs value through Pool.resolve_jobs, so this pins the order for
   both binaries. *)

let with_env value f =
  let old = Sys.getenv_opt "KSURF_JOBS" in
  Unix.putenv "KSURF_JOBS" value;
  Fun.protect
    ~finally:(fun () ->
      (* putenv cannot unset; an empty value parses as invalid and
         falls back, which is what an absent variable does too. *)
      Unix.putenv "KSURF_JOBS" (Option.value old ~default:""))
    f

let test_cli_beats_env () =
  with_env "7" (fun () ->
      Alcotest.(check int) "explicit flag wins" 3
        (Ksurf.Pool.resolve_jobs ~cli:3 ()))

let test_env_beats_default () =
  with_env "5" (fun () ->
      Alcotest.(check int) "env honoured without a flag" 5
        (Ksurf.Pool.resolve_jobs ()))

let test_invalid_env_falls_back () =
  with_env "not-a-number" (fun () ->
      let expected = max 1 (Domain.recommended_domain_count () - 1) in
      Alcotest.(check int) "garbage env ignored" expected
        (Ksurf.Pool.resolve_jobs ()))

(* Capture everything written to stderr while [f] runs.  Flushes and
   swaps the underlying fd, so it sees Printf.eprintf output from any
   code path (the warning prints and flushes before the swap back). *)
let capture_stderr f =
  let tmp = Filename.temp_file "ksurf-jobs" ".stderr" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      flush stderr;
      let saved = Unix.dup Unix.stderr in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      Unix.dup2 fd Unix.stderr;
      Unix.close fd;
      let restore () =
        flush stderr;
        Unix.dup2 saved Unix.stderr;
        Unix.close saved
      in
      let result = try Ok (f ()) with e -> Error e in
      restore ();
      let ic = open_in_bin tmp in
      let captured =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match result with
      | Ok v -> (v, captured)
      | Error e -> raise e)

let test_invalid_env_warns () =
  with_env "eight" (fun () ->
      let jobs, err = capture_stderr (fun () -> Ksurf.Pool.resolve_jobs ()) in
      let expected = max 1 (Domain.recommended_domain_count () - 1) in
      Alcotest.(check int) "still falls back" expected jobs;
      Alcotest.(check bool) "warning names the variable" true
        (Test_util.contains ~sub:"invalid KSURF_JOBS=\"eight\"" err);
      Alcotest.(check bool) "warning names the fallback" true
        (Test_util.contains ~sub:(Printf.sprintf "using %d" expected) err));
  (* An explicit --jobs short-circuits the env read entirely: no
     warning even with garbage in the environment. *)
  with_env "eight" (fun () ->
      let jobs, err = capture_stderr (fun () -> Ksurf.Pool.resolve_jobs ~cli:2 ()) in
      Alcotest.(check int) "cli wins" 2 jobs;
      Alcotest.(check string) "silent" "" err);
  (* Empty string means "unset" (putenv cannot remove): silent fallback. *)
  with_env "" (fun () ->
      let _, err = capture_stderr (fun () -> Ksurf.Pool.resolve_jobs ()) in
      Alcotest.(check string) "empty is silent" "" err)

let test_cli_clamped () =
  with_env "5" (fun () ->
      Alcotest.(check int) "nonpositive flag clamps to 1" 1
        (Ksurf.Pool.resolve_jobs ~cli:0 ()))

let suite =
  [
    Alcotest.test_case "cli beats env" `Quick test_cli_beats_env;
    Alcotest.test_case "env beats default" `Quick test_env_beats_default;
    Alcotest.test_case "invalid env falls back" `Quick test_invalid_env_falls_back;
    Alcotest.test_case "invalid env warns on stderr" `Quick
      test_invalid_env_warns;
    Alcotest.test_case "cli clamped" `Quick test_cli_clamped;
  ]
