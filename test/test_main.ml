let () =
  Alcotest.run "ksurf"
    [
      ("prng", Test_prng.suite);
      ("dist", Test_dist.suite);
      ("welford", Test_welford.suite);
      ("stable-hash", Test_stable_hash.suite);
      ("quantile", Test_quantile.suite);
      ("buckets", Test_buckets.suite);
      ("p2-quantile", Test_p2_quantile.suite);
      ("histogram", Test_histogram.suite);
      ("kde", Test_kde.suite);
      ("violin", Test_violin.suite);
      ("heap", Test_heap.suite);
      ("engine", Test_engine.suite);
      ("lock", Test_lock.suite);
      ("rwlock", Test_rwlock.suite);
      ("resource", Test_resource.suite);
      ("barrier", Test_barrier.suite);
      ("mailbox", Test_mailbox.suite);
      ("sim-properties", Test_sim_properties.suite);
      ("trace", Test_trace.suite);
      ("kernel", Test_kernel.suite);
      ("kernel-properties", Test_kernel_properties.suite);
      ("syscalls", Test_syscalls.suite);
      ("syzgen", Test_syzgen.suite);
      ("virt", Test_virt.suite);
      ("env", Test_env.suite);
      ("varbench", Test_varbench.suite);
      ("tailbench", Test_tailbench.suite);
      ("cluster", Test_cluster.suite);
      ("fault", Test_fault.suite);
      ("lockdep", Test_lockdep.suite);
      ("analysis", Test_analysis.suite);
      ("report", Test_report.suite);
      ("experiments", Test_experiments.suite);
      ("export", Test_export.suite);
    ]
