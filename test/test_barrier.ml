open Ksurf

let test_release_together () =
  let engine = Engine.create () in
  let barrier = Barrier.create ~engine ~name:"b" ~parties:3 in
  let times = ref [] in
  List.iter
    (fun start ->
      Engine.spawn ~at:start engine (fun () ->
          Barrier.arrive barrier;
          times := Engine.now engine :: !times))
    [ 5.0; 15.0; 30.0 ];
  Engine.run engine;
  List.iter
    (fun t -> Alcotest.(check (float 1e-9)) "released at last arrival" 30.0 t)
    !times

let test_reusable_generations () =
  let engine = Engine.create () in
  let barrier = Barrier.create ~engine ~name:"b" ~parties:2 in
  let log = ref [] in
  for p = 0 to 1 do
    Engine.spawn engine (fun () ->
        for round = 1 to 3 do
          Engine.delay (float_of_int ((p * 7) + round));
          Barrier.arrive barrier;
          log := (round, p, Engine.now engine) :: !log
        done)
  done;
  Engine.run engine;
  Alcotest.(check int) "3 generations" 3 (Barrier.generation barrier);
  (* Within a round both parties resume at the same instant. *)
  List.iter
    (fun round ->
      let times =
        List.filter_map
          (fun (r, _, t) -> if r = round then Some t else None)
          !log
      in
      match times with
      | [ a; b ] -> Alcotest.(check (float 1e-9)) "synchronous" a b
      | _ -> Alcotest.fail "wrong party count")
    [ 1; 2; 3 ]

let test_single_party () =
  let engine = Engine.create () in
  let barrier = Barrier.create ~engine ~name:"b" ~parties:1 in
  let passed = ref false in
  Engine.spawn engine (fun () ->
      Barrier.arrive barrier;
      passed := true);
  Engine.run engine;
  Alcotest.(check bool) "no deadlock with one party" true !passed

let test_arrive_with_cost () =
  let engine = Engine.create () in
  let barrier = Barrier.create ~engine ~name:"b" ~parties:4 in
  let finish = ref nan in
  for _ = 1 to 4 do
    Engine.spawn engine (fun () ->
        Barrier.arrive_with_cost barrier ~per_party_cost:10.0;
        finish := Engine.now engine)
  done;
  Engine.run engine;
  (* log2(4) = 2 rounds at 10 each. *)
  Alcotest.(check (float 1e-9)) "dissemination cost" 20.0 !finish

let test_invalid_parties () =
  let engine = Engine.create () in
  Alcotest.(check bool) "0 parties rejected" true
    (try
       ignore (Barrier.create ~engine ~name:"b" ~parties:0);
       false
     with Invalid_argument _ -> true)

let test_waiting_count () =
  let engine = Engine.create () in
  let barrier = Barrier.create ~engine ~name:"b" ~parties:3 in
  Engine.spawn engine (fun () -> Barrier.arrive barrier);
  Engine.spawn engine (fun () -> Barrier.arrive barrier);
  Engine.run engine;
  Alcotest.(check int) "two waiting" 2 (Barrier.waiting barrier);
  Engine.spawn engine (fun () -> Barrier.arrive barrier);
  Engine.run engine;
  Alcotest.(check int) "released" 0 (Barrier.waiting barrier)

let test_depart_releases_survivors () =
  let engine = Engine.create () in
  let barrier = Barrier.create ~engine ~name:"b" ~parties:3 in
  let released = ref 0 in
  List.iter
    (fun start ->
      Engine.spawn ~at:start engine (fun () ->
          Barrier.arrive barrier;
          incr released))
    [ 0.0; 5.0 ];
  (* The third party leaves instead of arriving: the two waiters must
     be released, not deadlocked. *)
  Engine.spawn ~at:10.0 engine (fun () -> Barrier.depart barrier);
  Engine.run engine;
  Alcotest.(check int) "survivors released" 2 !released;
  Alcotest.(check int) "parties shrunk" 2 (Barrier.parties barrier);
  (* The shrunk barrier keeps working for the survivors. *)
  List.iter
    (fun start ->
      Engine.spawn ~at:start engine (fun () ->
          Barrier.arrive barrier;
          incr released))
    [ 20.0; 25.0 ];
  Engine.run engine;
  Alcotest.(check int) "next generation releases" 4 !released

let test_depart_last_party_rejected () =
  let engine = Engine.create () in
  let barrier = Barrier.create ~engine ~name:"b" ~parties:1 in
  Alcotest.(check bool) "last party cannot depart" true
    (try
       Barrier.depart barrier;
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "release together" `Quick test_release_together;
    Alcotest.test_case "depart releases survivors" `Quick
      test_depart_releases_survivors;
    Alcotest.test_case "depart last party rejected" `Quick
      test_depart_last_party_rejected;
    Alcotest.test_case "reusable generations" `Quick test_reusable_generations;
    Alcotest.test_case "single party" `Quick test_single_party;
    Alcotest.test_case "arrive with cost" `Quick test_arrive_with_cost;
    Alcotest.test_case "invalid parties" `Quick test_invalid_parties;
    Alcotest.test_case "waiting count" `Quick test_waiting_count;
  ]
