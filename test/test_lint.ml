(* klint: the fixture files pin down exactly what the lint flags and
   what it lets through, and the live-tree test keeps the real lib/
   sources holding the invariant the lint encodes. *)

module Lint = Ksurf_lint.Lint

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let all_checks = [ Lint.Mutable_state; Lint.Raw_open_out ]

let test_bad_fixture () =
  let findings =
    Lint.lint_source ~path:"fixtures/klint_bad.ml.txt" ~checks:all_checks
      (read "fixtures/klint_bad.ml.txt")
  in
  let codes = List.map (fun f -> f.Lint.code) findings in
  Alcotest.(check (list string))
    "mutable state, then each raw durable-I/O primitive"
    [
      "toplevel-mutable-state";
      "toplevel-mutable-state";
      "toplevel-mutable-state";
      "raw-open-out";
      "raw-openfile";
      "raw-rename";
    ]
    codes;
  List.iter
    (fun f -> Alcotest.(check bool) "line is positive" true (f.Lint.line > 0))
    findings

let test_good_fixture () =
  let findings =
    Lint.lint_source ~path:"fixtures/klint_good.ml.txt" ~checks:all_checks
      (read "fixtures/klint_good.ml.txt")
  in
  Alcotest.(check int)
    "DLS thunks, mutex-guarded bindings, annotations and per-call \
     constructors all pass"
    0 (List.length findings)

let test_parse_error () =
  let findings =
    Lint.lint_source ~path:"broken.ml" ~checks:all_checks "let let let"
  in
  Alcotest.(check (list string))
    "unparseable input is itself a finding" [ "parse-error" ]
    (List.map (fun f -> f.Lint.code) findings)

let test_default_checks () =
  let has c path = List.mem c (Lint.default_checks ~path) in
  Alcotest.(check bool) "sim gets the mutable-state check" true
    (has Lint.Mutable_state "lib/sim/engine.ml");
  Alcotest.(check bool) "par gets the mutable-state check" true
    (has Lint.Mutable_state "lib/par/pool.ml");
  Alcotest.(check bool) "kernel does not" false
    (has Lint.Mutable_state "lib/kernel/instance.ml");
  Alcotest.(check bool) "everything gets the raw-I/O check" true
    (has Lint.Raw_open_out "lib/kernel/instance.ml");
  Alcotest.(check bool) "dur gets the raw-I/O check" true
    (has Lint.Raw_open_out "lib/dur/crashsim.ml");
  Alcotest.(check bool) "except fileio itself" false
    (has Lint.Raw_open_out "lib/util/fileio.ml")

let suite =
  [
    Alcotest.test_case "bad fixture flagged" `Quick test_bad_fixture;
    Alcotest.test_case "good fixture clean" `Quick test_good_fixture;
    Alcotest.test_case "parse error reported" `Quick test_parse_error;
    Alcotest.test_case "repo check policy" `Quick test_default_checks;
  ]
