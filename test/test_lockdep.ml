open Ksurf
module Lockdep = Ksurf_analysis.Lockdep
module Finding = Ksurf_analysis.Finding
module Scenarios = Ksurf_analysis.Scenarios

let sync ?(pid = 1) ?(time = 0.0) name op =
  Engine.Sync { now = time; pid; name; op }

let acquire ?pid ?time name =
  sync ?pid ?time name (Engine.Acquire { contended = false })

let release ?pid ?time name = sync ?pid ?time name Engine.Release

let codes findings = List.map (fun (f : Finding.t) -> f.Finding.code) findings

let test_class_of_instance () =
  let check input expected =
    Alcotest.(check string) input expected (Lockdep.class_of_instance input)
  in
  (* Kernel-instance prefix and stripe suffix both stripped. *)
  check "k0.inode[3]" "inode";
  check "k12.dcache" "dcache";
  check "k3.runqueue[15]" "runqueue";
  (* Stripe suffix alone. *)
  check "mailbox[7]" "mailbox";
  (* Names that merely resemble the pattern stay untouched. *)
  check "varbench" "varbench";
  check "inv.alpha" "inv.alpha";
  check "kfoo.x" "kfoo.x";
  check "k.x" "k.x"

let test_inversion_reports_one_cycle () =
  (* The stock Inversion scenario: AB in one process, BA in another, at
     disjoint times so the run completes.  Exactly one cycle naming
     both lock classes. *)
  let state = Lockdep.create () in
  Scenarios.run Scenarios.Inversion ~seed:42 ~on_engine:(fun engine ->
      Engine.add_probe engine (Lockdep.on_event state));
  let findings = Lockdep.finish state in
  let cycles =
    List.filter (fun f -> f.Finding.code = "lock-order-cycle") findings
  in
  Alcotest.(check int) "exactly one cycle" 1 (List.length cycles);
  let cycle = List.hd cycles in
  Alcotest.(check bool) "names alpha" true
    (Test_util.contains ~sub:"inv.alpha" cycle.Finding.message);
  Alcotest.(check bool) "names beta" true
    (Test_util.contains ~sub:"inv.beta" cycle.Finding.message);
  Alcotest.(check bool) "witness shows both edges" true
    (List.length cycle.Finding.witness = 2);
  (* Nothing else: the scenario releases everything and never
     double-acquires. *)
  Alcotest.(check (list string)) "only the cycle" [ "lock-order-cycle" ]
    (codes findings)

let test_consistent_order_is_clean () =
  let engine = Engine.create () in
  let state = Lockdep.create () in
  Engine.add_probe engine (Lockdep.on_event state);
  let a = Lock.create ~engine ~name:"ord.a" in
  let b = Lock.create ~engine ~name:"ord.b" in
  for i = 0 to 1 do
    Engine.spawn ~at:(float_of_int (i * 10)) engine (fun () ->
        Lock.acquire a;
        Lock.acquire b;
        Engine.delay 1.0;
        Lock.release b;
        Lock.release a)
  done;
  Engine.run engine;
  Alcotest.(check bool) "events observed" true (Lockdep.sync_events state > 0);
  Alcotest.(check bool) "one class edge" true (Lockdep.edge_count state = 1);
  Alcotest.(check (list string)) "no findings" [] (codes (Lockdep.finish state))

let test_double_acquire () =
  let state = Lockdep.create () in
  Lockdep.on_event state (acquire "dup");
  Lockdep.on_event state (acquire ~time:5.0 "dup");
  let findings = Lockdep.finish ~drained:false state in
  Alcotest.(check bool) "double-acquire reported" true
    (List.mem "double-acquire" (codes findings));
  let f =
    List.find (fun f -> f.Finding.code = "double-acquire") findings
  in
  Alcotest.(check bool) "names the lock" true
    (Test_util.contains ~sub:"dup" f.Finding.message)

let test_release_not_held () =
  let state = Lockdep.create () in
  (* pid 2 releases what pid 1 holds: lockdep tracks per-pid stacks. *)
  Lockdep.on_event state (acquire ~pid:1 "xfer");
  Lockdep.on_event state (release ~pid:2 ~time:3.0 "xfer");
  let findings = Lockdep.finish ~drained:false state in
  Alcotest.(check bool) "release-not-held reported" true
    (List.mem "release-not-held" (codes findings))

let test_held_at_drain () =
  let state = Lockdep.create () in
  Lockdep.on_event state (acquire "leak");
  Alcotest.(check (list string)) "leak reported when drained"
    [ "held-at-drain" ]
    (codes (Lockdep.finish ~drained:true state));
  Alcotest.(check (list string)) "suppressed when stopped early" []
    (codes (Lockdep.finish ~drained:false state))

let test_same_class_nesting_is_self_cycle () =
  (* Two stripes of one class nested: a self-edge on the class, which
     is a real deadlock risk between two processes nesting in opposite
     stripe order. *)
  let state = Lockdep.create () in
  Lockdep.on_event state (acquire "k0.inode[1]");
  Lockdep.on_event state (acquire ~time:1.0 "k0.inode[2]");
  Lockdep.on_event state (release ~time:2.0 "k0.inode[2]");
  Lockdep.on_event state (release ~time:3.0 "k0.inode[1]");
  let findings = Lockdep.finish state in
  Alcotest.(check (list string)) "self-cycle on the class"
    [ "lock-order-cycle" ] (codes findings);
  let f = List.hd findings in
  Alcotest.(check bool) "names the class" true
    (Test_util.contains ~sub:"inode" f.Finding.message)

let test_read_write_modes_tracked () =
  let state = Lockdep.create () in
  Lockdep.on_event state
    (sync "rw.map" (Engine.Write_acquire { contended = false }));
  Lockdep.on_event state (sync ~time:1.0 "plain" (Engine.Acquire { contended = false }));
  Lockdep.on_event state (sync ~time:2.0 "plain" Engine.Release);
  Lockdep.on_event state (sync ~time:3.0 "rw.map" Engine.Write_release);
  (* Opposite order elsewhere through the read side. *)
  Lockdep.on_event state
    (sync ~pid:2 ~time:10.0 "plain" (Engine.Acquire { contended = false }));
  Lockdep.on_event state
    (sync ~pid:2 ~time:11.0 "rw.map" (Engine.Read_acquire { contended = false }));
  Lockdep.on_event state (sync ~pid:2 ~time:12.0 "rw.map" Engine.Read_release);
  Lockdep.on_event state (sync ~pid:2 ~time:13.0 "plain" Engine.Release);
  let findings = Lockdep.finish state in
  Alcotest.(check (list string)) "rwlock participates in cycles"
    [ "lock-order-cycle" ] (codes findings)

let suite =
  [
    Alcotest.test_case "class of instance" `Quick test_class_of_instance;
    Alcotest.test_case "inversion: exactly one cycle" `Quick
      test_inversion_reports_one_cycle;
    Alcotest.test_case "consistent order clean" `Quick
      test_consistent_order_is_clean;
    Alcotest.test_case "double acquire" `Quick test_double_acquire;
    Alcotest.test_case "release not held" `Quick test_release_not_held;
    Alcotest.test_case "held at drain" `Quick test_held_at_drain;
    Alcotest.test_case "same-class nesting" `Quick
      test_same_class_nesting_is_self_cycle;
    Alcotest.test_case "read/write modes" `Quick test_read_write_modes_tracked;
  ]
