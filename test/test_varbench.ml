open Ksurf

let quiet = Kernel_config.quiet

let tiny_corpus =
  lazy
    (Generator.run
       ~params:{ Generator.default_params with Generator.target_programs = 8 }
       ())
      .Generator.corpus

let tiny_env ?(kind = Env.Native) ?(units = 1) () =
  let engine = Engine.create ~seed:11 () in
  (engine, Env.deploy ~engine ~kernel_config:quiet kind (Partition.table1 units))

(* --- samples ----------------------------------------------------------- *)

let test_samples_grow () =
  let s = Samples.create () in
  for i = 1 to 200 do
    Samples.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 200 (Samples.count s);
  let arr = Samples.to_array s in
  Alcotest.(check int) "array length" 200 (Array.length arr);
  Alcotest.(check (float 1e-9)) "order preserved" 1.0 arr.(0);
  Alcotest.(check (float 1e-9)) "last" 200.0 arr.(199)

let test_samples_iter () =
  let s = Samples.create () in
  List.iter (Samples.add s) [ 1.0; 2.0; 3.0 ];
  let total = ref 0.0 in
  Samples.iter s (fun v -> total := !total +. v);
  Alcotest.(check (float 1e-9)) "iter sums" 6.0 !total

(* --- harness ----------------------------------------------------------- *)

let run_tiny () =
  let _, env = tiny_env () in
  let corpus = Lazy.force tiny_corpus in
  let params = { Harness.iterations = 3; warmup_iterations = 1 } in
  (corpus, Harness.run ~env ~corpus ~params ())

let test_harness_site_count () =
  let corpus, result = run_tiny () in
  Alcotest.(check int) "one site per corpus call"
    (Corpus.total_calls corpus)
    (Array.length result.Harness.sites)

let test_harness_sample_counts () =
  let _, result = run_tiny () in
  Array.iter
    (fun (site : Harness.site) ->
      Alcotest.(check int) "ranks x iterations"
        (result.Harness.ranks * result.Harness.iterations)
        (Streamstat.count site.Harness.stats))
    result.Harness.sites

let test_harness_latencies_positive () =
  let _, result = run_tiny () in
  Array.iter
    (fun (site : Harness.site) ->
      if Streamstat.count site.Harness.stats > 0 then
        if Streamstat.min_value site.Harness.stats <= 0.0 then
          Alcotest.fail "non-positive latency")
    result.Harness.sites

let test_harness_wall_time () =
  let _, result = run_tiny () in
  Alcotest.(check bool) "positive span" true (result.Harness.wall_time_ns > 0.0)

let test_total_invocations () =
  let corpus, result = run_tiny () in
  Alcotest.(check int) "total"
    (Corpus.total_calls corpus * 64 * 3)
    (Harness.total_invocations result)

(* --- study ------------------------------------------------------------- *)

let test_site_stats_ordering () =
  let _, result = run_tiny () in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "median <= p99" true
        (s.Study.median <= s.Study.p99 +. 1e-9);
      Alcotest.(check bool) "p99 <= max" true (s.Study.p99 <= s.Study.max +. 1e-9))
    (Study.site_stats result)

let test_bucket_row_consistency () =
  let _, result = run_tiny () in
  let stats = Study.site_stats result in
  let med = Study.bucket_row Study.Median stats in
  let mx = Study.bucket_row Study.Max stats in
  (* Medians are never slower than maxima: every cumulative column of the
     median row dominates the max row. *)
  Alcotest.(check bool) "median row dominates" true
    (med.Buckets.le_1ms >= mx.Buckets.le_1ms -. 1e-9)

let test_filter_by_native_median () =
  let _, result = run_tiny () in
  let stats = Study.site_stats result in
  let none = Study.filter_by_native_median ~native:stats ~min_median:infinity stats in
  Alcotest.(check int) "infinite threshold keeps nothing" 0 (Array.length none);
  let all = Study.filter_by_native_median ~native:stats ~min_median:0.0 stats in
  Alcotest.(check int) "zero threshold keeps all" (Array.length stats)
    (Array.length all)

let test_p99_by_category_covers_all () =
  let _, result = run_tiny () in
  let stats = Study.site_stats result in
  let by_cat = Study.p99_by_category stats in
  Alcotest.(check int) "six categories" 6 (List.length by_cat);
  let total = List.fold_left (fun acc (_, a) -> acc + Array.length a) 0 by_cat in
  Alcotest.(check bool) "multi-category counting" true
    (total >= Array.length stats)

let test_statistic_names () =
  Alcotest.(check string) "median" "median" (Study.statistic_name Study.Median);
  Alcotest.(check string) "p99" "p99" (Study.statistic_name Study.P99);
  Alcotest.(check string) "max" "max" (Study.statistic_name Study.Max)

(* --- noise ------------------------------------------------------------- *)

let test_noise_issues_calls () =
  let engine, env = tiny_env ~units:4 () in
  let corpus = Lazy.force tiny_corpus in
  let h = Noise.start ~env ~corpus ~ranks:[ 0; 1; 2 ] () in
  Engine.run ~until:1e6 engine;
  Alcotest.(check bool) "noise ran" true (Noise.issued h > 0);
  (* Accounting is purely per-handle: a second stream starts from zero
     regardless of what earlier streams issued. *)
  let engine2, env2 = tiny_env ~units:4 () in
  let h2 = Noise.start ~env:env2 ~corpus ~ranks:[ 0 ] () in
  Alcotest.(check int) "fresh handle starts at zero" 0 (Noise.issued h2);
  Engine.run ~until:1e5 engine2;
  Alcotest.(check bool) "independent of first stream" true
    (Noise.issued h2 < Noise.issued h)

let test_noise_rank_validation () =
  let _, env = tiny_env () in
  let corpus = Lazy.force tiny_corpus in
  Alcotest.(check bool) "bad rank rejected" true
    (try
       ignore (Noise.start ~env ~corpus ~ranks:[ 1000 ] () : Noise.handle);
       false
     with Invalid_argument _ -> true)

let test_noise_think_time_slows () =
  let corpus = Lazy.force tiny_corpus in
  let count think =
    let engine, env = tiny_env () in
    let h = Noise.start ~env ~corpus ~ranks:[ 0 ] ~think_time:think () in
    Engine.run ~until:1e7 engine;
    Noise.issued h
  in
  Alcotest.(check bool) "think time reduces throughput" true
    (count 1e6 < count 0.0)

let suite =
  [
    Alcotest.test_case "samples grow" `Quick test_samples_grow;
    Alcotest.test_case "samples iter" `Quick test_samples_iter;
    Alcotest.test_case "site count" `Quick test_harness_site_count;
    Alcotest.test_case "sample counts" `Quick test_harness_sample_counts;
    Alcotest.test_case "latencies positive" `Quick test_harness_latencies_positive;
    Alcotest.test_case "wall time" `Quick test_harness_wall_time;
    Alcotest.test_case "total invocations" `Quick test_total_invocations;
    Alcotest.test_case "stats ordering" `Quick test_site_stats_ordering;
    Alcotest.test_case "bucket consistency" `Quick test_bucket_row_consistency;
    Alcotest.test_case "native-median filter" `Quick test_filter_by_native_median;
    Alcotest.test_case "p99 by category" `Quick test_p99_by_category_covers_all;
    Alcotest.test_case "statistic names" `Quick test_statistic_names;
    Alcotest.test_case "noise issues calls" `Quick test_noise_issues_calls;
    Alcotest.test_case "noise rank validation" `Quick test_noise_rank_validation;
    Alcotest.test_case "noise think time" `Quick test_noise_think_time_slows;
  ]

let test_harness_deterministic () =
  let corpus = Lazy.force tiny_corpus in
  let run () =
    let _, env = tiny_env () in
    let params = { Harness.iterations = 2; warmup_iterations = 0 } in
    let result = Harness.run ~env ~corpus ~params () in
    Array.map
      (fun (s : Harness.site) -> Streamstat.total s.Harness.stats)
      result.Harness.sites
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bitwise identical latencies" true (a = b)

let test_barrier_synchronises_ranks () =
  (* All ranks collect the same number of samples per site even though
     individual programs take wildly different times per rank: the
     barrier holds stragglers together. *)
  let _, env = tiny_env ~kind:(Env.Kvm Virt_config.default) ~units:64 () in
  let corpus = Lazy.force tiny_corpus in
  let params = { Harness.iterations = 2; warmup_iterations = 0 } in
  let result = Harness.run ~env ~corpus ~params () in
  Array.iter
    (fun (s : Harness.site) ->
      Alcotest.(check int) "uniform sample count" (64 * 2)
        (Streamstat.count s.Harness.stats))
    result.Harness.sites

let suite =
  suite
  @ [
      Alcotest.test_case "harness deterministic" `Slow test_harness_deterministic;
      Alcotest.test_case "barrier synchronises ranks" `Slow
        test_barrier_synchronises_ranks;
    ]

let test_tracked_noise_stats () =
  let engine, env = tiny_env ~units:4 () in
  let corpus = Lazy.force tiny_corpus in
  let _h, stats_of = Noise.start_tracked ~env ~corpus ~ranks:[ 0; 1 ] () in
  Engine.run ~until:2e6 engine;
  let stats = stats_of () in
  Alcotest.(check bool) "calls counted" true (stats.Noise.calls > 0);
  Alcotest.(check bool) "mean positive" true (stats.Noise.mean_ns > 0.0);
  Alcotest.(check bool) "p99 >= mean/2" true
    (stats.Noise.p99_ns >= stats.Noise.mean_ns /. 2.0)

let suite =
  suite @ [ Alcotest.test_case "tracked noise" `Quick test_tracked_noise_stats ]
