open Ksurf

(* kdur: host-I/O fault injection and crash-consistency torture.

   Covers the fault-plan language, the deterministic injector, the
   crash-state enumerator's filesystem model, the hardened writers
   (dir fsync, bounded retry, ENOSPC deferral), recovery edges
   (torn journal tails, checkpoint loads from enumerated crash
   states, concurrent write_atomic under faults), and the torture
   cells end to end. *)

(* --- helpers ----------------------------------------------------------- *)

let temp_dir prefix =
  let p = Filename.temp_file prefix "" in
  Sys.remove p;
  Unix.mkdir p 0o755;
  p

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir prefix f =
  let d = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let op_tag (op : Iohook.op) =
  match op with
  | Iohook.Open _ -> "open"
  | Iohook.Write _ -> "write"
  | Iohook.Fsync _ -> "fsync"
  | Iohook.Fsync_dir _ -> "fsync-dir"
  | Iohook.Rename _ -> "rename"
  | Iohook.Remove _ -> "remove"
  | Iohook.Read _ -> "read"
  | Iohook.Mkdir _ -> "mkdir"

(* --- durplan ------------------------------------------------------------ *)

let test_durplan_roundtrip () =
  List.iter
    (fun (name, plan) ->
      match Durplan.of_string (Durplan.to_string plan) with
      | Ok p ->
          Alcotest.(check string) (name ^ " name") plan.Durplan.name p.name;
          Alcotest.(check bool)
            (name ^ " actions survive round-trip")
            true
            (p.Durplan.actions = plan.Durplan.actions)
      | Error e -> Alcotest.failf "%s did not round-trip: %s" name e)
    Durplan.presets;
  (match Durplan.of_string "plan x\nbogus rate=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown keyword accepted");
  match Durplan.of_string "plan x\ntransient rate=nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad float accepted"

let test_durplan_scale () =
  let mixed = Option.get (Durplan.preset "io-mixed") in
  Alcotest.(check (list int))
    "zero dose injects nothing" []
    (List.map (fun _ -> 0) (Durplan.scale 0.0 mixed).Durplan.actions);
  let crashy = Option.get (Durplan.preset "io-crashy") in
  let has_crash p =
    List.exists
      (function Durplan.Crash_at _ -> true | _ -> false)
      p.Durplan.actions
  in
  Alcotest.(check bool)
    "crash kept verbatim at k>0" true
    (has_crash (Durplan.scale 0.5 crashy));
  Alcotest.(check bool)
    "crash dropped at k=0" false
    (has_crash (Durplan.scale 0.0 crashy));
  let enospc = Option.get (Durplan.preset "io-enospc") in
  let window p =
    List.find_map
      (function
        | Durplan.Enospc_window { from_op; until_op } ->
            Some (from_op, until_op)
        | _ -> None)
      p.Durplan.actions
  in
  let f0, u0 = Option.get (window enospc) in
  let f2, u2 = Option.get (window (Durplan.scale 2.0 enospc)) in
  Alcotest.(check int) "onset unmoved" f0 f2;
  Alcotest.(check int) "window length doubled" (2 * (u0 - f0)) (u2 - f2)

(* --- write_atomic trace and durability --------------------------------- *)

let test_write_atomic_trace () =
  with_temp_dir "ksurf-dur-trace" @@ fun root ->
  let path = Filename.concat root "out.txt" in
  let result, ops =
    Crashsim.record ~root (fun () ->
        Fileio.write_atomic ~path (fun oc -> output_string oc "payload\n"))
  in
  (match result with
  | Ok () -> ()
  | Error e -> raise e);
  Alcotest.(check (list string))
    "open, write, fsync, rename, dir fsync — in that order"
    [ "open"; "write"; "fsync"; "rename"; "fsync-dir" ]
    (List.map op_tag ops);
  (* The trailing directory fsync is what makes the rename durable:
     the durable-min view of the complete trace must show the file. *)
  let final = Crashsim.final_durable ops in
  Alcotest.(check bool)
    "rename survives durable-min" true
    (List.mem ("out.txt", "payload\n") final.Crashsim.files);
  (* Without that last op the model must forget the rename. *)
  let chopped = List.filteri (fun i _ -> i < List.length ops - 1) ops in
  let gap = Crashsim.final_durable chopped in
  Alcotest.(check bool)
    "dropping the dir fsync loses the entry" false
    (List.mem_assoc "out.txt" gap.Crashsim.files)

let test_ensure_dir () =
  with_temp_dir "ksurf-dur-mkdir" @@ fun root ->
  let nested = Filename.concat (Filename.concat root "a") "b" in
  let _, ops = Crashsim.record ~root (fun () -> Fileio.ensure_dir nested) in
  Alcotest.(check bool) "directory exists" true (Sys.is_directory nested);
  let tags = List.map op_tag ops in
  Alcotest.(check bool)
    "mkdirs are fsynced into their parents" true
    (List.mem "mkdir" tags && List.mem "fsync-dir" tags);
  let _, again = Crashsim.record ~root (fun () -> Fileio.ensure_dir nested) in
  Alcotest.(check (list string))
    "idempotent: no ops when present" []
    (List.map op_tag again);
  match Fileio.ensure_dir "/dev/null/sub" with
  | () -> Alcotest.fail "non-directory component accepted"
  | exception Fileio.Io_error _ -> ()

(* --- faultio ------------------------------------------------------------ *)

let test_faultio_deterministic () =
  let plan = Durplan.scale 2.0 (Option.get (Durplan.preset "io-mixed")) in
  let synth i : Iohook.op =
    if i mod 3 = 0 then Iohook.Write { path = "/r/f"; content = "x" }
    else if i mod 3 = 1 then Iohook.Fsync { path = "/r/f" }
    else Iohook.Open { path = "/r/f" }
  in
  let run () =
    let t = Faultio.make ~root:"/r" ~seed:99 plan in
    let out = ref [] in
    for i = 0 to 199 do
      (match Faultio.handler t (synth i) with
      | Iohook.Proceed -> out := "p" :: !out
      | Iohook.Fail e -> out := Unix.error_message e :: !out
      | Iohook.Torn k -> out := Printf.sprintf "torn%.2f" k :: !out
      | Iohook.Drop -> out := "drop" :: !out
      | Iohook.Crash -> out := "crash" :: !out);
      ()
    done;
    (List.rev !out, Faultio.stats t)
  in
  let a, sa = run () and b, sb = run () in
  Alcotest.(check (list string)) "same seed, same decisions" a b;
  Alcotest.(check int) "ops counted" 200 sa.Faultio.ops;
  Alcotest.(check bool) "stats agree" true (sa = sb);
  Alcotest.(check bool)
    "mixed dose 2 injects something" true
    (sa.Faultio.transients + sa.Faultio.enospc + sa.Faultio.torn
     + sa.Faultio.fsync_dropped + sa.Faultio.eio
    > 0);
  (* Out-of-scope ops neither fault nor advance the schedule. *)
  let t = Faultio.make ~root:"/r" ~seed:7 plan in
  (match Faultio.handler t (Iohook.Open { path = "/elsewhere/f" }) with
  | Iohook.Proceed -> ()
  | _ -> Alcotest.fail "out-of-root op perturbed");
  Alcotest.(check int) "op index unmoved" 0 (Faultio.op_index t)

let test_transient_retry_absorbed () =
  with_temp_dir "ksurf-dur-retry" @@ fun root ->
  let plan =
    {
      Durplan.name = "t";
      actions = [ Durplan.Transient { rate = 0.4; eintr_share = 0.5 } ];
    }
  in
  let t = Faultio.make ~root ~seed:3 plan in
  let before = Fileio.transient_retries () in
  Faultio.with_faults t (fun () ->
      for i = 0 to 19 do
        Fileio.write_atomic
          ~path:(Filename.concat root "f.txt")
          (fun oc -> Printf.fprintf oc "gen %d\n" i)
      done);
  let s = Faultio.stats t in
  Alcotest.(check bool) "injector fired" true (s.Faultio.transients > 0);
  Alcotest.(check bool)
    "every transient absorbed by retry" true
    (Fileio.transient_retries () - before >= s.Faultio.transients);
  Alcotest.(check string)
    "last write wins, intact" "gen 19\n"
    (read_file (Filename.concat root "f.txt"))

(* --- journal edges ------------------------------------------------------ *)

let test_journal_torn_tail () =
  with_temp_dir "ksurf-dur-jtail" @@ fun root ->
  let path = Filename.concat root "sweep.journal" in
  let j = Recov_journal.load ~flush_every:1 ~path () in
  for i = 0 to 7 do
    Recov_journal.record j (Printf.sprintf "cell-%02d" i)
  done;
  Recov_journal.flush j;
  let whole = read_file path in
  (* Tear the file mid-last-line, as a crash during a non-atomic
     append would; resume must keep the intact prefix and drop the
     torn tail without raising.  (A 1-byte cut only loses the final
     newline — the last line is still checksum-valid and kept.) *)
  List.iter
    (fun cut ->
      let torn = String.sub whole 0 (String.length whole - cut) in
      let oc = open_out_bin path in
      output_string oc torn;
      close_out oc;
      let j' = Recov_journal.load ~path () in
      let cells = Recov_journal.cells j' in
      if cut > 1 then
        Alcotest.(check bool)
          (Printf.sprintf "cut %d: torn tail dropped" cut)
          true
          (List.length cells < 8);
      List.iteri
        (fun i c ->
          Alcotest.(check string)
            (Printf.sprintf "cut %d: prefix cell %d intact" cut i)
            (Printf.sprintf "cell-%02d" i)
            c)
        cells)
    [ 1; 5; 9 ];
  (* A checksum-corrupted middle line is dropped, not resumed from. *)
  let oc = open_out_bin path in
  output_string oc whole;
  close_out oc;
  let lines = String.split_on_char '\n' whole in
  let flipped =
    List.mapi
      (fun i l ->
        if i = 3 && String.length l > 0 then
          String.mapi (fun j c -> if j = String.length l - 1 then 'X' else c) l
        else l)
      lines
  in
  let oc = open_out_bin path in
  output_string oc (String.concat "\n" flipped);
  close_out oc;
  let j'' = Recov_journal.load ~path () in
  Alcotest.(check bool)
    "corrupt line dropped" true
    (not (List.exists (fun c -> c = "cell-03") (Recov_journal.cells j''))
    || List.length (Recov_journal.cells j'') < 8)

let test_journal_enospc_deferral () =
  with_temp_dir "ksurf-dur-enospc" @@ fun root ->
  let path = Filename.concat root "sweep.journal" in
  let full = ref true in
  let handler (op : Iohook.op) : Iohook.outcome =
    match op with
    | Iohook.Open _ when !full -> Iohook.Fail Unix.ENOSPC
    | _ -> Iohook.Proceed
  in
  Iohook.with_handler handler (fun () ->
      let j = Recov_journal.load ~flush_every:2 ~path () in
      for i = 0 to 5 do
        Recov_journal.record j (Printf.sprintf "c%d" i)
      done;
      Recov_journal.flush j;
      Alcotest.(check bool)
        "persists deferred while disk full" true
        (Recov_journal.persist_pending j);
      Alcotest.(check bool) "deferrals counted" true (Recov_journal.deferred j > 0);
      Alcotest.(check bool)
        "failure surfaced" true
        (Recov_journal.last_error j <> None);
      Alcotest.(check int)
        "no cell lost from memory" 6
        (List.length (Recov_journal.cells j));
      (* Space clears: the very next flush lands everything. *)
      full := false;
      Recov_journal.flush j;
      Alcotest.(check bool)
        "clean after space clears" false
        (Recov_journal.persist_pending j));
  let j' = Recov_journal.load ~path () in
  Alcotest.(check int)
    "all cells durable after clear" 6
    (List.length (Recov_journal.cells j'))

(* --- checkpoint loads from enumerated crash states ---------------------- *)

let ckpt_state n : Checkpoint.state =
  {
    superstep = n;
    runtime_ns = 1e6 *. float_of_int n;
    membership = [ 0; 1; 2 ];
    rejoins = [];
    incidents = n;
    prng_state = Int64.of_int (17 * n);
    prng_seed = 42;
    crashes = 0;
    restarts = 0;
    backups = 1;
    deaths = 0;
    transitions = n;
    checkpoints = n;
    degraded = false;
  }

let test_checkpoint_crash_states () =
  with_temp_dir "ksurf-dur-ckpt" @@ fun root ->
  let trace_dir = Filename.concat root "trace" in
  Fileio.ensure_dir trace_dir;
  let path = Filename.concat trace_dir "state.ckpt" in
  let result, ops =
    Crashsim.record ~root:trace_dir (fun () ->
        Checkpoint.write ~path (ckpt_state 1);
        Checkpoint.write ~path (ckpt_state 2))
  in
  (match result with Ok () -> () | Error e -> raise e);
  let states = Crashsim.enumerate ops in
  Alcotest.(check bool)
    "several distinct crash states" true
    (List.length states > 4);
  let enum_dir = Filename.concat root "enum" in
  let old_or_new = ref 0 in
  List.iter
    (fun (k, st) ->
      Crashsim.materialize ~dir:enum_dir st;
      let p = Filename.concat enum_dir "state.ckpt" in
      if Sys.file_exists p then
        match Checkpoint.read ~path:p with
        | Ok s ->
            if s.Checkpoint.superstep <> 1 && s.Checkpoint.superstep <> 2 then
              Alcotest.failf "crash point %d: loaded an impossible version" k;
            incr old_or_new
        | Error e ->
            (* The atomic protocol's whole point: no crash state may
               leave the destination torn — every existing state.ckpt
               must load as old or new. *)
            Alcotest.failf "crash point %d: destination torn (%s)" k e)
    states;
  Alcotest.(check bool)
    "some states load old or new" true (!old_or_new > 0);
  (* The checksum refusal path is real, though: a synthetically torn
     checkpoint (as a non-atomic writer would leave) must be refused,
     never half-parsed. *)
  let torn_dir = Filename.concat root "torn" in
  Fileio.ensure_dir torn_dir;
  let good = read_file path in
  List.iter
    (fun frac ->
      let keep = int_of_float (frac *. float_of_int (String.length good)) in
      let p = Filename.concat torn_dir "state.ckpt" in
      let oc = open_out_bin p in
      output_string oc (String.sub good 0 keep);
      close_out oc;
      match Checkpoint.read ~path:p with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "synthetically torn checkpoint (%.0f%%) accepted"
            (100. *. frac))
    [ 0.95; 0.5; 0.1 ];
  (* Recovery from every state must end with a good checkpoint: sweep
     litter and rewrite — the standard recovery path. *)
  List.iter
    (fun (_, st) ->
      Crashsim.materialize ~dir:enum_dir st;
      let p = Filename.concat enum_dir "state.ckpt" in
      let _ = Fileio.sweep_tmp ~dir:enum_dir in
      (match Checkpoint.read ~path:p with
      | Ok _ -> ()
      | Error _ | (exception Sys_error _) ->
          Checkpoint.write ~path:p (ckpt_state 2));
      match Checkpoint.read ~path:p with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "recovery left a bad checkpoint: %s" e)
    states

(* --- concurrent write_atomic under injected faults ---------------------- *)

let test_concurrent_write_atomic_faults () =
  with_temp_dir "ksurf-dur-conc" @@ fun root ->
  let path = Filename.concat root "shared.txt" in
  let plan =
    {
      Durplan.name = "conc";
      actions =
        [
          Durplan.Transient { rate = 0.3; eintr_share = 0.5 };
          Durplan.Fsync_drop { rate = 0.2 };
        ];
    }
  in
  let body tag =
    (* Each domain installs its own injector: the hook is domain-local. *)
    let t = Faultio.make ~root ~seed:(Hashtbl.hash tag) plan in
    Faultio.with_faults t (fun () ->
        for i = 0 to 24 do
          Fileio.write_atomic ~path (fun oc ->
              Printf.fprintf oc "%s line %d\n%s line %d\n" tag i tag (i + 1))
        done)
  in
  let d1 = Domain.spawn (fun () -> body "alpha") in
  let d2 = Domain.spawn (fun () -> body "beta") in
  Domain.join d1;
  Domain.join d2;
  let final = read_file path in
  let expect tag =
    Printf.sprintf "%s line 24\n%s line 25\n" tag tag
  in
  Alcotest.(check bool)
    "final file is one writer's complete last version" true
    (final = expect "alpha" || final = expect "beta");
  Alcotest.(check int)
    "no temp litter under concurrency" 0
    (Fileio.sweep_tmp ~dir:root)

(* --- torture cells ------------------------------------------------------ *)

let torture_cell kind dose seed scratch =
  Torture.run { Torture.kind; dose; runs = 2; seed; scratch }

let check_cell name (r : Torture.result) =
  Alcotest.(check int) (name ^ ": zero violations") 0 (Torture.violations r);
  Alcotest.(check (float 1e-9)) (name ^ ": recovery 1.0") 1.0 r.recovery_ok;
  Alcotest.(check int) (name ^ ": no surviving litter") 0 r.litter_after;
  Alcotest.(check bool)
    (name ^ ": crash states enumerated")
    true (r.crash_states > 0)

let test_torture_cells () =
  with_temp_dir "ksurf-dur-tort" @@ fun scratch ->
  List.iter
    (fun kind ->
      let kn = Torture.kind_name kind in
      let r0 =
        torture_cell kind 0.0 11 (Filename.concat scratch (kn ^ "-0"))
      in
      check_cell (kn ^ " dose 0") r0;
      Alcotest.(check int) (kn ^ " dose 0: fault-free") 0 r0.Torture.crashes;
      let r1 =
        torture_cell kind 1.0 11 (Filename.concat scratch (kn ^ "-1"))
      in
      check_cell (kn ^ " dose 1") r1;
      Alcotest.(check bool)
        (kn ^ " dose 1: live faults injected")
        true
        (r1.Torture.crashes + r1.Torture.transients + r1.Torture.enospc
         + r1.Torture.torn_writes + r1.Torture.fsync_dropped
        > 0))
    Torture.all_kinds;
  (* Journal and checkpoint enumeration must prove the checksum
     refusal path actually fires. *)
  let r =
    torture_cell Torture.Journal_path 1.0 11 (Filename.concat scratch "jt")
  in
  Alcotest.(check bool)
    "journal: torn states refused" true (r.Torture.torn_refused > 0)

let test_torture_deterministic () =
  with_temp_dir "ksurf-dur-tdet" @@ fun scratch ->
  let a =
    torture_cell Torture.Journal_path 2.0 5 (Filename.concat scratch "a")
  in
  let b =
    torture_cell Torture.Journal_path 2.0 5 (Filename.concat scratch "b")
  in
  Alcotest.(check bool)
    "same seed, same cell result (scratch-independent)" true (a = b)

(* --- iohook ------------------------------------------------------------- *)

let test_iohook_nesting () =
  Alcotest.(check bool) "no ambient handler" false (Iohook.active ());
  let outer = ref 0 and inner = ref 0 in
  Iohook.with_handler
    (fun _ ->
      incr outer;
      Iohook.Proceed)
    (fun () ->
      let op = Iohook.Open { path = "/x" } in
      ignore (Iohook.consult op);
      Iohook.with_handler
        (fun _ ->
          incr inner;
          Iohook.Proceed)
        (fun () -> ignore (Iohook.consult op));
      ignore (Iohook.consult op));
  Alcotest.(check int) "outer saw its two consults" 2 !outer;
  Alcotest.(check int) "inner shadowed exactly once" 1 !inner;
  Alcotest.(check bool) "restored after" false (Iohook.active ())

let suite =
  [
    Alcotest.test_case "durplan round-trip" `Quick test_durplan_roundtrip;
    Alcotest.test_case "durplan scale" `Quick test_durplan_scale;
    Alcotest.test_case "write_atomic trace + dir fsync" `Quick
      test_write_atomic_trace;
    Alcotest.test_case "ensure_dir" `Quick test_ensure_dir;
    Alcotest.test_case "faultio deterministic" `Quick test_faultio_deterministic;
    Alcotest.test_case "transient retry absorbed" `Quick
      test_transient_retry_absorbed;
    Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
    Alcotest.test_case "journal ENOSPC deferral" `Quick
      test_journal_enospc_deferral;
    Alcotest.test_case "checkpoint crash states" `Quick
      test_checkpoint_crash_states;
    Alcotest.test_case "concurrent write_atomic under faults" `Quick
      test_concurrent_write_atomic_faults;
    Alcotest.test_case "torture cells" `Slow test_torture_cells;
    Alcotest.test_case "torture deterministic" `Quick
      test_torture_deterministic;
    Alcotest.test_case "iohook nesting" `Quick test_iohook_nesting;
  ]
