open Ksurf

let test_eight_apps () =
  Alcotest.(check int) "suite size" 8 (List.length Apps.all);
  Alcotest.(check (list string)) "names"
    [ "xapian"; "masstree"; "moses"; "sphinx"; "img-dnn"; "specjbb"; "silo"; "shore" ]
    Apps.names

let test_all_apps_validate () =
  List.iter
    (fun app ->
      match Apps.validate app with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    Apps.all

let test_by_name () =
  Alcotest.(check bool) "found" true (Apps.by_name "silo" <> None);
  Alcotest.(check bool) "missing" true (Apps.by_name "redis" = None)

let test_service_estimates_positive () =
  List.iter
    (fun app ->
      let est = Apps.mean_service_estimate app in
      if est <= 0.0 then Alcotest.failf "%s: estimate %f" app.Apps.name est)
    Apps.all

let test_relative_magnitudes () =
  (* sphinx and moses are the long requests; silo and masstree short. *)
  let est name = Apps.mean_service_estimate (Option.get (Apps.by_name name)) in
  Alcotest.(check bool) "sphinx longest" true
    (est "sphinx" > est "moses" && est "moses" > est "xapian");
  Alcotest.(check bool) "silo shortest" true
    (est "silo" < est "masstree" && est "silo" < est "img-dnn")

let test_shore_is_io_bound () =
  let shore = Option.get (Apps.by_name "shore") in
  Alcotest.(check bool) "has io calls" true (shore.Apps.io_calls <> []);
  List.iter
    (fun app ->
      if app.Apps.name <> "shore" then
        Alcotest.(check bool) (app.Apps.name ^ " no io") true
          (app.Apps.io_calls = []))
    Apps.all

let test_silo_tlb_sensitive () =
  let penalty name = (Option.get (Apps.by_name name)).Apps.virt_cpu_penalty in
  List.iter
    (fun name ->
      if name <> "silo" then
        Alcotest.(check bool) ("silo > " ^ name) true (penalty "silo" >= penalty name))
    Apps.names

let test_compile_and_handle () =
  let app = Option.get (Apps.by_name "masstree") in
  let compiled = Service.compile app in
  Alcotest.(check string) "app accessible" "masstree" (Service.app compiled).Apps.name;
  let engine = Engine.create ~seed:2 () in
  let env =
    Env.deploy ~engine ~kernel_config:Kernel_config.quiet Env.Native
      (Partition.table1 1)
  in
  let rng = Prng.create 3 in
  let elapsed = ref nan in
  Engine.spawn engine (fun () ->
      let t0 = Engine.now engine in
      Service.handle compiled ~env ~rank:0 ~rng ();
      elapsed := Engine.now engine -. t0);
  Engine.run engine;
  Alcotest.(check bool) "request consumed at least its cpu" true
    (!elapsed > 100_000.0)

let test_hw_dilation_slows () =
  let app = Option.get (Apps.by_name "img-dnn") in
  let compiled = Service.compile app in
  let run dilation =
    let engine = Engine.create ~seed:5 () in
    let env =
      Env.deploy ~engine ~kernel_config:Kernel_config.quiet Env.Native
        (Partition.table1 1)
    in
    let rng = Prng.create 7 in
    let total = ref 0.0 in
    Engine.spawn engine (fun () ->
        for _ = 1 to 50 do
          let t0 = Engine.now engine in
          Service.handle compiled ~env ~rank:0 ~rng ~hw_dilation:dilation ();
          total := !total +. (Engine.now engine -. t0)
        done);
    Engine.run engine;
    !total
  in
  Alcotest.(check bool) "dilated slower" true (run 1.5 > run 1.0)

let test_runner_smoke () =
  let app = Option.get (Apps.by_name "silo") in
  let config =
    { Runner.default_config with Runner.requests = 150; seed = 13 }
  in
  let r = Runner.run_single_node ~app ~kind:Env.Docker ~contended:false ~config () in
  Alcotest.(check string) "app name" "silo" r.Runner.app_name;
  Alcotest.(check string) "kind" "docker" r.Runner.kind;
  Alcotest.(check bool) "latency stats ordered" true
    (r.Runner.mean <= r.Runner.p99 && r.Runner.p99 <= r.Runner.max);
  Alcotest.(check bool) "positive p99" true (r.Runner.p99 > 0.0);
  Alcotest.(check bool) "warmup discarded" true (r.Runner.count < 150)

let test_runner_deterministic () =
  let app = Option.get (Apps.by_name "silo") in
  let config = { Runner.default_config with Runner.requests = 100; seed = 21 } in
  let run () =
    (Runner.run_single_node ~app ~kind:Env.Docker ~contended:false ~config ()).Runner.p99
  in
  Alcotest.(check (float 1e-9)) "same seed same p99" (run ()) (run ())

let test_percent_increase () =
  let fake p99 =
    {
      Runner.app_name = "x"; kind = "k"; contended = false; count = 1;
      mean = p99; p95 = p99; p99; max = p99; wall_ns = 1.0;
      degraded = false; survivors = 1; crashes = 0; restarts = 0; timeouts = 0;
    }
  in
  Alcotest.(check (float 1e-9)) "doubling is +100%" 100.0
    (Runner.percent_increase ~isolated:(fake 10.0) ~contended:(fake 20.0))

let suite =
  [
    Alcotest.test_case "eight apps" `Quick test_eight_apps;
    Alcotest.test_case "apps validate" `Quick test_all_apps_validate;
    Alcotest.test_case "by_name" `Quick test_by_name;
    Alcotest.test_case "estimates positive" `Quick test_service_estimates_positive;
    Alcotest.test_case "relative magnitudes" `Quick test_relative_magnitudes;
    Alcotest.test_case "shore io-bound" `Quick test_shore_is_io_bound;
    Alcotest.test_case "silo tlb-sensitive" `Quick test_silo_tlb_sensitive;
    Alcotest.test_case "compile and handle" `Quick test_compile_and_handle;
    Alcotest.test_case "hw dilation" `Quick test_hw_dilation_slows;
    Alcotest.test_case "runner smoke" `Slow test_runner_smoke;
    Alcotest.test_case "runner deterministic" `Slow test_runner_deterministic;
    Alcotest.test_case "percent increase" `Quick test_percent_increase;
  ]
