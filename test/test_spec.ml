open Ksurf

(* kspec: profiles, compiled specs, pruned configs, and enforcement
   wired through Env.  Uses tiny hand-built corpora so every check is
   exact. *)

let quiet = Kernel_config.quiet

let program_of_calls ~id names =
  let text =
    String.concat "\n" (List.map (fun n -> Printf.sprintf "%s(0:0:0)" n) names)
  in
  match Program.of_string ~id text with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test program: %s" e

let fs_corpus () =
  Corpus.of_programs
    [
      program_of_calls ~id:0 [ "open"; "read"; "write"; "fsync" ];
      program_of_calls ~id:1 [ "mkdir"; "rename"; "unlink" ];
    ]

let fs_profile () = Profile.of_corpus ~name:"fs" (fs_corpus ())

(* --- profiles --------------------------------------------------------- *)

let test_profile_of_corpus () =
  let p = fs_profile () in
  Alcotest.(check string) "name" "fs" p.Profile.name;
  Alcotest.(check bool) "sorted unique syscalls" true
    (p.Profile.syscalls = List.sort_uniq compare p.Profile.syscalls);
  Alcotest.(check bool) "open recorded" true
    (List.mem "open" p.Profile.syscalls);
  Alcotest.(check bool) "coverage nonempty" true
    (Coverage.Set.cardinal p.Profile.coverage > 0)

let test_profile_roundtrip () =
  List.iter
    (fun seed ->
      let corpus =
        (Generator.run
           ~params:
             {
               Generator.default_params with
               Generator.seed;
               target_programs = 8;
             }
           ())
          .Generator.corpus
      in
      let p = Profile.of_corpus ~name:(Printf.sprintf "seed-%d" seed) corpus in
      match Profile.of_string (Profile.to_string p) with
      | Error e -> Alcotest.failf "parse failed: %s" e
      | Ok p' ->
          Alcotest.(check string) "name" p.Profile.name p'.Profile.name;
          Alcotest.(check (list string))
            "syscalls" p.Profile.syscalls p'.Profile.syscalls;
          Alcotest.(check bool) "categories" true
            (p.Profile.categories = p'.Profile.categories);
          Alcotest.(check (list int))
            "coverage"
            (Coverage.Set.to_list p.Profile.coverage)
            (Coverage.Set.to_list p'.Profile.coverage))
    [ 1; 7; 42 ]

let test_profile_recorder_matches_of_corpus () =
  let corpus = fs_corpus () in
  let r = Profile.recorder ~name:"fs" () in
  Array.iter (Profile.observe r) (Corpus.programs corpus);
  Alcotest.(check int) "observed" 2 (Profile.observed_programs r);
  let live = Profile.snapshot r in
  let offline = Profile.of_corpus ~name:"fs" corpus in
  Alcotest.(check (list string))
    "same syscalls" offline.Profile.syscalls live.Profile.syscalls;
  Alcotest.(check bool) "same categories" true
    (offline.Profile.categories = live.Profile.categories);
  Alcotest.(check (list int))
    "same coverage"
    (Coverage.Set.to_list offline.Profile.coverage)
    (Coverage.Set.to_list live.Profile.coverage)

let test_restrict () =
  let keep = [ Category.File_io; Category.Fs_mgmt ] in
  let full = Experiments.default_corpus ~seed:11 Experiments.Quick in
  match Profile.restrict full ~keep with
  | None -> Alcotest.fail "quick corpus has no fs calls"
  | Some c ->
      Alcotest.(check bool) "smaller or equal" true
        (Corpus.total_calls c <= Corpus.total_calls full);
      Alcotest.(check bool) "nonempty" true (Corpus.total_calls c > 0);
      Array.iter
        (fun (p : Program.t) ->
          if p.Program.calls = [] then Alcotest.fail "empty program survived";
          List.iter
            (fun (call : Program.call) ->
              List.iter
                (fun cat ->
                  if not (List.mem cat keep) then
                    Alcotest.failf "call %s outside keep set"
                      call.Program.spec.Spec.name)
                call.Program.spec.Spec.categories)
            p.Program.calls)
        (Corpus.programs c)

let test_restrict_nothing_survives () =
  (* A process-only corpus has no fs calls at all. *)
  let corpus = Corpus.of_programs [ program_of_calls ~id:0 [ "getpid" ] ] in
  Alcotest.(check bool) "None" true
    (Profile.restrict corpus ~keep:[ Category.File_io ] = None)

(* --- compiled specs --------------------------------------------------- *)

let test_compile () =
  let spec = Specializer.compile (fs_profile ()) in
  Alcotest.(check bool) "enforce by default" true
    (spec.Kspec.mode = Kspec.Enforce);
  Alcotest.(check bool) "allows open" true (Kspec.allows spec "open");
  Alcotest.(check bool) "denies mmap" false (Kspec.allows spec "mmap");
  Alcotest.(check bool) "retained has file-io" true
    (List.mem Category.File_io spec.Kspec.retained);
  Alcotest.(check bool) "reachable in (0,1]" true
    (spec.Kspec.reachable > 0.0 && spec.Kspec.reachable <= 1.0)

let test_compile_empty_profile_rejected () =
  let p =
    {
      Profile.name = "empty";
      syscalls = [];
      categories = [];
      coverage = Coverage.Set.empty;
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Specializer.compile p);
       false
     with Invalid_argument _ -> true)

let test_reachable_monotone () =
  let all = Array.to_list (Array.map (fun s -> s.Spec.name) Syscalls.all) in
  let prefix n = List.filteri (fun i _ -> i < n) all in
  let fractions =
    List.map
      (fun n -> Specializer.reachable_fraction ~allowlist:(prefix n))
      [ 1; 4; 16; List.length all ]
  in
  let rec is_sorted = function
    | a :: (b :: _ as rest) -> a <= b && is_sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in the allowlist" true (is_sorted fractions);
  Alcotest.(check (float 1e-9)) "full table reaches everything" 1.0
    (List.nth fractions 3);
  Alcotest.(check (float 1e-9)) "unknown names reach nothing" 0.0
    (Specializer.reachable_fraction ~allowlist:[ "frobnicate" ])

let test_kernel_config_pruning () =
  (* fs-only profile: journal machinery stays, scheduler/memory
     machinery goes. *)
  let config =
    Specializer.kernel_config (Specializer.compile (fs_profile ()))
  in
  Alcotest.(check bool) "journal retained" true
    config.Kernel_config.enable_journal_daemon;
  Alcotest.(check bool) "kswapd pruned" false config.Kernel_config.enable_kswapd;
  Alcotest.(check bool) "balancer pruned" false
    config.Kernel_config.enable_load_balancer;
  Alcotest.(check bool) "timer noise pruned" false
    config.Kernel_config.enable_timer_noise;
  Alcotest.(check bool) "tlb shootdown pruned" false
    config.Kernel_config.enable_tlb_shootdown

(* --- enforcement through Env ----------------------------------------- *)

let deploy_with_policy ~mode () =
  let denied = ref [] in
  let engine = Engine.create ~seed:3 () in
  Engine.add_probe engine (function
    | Engine.Denied { syscall; enforced; _ } ->
        denied := (syscall, enforced) :: !denied
    | _ -> ());
  let env =
    Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1)
  in
  let spec = Specializer.compile ~mode (fs_profile ()) in
  Specializer.install env ~rank:0 spec;
  (engine, env, denied)

let test_enforce_denial () =
  let engine, env, denied = deploy_with_policy ~mode:Kspec.Enforce () in
  let mmap = Option.get (Syscalls.by_name "mmap") in
  let opn = Option.get (Syscalls.by_name "open") in
  let outcomes = ref [] in
  Engine.spawn engine (fun () ->
      outcomes := Env.try_syscall env ~rank:0 mmap Arg.default :: !outcomes;
      outcomes := Env.try_syscall env ~rank:0 opn Arg.default :: !outcomes);
  Engine.run engine;
  (match List.rev !outcomes with
  | [ Env.Denied { latency_ns }; Env.Completed _ ] ->
      Alcotest.(check bool) "denial pays the entry path" true (latency_ns > 0.0)
  | _ -> Alcotest.fail "expected one denial then one completion");
  Alcotest.(check int) "one denial charged" 1 (Specializer.denials env ~rank:0);
  Alcotest.(check bool) "probe saw an enforced denial" true
    (List.mem ("mmap", true) !denied)

let test_audit_lets_call_run () =
  let engine, env, denied = deploy_with_policy ~mode:Kspec.Audit () in
  let mmap = Option.get (Syscalls.by_name "mmap") in
  let outcome = ref None in
  Engine.spawn engine (fun () ->
      outcome := Some (Env.try_syscall env ~rank:0 mmap Arg.default));
  Engine.run engine;
  (match !outcome with
  | Some (Env.Completed latency) ->
      Alcotest.(check bool) "ran to completion" true (latency > 0.0)
  | _ -> Alcotest.fail "audit mode must not block the call");
  Alcotest.(check int) "denial still counted" 1 (Specializer.denials env ~rank:0);
  Alcotest.(check bool) "probe saw an unenforced denial" true
    (List.mem ("mmap", false) !denied)

let test_exec_syscall_charges_denial () =
  let engine, env, _ = deploy_with_policy ~mode:Kspec.Enforce () in
  let mmap = Option.get (Syscalls.by_name "mmap") in
  let latency = ref nan in
  Engine.spawn engine (fun () ->
      latency := Env.exec_syscall env ~rank:0 mmap Arg.default);
  Engine.run engine;
  Alcotest.(check bool) "entry-path latency only" true
    (!latency > 0.0 && !latency < 5_000.0);
  Alcotest.(check int) "denial charged" 1 (Specializer.denials env ~rank:0)

let test_functional_surface_area () =
  let engine = Engine.create () in
  let env =
    Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1)
  in
  let structural = Env.surface_area_of_rank env 0 in
  let spec = Specializer.compile (fs_profile ()) in
  Specializer.install env ~rank:0 spec;
  let functional = Env.surface_area_of_rank env 0 in
  Alcotest.(check (float 1e-9))
    "structural x reachable"
    (structural *. spec.Kspec.reachable)
    functional;
  Alcotest.(check (float 1e-9)) "rank 1 unaffected" structural
    (Env.surface_area_of_rank env 1)

let test_surface_area_shrinks_with_allowlist () =
  (* nested profiles => nested allowlists => monotone functional area *)
  let small =
    Specializer.compile
      (Profile.of_corpus ~name:"small"
         (Corpus.of_programs [ program_of_calls ~id:0 [ "read" ] ]))
  in
  let large = Specializer.compile (fs_profile ()) in
  let area spec =
    let engine = Engine.create () in
    let env =
      Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1)
    in
    Specializer.install env ~rank:0 spec;
    Env.surface_area_of_rank env 0
  in
  Alcotest.(check bool) "smaller allowlist, smaller area" true
    (area small < area large)

(* --- multikernel deployment ------------------------------------------ *)

let test_deploy_multikernel () =
  let engine = Engine.create () in
  let env =
    Env.deploy ~engine ~kernel_config:quiet Env.Multikernel (Partition.table1 8)
  in
  Alcotest.(check string) "kind name" "multikernel"
    (Env.kind_name (Env.kind env));
  Alcotest.(check int) "one kernel per unit" 8 (List.length (Env.instances env));
  Alcotest.(check int) "64 ranks" 64 (Env.rank_count env);
  Alcotest.(check int) "rank 63 in unit 7" 7 (Env.unit_of_rank env 63)

let test_multikernel_native_cost () =
  (* getpid on a multikernel rank costs the same order as native — no
     virtualization tax — while KVM pays exits. *)
  let spec = Option.get (Syscalls.by_name "getpid") in
  let mean_of kind =
    let engine = Engine.create ~seed:9 () in
    let env = Env.deploy ~engine ~kernel_config:quiet kind (Partition.table1 8) in
    let total = ref 0.0 in
    Engine.spawn engine (fun () ->
        for _ = 1 to 100 do
          total := !total +. Env.exec_syscall env ~rank:0 spec Arg.default
        done);
    Engine.run engine;
    !total /. 100.0
  in
  let native = mean_of Env.Native in
  let mk = mean_of Env.Multikernel in
  let kvm = mean_of (Env.Kvm Virt_config.default) in
  Alcotest.(check bool) "multikernel within 2x of native" true
    (mk < 2.0 *. native);
  Alcotest.(check bool) "kvm pays more than multikernel" true (kvm > mk)

let suite =
  [
    Alcotest.test_case "profile of corpus" `Quick test_profile_of_corpus;
    Alcotest.test_case "profile roundtrip" `Quick test_profile_roundtrip;
    Alcotest.test_case "recorder matches of_corpus" `Quick
      test_profile_recorder_matches_of_corpus;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "restrict: nothing survives" `Quick
      test_restrict_nothing_survives;
    Alcotest.test_case "compile" `Quick test_compile;
    Alcotest.test_case "compile rejects empty profile" `Quick
      test_compile_empty_profile_rejected;
    Alcotest.test_case "reachable fraction monotone" `Quick
      test_reachable_monotone;
    Alcotest.test_case "kernel config pruning" `Quick test_kernel_config_pruning;
    Alcotest.test_case "enforce denial" `Quick test_enforce_denial;
    Alcotest.test_case "audit lets call run" `Quick test_audit_lets_call_run;
    Alcotest.test_case "exec_syscall charges denial" `Quick
      test_exec_syscall_charges_denial;
    Alcotest.test_case "functional surface area" `Quick
      test_functional_surface_area;
    Alcotest.test_case "surface area shrinks with allowlist" `Quick
      test_surface_area_shrinks_with_allowlist;
    Alcotest.test_case "deploy multikernel" `Quick test_deploy_multikernel;
    Alcotest.test_case "multikernel native cost" `Quick
      test_multikernel_native_cost;
  ]
