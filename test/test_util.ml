(* Small helpers shared across test modules. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0
