(* kadapt controller and drift-sweep tests: live-recorder snapshot
   determinism, promotion/demotion hysteresis (no flapping at either
   boundary), swap accounting, and the sweep-level guarantees the other
   experiment suites also pin — jobs-count byte-identity of the export
   and journal kill/resume equivalence. *)

module E = Ksurf.Experiments
module A = Ksurf.Adapt
module D = Ksurf.Driftbench
module Profile = Ksurf.Profile
module Program = Ksurf.Program
module Prng = Ksurf.Prng

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let with_tmp_dir prefix f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A deterministic program stream: the same seed must regenerate the
   same programs call for call. *)
let programs ~seed ~n ~len =
  let rng = Prng.create seed in
  List.init n (fun id -> Program.random rng ~id ~min_len:len ~max_len:len)

(* A one-rank Multikernel deployment to hang a controller off.  The
   engine never runs — controller accounting is pure bookkeeping plus
   policy swaps, which only need the deployment to exist. *)
let mk_env ~seed =
  let engine = Ksurf.Engine.create ~seed () in
  let partition =
    Ksurf.Partition.equal_split ~units:1 ~total_cores:1 ~total_mem_mb:512
  in
  Ksurf.Env.deploy ~engine Ksurf.Env.Multikernel partition

(* Feed one epoch's worth of calls: [copies] observations of [p], each
   with [denied] calls charged as enforced ENOSYS. *)
let feed ctl ?(denied = 0) ~copies p =
  for _ = 1 to copies do
    A.observe ctl ~denied p
  done

let check_decision = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Recorder snapshot determinism                                      *)
(* ------------------------------------------------------------------ *)

let test_recorder_determinism () =
  let feed_recorder () =
    let r = Profile.recorder ~name:"det" () in
    List.iter (Profile.observe r) (programs ~seed:123 ~n:32 ~len:6);
    r
  in
  let r1 = feed_recorder () and r2 = feed_recorder () in
  Alcotest.(check int)
    "same stream covers the same blocks" (Profile.observed_blocks r1)
    (Profile.observed_blocks r2);
  Alcotest.(check string)
    "same stream snapshots the same profile"
    (Profile.to_string (Profile.snapshot r1))
    (Profile.to_string (Profile.snapshot r2));
  (* Snapshotting is a pure read: doing it twice (with more snapshots
     in between) changes nothing. *)
  Alcotest.(check string)
    "snapshot is a pure read"
    (Profile.to_string (Profile.snapshot r1))
    (Profile.to_string (Profile.snapshot r1))

(* ------------------------------------------------------------------ *)
(* Promotion hysteresis                                               *)
(* ------------------------------------------------------------------ *)

(* stability_epochs = 2 means: one frontier-setting epoch, then two
   consecutive stable epochs, and promotion fires on the second. *)
let cfg =
  {
    A.stability_epochs = 2;
    min_epoch_calls = 8;
    denial_rate_limit = 0.5;
    divergence_limit = 0.25;
    breach_epochs = 2;
  }

let test_promotion_needs_consecutive_stability () =
  let env = mk_env ~seed:1 in
  let ctl = A.create ~config:cfg env ~rank:0 ~name:"promo" in
  let p = List.hd (programs ~seed:7 ~n:1 ~len:4) in
  Alcotest.(check int) "create installs the audit window" 1
    (Ksurf.Env.policy_swaps env);
  (* Epoch 1 sets the coverage frontier, epoch 2 is the first stable
     one: neither may promote. *)
  feed ctl ~copies:4 p;
  check_decision "frontier-setting epoch stays" true (A.epoch ctl = A.Stayed);
  feed ctl ~copies:4 p;
  check_decision "first stable epoch stays" true (A.epoch ctl = A.Stayed);
  Alcotest.(check bool) "still auditing" true (A.state ctl = A.Auditing);
  feed ctl ~copies:4 p;
  check_decision "second stable epoch promotes" true (A.epoch ctl = A.Promoted);
  Alcotest.(check bool) "now enforcing" true (A.state ctl = A.Enforcing);
  Alcotest.(check bool) "promotion compiled a spec" true (A.spec ctl <> None);
  Alcotest.(check int) "promotion swapped the policy" 2
    (Ksurf.Env.policy_swaps env)

let test_underfed_epochs_count_for_nothing () =
  let env = mk_env ~seed:2 in
  let ctl = A.create ~config:cfg env ~rank:0 ~name:"underfed" in
  let p = List.hd (programs ~seed:7 ~n:1 ~len:4) in
  (* 4 calls per epoch < min_epoch_calls = 8: stable coverage forever,
     but an underfed epoch is evidence of nothing. *)
  for i = 1 to 10 do
    feed ctl ~copies:1 p;
    check_decision
      (Printf.sprintf "underfed epoch %d stays" i)
      true
      (A.epoch ctl = A.Stayed)
  done;
  Alcotest.(check bool) "still auditing after 10 underfed epochs" true
    (A.state ctl = A.Auditing);
  Alcotest.(check int) "no swap beyond the audit install" 1
    (Ksurf.Env.policy_swaps env)

let test_moving_frontier_resets_stability () =
  let env = mk_env ~seed:3 in
  let ctl = A.create ~config:cfg env ~rank:0 ~name:"frontier" in
  match programs ~seed:7 ~n:2 ~len:4 with
  | [ p1; p2 ] ->
      (* Sanity: p2 must extend p1's coverage, otherwise the frontier
         would not move below.  Deterministic for the fixed seed. *)
      let scratch = Profile.recorder ~name:"scratch" () in
      Profile.observe scratch p1;
      let b1 = Profile.observed_blocks scratch in
      Profile.observe scratch p2;
      Alcotest.(check bool) "fixture: p2 extends p1 coverage" true
        (Profile.observed_blocks scratch > b1);
      feed ctl ~copies:4 p1;
      check_decision "set frontier" true (A.epoch ctl = A.Stayed);
      feed ctl ~copies:4 p1;
      check_decision "one stable epoch" true (A.epoch ctl = A.Stayed);
      (* New coverage arrives: the streak must reset, so the next two
         stable epochs are again not enough to promote early. *)
      feed ctl ~copies:2 p1;
      feed ctl ~copies:2 p2;
      check_decision "frontier moved, stays" true (A.epoch ctl = A.Stayed);
      feed ctl ~copies:4 p1;
      check_decision "stable again (1/2)" true (A.epoch ctl = A.Stayed);
      Alcotest.(check bool) "no early promotion" true
        (A.state ctl = A.Auditing);
      feed ctl ~copies:4 p1;
      check_decision "stable again (2/2) promotes" true
        (A.epoch ctl = A.Promoted)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Demotion hysteresis                                                *)
(* ------------------------------------------------------------------ *)

(* Promote a fresh controller on program [p] (3 fed epochs). *)
let promoted ~seed =
  let env = mk_env ~seed in
  let ctl = A.create ~config:cfg env ~rank:0 ~name:"demo" in
  let p = List.hd (programs ~seed:7 ~n:1 ~len:4) in
  feed ctl ~copies:4 p;
  ignore (A.epoch ctl);
  feed ctl ~copies:4 p;
  ignore (A.epoch ctl);
  feed ctl ~copies:4 p;
  Alcotest.(check bool) "fixture promotes" true (A.epoch ctl = A.Promoted);
  (env, ctl, p)

let test_boundary_rate_never_demotes () =
  let _env, ctl, p = promoted ~seed:4 in
  (* denial_rate_limit = 0.5 and each epoch runs 16 calls with 8
     denied: the rate sits exactly on the limit.  Strict inequality
     means this is not a breach, however long it lasts. *)
  for i = 1 to 6 do
    feed ctl ~denied:2 ~copies:4 p;
    check_decision
      (Printf.sprintf "at-limit epoch %d stays" i)
      true
      (A.epoch ctl = A.Stayed)
  done;
  Alcotest.(check bool) "still enforcing at the boundary" true
    (A.state ctl = A.Enforcing)

let test_single_breach_is_not_drift () =
  let env, ctl, p = promoted ~seed:5 in
  (* Alternate over-limit and clean epochs: breaches never become
     consecutive, so breach_epochs = 2 never fires. *)
  for i = 1 to 4 do
    feed ctl ~denied:4 ~copies:4 p;
    check_decision
      (Printf.sprintf "isolated breach %d stays" i)
      true
      (A.epoch ctl = A.Stayed);
    feed ctl ~copies:4 p;
    check_decision
      (Printf.sprintf "clean epoch %d resets the breach count" i)
      true
      (A.epoch ctl = A.Stayed)
  done;
  Alcotest.(check bool) "no demotion from isolated breaches" true
    (A.state ctl = A.Enforcing);
  Alcotest.(check int) "no swap beyond create + promote" 2
    (Ksurf.Env.policy_swaps env)

let test_consecutive_breaches_demote_then_respecialize () =
  let env, ctl, p = promoted ~seed:6 in
  feed ctl ~denied:4 ~copies:4 p;
  check_decision "first breach stays" true (A.epoch ctl = A.Stayed);
  feed ctl ~denied:4 ~copies:4 p;
  check_decision "second consecutive breach demotes" true
    (A.epoch ctl = A.Demoted);
  Alcotest.(check bool) "back to auditing" true (A.state ctl = A.Auditing);
  Alcotest.(check bool) "stale spec kept through demotion" true
    (A.spec ctl <> None);
  Alcotest.(check int) "demotion swapped the policy" 3
    (Ksurf.Env.policy_swaps env);
  (* Re-learn and re-promote: same three-epoch cadence as the first
     promotion, on the fresh recorder. *)
  feed ctl ~copies:4 p;
  ignore (A.epoch ctl);
  feed ctl ~copies:4 p;
  ignore (A.epoch ctl);
  feed ctl ~copies:4 p;
  check_decision "re-promotes after re-learning" true
    (A.epoch ctl = A.Promoted);
  let s = A.stats ctl in
  Alcotest.(check int) "two promotions" 2 s.A.promotions;
  Alcotest.(check int) "one demotion" 1 s.A.demotions;
  Alcotest.(check int) "second promotion is a respecialization" 1
    s.A.respecializations;
  Alcotest.(check int) "swaps = audit install + promotions + demotions" 4
    (Ksurf.Env.policy_swaps env)

let test_divergence_demotes () =
  let env, ctl, _p = promoted ~seed:8 in
  (* A call mix the learned baseline never saw: any nonzero TV distance
     breaches a 0.0 divergence limit, so the detector must fire on the
     mix signal alone (no denials charged at all).  The controller's
     config is fixed at creation, so build a second controller with the
     tight limit and promote it the same way. *)
  ignore env;
  ignore ctl;
  let env = mk_env ~seed:9 in
  let tight = { cfg with A.divergence_limit = 0.0 } in
  let ctl = A.create ~config:tight env ~rank:0 ~name:"div" in
  match programs ~seed:7 ~n:2 ~len:4 with
  | [ p1; p2 ] ->
      (* Fixture: the two programs' category mixes must differ, or the
         TV distance would be 0 even with the tight limit. *)
      let mix_of p =
        let r = Profile.recorder ~name:"mix" () in
        Profile.observe r p;
        Profile.mix (Profile.snapshot r)
      in
      Alcotest.(check bool) "fixture: p1 and p2 mixes differ" true
        (mix_of p1 <> mix_of p2);
      feed ctl ~copies:4 p1;
      ignore (A.epoch ctl);
      feed ctl ~copies:4 p1;
      ignore (A.epoch ctl);
      feed ctl ~copies:4 p1;
      Alcotest.(check bool) "fixture promotes" true (A.epoch ctl = A.Promoted);
      feed ctl ~copies:4 p2;
      check_decision "first divergent epoch stays" true
        (A.epoch ctl = A.Stayed);
      feed ctl ~copies:4 p2;
      check_decision "second divergent epoch demotes" true
        (A.epoch ctl = A.Demoted)
  | _ -> assert false

let test_invalid_config_rejected () =
  let env = mk_env ~seed:10 in
  let expect_invalid label bad_cfg =
    match A.create ~config:bad_cfg env ~rank:0 ~name:"bad" with
    | (_ : A.t) -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "stability_epochs = 0" { cfg with A.stability_epochs = 0 };
  expect_invalid "min_epoch_calls = 0" { cfg with A.min_epoch_calls = 0 };
  expect_invalid "breach_epochs = 0" { cfg with A.breach_epochs = 0 }

(* ------------------------------------------------------------------ *)
(* Driftbench cell determinism and accounting                         *)
(* ------------------------------------------------------------------ *)

let tiny_cell policy =
  {
    D.default_config with
    D.policy;
    dose = 2.0;
    epochs = 12;
    programs_per_epoch = 12;
    corpus_programs = 16;
    drift_at_ns = 4_000_000.0;
    seed = 11;
  }

let test_driftbench_determinism () =
  let r1 = D.run (tiny_cell D.Adaptive) in
  let r2 = D.run (tiny_cell D.Adaptive) in
  Alcotest.(check bool) "same config, bit-identical result" true (r1 = r2);
  (* The accounting identity the smoke gate also enforces: every policy
     transition is a swap, and the adaptive cell's swaps decompose into
     the initial audit installs plus the controller's moves. *)
  Alcotest.(check int) "swaps = ranks + promotions + demotions"
    (r1.D.ranks + r1.D.promotions + r1.D.demotions)
    r1.D.swaps;
  Alcotest.(check int) "exactly one drift injection at dose > 0" 1 r1.D.drifts;
  Alcotest.(check bool) "fp rate within [0, 1]" true
    (r1.D.fp_rate >= 0.0 && r1.D.fp_rate <= 1.0)

(* ------------------------------------------------------------------ *)
(* Sweep-level guarantees: jobs byte-identity and journal resume      *)
(* ------------------------------------------------------------------ *)

let doses = [ 0.0; 2.0 ]
let sweep_policies = [ D.Static; D.Adaptive ]

let run ?journal ?pool () =
  E.Drift.run ~seed:7 ~scale:E.Quick ~doses ~policies:sweep_policies ?journal
    ?pool ()

let export_bytes t dir =
  match Ksurf.Export.drift ~dir t with
  | [ p ] -> read_file p
  | ps -> Alcotest.failf "expected one exported file, got %d" (List.length ps)

let test_jobs_invariant () =
  let seq = Ksurf.Pool.with_pool ~jobs:1 (fun pool -> run ~pool ()) in
  let par = Ksurf.Pool.with_pool ~jobs:4 (fun pool -> run ~pool ()) in
  let bytes_of t = with_tmp_dir "ksurf-drift" (fun dir -> export_bytes t dir) in
  Alcotest.(check string) "csv bytes identical across --jobs" (bytes_of seq)
    (bytes_of par)

let test_journal_resume () =
  let full = run () in
  let keys =
    List.concat_map
      (fun policy -> List.map (fun dose -> E.Drift.cell_key (policy, dose)) doses)
      sweep_policies
  in
  let half = List.filteri (fun i _ -> i < List.length keys / 2) keys in
  let jpath = Filename.temp_file "ksurf-drift" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove jpath)
    (fun () ->
      let journal = Ksurf.Recov_journal.load ~path:jpath () in
      List.iter (Ksurf.Recov_journal.record journal) half;
      Ksurf.Recov_journal.flush journal;
      let resumed = run ~journal () in
      Alcotest.(check int) "resume computes only the missing cells"
        (List.length keys - List.length half)
        (List.length resumed.E.Drift.cells);
      (* Resumed cells must equal the clean run's, field for field
         (immutable scalars + strings, so structural equality is
         exact). *)
      List.iter
        (fun (c : E.Drift.cell) ->
          match E.Drift.cell full ~policy:c.D.policy ~dose:c.D.dose with
          | Some f -> Alcotest.(check bool) "cell equals clean run" true (f = c)
          | None -> Alcotest.fail "resumed cell missing from clean run")
        resumed.E.Drift.cells;
      (* A second resume with the now-complete journal is a no-op. *)
      List.iter
        (fun (c : E.Drift.cell) ->
          match D.policy_of_string c.D.policy with
          | Some p ->
              Ksurf.Recov_journal.record journal (E.Drift.cell_key (p, c.D.dose))
          | None -> Alcotest.failf "bad policy %s" c.D.policy)
        resumed.E.Drift.cells;
      Ksurf.Recov_journal.flush journal;
      let again = run ~journal:(Ksurf.Recov_journal.load ~path:jpath ()) () in
      Alcotest.(check int) "complete journal skips everything" 0
        (List.length again.E.Drift.cells))

let suite =
  [
    Alcotest.test_case "recorder snapshot determinism" `Quick
      test_recorder_determinism;
    Alcotest.test_case "promotion needs consecutive stability" `Quick
      test_promotion_needs_consecutive_stability;
    Alcotest.test_case "underfed epochs count for nothing" `Quick
      test_underfed_epochs_count_for_nothing;
    Alcotest.test_case "moving frontier resets stability" `Quick
      test_moving_frontier_resets_stability;
    Alcotest.test_case "at-limit denial rate never demotes" `Quick
      test_boundary_rate_never_demotes;
    Alcotest.test_case "single breach is not drift" `Quick
      test_single_breach_is_not_drift;
    Alcotest.test_case "consecutive breaches demote, then respecialize" `Quick
      test_consecutive_breaches_demote_then_respecialize;
    Alcotest.test_case "call-mix divergence demotes" `Quick
      test_divergence_demotes;
    Alcotest.test_case "invalid config rejected" `Quick
      test_invalid_config_rejected;
    Alcotest.test_case "driftbench cell deterministic" `Quick
      test_driftbench_determinism;
    Alcotest.test_case "jobs 1 vs 4 byte-identical export" `Quick
      test_jobs_invariant;
    Alcotest.test_case "journal kill/resume equivalence" `Quick
      test_journal_resume;
  ]
