open Ksurf

let test_readers_share () =
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw" in
  let last = ref nan in
  for _ = 1 to 4 do
    Engine.spawn engine (fun () ->
        Rwlock.with_read rw 10.0;
        last := Engine.now engine)
  done;
  Engine.run engine;
  (* All four readers overlap: total time is one hold. *)
  Alcotest.(check (float 1e-9)) "concurrent readers" 10.0 !last

let test_writers_exclusive () =
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw" in
  let last = ref nan in
  for _ = 1 to 3 do
    Engine.spawn engine (fun () ->
        Rwlock.with_write rw 10.0;
        last := Engine.now engine)
  done;
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "serialised writers" 30.0 !last

let test_writer_excludes_readers () =
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw" in
  let reader_done = ref nan in
  Engine.spawn engine (fun () -> Rwlock.with_write rw 100.0);
  Engine.spawn ~at:1.0 engine (fun () ->
      Rwlock.with_read rw 5.0;
      reader_done := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "reader waits for writer" 105.0 !reader_done

let test_writer_preference () =
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw" in
  let order = ref [] in
  (* Reader holds; writer queues; a later reader must NOT overtake the
     queued writer. *)
  Engine.spawn engine (fun () ->
      Rwlock.acquire_read rw;
      Engine.delay 50.0;
      Rwlock.release_read rw);
  Engine.spawn ~at:10.0 engine (fun () ->
      Rwlock.acquire_write rw;
      order := "writer" :: !order;
      Engine.delay 10.0;
      Rwlock.release_write rw);
  Engine.spawn ~at:20.0 engine (fun () ->
      Rwlock.acquire_read rw;
      order := "reader2" :: !order;
      Engine.delay 1.0;
      Rwlock.release_read rw);
  Engine.run engine;
  Alcotest.(check (list string)) "writer first" [ "writer"; "reader2" ]
    (List.rev !order)

let test_state_queries () =
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw" in
  Engine.spawn engine (fun () ->
      Rwlock.acquire_read rw;
      Alcotest.(check int) "one reader" 1 (Rwlock.readers rw);
      Alcotest.(check bool) "no writer" false (Rwlock.writer_held rw);
      Rwlock.release_read rw;
      Rwlock.acquire_write rw;
      Alcotest.(check bool) "writer held" true (Rwlock.writer_held rw);
      Rwlock.release_write rw);
  Engine.run engine

let test_bad_release () =
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw" in
  Engine.spawn engine (fun () -> Rwlock.release_read rw);
  Alcotest.(check bool) "read release raises, naming the lock" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Invalid_argument msg) ->
       Test_util.contains ~sub:"rw" msg);
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw2" in
  Engine.spawn engine (fun () -> Rwlock.release_write rw);
  Alcotest.(check bool) "write release raises, naming the lock" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Invalid_argument msg) ->
       Test_util.contains ~sub:"rw2" msg)

let test_readers_resume_after_writer () =
  let engine = Engine.create () in
  let rw = Rwlock.create ~engine ~name:"rw" in
  let finished = ref 0 in
  Engine.spawn engine (fun () -> Rwlock.with_write rw 10.0);
  for _ = 1 to 3 do
    Engine.spawn ~at:1.0 engine (fun () ->
        Rwlock.with_read rw 5.0;
        incr finished;
        (* All three readers were granted together after the writer. *)
        Alcotest.(check (float 1e-9)) "batched grant" 15.0 (Engine.now engine))
  done;
  Engine.run engine;
  Alcotest.(check int) "all readers ran" 3 !finished

let suite =
  [
    Alcotest.test_case "readers share" `Quick test_readers_share;
    Alcotest.test_case "writers exclusive" `Quick test_writers_exclusive;
    Alcotest.test_case "writer excludes readers" `Quick
      test_writer_excludes_readers;
    Alcotest.test_case "writer preference" `Quick test_writer_preference;
    Alcotest.test_case "state queries" `Quick test_state_queries;
    Alcotest.test_case "bad release" `Quick test_bad_release;
    Alcotest.test_case "readers batch after writer" `Quick
      test_readers_resume_after_writer;
  ]
