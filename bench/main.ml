(* The benchmark harness: regenerates every table and figure of the
   paper (at Full scale) and micro-benchmarks the simulator core with
   Bechamel.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table2     # one experiment
     dune exec bench/main.exe micro      # microbenchmarks only

   A second argument "quick" switches the experiments to the fast
   smoke-scale used by tests. *)

module E = Ksurf.Experiments

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Format.printf "@.[%s took %.1fs]@.@." name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Experiment harnesses: one per table/figure.                         *)

let table1 ~seed:_ ~scale:_ ~corpus:_ =
  Format.printf "%a@." E.Table1.pp (E.Table1.run ())

let table2 ~seed ~scale ~corpus =
  Format.printf "%a@." E.Table2.pp (E.Table2.run ~seed ~scale ~corpus ())

let fig2 ~seed ~scale ~corpus =
  Format.printf "%a@." E.Fig2.pp (E.Fig2.run ~seed ~scale ~corpus ())

let table3 ~seed ~scale ~corpus =
  Format.printf "%a@." E.Table3.pp (E.Table3.run ~seed ~scale ~corpus ())

let fig3 ~seed ~scale ~corpus =
  Format.printf "%a@." E.Fig3.pp (E.Fig3.run ~seed ~scale ~corpus ())

let fig4 ~seed ~scale ~corpus =
  Format.printf "%a@." E.Fig4.pp (E.Fig4.run ~seed ~scale ~corpus ())

let ablate ~seed ~scale ~corpus =
  Format.printf "%a@." E.Ablate.pp (E.Ablate.run ~seed ~scale ~corpus ())

let locks ~seed ~scale ~corpus =
  Format.printf "%a@." E.Locks.pp (E.Locks.run ~seed ~scale ~corpus ())

let lwvm ~seed ~scale ~corpus =
  Format.printf "%a@." E.Lwvm.pp (E.Lwvm.run ~seed ~scale ~corpus ())

let ablate_virt ~seed ~scale ~corpus =
  Format.printf "%a@." E.Ablate_virt.pp
    (E.Ablate_virt.run ~seed ~scale ~corpus ())

let dose ~seed ~scale ~corpus =
  Format.printf "%a@." E.Dose.pp (E.Dose.run ~seed ~scale ~corpus ())

let specialize ~seed ~scale ~corpus =
  Format.printf "%a@." E.Specialize.pp (E.Specialize.run ~seed ~scale ~corpus ())

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig2", fig2);
    ("table3", table3);
    ("fig3", fig3);
    ("fig4", fig4);
    ("ablate", ablate);
    ("ablate-virt", ablate_virt);
    ("lwvm", lwvm);
    ("locks", locks);
    ("dose", dose);
    ("specialize", specialize);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator core.                     *)

let micro_tests () =
  let open Bechamel in
  let open Ksurf in
  let prng_test =
    Test.make ~name:"prng-uniform"
      (Staged.stage
         (let rng = Prng.create 1 in
          fun () -> ignore (Prng.uniform rng)))
  in
  let heap_test =
    Test.make ~name:"heap-push-pop-64"
      (Staged.stage (fun () ->
           let h = Ksurf_sim.Heap.create () in
           for i = 0 to 63 do
             Ksurf_sim.Heap.push h ~time:(float_of_int (i * 37 mod 64)) ~seq:i i
           done;
           while not (Ksurf_sim.Heap.is_empty h) do
             ignore (Ksurf_sim.Heap.pop h)
           done))
  in
  let engine_test =
    Test.make ~name:"engine-spawn-run-100-events"
      (Staged.stage (fun () ->
           let engine = Engine.create ~seed:1 () in
           Engine.spawn engine (fun () ->
               for _ = 1 to 100 do
                 Engine.delay 10.0
               done);
           Engine.run engine))
  in
  let lock_test =
    Test.make ~name:"contended-lock-8-procs"
      (Staged.stage (fun () ->
           let engine = Engine.create ~seed:1 () in
           let lock = Lock.create ~engine ~name:"bench" in
           for _ = 1 to 8 do
             Engine.spawn engine (fun () ->
                 for _ = 1 to 16 do
                   Lock.with_hold lock 5.0
                 done)
           done;
           Engine.run engine))
  in
  let syscall_test =
    let spec = Option.get (Syscalls.by_name "open") in
    let rng = Prng.create 2 in
    Test.make ~name:"syscall-exec-open"
      (Staged.stage (fun () ->
           let engine = Engine.create ~seed:1 () in
           let kernel =
             Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:4
               ~mem_mb:1024 ()
           in
           let arg = Arg.generate spec.Spec.arg_model rng in
           let ctx = { Instance.core = 0; tenant = 0; key = 0; cgroup = None } in
           Engine.spawn engine (fun () ->
               Instance.exec_program kernel ctx (spec.Spec.ops arg));
           Engine.run engine))
  in
  let kde_test =
    let rng = Prng.create 3 in
    let samples = Array.init 256 (fun _ -> Prng.float rng 1000.0) in
    Test.make ~name:"kde-curve-256"
      (Staged.stage (fun () -> ignore (Kde.curve ~points:32 samples)))
  in
  let coverage_test =
    let rng = Prng.create 4 in
    let prog = Program.random rng ~id:0 ~min_len:8 ~max_len:8 in
    Test.make ~name:"coverage-of-program-8"
      (Staged.stage (fun () -> ignore (Coverage.of_program prog)))
  in
  let quantile_test =
    let rng = Prng.create 5 in
    let samples = Array.init 4096 (fun _ -> Prng.float rng 1e6) in
    Test.make ~name:"quantile-p99-4096"
      (Staged.stage (fun () -> ignore (Quantile.p99 samples)))
  in
  [
    prng_test;
    heap_test;
    engine_test;
    lock_test;
    syscall_test;
    kde_test;
    coverage_test;
    quantile_test;
  ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Format.printf "Microbenchmarks (Bechamel, OLS ns/run):@.@.";
  let test = Test.make_grouped ~name:"ksurf" (micro_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (estimate :: _) -> rows := (name, estimate) :: !rows
      | Some [] | None -> rows := (name, nan) :: !rows)
    results;
  List.iter
    (fun (name, estimate) ->
      Format.printf "  %-40s %12.1f ns/run@." name estimate)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale =
    if List.mem "quick" args then E.Quick
    else if List.mem "full" args then E.Full
    else E.Full
  in
  let selected = List.filter (fun a -> a <> "quick" && a <> "full") args in
  let seed = 42 in
  let wants name =
    selected = [] || List.mem name selected || List.mem "all" selected
  in
  let any_experiment = List.exists (fun (name, _) -> wants name) experiments in
  if any_experiment then begin
    let corpus =
      timed "corpus generation" (fun () -> E.default_corpus ~seed scale)
    in
    List.iter
      (fun (name, run) ->
        if wants name then timed name (fun () -> run ~seed ~scale ~corpus))
      experiments
  end;
  if wants "micro" then timed "micro" run_micro
