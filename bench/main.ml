(* The benchmark harness: regenerates every table and figure of the
   paper (at Full scale) and micro-benchmarks the simulator core with
   Bechamel.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table2     # one experiment
     dune exec bench/main.exe micro      # microbenchmarks only
     dune exec bench/main.exe sweep quick  # kpar throughput scan

   A second argument "quick" switches the experiments to the fast
   smoke-scale used by tests; "--jobs N" sets the sweep worker count
   (default: KSURF_JOBS or the machine's recommended domain count
   minus one). *)

module E = Ksurf.Experiments

(* Monotonic, not [Unix.gettimeofday]: an NTP step mid-benchmark would
   otherwise corrupt the reported durations and BENCH_kpar.json. *)
let timed name f =
  let t0 = Ksurf.Clock.now_s () in
  let r = f () in
  Format.printf "@.[%s took %.1fs]@.@." name (Ksurf.Clock.elapsed_s ~since:t0);
  r

(* ------------------------------------------------------------------ *)
(* Experiment harnesses: one per table/figure.                         *)

let table1 ~seed:_ ~scale:_ ~corpus:_ ~pool:_ =
  Format.printf "%a@." E.Table1.pp (E.Table1.run ())

let table2 ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Table2.pp (E.Table2.run ~seed ~scale ~corpus ~pool ())

let fig2 ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Fig2.pp (E.Fig2.run ~seed ~scale ~corpus ~pool ())

let table3 ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Table3.pp (E.Table3.run ~seed ~scale ~corpus ~pool ())

let fig3 ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Fig3.pp (E.Fig3.run ~seed ~scale ~corpus ~pool ())

let fig4 ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Fig4.pp (E.Fig4.run ~seed ~scale ~corpus ~pool ())

let ablate ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Ablate.pp (E.Ablate.run ~seed ~scale ~corpus ~pool ())

let locks ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Locks.pp (E.Locks.run ~seed ~scale ~corpus ~pool ())

let lwvm ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Lwvm.pp (E.Lwvm.run ~seed ~scale ~corpus ~pool ())

let ablate_virt ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Ablate_virt.pp
    (E.Ablate_virt.run ~seed ~scale ~corpus ~pool ())

let dose ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Dose.pp (E.Dose.run ~seed ~scale ~corpus ~pool ())

let specialize ~seed ~scale ~corpus ~pool =
  Format.printf "%a@." E.Specialize.pp
    (E.Specialize.run ~seed ~scale ~corpus ~pool ())

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig2", fig2);
    ("table3", table3);
    ("fig3", fig3);
    ("fig4", fig4);
    ("ablate", ablate);
    ("ablate-virt", ablate_virt);
    ("lwvm", lwvm);
    ("locks", locks);
    ("dose", dose);
    ("specialize", specialize);
  ]

(* ------------------------------------------------------------------ *)
(* kpar throughput scan: the dose sweep at increasing worker counts.   *)

(* Runs the dose sweep once per jobs setting, measures cells/sec on the
   monotonic clock, stable-hashes the rendered output to prove every
   worker count produced the identical result, and writes the lot to
   BENCH_kpar.json.  Wall-clock speedup is capped by the host's cores
   — min(jobs, cores) is the most any schedule can deliver — so the
   gate adapts: on a host with >= 4 cores, [--gate-speedup X] enforces
   the full X floor at jobs=4; on smaller hosts it enforces the
   anti-scaling floor instead.  The floor leaves ~25% headroom for
   scheduler noise on an oversubscribed 1-core box (observed runs swing
   0.83-1.03x there) while still sitting far above the 0.31-0.49x
   signature of the GC-rendezvous bug it guards against.  The hash
   equality is the unconditional hard claim either way. *)
let anti_scaling_floor = 0.75

(* The gate branches on the host's core count, which makes the
   full-floor branch untestable on small machines; KSURF_BENCH_ASSUME_CORES
   pretends the host has N cores so both branches (and the fail path)
   can be driven anywhere.  Test hook only — it changes which floor is
   enforced, never the measured numbers. *)
let assumed_cores () =
  match Sys.getenv_opt "KSURF_BENCH_ASSUME_CORES" with
  | Some s when (match int_of_string_opt (String.trim s) with
                | Some n -> n > 0
                | None -> false) ->
      int_of_string (String.trim s)
  | Some _ | None -> Domain.recommended_domain_count ()

let run_sweep ~seed ~scale ~gate_speedup =
  let cores = assumed_cores () in
  let corpus = E.default_corpus ~seed scale in
  let job_counts = [ 1; 2; 4; 8 ] in
  (* Best of two timed runs per job count.  Host interference (another
     process stealing the core mid-run) only ever slows a run down, so
     min-time is the low-noise estimator — a single-run sweep on a busy
     box swings ±20% and flakes the gate.  Both runs must hash
     identically; the determinism check below then compares across job
     counts as before. *)
  let reps = 2 in
  let rows =
    List.map
      (fun jobs ->
        Ksurf.Pool.with_pool ~jobs (fun pool ->
            let timed_run () =
              let t0 = Ksurf.Clock.now_s () in
              let t = E.Dose.run ~seed ~scale ~corpus ~pool () in
              let seconds = Ksurf.Clock.elapsed_s ~since:t0 in
              let cells = List.length t.E.Dose.cells in
              let hash =
                Ksurf.Stable_hash.string (Format.asprintf "%a" E.Dose.pp t)
              in
              (jobs, cells, seconds, hash)
            in
            let runs = List.init reps (fun _ -> timed_run ()) in
            let (_, _, _, h0) = List.hd runs in
            List.iter
              (fun (_, _, _, h) ->
                if h <> h0 then begin
                  Format.printf
                    "  jobs=%d: repeat run DIVERGED from its first run@." jobs;
                  exit 1
                end)
              runs;
            List.fold_left
              (fun ((_, _, best_s, _) as best) ((_, _, s, _) as r) ->
                if s < best_s then r else best)
              (List.hd runs) (List.tl runs)))
      job_counts
  in
  let hash0 = match rows with (_, _, _, h) :: _ -> h | [] -> 0 in
  let deterministic = List.for_all (fun (_, _, _, h) -> h = hash0) rows in
  let base_rate =
    match rows with
    | (_, cells, seconds, _) :: _ when seconds > 0.0 ->
        float_of_int cells /. seconds
    | _ -> 0.0
  in
  Format.printf "kpar sweep throughput (dose sweep, seed=%d):@." seed;
  List.iter
    (fun (jobs, cells, seconds, hash) ->
      let rate = if seconds > 0.0 then float_of_int cells /. seconds else 0.0 in
      Format.printf
        "  jobs=%d  %d cells in %.2fs  (%.2f cells/s, %.2fx, hash %08x)@."
        jobs cells seconds rate
        (if base_rate > 0.0 then rate /. base_rate else 0.0)
        hash)
    rows;
  Format.printf "  outputs across job counts: %s@."
    (if deterministic then "bit-identical" else "DIVERGENT");
  Format.printf
    "  host cores: %d (wall-clock speedup at jobs=N is capped at min(N, %d))@."
    cores cores;
  (* Per-jobs speedup ratios, pulled out as named top-level JSON fields
     so dashboards and the gate below read them without re-deriving
     anything from the row list. *)
  let speedup_of jobs =
    List.find_map
      (fun (j, cells, seconds, _) ->
        if j = jobs && seconds > 0.0 && base_rate > 0.0 then
          Some (float_of_int cells /. seconds /. base_rate)
        else None)
      rows
    |> Option.value ~default:0.0
  in
  let json =
    let row_json (jobs, cells, seconds, hash) =
      let rate = if seconds > 0.0 then float_of_int cells /. seconds else 0.0 in
      Printf.sprintf
        "    { \"jobs\": %d, \"cells\": %d, \"seconds\": %.6f, \
         \"cells_per_sec\": %.3f, \"speedup\": %.3f, \"output_hash\": \
         \"%08x\" }"
        jobs cells seconds rate
        (if base_rate > 0.0 then rate /. base_rate else 0.0)
        hash
    in
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"kpar-dose-sweep\",\n\
      \  \"seed\": %d,\n\
      \  \"scale\": %S,\n\
      \  \"host_cores\": %d,\n\
      \  \"speedup_attainable_jobs4\": %.1f,\n\
      \  \"deterministic_across_jobs\": %b,\n\
      \  \"speedup_jobs2\": %.3f,\n\
      \  \"speedup_jobs4\": %.3f,\n\
      \  \"speedup_jobs8\": %.3f,\n\
      \  \"rows\": [\n%s\n  ]\n\
       }\n"
      seed
      (match scale with E.Quick -> "quick" | E.Full -> "full")
      cores
      (float_of_int (min 4 cores))
      deterministic (speedup_of 2) (speedup_of 4) (speedup_of 8)
      (String.concat ",\n" (List.map row_json rows))
  in
  Ksurf.Fileio.write_atomic ~path:"BENCH_kpar.json" (fun oc ->
      output_string oc json);
  Format.printf "  wrote BENCH_kpar.json@.";
  if not deterministic then exit 1;
  (* Scaling gate: require the jobs=4 speedup to clear a floor.  The
     requested floor applies verbatim where the hardware can deliver it
     (>= 4 cores); hosts with fewer cores are still gated — on the
     anti-scaling floor, because a correct pool may cost a little
     coordination but must never serialise the way the GC-rendezvous
     bug did (0.31–0.49x before the fix). *)
  match gate_speedup with
  | None -> ()
  | Some floor ->
      let s4 = speedup_of 4 in
      let applied, why =
        if cores >= 4 then (floor, Printf.sprintf "wall-clock floor %.2fx" floor)
        else
          ( anti_scaling_floor,
            Printf.sprintf
              "anti-scaling floor %.2fx (host has %d core%s: %.2fx is \
               unattainable wall-clock; the full floor applies on >= 4 cores)"
              anti_scaling_floor cores
              (if cores = 1 then "" else "s")
              floor )
      in
      if s4 < applied then begin
        Format.printf "  speedup gate FAILED: jobs=4 %.2fx < %s@." s4 why;
        exit 1
      end
      else Format.printf "  speedup gate passed: jobs=4 %.2fx >= %s@." s4 why

(* ------------------------------------------------------------------ *)
(* ktenant memory-flatness bench: the same churny fleet at 10^5 and    *)
(* 10^6 requests.  Every latency accumulator is a Streamstat, so peak  *)
(* RSS must stay flat while the request count grows 10x — that ratio   *)
(* is the hard claim, the wall-clock numbers are machine-dependent     *)
(* context.                                                            *)

(* Peak resident set (kB) from /proc/self/status; 0 where the kernel
   doesn't provide it (non-Linux).  VmHWM is a process-lifetime
   high-water mark, so running the small target first means any growth
   measured after the big target is growth the big target caused. *)
let vm_hwm_kb () =
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | line ->
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                Scanf.sscanf (String.sub line 6 (String.length line - 6))
                  " %d" Fun.id
              else scan ()
          | exception End_of_file -> 0
        in
        scan ())
  with Sys_error _ -> 0

let run_tenancy ~seed ~scale =
  let module F = Ksurf.Fleet in
  let module P = Ksurf.Tenant_policy in
  let targets =
    match scale with
    | E.Quick -> [ 10_000; 100_000 ]
    | E.Full -> [ 100_000; 1_000_000 ]
  in
  let config target =
    {
      F.default_config with
      F.tenants = 64;
      churn_per_day = 8.0;
      policy = P.Static P.Docker;
      seed;
      (* t_end far beyond the request target: the run always stops on
         the target, and the 1% warmup fraction keeps the staggered
         boot storm short. *)
      days = 4000.0;
      warmup_fraction = 0.001;
      request_target = Some target;
    }
  in
  let rows =
    List.map
      (fun target ->
        Gc.compact ();
        let t0 = Ksurf.Clock.now_s () in
        let r = F.run (config target) in
        let seconds = Ksurf.Clock.elapsed_s ~since:t0 in
        let hwm = vm_hwm_kb () in
        let heap_mb =
          float_of_int (Gc.quick_stat ()).Gc.top_heap_words
          *. float_of_int (Sys.word_size / 8)
          /. 1048576.0
        in
        Format.printf
          "  %7d requests: %6.2fs wall (%.0f req/s), p99 %.1f us, %d cgroup \
           storms, peak RSS %d kB, top heap %.1f MB@."
          r.F.completed seconds
          (if seconds > 0.0 then float_of_int r.F.completed /. seconds else 0.0)
          (r.F.p99 /. 1e3)
          (r.F.cgroup_creates + r.F.cgroup_destroys)
          hwm heap_mb;
        (target, r, seconds, hwm, heap_mb))
      targets
  in
  let hwm_of i = match List.nth rows i with _, _, _, h, _ -> h in
  let rss_ratio =
    if hwm_of 0 > 0 then float_of_int (hwm_of 1) /. float_of_int (hwm_of 0)
    else 0.0
  in
  Format.printf "  peak-RSS ratio (10x the requests): %.3fx — %s@." rss_ratio
    (if rss_ratio > 0.0 && rss_ratio <= 2.0 then "flat"
     else if rss_ratio = 0.0 then "unavailable"
     else "NOT FLAT");
  let json =
    let row_json (target, (r : F.result), seconds, hwm, heap_mb) =
      Printf.sprintf
        "    { \"request_target\": %d, \"completed\": %d, \"seconds\": %.6f, \
         \"requests_per_sec\": %.1f, \"p99_ns\": %.0f, \"cgroup_storms\": %d, \
         \"peak_rss_kb\": %d, \"top_heap_mb\": %.2f }"
        target r.F.completed seconds
        (if seconds > 0.0 then float_of_int r.F.completed /. seconds else 0.0)
        r.F.p99
        (r.F.cgroup_creates + r.F.cgroup_destroys)
        hwm heap_mb
    in
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"ktenant-memory-flatness\",\n\
      \  \"seed\": %d,\n\
      \  \"scale\": %S,\n\
      \  \"tenants\": 64,\n\
      \  \"churn_per_day\": 8.0,\n\
      \  \"policy\": \"docker\",\n\
      \  \"peak_rss_ratio\": %.3f,\n\
      \  \"rss_flat\": %b,\n\
      \  \"rows\": [\n%s\n  ]\n\
       }\n"
      seed
      (match scale with E.Quick -> "quick" | E.Full -> "full")
      rss_ratio
      (rss_ratio > 0.0 && rss_ratio <= 2.0)
      (String.concat ",\n" (List.map row_json rows))
  in
  Ksurf.Fileio.write_atomic ~path:"BENCH_tenancy.json" (fun oc ->
      output_string oc json);
  Format.printf "  wrote BENCH_tenancy.json@.";
  (* The Streamstat claim is unconditional, so gate on it: a 10x
     request count must not double the peak RSS.  (0 = /proc absent;
     don't fail platforms that can't measure.) *)
  if rss_ratio > 2.0 then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator core.                     *)

let micro_tests () =
  let open Bechamel in
  let open Ksurf in
  let prng_test =
    Test.make ~name:"prng-uniform"
      (Staged.stage
         (let rng = Prng.create 1 in
          fun () -> ignore (Prng.uniform rng)))
  in
  let heap_test =
    Test.make ~name:"heap-push-pop-64"
      (Staged.stage (fun () ->
           let h = Ksurf_sim.Heap.create () in
           for i = 0 to 63 do
             Ksurf_sim.Heap.push h ~time:(float_of_int (i * 37 mod 64)) ~seq:i ~pid:0 i
           done;
           while not (Ksurf_sim.Heap.is_empty h) do
             ignore (Ksurf_sim.Heap.pop h)
           done))
  in
  let engine_test =
    Test.make ~name:"engine-spawn-run-100-events"
      (Staged.stage (fun () ->
           let engine = Engine.create ~seed:1 () in
           Engine.spawn engine (fun () ->
               for _ = 1 to 100 do
                 Engine.delay 10.0
               done);
           Engine.run engine))
  in
  let lock_test =
    Test.make ~name:"contended-lock-8-procs"
      (Staged.stage (fun () ->
           let engine = Engine.create ~seed:1 () in
           let lock = Lock.create ~engine ~name:"bench" in
           for _ = 1 to 8 do
             Engine.spawn engine (fun () ->
                 for _ = 1 to 16 do
                   Lock.with_hold lock 5.0
                 done)
           done;
           Engine.run engine))
  in
  let syscall_test =
    let spec = Option.get (Syscalls.by_name "open") in
    let rng = Prng.create 2 in
    Test.make ~name:"syscall-exec-open"
      (Staged.stage (fun () ->
           let engine = Engine.create ~seed:1 () in
           let kernel =
             Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:4
               ~mem_mb:1024 ()
           in
           let arg = Arg.generate spec.Spec.arg_model rng in
           let ctx = { Instance.core = 0; tenant = 0; key = 0; cgroup = None } in
           Engine.spawn engine (fun () ->
               Instance.exec_program kernel ctx (spec.Spec.ops arg));
           Engine.run engine))
  in
  let kde_test =
    let rng = Prng.create 3 in
    let samples = Array.init 256 (fun _ -> Prng.float rng 1000.0) in
    Test.make ~name:"kde-curve-256"
      (Staged.stage (fun () -> ignore (Kde.curve ~points:32 samples)))
  in
  let coverage_test =
    let rng = Prng.create 4 in
    let prog = Program.random rng ~id:0 ~min_len:8 ~max_len:8 in
    Test.make ~name:"coverage-of-program-8"
      (Staged.stage (fun () -> ignore (Coverage.of_program prog)))
  in
  let quantile_test =
    let rng = Prng.create 5 in
    let samples = Array.init 4096 (fun _ -> Prng.float rng 1e6) in
    Test.make ~name:"quantile-p99-4096"
      (Staged.stage (fun () -> ignore (Quantile.p99 samples)))
  in
  [
    prng_test;
    heap_test;
    engine_test;
    lock_test;
    syscall_test;
    kde_test;
    coverage_test;
    quantile_test;
  ]

(* Engine throughput: one sizeable mixed workload (timers + a contended
   lock) with a counting probe attached, timed on the monotonic clock
   with [Gc.minor_words] read on either side.  Events/sec is
   machine-dependent context; allocations/event is the portable number —
   it moves when someone adds a box to the hot path, whatever the
   machine.

   The multi-domain section replays the same workload, unobserved, on
   1/2/4/8 concurrent domains (one independent engine per domain — the
   kpar sweep shape), under the same per-domain minor-heap sizing
   Pool.create applies.  It is weak scaling: each domain runs the
   identical workload, so aggregate events/sec should grow toward
   min(domains, cores)x and — the regression this section exists to
   catch — must never *fall* as domains are added, which is what the
   stop-the-world minor-GC rendezvous did before ISSUE 10 (per-domain
   allocation makes each domain's arena fill independently, and every
   fill stops all domains). *)
let bench_procs = 16
let bench_steps = 2000

(* One engine's worth of work, run on the calling domain.  [probe]
   attaches the counting probe (the historical headline number counts
   probe events); the multi-domain rows run unobserved — the sweep hot
   path — and count executed events instead.  [Gc.minor_words] is
   per-domain in OCaml 5, so the caller reads the delta on its own
   domain. *)
let engine_workload ~probe () =
  let probe_events = ref 0 in
  let engine = Ksurf.Engine.create ~seed:7 () in
  if probe then Ksurf.Engine.add_probe engine (fun _ -> incr probe_events);
  let lock = Ksurf.Lock.create ~engine ~name:"bench.engine" in
  for _ = 1 to bench_procs do
    Ksurf.Engine.spawn engine (fun () ->
        for i = 1 to bench_steps do
          if i mod 8 = 0 then Ksurf.Lock.with_hold lock 5.0
          else Ksurf.Engine.delay 10.0
        done)
  done;
  let w0 = Gc.minor_words () in
  Ksurf.Engine.run engine;
  let minor_words = Gc.minor_words () -. w0 in
  let events =
    if probe then !probe_events else Ksurf.Engine.events_executed engine
  in
  (events, minor_words)

let run_engine_bench () =
  Gc.compact ();
  let t0 = Ksurf.Clock.now_s () in
  let n, minor_words = engine_workload ~probe:true () in
  let seconds = Ksurf.Clock.elapsed_s ~since:t0 in
  let events_per_sec =
    if seconds > 0.0 then float_of_int n /. seconds else 0.0
  in
  let words_per_event =
    if n > 0 then minor_words /. float_of_int n else 0.0
  in
  Format.printf
    "@.Engine throughput (%d procs x %d steps):@.  %d events in %.3fs \
     (%.0f events/s), %.1f minor words/event@."
    bench_procs bench_steps n seconds events_per_sec words_per_event;
  (* Multi-domain rows: one independent engine per domain, unobserved,
     under the pool's GC regime. *)
  Ksurf.Pool.tune_minor_heap ();
  let domain_counts = [ 1; 2; 4; 8 ] in
  (* Several engine-runs per domain: one run is ~10ms, and Domain.spawn
     is a stop-the-world event of its own — without the repetition the
     rows would measure spawn latency, not engine throughput. *)
  let iters = 12 in
  let repeated () =
    let events = ref 0 and words = ref 0.0 in
    for _ = 1 to iters do
      let e, w = engine_workload ~probe:false () in
      events := !events + e;
      words := !words +. w
    done;
    (!events, !words)
  in
  Format.printf "Multi-domain engine throughput (weak scaling, unobserved):@.";
  let md_rows =
    List.map
      (fun domains ->
        Gc.compact ();
        let t0 = Ksurf.Clock.now_s () in
        let others =
          List.init (domains - 1) (fun _ ->
              Domain.spawn (fun () ->
                  Ksurf.Pool.tune_minor_heap ();
                  repeated ()))
        in
        let first = repeated () in
        let results = first :: List.map Domain.join others in
        let seconds = Ksurf.Clock.elapsed_s ~since:t0 in
        let events = List.fold_left (fun a (e, _) -> a + e) 0 results in
        let words = List.fold_left (fun a (_, w) -> a +. w) 0.0 results in
        let eps =
          if seconds > 0.0 then float_of_int events /. seconds else 0.0
        in
        let wpe = if events > 0 then words /. float_of_int events else 0.0 in
        Format.printf
          "  domains=%d  %8d events in %.3fs  (%.0f events/s aggregate, %.1f \
           minor words/event)@."
          domains events seconds eps wpe;
        (domains, events, seconds, eps, wpe))
      domain_counts
  in
  let json =
    let md_json (domains, events, seconds, eps, wpe) =
      Printf.sprintf
        "    { \"domains\": %d, \"events\": %d, \"seconds\": %.6f, \
         \"events_per_sec\": %.1f, \"minor_words_per_event\": %.3f }"
        domains events seconds eps wpe
    in
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"engine-core\",\n\
      \  \"procs\": %d,\n\
      \  \"steps_per_proc\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"events\": %d,\n\
      \  \"seconds\": %.6f,\n\
      \  \"events_per_sec\": %.1f,\n\
      \  \"minor_words\": %.0f,\n\
      \  \"minor_words_per_event\": %.3f,\n\
      \  \"multi_domain\": [\n%s\n  ]\n\
       }\n"
      bench_procs bench_steps
      (Domain.recommended_domain_count ())
      n seconds events_per_sec minor_words words_per_event
      (String.concat ",\n" (List.map md_json md_rows))
  in
  Ksurf.Fileio.write_atomic ~path:"BENCH_engine.json" (fun oc ->
      output_string oc json);
  Format.printf "  wrote BENCH_engine.json@."

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Format.printf "Microbenchmarks (Bechamel, OLS ns/run):@.@.";
  let test = Test.make_grouped ~name:"ksurf" (micro_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (estimate :: _) -> rows := (name, estimate) :: !rows
      | Some [] | None -> rows := (name, nan) :: !rows)
    results;
  List.iter
    (fun (name, estimate) ->
      Format.printf "  %-40s %12.1f ns/run@." name estimate)
    (List.sort compare !rows);
  run_engine_bench ()

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale =
    if List.mem "quick" args then E.Quick
    else if List.mem "full" args then E.Full
    else E.Full
  in
  (* "--jobs N": worker domains for the experiment sweeps. *)
  let rec parse_jobs = function
    | [] -> (None, [])
    | ("--jobs" | "-j") :: n :: rest ->
        let _, kept = parse_jobs rest in
        (Some (max 1 (int_of_string n)), kept)
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        let _, kept = parse_jobs rest in
        let n = String.sub a 7 (String.length a - 7) in
        (Some (max 1 (int_of_string n)), kept)
    | a :: rest ->
        let jobs, kept = parse_jobs rest in
        (jobs, a :: kept)
  in
  let jobs, args = parse_jobs args in
  (* "--gate-speedup X": fail the sweep if jobs=4 scales below X. *)
  let rec parse_gate = function
    | [] -> (None, [])
    | "--gate-speedup" :: x :: rest ->
        let _, kept = parse_gate rest in
        (Some (float_of_string x), kept)
    | a :: rest ->
        let gate, kept = parse_gate rest in
        (gate, a :: kept)
  in
  let gate_speedup, args = parse_gate args in
  let selected = List.filter (fun a -> a <> "quick" && a <> "full") args in
  let seed = 42 in
  let wants name = selected = [] || List.mem name selected in
  let wants_exp name = wants name || List.mem "all" selected in
  let any_experiment =
    List.exists (fun (name, _) -> wants_exp name) experiments
  in
  if any_experiment then
    Ksurf.Pool.with_pool ~jobs:(Ksurf.Pool.resolve_jobs ?cli:jobs ()) (fun pool ->
        let corpus =
          timed "corpus generation" (fun () -> E.default_corpus ~seed scale)
        in
        List.iter
          (fun (name, run) ->
            if wants_exp name then
              timed name (fun () -> run ~seed ~scale ~corpus ~pool))
          experiments);
  if List.mem "sweep" selected then
    timed "sweep" (fun () -> run_sweep ~seed ~scale ~gate_speedup);
  if List.mem "tenancy" selected then
    timed "tenancy" (fun () -> run_tenancy ~seed ~scale);
  if wants "micro" then timed "micro" run_micro
