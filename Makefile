# Convenience entry points; everything below is plain dune.

.PHONY: all build test analyze-smoke inject-smoke specialize-smoke tenancy-smoke drift-smoke torture-smoke soak bench-json tenancy-bench engine-bench staticcheck lint check clean

all: build

build:
	dune build

test:
	dune runtest

# Sanitizer smoke run: lockdep + determinism + invariants over the
# small varbench scenario at a fixed seed.  Exits nonzero on any
# finding, so it doubles as a CI gate.
analyze-smoke:
	dune exec bin/ksurf_cli.exe -- analyze --scenario varbench --seed 42

# Fault-injection smoke run: a tiny "crashy" plan over a 2-unit native
# deployment, executed twice; exits nonzero if the injections fail to
# replay bit-identically or trip lockdep/invariants.
inject-smoke:
	dune exec bin/ksurf_cli.exe -- inject --plan crashy --seed 42 --smoke

# Specialization smoke run: compile a spec from a tiny fs-restricted
# corpus, deploy per-tenant pruned kernels (multikernel), replay twice
# under lockdep + determinism + invariants; exits nonzero on any
# finding or on an unexpected policy denial.
specialize-smoke:
	dune exec bin/ksurf_cli.exe -- specialize --seed 42 --smoke

# Tenancy smoke run (ktenant): a churny adaptive fleet executed twice
# under lockdep + determinism + invariants, then the SLO accounting
# cross-checked (attainment bounds, creates >= destroys, ...); exits
# nonzero on any divergence, finding or inconsistency.
tenancy-smoke:
	dune exec bin/ksurf_cli.exe -- tenancy --seed 42 --smoke

# Drift smoke run (kadapt): a small adaptive driftbench cell executed
# twice under lockdep + determinism + invariants, the controller
# accounting cross-checked against the probe stream (every policy
# hot-swap visible, swap count = ranks + promotions + demotions), and
# the same cell run under the static policy to assert adaptive strictly
# beats it on post-drift false positives; exits nonzero on any
# divergence, finding or inconsistency.
drift-smoke:
	dune exec bin/ksurf_cli.exe -- drift --seed 42 --smoke

# Torture smoke run (kdur): the quick crash-consistency grid (writer
# path x dose) at 1 and 4 workers with byte-compared exports and zero
# tolerated violations, then live scenario cells journalled under an
# armed host-I/O fault plan (transients, an ENOSPC window, a scheduled
# crash) with lockdep + determinism + invariants watching; exits
# nonzero on any violation, divergence or finding.
torture-smoke:
	dune exec bin/ksurf_cli.exe -- torture --seed 42 --smoke

# Chaos soak: supervised BSP under the "crashy" plan plus random
# crashes with each recovery policy (all supersteps must complete),
# then a kill-and-resume round trip from a mid-run checkpoint that
# must replay bit-identically; exits nonzero on any divergence.
soak:
	dune exec bin/ksurf_cli.exe -- recover --seed 42 --soak

# kpar throughput scan: the quick-scale dose sweep at jobs 1/2/4/8,
# cells/sec per worker count plus a stable hash of each rendered
# result, written to BENCH_kpar.json.  Exits nonzero if any job count
# produces output that differs from jobs=1 — the determinism gate —
# or if the scaling gate fails: on hosts with >= 4 cores jobs=4 must
# reach the 2x floor; on smaller hosts (where wall-clock speedup is
# physically capped at ~1x) the anti-scaling floor applies instead,
# catching any regression toward the 0.31x GC-rendezvous convoy.
bench-json:
	dune exec bench/main.exe -- sweep quick --gate-speedup 2.0

# ktenant memory-flatness bench: the same churny 64-tenant fleet at
# 10^5 and 10^6 requests, wall clock + peak RSS per run, written to
# BENCH_tenancy.json.  Exits nonzero if 10x the requests more than
# doubles the peak RSS — the streaming-statistics gate.
tenancy-bench:
	dune exec bench/main.exe -- tenancy full

# Simulator-core throughput: Bechamel microbenchmarks plus one mixed
# timer/lock workload timed end to end, events/sec and GC minor
# words/event written to BENCH_engine.json.  The allocation rate is the
# portable number; events/sec is machine context.
engine-bench:
	dune exec bench/main.exe -- micro

# Static analysis gate (kstat): certify the stock table cycle-free,
# print the interference matrix, and verify the fs workload's
# profile-derived allowlist (gaps / slack / pruned-machinery hazards).
# No simulation involved; exits nonzero on any finding.
staticcheck:
	dune exec bin/ksurf_cli.exe -- staticcheck
	dune exec bin/ksurf_cli.exe -- staticcheck --spec fs

# Source lint (klint): module-level mutable state in the
# domain-parallel layers, and raw open_out / Unix.openfile /
# Sys.rename durable writes that bypass Fileio.
lint:
	dune exec bin/klint.exe -- lib

check: build test lint staticcheck analyze-smoke inject-smoke specialize-smoke tenancy-smoke drift-smoke torture-smoke soak

clean:
	dune clean
