# Convenience entry points; everything below is plain dune.

.PHONY: all build test analyze-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Sanitizer smoke run: lockdep + determinism + invariants over the
# small varbench scenario at a fixed seed.  Exits nonzero on any
# finding, so it doubles as a CI gate.
analyze-smoke:
	dune exec bin/ksurf_cli.exe -- analyze --scenario varbench --seed 42

check: build test analyze-smoke

clean:
	dune clean
