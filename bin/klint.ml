(* klint driver: lint the repo's own sources (see lib/lint).

   Usage: klint [ROOT...] — roots default to ./lib; directories are
   walked recursively for .ml files, each linted with the repo policy
   (Lint.default_checks).  Exits 1 on any finding. *)

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | r -> r
  in
  let files = List.concat_map ml_files roots in
  let findings =
    List.concat_map
      (fun f ->
        Ksurf_lint.Lint.lint_file ~checks:(Ksurf_lint.Lint.default_checks ~path:f) f)
      files
  in
  List.iter
    (fun f -> Format.printf "%a@." Ksurf_lint.Lint.pp_finding f)
    findings;
  if findings = [] then
    Format.printf "klint: %d files clean@." (List.length files)
  else begin
    Format.printf "klint: %d finding(s) in %d files@." (List.length findings)
      (List.length files);
    exit 1
  end
