(* ksurf command-line interface: generate corpora and regenerate any of
   the paper's tables and figures from the terminal. *)

open Cmdliner
module E = Ksurf.Experiments

let setup_logs level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let logs_term = Term.(const setup_logs $ Logs_cli.level ())

let seed_arg =
  let doc = "Seed for every pseudo-random stream (runs are reproducible)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc = "Experiment scale: $(b,quick) (seconds) or $(b,full) (minutes)." in
  let scale_conv =
    Arg.conv
      ( (fun s ->
          match E.scale_of_string s with
          | Some v -> Ok v
          | None -> Error (`Msg (Printf.sprintf "unknown scale %S" s))),
        fun ppf s ->
          Format.pp_print_string ppf
            (match s with E.Quick -> "quick" | E.Full -> "full") )
  in
  Arg.(value & opt scale_conv E.Quick & info [ "scale" ] ~docv:"SCALE" ~doc)

(* Monotonic, not [Unix.gettimeofday]: an NTP step mid-experiment would
   otherwise corrupt (even negate) the reported duration. *)
let timed name f =
  let t0 = Ksurf.Clock.now_s () in
  let result = f () in
  Logs.info (fun m ->
      m "%s finished in %.1fs" name (Ksurf.Clock.elapsed_s ~since:t0));
  result

(* --- parallel sweeps --------------------------------------------------- *)

let jobs_arg =
  let doc =
    "Worker domains for sweep cells.  Results merge in canonical order, \
     so any $(docv) produces bit-identical output; falls back to \
     $(b,KSURF_JOBS), then to the machine's recommended domain count \
     minus one."
  in
  (* No cmdliner ~env here on purpose: cmdliner would refuse a
     malformed KSURF_JOBS with a hard CLI error, whereas the shared
     precedence rule (Pool.resolve_jobs) warns on stderr and degrades
     to the machine default — same behaviour as bench/main.exe. *)
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Pool.resolve_jobs owns the precedence rule: the flag when given,
   else KSURF_JOBS, else the machine default. *)
let with_pool jobs f =
  Ksurf.Pool.with_pool ~jobs:(Ksurf.Pool.resolve_jobs ?cli:jobs ()) f

(* --- resumable sweeps ------------------------------------------------- *)

let journal_arg =
  let doc =
    "Journal completed sweep cells into $(docv) (atomic writes) so an \
     interrupted run can be picked up with $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Skip cells already recorded in the $(b,--journal) file instead of \
     starting the sweep over."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

(* Without --resume a pre-existing journal is discarded: the sweep is a
   fresh run that happens to be journalled.  All I/O goes through
   Fileio so a bad --journal path exits 3 like every other I/O
   failure, and the journal's directory entry is durable. *)
let journal_of path resume =
  match path with
  | None -> None
  | Some p ->
      Ksurf.Fileio.ensure_dir (Filename.dirname p);
      if (not resume) && Sys.file_exists p then Ksurf.Fileio.remove p;
      Some (Ksurf.Recov_journal.load ~path:p ())

(* A full disk no longer aborts a sweep: the journal defers persists
   and keeps completed cells buffered in memory.  If it is still dirty
   once the sweep is done, the results above are real but the resume
   state is not on disk — stamp the run degraded and exit 3. *)
let finish_journal = function
  | None -> ()
  | Some j ->
      Ksurf.Recov_journal.flush j;
      if Ksurf.Recov_journal.persist_pending j then begin
        Format.eprintf
          "ksurf: DEGRADED: %d journal persist(s) deferred%s; completed \
           cells were kept in memory but the resume state is not durable@."
          (Ksurf.Recov_journal.deferred j)
          (match Ksurf.Recov_journal.last_error j with
          | Some e -> " (" ^ e ^ ")"
          | None -> "");
        exit 3
      end

(* --- corpus ---------------------------------------------------------- *)

let gen_corpus seed scale calls output () =
  let corpus =
    match calls with
    | None -> E.default_corpus ~seed scale
    | Some target_calls ->
        (Ksurf.Generator.run
           ~params:
             {
               Ksurf.Generator.default_params with
               Ksurf.Generator.seed;
               target_calls = Some target_calls;
             }
           ())
          .Ksurf.Generator.corpus
  in
  Format.printf "%a@." Ksurf.Corpus.pp_stats corpus;
  match output with
  | None -> ()
  | Some path ->
      Ksurf.Corpus.save corpus path;
      Format.printf "corpus written to %s@." path

let gen_corpus_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the corpus to $(docv).")
  in
  let calls =
    Arg.(
      value
      & opt (some int) None
      & info [ "calls" ] ~docv:"N"
          ~doc:
            "Paper-scale mode: grow the corpus to at least $(docv) call \
             sites after coverage saturates (the paper used 27408).")
  in
  Cmd.v
    (Cmd.info "gen-corpus" ~doc:"Generate a coverage-guided syscall corpus")
    Term.(const gen_corpus $ seed_arg $ scale_arg $ calls $ output $ logs_term)

let kind_of_name = function
  | "native" -> Some Ksurf.Env.Native
  | "multikernel" -> Some Ksurf.Env.Multikernel
  | "kvm" -> Some (Ksurf.Env.Kvm Ksurf.Virt_config.default)
  | "firecracker" -> Some (Ksurf.Env.Kvm Ksurf.Lightweight.firecracker)
  | "kata" -> Some (Ksurf.Env.Kvm Ksurf.Lightweight.kata)
  | "nabla" -> Some (Ksurf.Env.Kvm Ksurf.Lightweight.nabla)
  | "gvisor" -> Some (Ksurf.Env.Kvm Ksurf.Lightweight.gvisor)
  | "docker" -> Some Ksurf.Env.Docker
  | _ -> None

(* Replay an arbitrary corpus on an arbitrary deployment. *)
let run_corpus seed file env_name units iterations () =
  match Ksurf.Corpus.load file with
  | Error e ->
      Format.eprintf "cannot load %s: %s@." file e;
      exit 1
  | Ok corpus -> (
      match kind_of_name env_name with
      | None ->
          Format.eprintf
            "unknown environment %S \
             (native|multikernel|kvm|firecracker|kata|nabla|gvisor|docker)@."
            env_name;
          exit 1
      | Some kind ->
          let engine = Ksurf.Engine.create ~seed () in
          let env =
            Ksurf.Env.deploy ~engine kind (Ksurf.Partition.table1 units)
          in
          let params =
            { Ksurf.Harness.iterations; warmup_iterations = max 1 (iterations / 10) }
          in
          let result = Ksurf.Harness.run ~env ~corpus ~params () in
          let stats = Ksurf.Study.site_stats result in
          Format.printf
            "corpus %s on %s x%d: %d sites, %d invocations, %s of virtual time@.@."
            file env_name units (Array.length stats)
            (Ksurf.Harness.total_invocations result)
            (Ksurf.Report.duration_ns result.Ksurf.Harness.wall_time_ns);
          Format.printf "stat   %s@." Ksurf.Buckets.header;
          List.iter
            (fun (name, stat) ->
              Format.printf "%-6s %a@." name Ksurf.Buckets.pp
                (Ksurf.Study.bucket_row stat stats))
            [ ("median", Ksurf.Study.Median); ("p99", Ksurf.Study.P99);
              ("max", Ksurf.Study.Max) ])

let run_corpus_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CORPUS" ~doc:"Corpus file from gen-corpus.")
  in
  let env_name =
    Arg.(
      value & opt string "native"
      & info [ "env" ] ~docv:"ENV"
          ~doc:
            "native | multikernel | kvm | firecracker | kata | nabla | gvisor \
             | docker")
  in
  let units =
    Arg.(
      value & opt int 1
      & info [ "units" ] ~docv:"N"
          ~doc:"Isolation units (a Table-1 row: 1,2,4,8,16,32,64).")
  in
  let iterations =
    Arg.(
      value & opt int 10
      & info [ "iterations" ] ~docv:"N" ~doc:"Measured corpus repetitions.")
  in
  Cmd.v
    (Cmd.info "run-corpus"
       ~doc:"Replay a corpus file on a chosen deployment and print its \
             latency breakdown")
    Term.(
      const run_corpus $ seed_arg $ file $ env_name $ units $ iterations
      $ logs_term)

(* --- analyze ---------------------------------------------------------- *)

(* Sanitizer suite: lockdep lock-order validation, determinism replay,
   and engine invariant checks over a stock scenario.  Exits 1 on any
   finding so it can gate CI. *)
let analyze seed scenario checks csv () =
  let module A = Ksurf.Analysis in
  match A.Scenarios.of_string scenario with
  | None ->
      Format.eprintf "unknown scenario %S (%s)@." scenario
        (String.concat "|" (List.map A.Scenarios.to_string A.Scenarios.all));
      exit 2
  | Some sc -> (
      match A.Sanitizer.checks_of_string checks with
      | Error bad ->
          Format.eprintf "unknown check %S (lockdep|determinism|invariants)@."
            bad;
          exit 2
      | Ok [] ->
          Format.eprintf "no checks selected@.";
          exit 2
      | Ok selected ->
          let outcome =
            timed "analyze" (fun () ->
                A.Sanitizer.run ~scenario:sc ~seed ~checks:selected ())
          in
          Format.printf "%a@." A.Sanitizer.pp_outcome outcome;
          (match csv with
          | None -> ()
          | Some path ->
              (* I/O trouble surfaces as Fileio.Io_error and exits 3
                 through the shared handler, like every subcommand. *)
              A.Finding.export_csv ~path outcome.A.Sanitizer.findings;
              Format.printf "findings written to %s@." path);
          if outcome.A.Sanitizer.findings <> [] then exit 1)

let analyze_cmd =
  let scenario =
    Arg.(
      value & opt string "varbench"
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "Scenario to instrument: $(b,varbench), $(b,tailbench), $(b,bsp), \
             $(b,faulted-varbench), $(b,faulted-tailbench) (the same \
             workloads under an armed kfault plan), \
             $(b,specialized-varbench) (kspec-pruned multikernel deployment \
             with the Enforce allowlist installed), $(b,recovered-bsp) (the \
             supervised BSP synthesis failing over under the crashy plan), \
             or $(b,inversion) (a deliberate lock-order inversion that \
             self-tests the analyzer).")
  in
  let checks =
    Arg.(
      value
      & opt string "lockdep,determinism,invariants"
      & info [ "check" ] ~docv:"CHECKS"
          ~doc:
            "Comma-separated checks to run: $(b,lockdep), $(b,determinism), \
             $(b,invariants).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Export the findings to $(docv).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the sanitizer suite (lockdep, determinism, invariants) over a \
          stock scenario; exit nonzero on any finding")
    Term.(const analyze $ seed_arg $ scenario $ checks $ csv $ logs_term)

(* --- inject ----------------------------------------------------------- *)

(* Fault-injection driver: arm a kfault plan over a varbench deployment,
   run it twice under the determinism checker (with lockdep + invariants
   attached to the first run), and report the injection counters and the
   replay hashes.  Exits 1 on any finding or hash divergence — the
   [--smoke] form is the `make check` gate. *)
let inject seed plan_name env_name units intensity smoke () =
  let module A = Ksurf.Analysis in
  let plan =
    match Ksurf.Fault_plan.preset plan_name with
    | Some p -> p
    | None -> (
        match Ksurf.Fault_plan.load plan_name with
        | Ok p -> p
        | Error e ->
            Format.eprintf
              "cannot load plan %S: %s (presets: %s)@." plan_name e
              (String.concat ", " (List.map fst Ksurf.Fault_plan.presets));
            exit 2)
  in
  match kind_of_name env_name with
  | None ->
      Format.eprintf
        "unknown environment %S \
             (native|multikernel|kvm|firecracker|kata|nabla|gvisor|docker)@."
        env_name;
      exit 1
  | Some kind ->
      let plan =
        if intensity = 1.0 then plan else Ksurf.Fault_plan.scale intensity plan
      in
      let corpus =
        if smoke then
          (Ksurf.Generator.run
             ~params:
               {
                 Ksurf.Generator.default_params with
                 Ksurf.Generator.seed;
                 target_programs = 4;
               }
             ())
            .Ksurf.Generator.corpus
        else E.default_corpus ~seed E.Quick
      in
      let params =
        if smoke then { Ksurf.Harness.iterations = 2; warmup_iterations = 1 }
        else { Ksurf.Harness.iterations = 6; warmup_iterations = 1 }
      in
      let last = ref None in
      let findings = ref [] in
      let static_done = ref false in
      let run_once ~probe =
        let static = ref None in
        let engine = Ksurf.Engine.create ~seed () in
        Ksurf.Engine.add_probe engine probe;
        if not !static_done then begin
          let lockdep = A.Lockdep.create () in
          let invariants = A.Invariants.create () in
          Ksurf.Engine.add_probe engine (A.Lockdep.on_event lockdep);
          Ksurf.Engine.add_probe engine (A.Invariants.on_event invariants);
          static := Some (lockdep, invariants)
        end;
        let env =
          Ksurf.Env.deploy ~engine kind (Ksurf.Partition.table1 units)
        in
        let kf = Ksurf.Kfault.arm ~env ~plan ~seed () in
        let result =
          Ksurf.Harness.run ~env ~corpus ~params ~straggler_timeout_ns:5e9 ()
        in
        Ksurf.Kfault.disarm kf;
        last := Some (result, Ksurf.Kfault.stats kf, Ksurf.Kfault.total_injections kf);
        match !static with
        | None -> ()
        | Some (lockdep, invariants) ->
            static_done := true;
            let drained = Ksurf.Engine.pending engine = 0 in
            findings :=
              !findings
              @ A.Lockdep.finish ~drained lockdep
              @ A.Invariants.finish ~drained invariants
      in
      let det =
        timed "inject" (fun () ->
            A.Determinism.check ~run:(fun ~probe -> run_once ~probe) ())
      in
      findings := !findings @ A.Determinism.to_findings det;
      let result, stats, injections =
        match !last with Some x -> x | None -> assert false
      in
      Format.printf "inject plan=%s dose=%.2f env=%s units=%d seed=%d@."
        plan.Ksurf.Fault_plan.name intensity env_name units seed;
      Format.printf
        "  %d sites, %d invocations, %s of virtual time, %d injections@."
        (Array.length result.Ksurf.Harness.sites)
        (Ksurf.Harness.total_invocations result)
        (Ksurf.Report.duration_ns result.Ksurf.Harness.wall_time_ns)
        injections;
      Format.printf "  %a@." Ksurf.Kfault.pp_stats stats;
      Format.printf "  harness: %d retries, %d abandoned, %s@."
        result.Ksurf.Harness.transient_retries
        result.Ksurf.Harness.abandoned_calls
        (if result.Ksurf.Harness.degraded then
           Printf.sprintf "DEGRADED (%d/%d ranks survived)"
             result.Ksurf.Harness.survivors result.Ksurf.Harness.ranks
         else "all ranks survived");
      Format.printf "  replay: %d vs %d events, hash %08x vs %08x — %s@."
        det.A.Determinism.events_first det.A.Determinism.events_second
        det.A.Determinism.hash_first det.A.Determinism.hash_second
        (if A.Determinism.deterministic det then "identical" else "DIVERGENT");
      List.iter (fun f -> Format.printf "  %a@." A.Finding.pp f) !findings;
      if !findings <> [] then exit 1;
      Format.printf "  no findings: faulted run is deterministic and clean@."

let inject_cmd =
  let plan =
    Arg.(
      value & opt string "mixed"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan: a preset name ($(b,syscalls), $(b,storms), \
             $(b,preempt), $(b,mixed), $(b,crashy)) or a plan file path.")
  in
  let env_name =
    Arg.(
      value & opt string "native"
      & info [ "env" ] ~docv:"ENV"
          ~doc:
            "native | multikernel | kvm | firecracker | kata | nabla | gvisor \
             | docker")
  in
  let units =
    Arg.(
      value & opt int 2
      & info [ "units" ] ~docv:"N"
          ~doc:"Isolation units (a Table-1 row: 1,2,4,8,16,32,64).")
  in
  let intensity =
    Arg.(
      value & opt float 1.0
      & info [ "intensity" ] ~docv:"K"
          ~doc:"Scale the plan's dose by $(docv) (see Fault_plan.scale).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Tiny corpus and iteration count: the CI gate configuration.")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Run a fault-injected varbench deployment twice; verify the \
          injections replay bit-identically and pass lockdep/invariants; \
          exit nonzero on any finding")
    Term.(
      const inject $ seed_arg $ plan $ env_name $ units $ intensity $ smoke
      $ logs_term)

(* --- specialize -------------------------------------------------------- *)

(* kspec driver.  Default form runs the specialization study (stock
   shared native vs per-tenant specialized kernels vs kvm-64 on the same
   fs-restricted workload).  [--smoke] is the `make check` gate: run
   the specialized deployment twice under the determinism checker with
   lockdep + invariants attached to the first run; a policy denial (the
   allowlist matches the corpus, so any denial is a wiring bug), a
   replay divergence or any sanitizer finding exits nonzero. *)
let specialize seed scale smoke export_dir journal_path resume jobs () =
  let module A = Ksurf.Analysis in
  if smoke then begin
    let corpus =
      let full =
        (Ksurf.Generator.run
           ~params:
             {
               Ksurf.Generator.default_params with
               Ksurf.Generator.seed;
               target_programs = 8;
             }
           ())
          .Ksurf.Generator.corpus
      in
      match Ksurf.Profile.restrict full ~keep:E.Specialize.retained with
      | Some c -> c
      | None -> full
    in
    let spec =
      Ksurf.Specializer.compile
        (Ksurf.Profile.of_corpus ~name:"specialize-smoke" corpus)
    in
    let params = { Ksurf.Harness.iterations = 2; warmup_iterations = 1 } in
    let last = ref None in
    let findings = ref [] in
    let static_done = ref false in
    let run_once ~probe =
      let static = ref None in
      let engine = Ksurf.Engine.create ~seed () in
      Ksurf.Engine.add_probe engine probe;
      if not !static_done then begin
        let lockdep = A.Lockdep.create () in
        let invariants = A.Invariants.create () in
        Ksurf.Engine.add_probe engine (A.Lockdep.on_event lockdep);
        Ksurf.Engine.add_probe engine (A.Invariants.on_event invariants);
        static := Some (lockdep, invariants)
      end;
      let env =
        Ksurf.Env.deploy ~engine
          ~kernel_config:(Ksurf.Specializer.kernel_config spec)
          Ksurf.Env.Multikernel
          (Ksurf.Partition.equal_split ~units:2 ~total_cores:8
             ~total_mem_mb:8192)
      in
      Ksurf.Specializer.install_all env spec;
      let result = Ksurf.Harness.run ~env ~corpus ~params () in
      let denials = ref 0 in
      for rank = 0 to Ksurf.Env.rank_count env - 1 do
        denials := !denials + Ksurf.Specializer.denials env ~rank
      done;
      last := Some (result, !denials);
      match !static with
      | None -> ()
      | Some (lockdep, invariants) ->
          static_done := true;
          let drained = Ksurf.Engine.pending engine = 0 in
          findings :=
            !findings
            @ A.Lockdep.finish ~drained lockdep
            @ A.Invariants.finish ~drained invariants
    in
    let det =
      timed "specialize" (fun () ->
          A.Determinism.check ~run:(fun ~probe -> run_once ~probe) ())
    in
    findings := !findings @ A.Determinism.to_findings det;
    let result, denials =
      match !last with Some x -> x | None -> assert false
    in
    Format.printf "specialize smoke seed=%d@." seed;
    Format.printf "  %a@." Ksurf.Kspec.pp spec;
    Format.printf "  %d sites, %d invocations, %s of virtual time@."
      (Array.length result.Ksurf.Harness.sites)
      (Ksurf.Harness.total_invocations result)
      (Ksurf.Report.duration_ns result.Ksurf.Harness.wall_time_ns);
    Format.printf "  replay: %d vs %d events, hash %08x vs %08x — %s@."
      det.A.Determinism.events_first det.A.Determinism.events_second
      det.A.Determinism.hash_first det.A.Determinism.hash_second
      (if A.Determinism.deterministic det then "identical" else "DIVERGENT");
    if denials > 0 then begin
      Format.printf
        "  FAIL: %d policy denials (%d dropped by the harness) — the \
         allowlist must cover its own profile@."
        denials result.Ksurf.Harness.denied_calls;
      exit 1
    end;
    List.iter (fun f -> Format.printf "  %a@." A.Finding.pp f) !findings;
    if !findings <> [] then exit 1;
    Format.printf
      "  no findings: specialized run is deterministic, clean, zero denials@."
  end
  else begin
    let journal = journal_of journal_path resume in
    let t =
      with_pool jobs (fun pool ->
          timed "specialize" (fun () ->
              E.Specialize.run ~seed ~scale ?journal ~pool ()))
    in
    Format.printf "%a@." E.Specialize.pp t;
    (match export_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun p -> Format.printf "wrote %s@." p)
          (Ksurf.Export.specialize ~dir t));
    finish_journal journal
  end

let specialize_cmd =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Gate mode: double-run a specialized deployment under the \
             sanitizers; exit nonzero on denials, divergence or findings.")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:"Write specialize.csv into $(docv) (study mode only).")
  in
  Cmd.v
    (Cmd.info "specialize"
       ~doc:
         "kspec study: per-tenant specialized kernels (multikernel) vs shared native vs kvm-64 \
          on the same fs-restricted workload")
    Term.(
      const specialize $ seed_arg $ scale_arg $ smoke $ export_dir
      $ journal_arg $ resume_arg $ jobs_arg $ logs_term)

(* --- staticcheck ------------------------------------------------------ *)

(* kstat driver.  Everything is derived from the syscall table without
   running the simulator; [--spec] additionally generates the named
   stock workload's corpus (cheap) to verify its profile-derived
   allowlist.  Any finding — a lock-order cycle, an allowlist gap or
   slack, pruned-machinery hazard — exits nonzero, so `make
   staticcheck` gates on it. *)
let staticcheck seed scale table locks interference spec_workload csv_dir () =
  let module S = Ksurf.Staticcheck in
  let show_all =
    (not table) && (not locks) && (not interference) && spec_workload = None
  in
  let findings = ref [] in
  if table || show_all then begin
    let fps = Ksurf.Footprint.all () in
    Format.printf "static footprints (%d syscalls):@." (List.length fps);
    List.iter (fun fp -> Format.printf "  %a@." Ksurf.Footprint.pp fp) fps
  end;
  if locks || show_all then begin
    let graph = Ksurf.Lockgraph.of_table () in
    Format.printf "%a@." Ksurf.Lockgraph.pp graph;
    findings := !findings @ Ksurf.Lockgraph.cycles graph
  end;
  if interference || show_all then
    Format.printf "%a@." Ksurf.Interference.pp (Ksurf.Interference.of_table ());
  (match spec_workload with
  | None -> ()
  | Some w ->
      let name, keep, corpus =
        match w with
        | "full" -> ("full", Ksurf.Category.all, E.default_corpus ~seed E.Quick)
        | "fs" ->
            ("fs", E.Specialize.retained, E.Specialize.workload ~seed ~scale ())
        | other ->
            Format.eprintf "unknown workload %S (expected full or fs)@." other;
            exit 2
      in
      let profile = Ksurf.Profile.of_corpus ~name corpus in
      let spec = Ksurf.Specializer.compile profile in
      let config = Ksurf.Specializer.kernel_config spec in
      let report =
        S.verify ~workload:name ~keep ~profile ~spec ~config ()
      in
      Format.printf "%a@." S.pp_spec_report report;
      findings := !findings @ report.S.findings);
  (match csv_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun p -> Logs.app (fun m -> m "wrote %s" p))
        (S.export_csv ~dir ()));
  if !findings <> [] then begin
    Format.printf "staticcheck: %d finding(s)@." (List.length !findings);
    exit 1
  end

let staticcheck_cmd =
  let table =
    Arg.(
      value & flag
      & info [ "table" ] ~doc:"Print the per-call static footprint table.")
  in
  let locks =
    Arg.(
      value & flag
      & info [ "locks" ]
          ~doc:
            "Print the static lock-order graph and certify it cycle-free \
             (exit nonzero on a potential-deadlock cycle).")
  in
  let interference =
    Arg.(
      value & flag
      & info [ "interference" ]
          ~doc:
            "Print the static interference matrix: call pairs that can \
             contend on the same instance-global lock.")
  in
  let spec_workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"WORKLOAD"
          ~doc:
            "Verify the profile-derived allowlist of a stock workload \
             ($(b,full) or $(b,fs)): flag gaps, slack and pruned-machinery \
             hazards, and print static vs dynamic surface area.")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:
            "Write static_footprints.csv, static_lock_graph.csv and \
             static_interference.csv into $(docv).")
  in
  Cmd.v
    (Cmd.info "staticcheck"
       ~doc:
         "kstat: static footprints, lock-order certification, interference \
          matrix and allowlist verification over the syscall model — no \
          simulation involved; exits nonzero on findings")
    Term.(
      const staticcheck $ seed_arg $ scale_arg $ table $ locks $ interference
      $ spec_workload $ csv_dir $ logs_term)

(* --- experiments ------------------------------------------------------ *)

let experiment_cmd name ~doc run =
  let go seed scale jobs () =
    with_pool jobs (fun pool -> timed name (fun () -> run ~seed ~scale ~pool))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const go $ seed_arg $ scale_arg $ jobs_arg $ logs_term)

let table1_cmd =
  let go () () = Format.printf "%a@." E.Table1.pp (E.Table1.run ()) in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the VM configuration sweep (Table 1)")
    Term.(const go $ const () $ logs_term)

let table2_cmd =
  experiment_cmd "table2" ~doc:"Syscall latency breakdown (Table 2)"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Table2.pp (E.Table2.run ~seed ~scale ~pool ()))

let fig2_cmd =
  experiment_cmd "fig2" ~doc:"Per-subsystem p99 vs VM count (Figure 2)"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Fig2.pp (E.Fig2.run ~seed ~scale ~pool ()))

let table3_cmd =
  experiment_cmd "table3" ~doc:"Container worst-case breakdown (Table 3)"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Table3.pp (E.Table3.run ~seed ~scale ~pool ()))

let fig3_cmd =
  experiment_cmd "fig3" ~doc:"Single-node tail latency (Figure 3)"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Fig3.pp (E.Fig3.run ~seed ~scale ~pool ()))

let fig4_cmd =
  experiment_cmd "fig4" ~doc:"64-node BSP runtimes (Figure 4)"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Fig4.pp (E.Fig4.run ~seed ~scale ~pool ()))

let ablate_cmd =
  experiment_cmd "ablate" ~doc:"E7: variability-mechanism knockouts"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Ablate.pp (E.Ablate.run ~seed ~scale ~pool ()))

let ablate_virt_cmd =
  experiment_cmd "ablate-virt" ~doc:"E8: exit-cost sensitivity sweep"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Ablate_virt.pp (E.Ablate_virt.run ~seed ~scale ~pool ()))

let lwvm_cmd =
  experiment_cmd "lwvm" ~doc:"E9: lightweight-VM technology comparison"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Lwvm.pp (E.Lwvm.run ~seed ~scale ~pool ()))

let locks_cmd =
  experiment_cmd "locks" ~doc:"E10: per-lock contention attribution"
    (fun ~seed ~scale ~pool ->
      Format.printf "%a@." E.Locks.pp (E.Locks.run ~seed ~scale ~pool ()))

let dose_cmd =
  let go seed scale journal_path resume jobs () =
    let journal = journal_of journal_path resume in
    with_pool jobs (fun pool ->
        timed "dose" (fun () ->
            Format.printf "%a@." E.Dose.pp
              (E.Dose.run ~seed ~scale ?journal ~pool ())));
    finish_journal journal
  in
  Cmd.v
    (Cmd.info "dose" ~doc:"Dose-response: fault-intensity sensitivity sweep")
    Term.(
      const go $ seed_arg $ scale_arg $ journal_arg $ resume_arg $ jobs_arg
      $ logs_term)

(* --- recover ----------------------------------------------------------- *)

(* krecov driver.  Default form runs the recovery study (crash rate x
   policy on the supervised 64-node BSP synthesis).  [--soak] is the
   chaos gate for `make check`/CI: every policy must survive the
   "crashy" preset plus random crashes without wedging, and a run
   killed mid-sweep must resume from its checkpoint bit-identically. *)
let recover seed scale soak export_dir journal_path resume jobs () =
  let module S = Ksurf.Supervisor in
  if soak then begin
    let corpus =
      (Ksurf.Generator.run
         ~params:
           {
             Ksurf.Generator.default_params with
             Ksurf.Generator.seed;
             target_programs = 4;
           }
         ())
        .Ksurf.Generator.corpus
    in
    let cconfig =
      {
        Ksurf.Cluster.default_config with
        Ksurf.Cluster.nodes_simulated = 1;
        sim_iterations_per_node = 8;
        warmup_iterations = 1;
        requests_per_iteration = 8;
        seed;
      }
    in
    let app =
      match Ksurf.Apps.by_name "silo" with
      | Some a -> a
      | None -> List.hd Ksurf.Apps.all
    in
    let kind = Ksurf.Env.Kvm Ksurf.Virt_config.default in
    let pool =
      Ksurf.Cluster.pool ~app ~kind ~contended:false ~config:cconfig
        ~noise_corpus:corpus ()
    in
    let plan =
      match Ksurf.Fault_plan.preset "crashy" with
      | Some p -> p
      | None -> assert false
    in
    let base =
      {
        S.default_config with
        S.nodes = cconfig.Ksurf.Cluster.nodes_total;
        iterations = 10;
        barrier_cost_ns =
          Ksurf.Cluster.barrier_cost_for ~kind
            ~nodes_total:cconfig.Ksurf.Cluster.nodes_total;
        crash_rate = 0.02;
        seed;
      }
    in
    Format.printf "recover soak seed=%d: crashy preset + 2%% random crashes@."
      seed;
    let failed = ref false in
    List.iter
      (fun policy ->
        let o =
          timed (S.policy_name policy) (fun () ->
              S.run ~pool ~plan ~config:{ base with S.policy } ())
        in
        let ok = o.S.supersteps = base.S.iterations in
        if not ok then failed := true;
        Format.printf
          "  %-11s %d/%d supersteps, %.3fs, %d crashes, %d restarts, %d \
           backups, %d deaths, %d transitions — %s@."
          o.S.policy o.S.supersteps base.S.iterations (o.S.runtime_ns /. 1e9)
          o.S.crashes o.S.restarts o.S.backups o.S.deaths o.S.transitions
          (if ok then "ok" else "WEDGED"))
      [ S.Survivors; S.Readmit; S.Speculative ];
    (* Kill-and-resume round-trip: a run killed after 3 supersteps and
       resumed from its checkpoint must finish bit-identically to the
       uninterrupted run. *)
    let ckpt = Filename.temp_file "ksurf-soak" ".ckpt" in
    Sys.remove ckpt;
    let config =
      {
        base with
        S.policy = S.Readmit;
        checkpoint_interval = 2;
        checkpoint_path = Some ckpt;
      }
    in
    let full = S.run ~pool ~plan ~config () in
    Sys.remove ckpt;
    ignore (S.run ~pool ~plan ~config ~kill_after:3 ());
    let resumed = S.run ~pool ~plan ~config ~resume_from:ckpt () in
    if Sys.file_exists ckpt then Sys.remove ckpt;
    let identical =
      full.S.runtime_ns = resumed.S.runtime_ns
      && full.S.crashes = resumed.S.crashes
      && full.S.restarts = resumed.S.restarts
      && full.S.transitions = resumed.S.transitions
      && full.S.supersteps = resumed.S.supersteps
    in
    if not identical then failed := true;
    Format.printf
      "  kill-and-resume: %.0f vs %.0f ns, %d vs %d transitions (resumed \
       from superstep %d) — %s@."
      full.S.runtime_ns resumed.S.runtime_ns full.S.transitions
      resumed.S.transitions resumed.S.resumed_from
      (if identical then "identical" else "DIVERGENT");
    if !failed then exit 1;
    Format.printf "  soak clean: every policy completed, resume is exact@."
  end
  else begin
    let journal = journal_of journal_path resume in
    let t =
      with_pool jobs (fun pool ->
          timed "recover" (fun () ->
              E.Recover.run ~seed ~scale ?journal ~pool ()))
    in
    Format.printf "%a@." E.Recover.pp t;
    (match export_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun p -> Format.printf "wrote %s@." p)
          (Ksurf.Export.recover ~dir t));
    finish_journal journal
  end

let recover_cmd =
  let soak =
    Arg.(
      value & flag
      & info [ "soak" ]
          ~doc:
            "Chaos gate: run every recovery policy under the crashy preset \
             plus random crashes, then verify a killed run resumes from its \
             checkpoint bit-identically; exit nonzero on any wedge or \
             divergence.")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:"Write recover.csv into $(docv) (study mode only).")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "krecov study: crash rate x recovery policy on the supervised \
          64-node BSP synthesis")
    Term.(
      const recover $ seed_arg $ scale_arg $ soak $ export_dir $ journal_arg
      $ resume_arg $ jobs_arg $ logs_term)

(* --- tenancy ----------------------------------------------------------- *)

(* ktenant driver.  Default form sweeps (policy x tenants x churn)
   fleet cells and prints the per-cell table plus the SLO frontier.
   [--smoke] is the `make check` gate: double-run a small churny
   adaptive fleet under the determinism checker with lockdep +
   invariants attached to the first run, then sanity-check the SLO
   accounting; any replay divergence, sanitizer finding or accounting
   inconsistency exits nonzero. *)
let tenancy seed scale smoke tenants churns policies export_dir journal_path
    resume jobs () =
  let module A = Ksurf.Analysis in
  let module F = Ksurf.Fleet in
  let module P = Ksurf.Tenant_policy in
  if smoke then begin
    let cfg =
      {
        F.default_config with
        F.tenants = 24;
        churn_per_day = 16.0;
        policy = P.Adaptive;
        seed;
        host_cores = 16;
        day_ns = 4e8;
        days = 1.0;
        mean_rate_per_s = 40.0;
        epoch_ns = 5e7;
      }
    in
    let last = ref None in
    let findings = ref [] in
    let static_done = ref false in
    let run_once ~probe =
      let static = ref None in
      let engine_ref = ref None in
      let result =
        timed "tenancy fleet" (fun () ->
            F.run
              ~on_engine:(fun engine ->
                engine_ref := Some engine;
                Ksurf.Engine.add_probe engine probe;
                if not !static_done then begin
                  let lockdep = A.Lockdep.create () in
                  let invariants = A.Invariants.create () in
                  Ksurf.Engine.add_probe engine (A.Lockdep.on_event lockdep);
                  Ksurf.Engine.add_probe engine
                    (A.Invariants.on_event invariants);
                  static := Some (lockdep, invariants)
                end)
              cfg)
      in
      last := Some result;
      match !static with
      | None -> ()
      | Some (lockdep, invariants) ->
          static_done := true;
          let drained =
            match !engine_ref with
            | Some e -> Ksurf.Engine.pending e = 0
            | None -> false
          in
          findings :=
            !findings
            @ A.Lockdep.finish ~drained lockdep
            @ A.Invariants.finish ~drained invariants
    in
    let det =
      timed "tenancy" (fun () ->
          A.Determinism.check ~run:(fun ~probe -> run_once ~probe) ())
    in
    findings := !findings @ A.Determinism.to_findings det;
    let r = match !last with Some r -> r | None -> assert false in
    Format.printf "tenancy smoke seed=%d: %d tenants, churn %.0f/day, %s@."
      seed cfg.F.tenants cfg.F.churn_per_day (P.name cfg.F.policy);
    Format.printf
      "  %d requests, %d arrivals, %d departures, %d cgroup storms \
       (%d create / %d destroy, peak %d live), %d migrations@."
      r.F.completed r.F.arrivals r.F.departures
      (r.F.cgroup_creates + r.F.cgroup_destroys)
      r.F.cgroup_creates r.F.cgroup_destroys r.F.peak_cgroups r.F.migrations;
    Format.printf "  replay: %d vs %d events, hash %08x vs %08x — %s@."
      det.A.Determinism.events_first det.A.Determinism.events_second
      det.A.Determinism.hash_first det.A.Determinism.hash_second
      (if A.Determinism.deterministic det then "identical" else "DIVERGENT");
    (* SLO accounting must be internally consistent whatever the
       latencies came out to. *)
    let bad fmt = Format.kasprintf (fun m -> Some m) fmt in
    let accounting =
      List.filter_map Fun.id
        [
          (if r.F.completed <= 0 then bad "no requests completed" else None);
          (if r.F.attainment < 0.0 || r.F.attainment > 1.0 then
             bad "attainment %.3f outside [0,1]" r.F.attainment
           else None);
          (if r.F.slo_met > r.F.measured then
             bad "slo_met %d > measured %d" r.F.slo_met r.F.measured
           else None);
          (if r.F.measured > cfg.F.tenants + r.F.arrivals then
             bad "measured %d exceeds tenants ever admitted" r.F.measured
           else None);
          (if r.F.cgroup_destroys > r.F.cgroup_creates then
             bad "cgroup destroys %d > creates %d" r.F.cgroup_destroys
               r.F.cgroup_creates
           else None);
          (if r.F.replica_imbalance <> 0 then
             bad "replica imbalance %d: live replicas diverged from \
                  autoscaler targets"
               r.F.replica_imbalance
           else None);
          (if r.F.departures > r.F.arrivals + cfg.F.tenants then
             bad "departures %d exceed population" r.F.departures
           else None);
        ]
    in
    List.iter (fun m -> Format.printf "  FAIL: %s@." m) accounting;
    List.iter (fun f -> Format.printf "  %a@." A.Finding.pp f) !findings;
    if accounting <> [] || !findings <> [] then exit 1;
    Format.printf
      "  no findings: churny fleet is deterministic, clean, accounting \
       consistent@."
  end
  else begin
    let journal = journal_of journal_path resume in
    let tenants = match tenants with [] -> None | l -> Some l in
    let churns = match churns with [] -> None | l -> Some l in
    let policies =
      match policies with
      | [] -> None
      | l ->
          Some
            (List.map
               (fun s ->
                 match Ksurf.Tenant_policy.of_string s with
                 | Some p -> p
                 | None ->
                     Format.eprintf "unknown policy %S (%s)@." s
                       (String.concat "|" Ksurf.Tenant_policy.names);
                     exit 2)
               l)
    in
    let t =
      with_pool jobs (fun pool ->
          timed "tenancy" (fun () ->
              E.Tenancy.run ~seed ~scale ?tenants ?churns ?policies ?journal
                ~pool ()))
    in
    Format.printf "%a@." E.Tenancy.pp t;
    (match export_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun p -> Format.printf "wrote %s@." p)
          (Ksurf.Export.tenancy ~dir t));
    finish_journal journal
  end

let tenancy_cmd =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Gate mode: double-run a churny adaptive fleet under the \
             sanitizers and check the SLO accounting; exit nonzero on \
             divergence, findings or inconsistency.")
  in
  let tenants =
    Arg.(
      value
      & opt (list int) []
      & info [ "tenants" ] ~docv:"N,..."
          ~doc:"Tenant counts to sweep (default depends on --scale).")
  in
  let churns =
    Arg.(
      value
      & opt (list float) []
      & info [ "churn" ] ~docv:"R,..."
          ~doc:
            "Per-tenant churn rates to sweep, in lifecycle events per \
             tenant per virtual day (default depends on --scale).")
  in
  let policies =
    Arg.(
      value
      & opt (list string) []
      & info [ "policy" ] ~docv:"P,..."
          ~doc:
            "Placement policies to sweep: $(b,native-shared), $(b,docker), \
             $(b,kvm), $(b,multikernel) or $(b,adaptive) (default: all).")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:"Write tenancy.csv into $(docv) (study mode only).")
  in
  Cmd.v
    (Cmd.info "tenancy"
       ~doc:
         "ktenant study: fleet-scale multi-tenant serving under churn and \
          diurnal load — placement policy x tenant count x churn rate, \
          with per-tenant p99 SLO autoscaling")
    Term.(
      const tenancy $ seed_arg $ scale_arg $ smoke $ tenants $ churns
      $ policies $ export_dir $ journal_arg $ resume_arg $ jobs_arg
      $ logs_term)

(* --- drift ------------------------------------------------------------- *)

(* kadapt driver.  Default form sweeps (policy x dose) driftbench cells
   and prints the dose-response table (false-positive ENOSYS vs retained
   surface area vs time-to-reconverge).  [--smoke] is the `make check`
   gate: double-run a small adaptive cell under the determinism checker
   with lockdep + invariants attached to the first run, count every
   policy hot-swap transition off the probe stream, cross-check the
   controller accounting, and run the same cell under the static policy
   to assert the headline dominance; any divergence, sanitizer finding
   or accounting inconsistency exits nonzero. *)
let drift seed scale smoke doses policies export_dir journal_path resume jobs
    () =
  let module A = Ksurf.Analysis in
  let module D = Ksurf.Driftbench in
  if smoke then begin
    let cfg policy =
      {
        D.default_config with
        D.policy;
        dose = 2.0;
        epochs = 24;
        programs_per_epoch = 12;
        corpus_programs = 16;
        drift_at_ns = 8_000_000.0;
        seed;
      }
    in
    let last = ref None in
    let findings = ref [] in
    let static_done = ref false in
    let policy_transitions = ref 0 in
    let run_once ~probe =
      let static = ref None in
      let engine_ref = ref None in
      let result =
        timed "drift cell" (fun () ->
            D.run
              ~on_engine:(fun engine ->
                engine_ref := Some engine;
                Ksurf.Engine.add_probe engine probe;
                if not !static_done then begin
                  let lockdep = A.Lockdep.create () in
                  let invariants = A.Invariants.create () in
                  Ksurf.Engine.add_probe engine (A.Lockdep.on_event lockdep);
                  Ksurf.Engine.add_probe engine
                    (A.Invariants.on_event invariants);
                  Ksurf.Engine.add_probe engine (function
                    | Ksurf.Engine.Rank_transition { to_state; _ }
                      when to_state = "audit" || to_state = "enforce" ->
                        incr policy_transitions
                    | _ -> ());
                  static := Some (lockdep, invariants)
                end)
              (cfg D.Adaptive))
      in
      last := Some result;
      match !static with
      | None -> ()
      | Some (lockdep, invariants) ->
          static_done := true;
          let drained =
            match !engine_ref with
            | Some e -> Ksurf.Engine.pending e = 0
            | None -> false
          in
          findings :=
            !findings
            @ A.Lockdep.finish ~drained lockdep
            @ A.Invariants.finish ~drained invariants
    in
    let det =
      timed "drift" (fun () ->
          A.Determinism.check ~run:(fun ~probe -> run_once ~probe) ())
    in
    findings := !findings @ A.Determinism.to_findings det;
    let r = match !last with Some r -> r | None -> assert false in
    let s = timed "static cell" (fun () -> D.run (cfg D.Static)) in
    Format.printf "drift smoke seed=%d: %d ranks, dose %.1f, adaptive@." seed
      r.D.ranks r.D.dose;
    Format.printf
      "  %d calls (%d post-drift), %d denied, fp %.4f, surface reduction \
       %.3f, %d promotions / %d demotions / %d swaps, reconverge %s@."
      r.D.calls r.D.calls_post_drift r.D.denied r.D.fp_rate r.D.reduction
      r.D.promotions r.D.demotions r.D.swaps
      (match r.D.reconverge_ns with
      | None -> "n/a"
      | Some ns -> Printf.sprintf "%.0f ns" ns);
    Format.printf "  replay: %d vs %d events, hash %08x vs %08x — %s@."
      det.A.Determinism.events_first det.A.Determinism.events_second
      det.A.Determinism.hash_first det.A.Determinism.hash_second
      (if A.Determinism.deterministic det then "identical" else "DIVERGENT");
    (* The controller choreography must be internally consistent, every
       hot-swap probe-visible, and the headline claim must hold even at
       smoke scale: adaptive strictly beats static on post-drift false
       positives while retaining most of its surface reduction. *)
    let bad fmt = Format.kasprintf (fun m -> Some m) fmt in
    let accounting =
      List.filter_map Fun.id
        [
          (if r.D.calls <= 0 then bad "no calls issued" else None);
          (if r.D.drifts <> 1 then
             bad "expected exactly 1 workload drift, saw %d" r.D.drifts
           else None);
          (if r.D.drift_at_ns = None then
             bad "drift never fired (sink not called)"
           else None);
          (if r.D.fp_rate < 0.0 || r.D.fp_rate > 1.0 then
             bad "fp rate %.4f outside [0,1]" r.D.fp_rate
           else None);
          (if r.D.denied_post_drift > r.D.denied then
             bad "post-drift denials %d exceed total %d" r.D.denied_post_drift
               r.D.denied
           else None);
          (if r.D.calls_post_drift > r.D.calls then
             bad "post-drift calls %d exceed total %d" r.D.calls_post_drift
               r.D.calls
           else None);
          (if r.D.swaps <> r.D.ranks + r.D.promotions + r.D.demotions then
             bad "swap count %d inconsistent: %d ranks + %d promotions + %d \
                  demotions"
               r.D.swaps r.D.ranks r.D.promotions r.D.demotions
           else None);
          (if !policy_transitions <> r.D.swaps then
             bad "probe saw %d policy transitions, env counted %d swaps"
               !policy_transitions r.D.swaps
           else None);
          (if r.D.promotions < r.D.ranks then
             bad "only %d promotions across %d ranks: some rank never left \
                  audit"
               r.D.promotions r.D.ranks
           else None);
          (if r.D.demotions < 1 then
             bad "dose %.1f drift triggered no demotion" r.D.dose
           else None);
          (if s.D.denied = 0 then
             bad "static policy denied nothing under drift" else None);
          (if r.D.fp_rate >= s.D.fp_rate then
             bad "adaptive fp %.4f does not beat static %.4f" r.D.fp_rate
               s.D.fp_rate
           else None);
          (if s.D.reduction > 0.0 && r.D.reduction < 0.4 *. s.D.reduction then
             bad "adaptive retains only %.0f%% of static's surface reduction"
               (100.0 *. r.D.reduction /. s.D.reduction)
           else None);
        ]
    in
    List.iter (fun m -> Format.printf "  FAIL: %s@." m) accounting;
    List.iter (fun f -> Format.printf "  %a@." A.Finding.pp f) !findings;
    if accounting <> [] || !findings <> [] then exit 1;
    Format.printf
      "  no findings: adaptive cell is deterministic, clean, accounting \
       consistent, dominates static@."
  end
  else begin
    let journal = journal_of journal_path resume in
    let doses = match doses with [] -> None | l -> Some l in
    let policies =
      match policies with
      | [] -> None
      | l ->
          Some
            (List.map
               (fun p ->
                 match D.policy_of_string p with
                 | Some p -> p
                 | None ->
                     Format.eprintf
                       "unknown policy %S (static|audit|adaptive)@." p;
                     exit 2)
               l)
    in
    let t =
      with_pool jobs (fun pool ->
          timed "drift" (fun () ->
              E.Drift.run ~seed ~scale ?doses ?policies ?journal ~pool ()))
    in
    Format.printf "%a@." E.Drift.pp t;
    (match export_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun p -> Format.printf "wrote %s@." p)
          (Ksurf.Export.drift ~dir t));
    finish_journal journal
  end

let drift_cmd =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Gate mode: double-run a small adaptive driftbench cell under \
             the sanitizers, cross-check the controller accounting against \
             the probe stream, and assert adaptive dominates static; exit \
             nonzero on divergence, findings or inconsistency.")
  in
  let doses =
    Arg.(
      value
      & opt (list float) []
      & info [ "dose" ] ~docv:"D,..."
          ~doc:
            "Drift doses to sweep; the injected mix shift is dose x 0.25 \
             (default: 0,1,2,3).")
  in
  let policies =
    Arg.(
      value
      & opt (list string) []
      & info [ "policy" ] ~docv:"P,..."
          ~doc:
            "Policies to sweep: $(b,static), $(b,audit) or $(b,adaptive) \
             (default: all).")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:"Write drift.csv into $(docv) (study mode only).")
  in
  Cmd.v
    (Cmd.info "drift"
       ~doc:
         "kadapt study: online adaptive specialization under workload drift \
          — policy x dose, tabling false-positive ENOSYS rate vs retained \
          surface area vs time-to-reconverge")
    Term.(
      const drift $ seed_arg $ scale_arg $ smoke $ doses $ policies
      $ export_dir $ journal_arg $ resume_arg $ jobs_arg $ logs_term)

(* --- torture ------------------------------------------------------------ *)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_temp_dir prefix =
  let p = Filename.temp_file prefix "" in
  Sys.remove p;
  Ksurf.Fileio.ensure_dir p;
  p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* kdur driver.  Default form sweeps (writer path x dose) torture
   cells — ALICE-style crash-state enumeration plus live faulted runs
   with recovery — and prints the consistency table.  [--smoke] is the
   `make check` gate: the quick grid at 1 and 4 workers with
   byte-compared exports and zero tolerated violations, then the same
   durability machinery wired into a live engine workload — scenario
   cells journalled under an armed fault plan (transients, an ENOSPC
   window, a scheduled crash) with the full sanitizer stack (lockdep +
   determinism + invariants) watching every engine. *)
let torture seed scale smoke doses paths export_dir journal_path resume jobs ()
    =
  let module A = Ksurf.Analysis in
  let module T = Ksurf.Torture in
  let kinds =
    match paths with
    | [] -> None
    | l ->
        Some
          (List.map
             (fun p ->
               match T.kind_of_name p with
               | Some k -> k
               | None ->
                   Format.eprintf
                     "unknown writer path %S (journal|checkpoint|export)@." p;
                   exit 2)
             l)
  in
  let doses = match doses with [] -> None | l -> Some l in
  if smoke then begin
    let root = fresh_temp_dir "ksurf-torture-smoke" in
    Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
    let failures = ref [] in
    let bad fmt =
      Format.kasprintf (fun m -> failures := !failures @ [ m ]) fmt
    in
    (* 1. The quick grid, twice: every cell must hold every invariant
       at every crash point, and both the cell results and the
       exported bytes must be independent of the worker count. *)
    let grid n sub =
      Ksurf.Pool.with_pool ~jobs:n (fun pool ->
          timed
            (Printf.sprintf "torture grid (%d worker%s)" n
               (if n = 1 then "" else "s"))
            (fun () ->
              E.Torture.run ~seed ~scale:E.Quick ?doses:(Some (Option.value ~default:[ 0.0; 1.0 ] doses))
                ?kinds
                ~scratch:(Filename.concat root sub)
                ~pool ()))
    in
    let t1 = grid 1 "grid-j1" in
    let t4 = grid 4 "grid-j4" in
    Format.printf "%a@." E.Torture.pp t1;
    List.iter
      (fun (r : T.result) ->
        if T.violations r <> 0 then
          bad "%s dose %.1f: %d consistency violations" r.T.kind r.T.dose
            (T.violations r);
        if r.T.live_runs > 0 && r.T.recovery_ok < 1.0 then
          bad "%s dose %.1f: live recovery %.2f < 1.0" r.T.kind r.T.dose
            r.T.recovery_ok)
      t1.E.Torture.cells;
    if t1.E.Torture.cells <> t4.E.Torture.cells then
      bad "cell results differ between 1 and 4 workers";
    let export sub t =
      String.concat "\x00"
        (List.map read_file (Ksurf.Export.torture ~dir:(Filename.concat root sub) t))
    in
    if export "csv-j1" t1 <> export "csv-j4" t4 then
      bad "exported CSV bytes differ between 1 and 4 workers";
    Format.printf
      "  grid: %d cells, %d crash states enumerated, %d torn files refused@."
      (List.length t1.E.Torture.cells)
      (List.fold_left (fun a (r : T.result) -> a + r.T.crash_states) 0
         t1.E.Torture.cells)
      (List.fold_left (fun a (r : T.result) -> a + r.T.torn_refused) 0
         t1.E.Torture.cells);
    (* 2. Engine integration: three varbench scenario cells, each
       completion recorded through a Recov_journal whose host I/O runs
       under an armed fault plan — recover from every injected death,
       drain every deferred persist, and replay the whole thing twice
       under the determinism checker with lockdep + invariants on the
       first pass. *)
    let plan =
      {
        Ksurf.Durplan.name = "smoke";
        actions =
          [
            Ksurf.Durplan.Transient { rate = 0.4; eintr_share = 0.5 };
            Ksurf.Durplan.Enospc_window { from_op = 4; until_op = 8 };
            Ksurf.Durplan.Crash_at { op = 2 };
          ];
      }
    in
    let cells = [ "varbench:0"; "varbench:1"; "varbench:2" ] in
    let findings = ref [] in
    let static_done = ref false in
    let replay = ref 0 in
    let litter_swept = ref 0 in
    let last_stats = ref None in
    let run_once ~probe =
      incr replay;
      let dir = Filename.concat root (Printf.sprintf "live-%d" !replay) in
      Ksurf.Fileio.ensure_dir dir;
      let jpath = Filename.concat dir "cells.journal" in
      let inj = Ksurf.Faultio.make ~root:dir ~seed plan in
      let sanitizers = ref [] in
      let executed = ref [] in
      let on_engine e =
        Ksurf.Engine.add_probe e probe;
        if not !static_done then begin
          let lockdep = A.Lockdep.create () in
          let invariants = A.Invariants.create () in
          Ksurf.Engine.add_probe e (A.Lockdep.on_event lockdep);
          Ksurf.Engine.add_probe e (A.Invariants.on_event invariants);
          sanitizers := (e, lockdep, invariants) :: !sanitizers
        end
      in
      let attempts = ref 0 in
      let completed = ref false in
      while (not !completed) && !attempts < 50 do
        incr attempts;
        match
          Ksurf.Faultio.with_faults inj (fun () ->
              litter_swept := !litter_swept + Ksurf.Fileio.sweep_tmp ~dir;
              let j = Ksurf.Recov_journal.load ~flush_every:1 ~path:jpath () in
              List.iter
                (fun cell ->
                  if not (Ksurf.Recov_journal.mem j cell) then begin
                    (* Recorded cells are never re-executed; a cell
                       whose completion died before persisting is
                       legitimately recomputed — here memoised so the
                       engine event stream stays replay-identical. *)
                    if not (List.mem cell !executed) then begin
                      A.Scenarios.run A.Scenarios.Varbench ~seed ~on_engine;
                      executed := cell :: !executed
                    end;
                    Ksurf.Recov_journal.record j cell
                  end)
                cells;
              Ksurf.Recov_journal.flush j;
              Ksurf.Recov_journal.persist_pending j)
        with
        | false -> completed := true
        | true -> () (* ENOSPC deferral: space clears as ops advance *)
        | exception Ksurf.Iohook.Crashed _ -> () (* next attempt recovers *)
      done;
      if not !completed then bad "replay %d: journal never converged" !replay;
      if List.length !executed <> List.length cells then
        bad "replay %d: %d cells executed, expected %d" !replay
          (List.length !executed) (List.length cells);
      let j = Ksurf.Recov_journal.load ~path:jpath () in
      List.iter
        (fun cell ->
          if not (Ksurf.Recov_journal.mem j cell) then
            bad "replay %d: cell %s lost" !replay cell)
        cells;
      if Ksurf.Fileio.sweep_tmp ~dir <> 0 then
        bad "replay %d: temp litter survived recovery" !replay;
      last_stats := Some (Ksurf.Faultio.stats inj);
      if !sanitizers <> [] then begin
        static_done := true;
        List.iter
          (fun (e, lockdep, invariants) ->
            let drained = Ksurf.Engine.pending e = 0 in
            findings :=
              !findings
              @ A.Lockdep.finish ~drained lockdep
              @ A.Invariants.finish ~drained invariants)
          !sanitizers
      end
    in
    let det =
      timed "torture live" (fun () ->
          A.Determinism.check ~run:(fun ~probe -> run_once ~probe) ())
    in
    findings := !findings @ A.Determinism.to_findings det;
    (match !last_stats with
    | None -> bad "live phase never ran"
    | Some (s : Ksurf.Faultio.stats) ->
        if s.Ksurf.Faultio.crashes < 1 then
          bad "scheduled crash never fired";
        if s.Ksurf.Faultio.enospc < 1 then bad "ENOSPC window never hit";
        if s.Ksurf.Faultio.transients < 1 then
          bad "no transient faults injected";
        Format.printf
          "  live: %d ops, %d transients, %d enospc, %d crashes, %d temp \
           file(s) swept during recovery@."
          s.Ksurf.Faultio.ops s.Ksurf.Faultio.transients s.Ksurf.Faultio.enospc
          s.Ksurf.Faultio.crashes !litter_swept);
    Format.printf "  replay: %d vs %d events, hash %08x vs %08x — %s@."
      det.A.Determinism.events_first det.A.Determinism.events_second
      det.A.Determinism.hash_first det.A.Determinism.hash_second
      (if A.Determinism.deterministic det then "identical" else "DIVERGENT");
    List.iter (fun m -> Format.printf "  FAIL: %s@." m) !failures;
    List.iter (fun f -> Format.printf "  %a@." A.Finding.pp f) !findings;
    if !failures <> [] || !findings <> [] then exit 1;
    Format.printf
      "  no findings: every crash state recovers, sweeps are worker-count \
       invariant, faulted journalling is deterministic and clean@."
  end
  else begin
    let journal = journal_of journal_path resume in
    let scratch =
      E.Torture.default_scratch ^ "." ^ string_of_int (Unix.getpid ())
    in
    let t =
      Fun.protect
        ~finally:(fun () -> rm_rf scratch)
        (fun () ->
          with_pool jobs (fun pool ->
              timed "torture" (fun () ->
                  E.Torture.run ~seed ~scale ?doses ?kinds ~scratch ?journal
                    ~pool ())))
    in
    Format.printf "%a@." E.Torture.pp t;
    (match export_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun p -> Format.printf "wrote %s@." p)
          (Ksurf.Export.torture ~dir t));
    finish_journal journal;
    if E.Torture.violations t <> 0 then exit 1
  end

let torture_cmd =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Gate mode: run the quick torture grid at 1 and 4 workers \
             (byte-compared exports, zero tolerated violations), then \
             journal live scenario cells under an armed fault plan with \
             lockdep, determinism and invariant checking; exit nonzero on \
             any violation, divergence or finding.")
  in
  let doses =
    Arg.(
      value
      & opt (list float) []
      & info [ "dose" ] ~docv:"D,..."
          ~doc:
            "Fault doses to sweep; dose scales the io-mixed plan's rates \
             and ENOSPC window, 0 is the fault-free control (default: \
             0,1,2,3).")
  in
  let paths =
    Arg.(
      value
      & opt (list string) []
      & info [ "path" ] ~docv:"P,..."
          ~doc:
            "Durable writer paths to torture: $(b,journal), \
             $(b,checkpoint), $(b,export) (default: all).")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:"Write torture.csv into $(docv) (study mode only).")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "kdur study: host-I/O fault injection and crash-consistency \
          torture — writer path x dose, enumerating every crash state and \
          recovering every live faulted run")
    Term.(
      const torture $ seed_arg $ scale_arg $ smoke $ doses $ paths
      $ export_dir $ journal_arg $ resume_arg $ jobs_arg $ logs_term)

let all_cmd =
  experiment_cmd "all" ~doc:"Run every experiment in sequence"
    (fun ~seed ~scale ~pool ->
      let corpus = E.default_corpus ~seed scale in
      Format.printf "%a@.@." E.Table1.pp (E.Table1.run ());
      Format.printf "%a@.@." E.Table2.pp
        (E.Table2.run ~seed ~scale ~corpus ~pool ());
      Format.printf "%a@.@." E.Fig2.pp (E.Fig2.run ~seed ~scale ~corpus ~pool ());
      Format.printf "%a@.@." E.Table3.pp
        (E.Table3.run ~seed ~scale ~corpus ~pool ());
      Format.printf "%a@.@." E.Fig3.pp (E.Fig3.run ~seed ~scale ~corpus ~pool ());
      Format.printf "%a@.@." E.Fig4.pp (E.Fig4.run ~seed ~scale ~corpus ~pool ());
      Format.printf "%a@.@." E.Ablate.pp
        (E.Ablate.run ~seed ~scale ~corpus ~pool ());
      Format.printf "%a@.@." E.Ablate_virt.pp
        (E.Ablate_virt.run ~seed ~scale ~corpus ~pool ());
      Format.printf "%a@." E.Lwvm.pp (E.Lwvm.run ~seed ~scale ~corpus ~pool ()))

let main_cmd =
  let doc =
    "reproduce 'Reducing Kernel Surface Areas for Isolation and \
     Scalability' (ICPP'19) on a simulated multicore machine"
  in
  Cmd.group (Cmd.info "ksurf" ~version:"1.0.0" ~doc)
    [
      gen_corpus_cmd;
      run_corpus_cmd;
      analyze_cmd;
      inject_cmd;
      specialize_cmd;
      staticcheck_cmd;
      dose_cmd;
      recover_cmd;
      tenancy_cmd;
      drift_cmd;
      torture_cmd;
      table1_cmd;
      table2_cmd;
      fig2_cmd;
      table3_cmd;
      fig3_cmd;
      fig4_cmd;
      ablate_cmd;
      ablate_virt_cmd;
      lwvm_cmd;
      locks_cmd;
      all_cmd;
    ]

(* I/O failures (full disk, bad permissions, unwritable directory) get
   their own exit code so scripts can tell "the experiment found
   something" (1) and "you asked for something impossible" (2) apart
   from "the machine failed underneath us" (3). *)
let () =
  try exit (Cmd.eval ~catch:false main_cmd) with
  | Ksurf.Fileio.Io_error msg ->
      Format.eprintf "ksurf: I/O failure: %s@." msg;
      exit 3
  | Ksurf.Engine.Hung diag ->
      Format.eprintf "ksurf: %s@." diag;
      exit 1
