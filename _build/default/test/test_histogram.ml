open Ksurf

let test_linear_binning () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 5.5;
  Histogram.add h 5.6;
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_value h 0);
  Alcotest.(check int) "bin 5" 2 (Histogram.bin_value h 5)

let test_clamping () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h (-5.0);
  Histogram.add h 100.0;
  Alcotest.(check int) "below clamps to 0" 1 (Histogram.bin_value h 0);
  Alcotest.(check int) "above clamps to last" 1 (Histogram.bin_value h 9)

let test_log_binning () =
  let h = Histogram.create_log ~lo:1.0 ~hi:1e6 ~bins:6 in
  (* Decade-per-bin: 5 -> bin 0, 5e3 -> bin 3. *)
  Alcotest.(check int) "bin of 5" 0 (Histogram.bin_of h 5.0);
  Alcotest.(check int) "bin of 5000" 3 (Histogram.bin_of h 5_000.0);
  Alcotest.(check int) "bin of 5e5" 5 (Histogram.bin_of h 5e5)

let test_bin_edges () =
  let h = Histogram.create_log ~lo:1.0 ~hi:100.0 ~bins:2 in
  Alcotest.(check (float 1e-6)) "lo of bin 0" 1.0 (Histogram.bin_lo h 0);
  Alcotest.(check (float 1e-6)) "hi of bin 0" 10.0 (Histogram.bin_hi h 0);
  Alcotest.(check (float 1e-6)) "hi of bin 1" 100.0 (Histogram.bin_hi h 1)

let test_densities_sum () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:1.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.3; 0.6; 0.9; 0.95 ];
  let total = Array.fold_left ( +. ) 0.0 (Histogram.densities h) in
  Alcotest.(check (float 1e-9)) "densities sum to 1" 1.0 total

let test_empty_densities () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:1.0 ~bins:4 in
  let total = Array.fold_left ( +. ) 0.0 (Histogram.densities h) in
  Alcotest.(check (float 1e-9)) "empty densities are 0" 0.0 total

let test_mode () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:4.0 ~bins:4 in
  List.iter (Histogram.add h) [ 2.5; 2.6; 2.7; 0.5 ];
  Alcotest.(check int) "mode bin" 2 (Histogram.mode_bin h)

let test_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero bins" true
    (raises (fun () -> ignore (Histogram.create_linear ~lo:0.0 ~hi:1.0 ~bins:0)));
  Alcotest.(check bool) "bad range" true
    (raises (fun () -> ignore (Histogram.create_linear ~lo:1.0 ~hi:0.0 ~bins:4)));
  Alcotest.(check bool) "log lo=0" true
    (raises (fun () -> ignore (Histogram.create_log ~lo:0.0 ~hi:1.0 ~bins:4)))

let qcheck_total_preserved =
  QCheck.Test.make ~name:"histogram count equals adds" ~count:200
    QCheck.(list (float_bound_exclusive 100.0))
    (fun l ->
      let h = Histogram.create_linear ~lo:0.0 ~hi:50.0 ~bins:7 in
      List.iter (Histogram.add h) l;
      Histogram.count h = List.length l
      && Array.to_list (Array.init (Histogram.bin_count h) (Histogram.bin_value h))
         |> List.fold_left ( + ) 0 = List.length l)

let suite =
  [
    Alcotest.test_case "linear binning" `Quick test_linear_binning;
    Alcotest.test_case "clamping" `Quick test_clamping;
    Alcotest.test_case "log binning" `Quick test_log_binning;
    Alcotest.test_case "bin edges" `Quick test_bin_edges;
    Alcotest.test_case "densities sum" `Quick test_densities_sum;
    Alcotest.test_case "empty densities" `Quick test_empty_densities;
    Alcotest.test_case "mode" `Quick test_mode;
    Alcotest.test_case "invalid" `Quick test_invalid;
    QCheck_alcotest.to_alcotest qcheck_total_preserved;
  ]
