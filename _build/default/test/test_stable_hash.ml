open Ksurf

let test_deterministic () =
  Alcotest.(check int) "string stable" (Stable_hash.string "open")
    (Stable_hash.string "open");
  Alcotest.(check int) "ints stable" (Stable_hash.ints [ 1; 2; 3 ])
    (Stable_hash.ints [ 1; 2; 3 ])

let test_distinct_inputs () =
  Alcotest.(check bool) "different strings" true
    (Stable_hash.string "read" <> Stable_hash.string "write");
  Alcotest.(check bool) "order sensitive" true
    (Stable_hash.ints [ 1; 2 ] <> Stable_hash.ints [ 2; 1 ]);
  Alcotest.(check bool) "combine order" true
    (Stable_hash.combine 1 2 <> Stable_hash.combine 2 1)

let qcheck_non_negative_strings =
  QCheck.Test.make ~name:"string hash non-negative" ~count:500
    QCheck.printable_string
    (fun s -> Stable_hash.string s >= 0)

let qcheck_non_negative_ints =
  QCheck.Test.make ~name:"ints hash non-negative" ~count:500
    QCheck.(list small_signed_int)
    (fun l -> Stable_hash.ints l >= 0)

let qcheck_combine_non_negative =
  QCheck.Test.make ~name:"combine non-negative" ~count:500
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) -> Stable_hash.combine a b >= 0)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "distinct inputs" `Quick test_distinct_inputs;
    QCheck_alcotest.to_alcotest qcheck_non_negative_strings;
    QCheck_alcotest.to_alcotest qcheck_non_negative_ints;
    QCheck_alcotest.to_alcotest qcheck_combine_non_negative;
  ]
