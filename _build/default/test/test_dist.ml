open Ksurf

let empirical_mean dist seed n =
  let rng = Prng.create seed in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Dist.sample dist rng
  done;
  !acc /. float_of_int n

let check_mean_close name dist tolerance =
  let analytic = Dist.mean_estimate dist in
  let measured = empirical_mean dist 42 50_000 in
  let rel = Float.abs (measured -. analytic) /. Float.max analytic 1e-9 in
  if rel > tolerance then
    Alcotest.failf "%s: empirical mean %g vs analytic %g (rel %.3f)" name
      measured analytic rel

let test_constant () =
  let d = Dist.constant 5.0 in
  let rng = Prng.create 1 in
  for _ = 1 to 10 do
    Alcotest.(check (float 0.0)) "constant" 5.0 (Dist.sample d rng)
  done

let test_mean_exponential () =
  check_mean_close "exponential" (Dist.exponential ~mean:123.0) 0.02

let test_mean_uniform () =
  check_mean_close "uniform" (Dist.uniform ~lo:10.0 ~hi:30.0) 0.02

let test_mean_erlang () = check_mean_close "erlang" (Dist.erlang ~k:4 ~mean:88.0) 0.02

let test_mean_lognormal () =
  check_mean_close "lognormal" (Dist.lognormal ~median:100.0 ~sigma:0.5) 0.05

let test_mean_mixture () =
  let d =
    Dist.mixture
      [ (1.0, Dist.constant 10.0); (3.0, Dist.constant 50.0) ]
  in
  Alcotest.(check (float 1e-6)) "mixture mean" 40.0 (Dist.mean_estimate d);
  check_mean_close "mixture" d 0.02

let test_mean_shifted_scaled () =
  let d = Dist.shifted 5.0 (Dist.scaled 2.0 (Dist.constant 10.0)) in
  Alcotest.(check (float 1e-9)) "shifted+scaled" 25.0 (Dist.mean_estimate d);
  let rng = Prng.create 1 in
  Alcotest.(check (float 1e-9)) "sample" 25.0 (Dist.sample d rng)

let test_lognormal_median () =
  let d = Dist.lognormal ~median:200.0 ~sigma:0.7 in
  let rng = Prng.create 5 in
  let samples = Array.init 40_000 (fun _ -> Dist.sample d rng) in
  let median = Quantile.median samples in
  if Float.abs (median -. 200.0) /. 200.0 > 0.03 then
    Alcotest.failf "lognormal median %g too far from 200" median

let test_invalid_args () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "neg constant" true (raises (fun () -> ignore (Dist.constant (-1.0))));
  Alcotest.(check bool) "bad exp" true (raises (fun () -> ignore (Dist.exponential ~mean:0.0)));
  Alcotest.(check bool) "bad erlang" true (raises (fun () -> ignore (Dist.erlang ~k:0 ~mean:1.0)));
  Alcotest.(check bool) "bad pareto" true (raises (fun () -> ignore (Dist.pareto ~scale:0.0 ~shape:1.0)));
  Alcotest.(check bool) "bad bounds" true
    (raises (fun () -> ignore (Dist.bounded_pareto ~lo:10.0 ~hi:5.0 ~shape:1.0)));
  Alcotest.(check bool) "empty mixture" true (raises (fun () -> ignore (Dist.mixture [])));
  Alcotest.(check bool) "neg shift" true
    (raises (fun () -> ignore (Dist.shifted (-1.0) (Dist.constant 1.0))))

let qcheck_samples_non_negative =
  QCheck.Test.make ~name:"all samplers non-negative" ~count:300
    QCheck.(pair small_int (int_bound 6))
    (fun (seed, which) ->
      let dist =
        match which with
        | 0 -> Dist.exponential ~mean:10.0
        | 1 -> Dist.lognormal ~median:5.0 ~sigma:1.5
        | 2 -> Dist.pareto ~scale:1.0 ~shape:0.8
        | 3 -> Dist.bounded_pareto ~lo:1.0 ~hi:100.0 ~shape:1.2
        | 4 -> Dist.uniform ~lo:0.0 ~hi:3.0
        | 5 -> Dist.erlang ~k:3 ~mean:7.0
        | _ -> Dist.mixture [ (1.0, Dist.constant 1.0); (1.0, Dist.exponential ~mean:2.0) ]
      in
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        if Dist.sample dist rng < 0.0 then ok := false
      done;
      !ok)

let qcheck_bounded_pareto_in_bounds =
  QCheck.Test.make ~name:"bounded pareto respects bounds" ~count:300
    QCheck.small_int
    (fun seed ->
      let d = Dist.bounded_pareto ~lo:10.0 ~hi:500.0 ~shape:0.9 in
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Dist.sample d rng in
        if v < 10.0 *. 0.999 || v > 500.0 *. 1.001 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "exponential mean" `Slow test_mean_exponential;
    Alcotest.test_case "uniform mean" `Slow test_mean_uniform;
    Alcotest.test_case "erlang mean" `Slow test_mean_erlang;
    Alcotest.test_case "lognormal mean" `Slow test_mean_lognormal;
    Alcotest.test_case "mixture mean" `Slow test_mean_mixture;
    Alcotest.test_case "shifted/scaled" `Quick test_mean_shifted_scaled;
    Alcotest.test_case "lognormal median" `Slow test_lognormal_median;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest qcheck_samples_non_negative;
    QCheck_alcotest.to_alcotest qcheck_bounded_pareto_in_bounds;
  ]
