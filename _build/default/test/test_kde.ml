open Ksurf

let test_bandwidth_positive () =
  let samples = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check bool) "positive" true (Kde.silverman_bandwidth samples > 0.0)

let test_bandwidth_degenerate () =
  (* Constant samples: bandwidth must still be positive. *)
  let samples = Array.make 10 7.0 in
  Alcotest.(check bool) "degenerate positive" true
    (Kde.silverman_bandwidth samples > 0.0)

let test_density_peak_at_data () =
  let samples = [| 10.0; 10.1; 9.9; 10.05 |] in
  let at_data = Kde.estimate samples 10.0 in
  let far = Kde.estimate samples 100.0 in
  Alcotest.(check bool) "density higher near data" true (at_data > far)

let test_density_integrates_to_one () =
  let rng = Prng.create 3 in
  let samples = Array.init 200 (fun _ -> Prng.float rng 50.0) in
  let h = Kde.silverman_bandwidth samples in
  (* Trapezoid rule over a wide support. *)
  let lo = -.(4.0 *. h) and hi = 50.0 +. (4.0 *. h) in
  let steps = 400 in
  let dx = (hi -. lo) /. float_of_int steps in
  let integral = ref 0.0 in
  for i = 0 to steps - 1 do
    let x = lo +. (float_of_int i +. 0.5) *. dx in
    integral := !integral +. (Kde.estimate ~bandwidth:h samples x *. dx)
  done;
  if Float.abs (!integral -. 1.0) > 0.02 then
    Alcotest.failf "density integrates to %f" !integral

let test_curve_shape () =
  let samples = [| 1.0; 2.0; 3.0 |] in
  let curve = Kde.curve ~points:16 samples in
  Alcotest.(check int) "point count" 16 (Array.length curve);
  Array.iter (fun (_, d) -> if d < 0.0 then Alcotest.fail "negative density") curve;
  let xs = Array.map fst curve in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) <= xs.(i - 1) then Alcotest.fail "x not increasing"
  done

let test_log_curve_positive_support () =
  let samples = [| 10.0; 100.0; 1000.0; -5.0; 0.0 |] in
  let curve = Kde.log_curve ~points:16 samples in
  Array.iter
    (fun (x, _) -> if x <= 0.0 then Alcotest.fail "non-positive support point")
    curve

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Kde.curve: empty") (fun () ->
      ignore (Kde.curve [||]))

let qcheck_density_non_negative =
  QCheck.Test.make ~name:"kde density non-negative" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 30) (float_bound_exclusive 100.0))
        (float_bound_exclusive 200.0))
    (fun (l, x) -> Kde.estimate (Array.of_list l) x >= 0.0)

let suite =
  [
    Alcotest.test_case "bandwidth positive" `Quick test_bandwidth_positive;
    Alcotest.test_case "degenerate bandwidth" `Quick test_bandwidth_degenerate;
    Alcotest.test_case "peak near data" `Quick test_density_peak_at_data;
    Alcotest.test_case "integrates to 1" `Slow test_density_integrates_to_one;
    Alcotest.test_case "curve shape" `Quick test_curve_shape;
    Alcotest.test_case "log curve support" `Quick test_log_curve_positive_support;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    QCheck_alcotest.to_alcotest qcheck_density_non_negative;
  ]
