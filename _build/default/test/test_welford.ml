open Ksurf

let direct_mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let direct_variance l =
  let n = List.length l in
  if n < 2 then 0.0
  else begin
    let m = direct_mean l in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l
    /. float_of_int (n - 1)
  end

let fill l =
  let w = Welford.create () in
  List.iter (Welford.add w) l;
  w

let test_empty () =
  let w = Welford.create () in
  Alcotest.(check int) "count" 0 (Welford.count w);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Welford.mean w);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Welford.variance w)

let test_single () =
  let w = fill [ 42.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 42.0 (Welford.mean w);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Welford.variance w);
  Alcotest.(check (float 1e-9)) "min" 42.0 (Welford.min_value w);
  Alcotest.(check (float 1e-9)) "max" 42.0 (Welford.max_value w)

let test_known_values () =
  let l = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  let w = fill l in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Welford.mean w);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Welford.variance w);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Welford.total w)

let qcheck_matches_direct =
  QCheck.Test.make ~name:"welford matches direct computation" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
    (fun l ->
      QCheck.assume (List.length l >= 2);
      let w = fill l in
      Float.abs (Welford.mean w -. direct_mean l) < 1e-6
      && Float.abs (Welford.variance w -. direct_variance l) < 1e-4)

let qcheck_merge_equivalent =
  QCheck.Test.make ~name:"merge == sequential" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 30) (float_bound_exclusive 100.0))
        (list_of_size Gen.(int_range 1 30) (float_bound_exclusive 100.0)))
    (fun (l1, l2) ->
      let merged = Welford.merge (fill l1) (fill l2) in
      let seq = fill (l1 @ l2) in
      Welford.count merged = Welford.count seq
      && Float.abs (Welford.mean merged -. Welford.mean seq) < 1e-6
      && Float.abs (Welford.variance merged -. Welford.variance seq) < 1e-4
      && Welford.min_value merged = Welford.min_value seq
      && Welford.max_value merged = Welford.max_value seq)

let test_merge_with_empty () =
  let w = fill [ 1.0; 2.0; 3.0 ] in
  let e = Welford.create () in
  let m1 = Welford.merge w e and m2 = Welford.merge e w in
  Alcotest.(check int) "left count" 3 (Welford.count m1);
  Alcotest.(check int) "right count" 3 (Welford.count m2);
  Alcotest.(check (float 1e-9)) "left mean" 2.0 (Welford.mean m1);
  Alcotest.(check (float 1e-9)) "right mean" 2.0 (Welford.mean m2)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single" `Quick test_single;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
    QCheck_alcotest.to_alcotest qcheck_matches_direct;
    QCheck_alcotest.to_alcotest qcheck_merge_equivalent;
  ]
