open Ksurf

let test_scale_zero_is_free () =
  let v = Virt_config.scale 0.0 Virt_config.default in
  Alcotest.(check (float 1e-9)) "no exit cost" 0.0 v.Virt_config.exit_cost;
  Alcotest.(check (float 1e-9)) "no cpu dilation" 1.0 v.Virt_config.cpu_factor;
  Alcotest.(check (float 1e-9)) "no ipi factor" 1.0 v.Virt_config.ipi_factor;
  Alcotest.(check (float 1e-9)) "no virtio cost" 0.0 v.Virt_config.virtio_request_cost

let test_scale_identity () =
  let v = Virt_config.scale 1.0 Virt_config.default in
  Alcotest.(check (float 1e-9)) "exit cost unchanged"
    Virt_config.default.Virt_config.exit_cost v.Virt_config.exit_cost

let test_scale_negative_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Virt_config.scale (-1.0) Virt_config.default);
       false
     with Invalid_argument _ -> true)

let test_derive_kernel_config () =
  let base = Kernel_config.default in
  let derived = Virt_config.derive_kernel_config Virt_config.default base in
  Alcotest.(check bool) "ipi costlier" true
    (derived.Kernel_config.ipi_cost > base.Kernel_config.ipi_cost);
  Alcotest.(check bool) "cpu dilated" true
    (derived.Kernel_config.cpu_cost_factor > base.Kernel_config.cpu_cost_factor);
  Alcotest.(check bool) "entry costlier" true
    (derived.Kernel_config.syscall_entry_cost > base.Kernel_config.syscall_entry_cost)

let test_vm_boot_validation () =
  let engine = Engine.create () in
  Alcotest.(check bool) "0 vcpus rejected" true
    (try
       ignore (Vm.boot ~engine ~id:0 { Vm.vcpus = 0; mem_mb = 512 });
       false
     with Invalid_argument _ -> true)

let test_vm_guest_surface () =
  let engine = Engine.create () in
  let vm =
    Vm.boot ~engine ~kernel_config:Kernel_config.quiet ~id:0
      { Vm.vcpus = 4; mem_mb = 2048 }
  in
  Alcotest.(check int) "guest cores" 4 (Instance.cores (Vm.guest vm));
  Alcotest.(check int) "guest memory" 2048 (Instance.mem_mb (Vm.guest vm))

let test_vm_vcpu_range () =
  let engine = Engine.create () in
  let vm =
    Vm.boot ~engine ~kernel_config:Kernel_config.quiet ~id:0
      { Vm.vcpus = 2; mem_mb = 512 }
  in
  Engine.spawn engine (fun () ->
      Vm.exec_syscall vm ~core:5 ~tenant:0 ~key:0 [ Ops.Cpu 10.0 ]);
  Alcotest.(check bool) "vcpu out of range" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Invalid_argument _) -> true)

let test_vm_adds_bounded_overhead () =
  (* Over many calls, the VM's mean syscall cost must exceed native but
     by a bounded factor. *)
  let engine = Engine.create ~seed:1 () in
  let native =
    Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:2 ~mem_mb:512 ()
  in
  let vm =
    Vm.boot ~engine ~kernel_config:Kernel_config.quiet ~id:0
      { Vm.vcpus = 2; mem_mb = 512 }
  in
  let ops = [ Ops.Cpu 500.0 ] in
  let measure f =
    let total = ref 0.0 in
    Engine.spawn engine (fun () ->
        for _ = 1 to 500 do
          let t0 = Engine.now engine in
          f ();
          total := !total +. (Engine.now engine -. t0)
        done);
    Engine.run engine;
    !total /. 500.0
  in
  let ctx = { Instance.core = 0; tenant = 0; key = 0; cgroup = None } in
  let native_mean =
    measure (fun () ->
        Instance.burn native
          (Instance.config native).Kernel_config.syscall_entry_cost;
        Instance.exec_program native ctx ops)
  in
  let vm_mean =
    measure (fun () -> Vm.exec_syscall vm ~core:0 ~tenant:0 ~key:0 ops)
  in
  Alcotest.(check bool) "vm slower than native" true (vm_mean > native_mean);
  Alcotest.(check bool) "but bounded (< 10x)" true (vm_mean < 10.0 *. native_mean)

let test_hypervisor_partition () =
  let engine = Engine.create () in
  let hv = Hypervisor.create ~engine ~kernel_config:Kernel_config.quiet () in
  let vms = Hypervisor.boot_partition hv ~vms:4 ~total_cores:16 ~total_mem_mb:8192 in
  Alcotest.(check int) "four vms" 4 (List.length vms);
  List.iter
    (fun vm ->
      Alcotest.(check int) "4 vcpus" 4 (Vm.shape vm).Vm.vcpus;
      Alcotest.(check int) "2 GB" 2048 (Vm.shape vm).Vm.mem_mb)
    vms;
  Alcotest.(check int) "hypervisor tracks them" 4 (List.length (Hypervisor.vms hv))

let test_hypervisor_uneven_split () =
  let engine = Engine.create () in
  let hv = Hypervisor.create ~engine ~kernel_config:Kernel_config.quiet () in
  Alcotest.(check bool) "uneven rejected" true
    (try
       ignore (Hypervisor.boot_partition hv ~vms:3 ~total_cores:16 ~total_mem_mb:8192);
       false
     with Invalid_argument _ -> true)

let test_shared_host_disk_couples_vms () =
  let engine = Engine.create ~seed:9 () in
  let config =
    { Kernel_config.quiet with Kernel_config.block_queue_depth = 1;
      block_latency = Dist.constant 10_000.0;
      block_bandwidth_ns_per_byte = 0.0 }
  in
  let hv =
    Hypervisor.create ~engine ~kernel_config:config ~share_host_disk:true ()
  in
  let vms = Hypervisor.boot_partition hv ~vms:2 ~total_cores:2 ~total_mem_mb:1024 in
  let io = [ Ops.Block_io { bytes = 0; write = false } ] in
  let last = ref 0.0 in
  List.iter
    (fun vm ->
      Engine.spawn engine (fun () ->
          Vm.exec_syscall vm ~core:0 ~tenant:0 ~key:0 io;
          last := Float.max !last (Engine.now engine)))
    vms;
  Engine.run engine;
  (* With a shared depth-1 device, the second VM's request queues. *)
  Alcotest.(check bool) "requests serialised across VMs" true (!last >= 2.0 *. 10_000.0)

(* --- containers -------------------------------------------------------- *)

let test_container_cgroups_distinct () =
  let engine = Engine.create () in
  let host =
    Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:4 ~mem_mb:2048 ()
  in
  let a = Container.launch ~host ~id:0 { Container.cpus = 2; mem_limit_mb = 512 } in
  let b = Container.launch ~host ~id:1 { Container.cpus = 2; mem_limit_mb = 512 } in
  Alcotest.(check bool) "distinct cgroups" true
    (Container.cgroup a <> Container.cgroup b);
  Alcotest.(check int) "host sees two" 2 (Instance.cgroup_count host)

let test_container_shares_host_kernel () =
  let engine = Engine.create () in
  let host =
    Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:4 ~mem_mb:2048 ()
  in
  let c = Container.launch ~host ~id:0 { Container.cpus = 4; mem_limit_mb = 1024 } in
  Alcotest.(check bool) "same instance" true (Container.host c == host)

let test_container_validation () =
  let engine = Engine.create () in
  let host =
    Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:4 ~mem_mb:2048 ()
  in
  Alcotest.(check bool) "0 cpus rejected" true
    (try
       ignore (Container.launch ~host ~id:0 { Container.cpus = 0; mem_limit_mb = 1 });
       false
     with Invalid_argument _ -> true)

let test_container_namespace_cost () =
  let engine = Engine.create () in
  let host =
    Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:2 ~mem_mb:1024 ()
  in
  let c = Container.launch ~host ~id:0 { Container.cpus = 2; mem_limit_mb = 512 } in
  let elapsed = ref nan in
  Engine.spawn engine (fun () ->
      let t0 = Engine.now engine in
      Container.exec_syscall c ~core:0 ~tenant:0 ~key:0 [ Ops.Cpu 100.0 ];
      elapsed := Engine.now engine -. t0);
  Engine.run engine;
  let entry = Kernel_config.quiet.Kernel_config.syscall_entry_cost in
  (* entry + namespace + charge fast path + the op itself *)
  Alcotest.(check bool) "includes namespace overhead" true
    (!elapsed >= entry +. Container.namespace_cost +. 100.0 -. 1e-9)

let suite =
  [
    Alcotest.test_case "scale zero" `Quick test_scale_zero_is_free;
    Alcotest.test_case "scale identity" `Quick test_scale_identity;
    Alcotest.test_case "scale negative" `Quick test_scale_negative_rejected;
    Alcotest.test_case "derive kernel config" `Quick test_derive_kernel_config;
    Alcotest.test_case "vm boot validation" `Quick test_vm_boot_validation;
    Alcotest.test_case "guest surface" `Quick test_vm_guest_surface;
    Alcotest.test_case "vcpu range" `Quick test_vm_vcpu_range;
    Alcotest.test_case "bounded overhead" `Quick test_vm_adds_bounded_overhead;
    Alcotest.test_case "hypervisor partition" `Quick test_hypervisor_partition;
    Alcotest.test_case "uneven split" `Quick test_hypervisor_uneven_split;
    Alcotest.test_case "shared host disk" `Quick test_shared_host_disk_couples_vms;
    Alcotest.test_case "container cgroups" `Quick test_container_cgroups_distinct;
    Alcotest.test_case "container shares kernel" `Quick
      test_container_shares_host_kernel;
    Alcotest.test_case "container validation" `Quick test_container_validation;
    Alcotest.test_case "namespace cost" `Quick test_container_namespace_cost;
  ]
