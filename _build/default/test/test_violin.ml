open Ksurf

let sample_violin () =
  Violin.of_samples ~label:"t"
    (Array.init 100 (fun i -> float_of_int (i + 1) *. 10.0))

let test_quartile_ordering () =
  let v = sample_violin () in
  Alcotest.(check bool) "min <= lo95" true (v.Violin.min <= v.Violin.lo95);
  Alcotest.(check bool) "lo95 <= q1" true (v.Violin.lo95 <= v.Violin.q1);
  Alcotest.(check bool) "q1 <= med" true (v.Violin.q1 <= v.Violin.median);
  Alcotest.(check bool) "med <= q3" true (v.Violin.median <= v.Violin.q3);
  Alcotest.(check bool) "q3 <= hi95" true (v.Violin.q3 <= v.Violin.hi95);
  Alcotest.(check bool) "hi95 <= max" true (v.Violin.hi95 <= v.Violin.max)

let test_counts () =
  let v = sample_violin () in
  Alcotest.(check int) "count" 100 v.Violin.count;
  Alcotest.(check bool) "density non-empty" true
    (Array.length v.Violin.density > 0)

let test_degenerate () =
  let v = Violin.of_samples ~label:"const" (Array.make 5 3.0) in
  Alcotest.(check (float 1e-9)) "median" 3.0 v.Violin.median;
  Alcotest.(check (float 1e-9)) "min=max" v.Violin.min v.Violin.max

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Violin.of_samples: empty")
    (fun () -> ignore (Violin.of_samples ~label:"x" [||]))

let test_render_ascii () =
  let v1 = sample_violin () in
  let v2 =
    Violin.of_samples ~label:"wide"
      (Array.init 50 (fun i -> Float.pow 10.0 (1.0 +. (float_of_int i /. 12.0))))
  in
  let text = Violin.render_ascii ~height:12 [ v1; v2 ] in
  Alcotest.(check bool) "non-empty" true (String.length text > 0);
  Alcotest.(check bool) "contains median marker" true
    (String.contains text 'O');
  Alcotest.(check bool) "contains labels" true
    (String.length text > 0
    &&
    let lines = String.split_on_char '\n' text in
    List.exists (fun l -> String.length l > 0 && String.trim l <> "") lines)

let test_render_empty_list () =
  Alcotest.(check string) "empty input" "" (Violin.render_ascii [])

let qcheck_violin_ordering =
  QCheck.Test.make ~name:"violin quantiles ordered" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (float_bound_exclusive 1e5))
    (fun l ->
      let v = Violin.of_samples ~label:"q" (Array.of_list l) in
      v.Violin.min <= v.Violin.q1 +. 1e-9
      && v.Violin.q1 <= v.Violin.median +. 1e-9
      && v.Violin.median <= v.Violin.q3 +. 1e-9
      && v.Violin.q3 <= v.Violin.max +. 1e-9)

let suite =
  [
    Alcotest.test_case "quartile ordering" `Quick test_quartile_ordering;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "degenerate" `Quick test_degenerate;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "render ascii" `Quick test_render_ascii;
    Alcotest.test_case "render empty list" `Quick test_render_empty_list;
    QCheck_alcotest.to_alcotest qcheck_violin_ordering;
  ]
