open Ksurf

let test_median_odd () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Quantile.median [| 5.0; 1.0; 3.0 |])

let test_median_even () =
  Alcotest.(check (float 1e-9)) "even" 2.5 (Quantile.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_single_element () =
  Alcotest.(check (float 1e-9)) "p99 of singleton" 7.0 (Quantile.p99 [| 7.0 |]);
  Alcotest.(check (float 1e-9)) "median of singleton" 7.0 (Quantile.median [| 7.0 |])

let test_type7_interpolation () =
  (* quantile([10,20,30,40], 0.5) with type-7: h = 1.5 -> 25. *)
  Alcotest.(check (float 1e-9)) "interpolated" 25.0
    (Quantile.quantile [| 10.0; 20.0; 30.0; 40.0 |] 0.5)

let test_extremes () =
  let data = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "q0 = min" 1.0 (Quantile.quantile data 0.0);
  Alcotest.(check (float 1e-9)) "q1 = max" 5.0 (Quantile.quantile data 1.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Quantile.max_value data);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Quantile.min_value data)

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.of_sorted: empty")
    (fun () -> ignore (Quantile.median [||]))

let test_ecdf () =
  let data = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "below all" 0.0 (Quantile.ecdf data 0.5);
  Alcotest.(check (float 1e-9)) "half" 0.5 (Quantile.ecdf data 2.0);
  Alcotest.(check (float 1e-9)) "all" 1.0 (Quantile.ecdf data 10.0);
  Alcotest.(check (float 1e-9)) "empty is 0" 0.0 (Quantile.ecdf [||] 1.0)

let test_summarize () =
  let s = Quantile.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "count" 5 s.Quantile.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Quantile.mean;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Quantile.median;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Quantile.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Quantile.max

let test_sorted_copy_does_not_mutate () =
  let data = [| 3.0; 1.0; 2.0 |] in
  let _ = Quantile.sorted_copy data in
  Alcotest.(check (float 1e-9)) "original intact" 3.0 data.(0)

let qcheck_quantile_bounded =
  QCheck.Test.make ~name:"quantile within [min,max]" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1e6))
        (float_bound_inclusive 1.0))
    (fun (l, q) ->
      let a = Array.of_list l in
      let v = Quantile.quantile a q in
      v >= Quantile.min_value a -. 1e-9 && v <= Quantile.max_value a +. 1e-9)

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1e6))
    (fun l ->
      let a = Array.of_list l in
      let sorted = Quantile.sorted_copy a in
      let prev = ref neg_infinity in
      let ok = ref true in
      List.iter
        (fun q ->
          let v = Quantile.of_sorted sorted q in
          if v < !prev -. 1e-9 then ok := false;
          prev := v)
        [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ];
      !ok)

let qcheck_median_le_p99 =
  QCheck.Test.make ~name:"median <= p99 <= max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 80) (float_bound_exclusive 1e6))
    (fun l ->
      let a = Array.of_list l in
      let s = Quantile.summarize a in
      s.Quantile.median <= s.Quantile.p99 +. 1e-9
      && s.Quantile.p99 <= s.Quantile.max +. 1e-9)

let suite =
  [
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "singleton" `Quick test_single_element;
    Alcotest.test_case "type-7 interpolation" `Quick test_type7_interpolation;
    Alcotest.test_case "extremes" `Quick test_extremes;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "ecdf" `Quick test_ecdf;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "no mutation" `Quick test_sorted_copy_does_not_mutate;
    QCheck_alcotest.to_alcotest qcheck_quantile_bounded;
    QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
    QCheck_alcotest.to_alcotest qcheck_median_le_p99;
  ]
