test/test_barrier.ml: Alcotest Barrier Engine Ksurf List
