test/test_quantile.ml: Alcotest Array Gen Ksurf List QCheck QCheck_alcotest Quantile
