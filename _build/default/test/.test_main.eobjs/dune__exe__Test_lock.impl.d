test/test_lock.ml: Alcotest Array Engine Float Ksurf List Lock QCheck QCheck_alcotest Welford
