test/test_trace.ml: Alcotest Engine Format Ksurf Ksurf_sim List QCheck QCheck_alcotest String
