test/test_heap.ml: Alcotest Ksurf_sim List Option QCheck QCheck_alcotest
