test/test_kernel_properties.ml: Arg Dist Engine Instance Kernel_config Ksurf List Ops Prng QCheck QCheck_alcotest Spec Syscalls
