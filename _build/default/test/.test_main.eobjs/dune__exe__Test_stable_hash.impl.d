test/test_stable_hash.ml: Alcotest Ksurf QCheck QCheck_alcotest Stable_hash
