test/test_buckets.ml: Alcotest Array Buckets Float Format Gen Ksurf List QCheck QCheck_alcotest String
