test/test_kde.ml: Alcotest Array Float Gen Kde Ksurf Prng QCheck QCheck_alcotest
