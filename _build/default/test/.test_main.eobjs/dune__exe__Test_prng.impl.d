test/test_prng.ml: Alcotest Array Float Ksurf List Prng QCheck QCheck_alcotest
