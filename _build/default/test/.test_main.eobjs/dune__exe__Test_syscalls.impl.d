test/test_syscalls.ml: Alcotest Arg Array Category Dist Format Ksurf List Ops Option Prng QCheck QCheck_alcotest Spec String Syscalls
