test/test_report.ml: Alcotest Format Ksurf List Report String
