test/test_syzgen.ml: Alcotest Arg Array Corpus Coverage Filename Generator Ksurf Ksurf_kernel Ksurf_syscalls List Mutate Option Prng Program Spec String Sys Syscalls
