test/test_env.ml: Alcotest Arg Engine Env Instance Kernel_config Ksurf List Machine Option Partition Syscalls Virt_config
