test/test_virt.ml: Alcotest Container Dist Engine Float Hypervisor Instance Kernel_config Ksurf List Ops Virt_config Vm
