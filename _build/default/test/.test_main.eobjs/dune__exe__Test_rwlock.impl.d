test/test_rwlock.ml: Alcotest Engine Ksurf List Rwlock
