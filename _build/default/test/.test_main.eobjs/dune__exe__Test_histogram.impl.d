test/test_histogram.ml: Alcotest Array Histogram Ksurf List QCheck QCheck_alcotest
