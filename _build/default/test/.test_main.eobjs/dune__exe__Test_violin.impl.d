test/test_violin.ml: Alcotest Array Float Gen Ksurf List QCheck QCheck_alcotest String Violin
