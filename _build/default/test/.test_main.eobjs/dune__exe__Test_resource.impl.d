test/test_resource.ml: Alcotest Engine Float Ksurf QCheck QCheck_alcotest Resource
