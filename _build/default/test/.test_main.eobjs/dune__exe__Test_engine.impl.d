test/test_engine.ml: Alcotest Buffer Engine Float Gen Ksurf List Printf Prng QCheck QCheck_alcotest
