test/test_varbench.ml: Alcotest Array Buckets Corpus Engine Env Generator Harness Kernel_config Ksurf Lazy List Noise Partition Samples Study Virt_config
