test/test_tailbench.ml: Alcotest Apps Engine Env Kernel_config Ksurf List Option Partition Prng Runner Service
