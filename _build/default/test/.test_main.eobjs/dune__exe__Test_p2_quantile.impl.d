test/test_p2_quantile.ml: Alcotest Array Dist Float Gen Ksurf Ksurf_stats List Prng QCheck QCheck_alcotest Quantile
