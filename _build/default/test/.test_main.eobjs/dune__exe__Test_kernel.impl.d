test/test_kernel.ml: Alcotest Background Caches Category Dist Engine Instance Kernel_config Ksurf List Ops Prng
