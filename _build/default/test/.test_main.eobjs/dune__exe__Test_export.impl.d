test/test_export.ml: Alcotest Apps Array Csv Experiments Export Filename Fun Ksurf List String Sys Unix
