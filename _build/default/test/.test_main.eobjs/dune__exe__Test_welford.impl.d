test/test_welford.ml: Alcotest Float Gen Ksurf List QCheck QCheck_alcotest Welford
