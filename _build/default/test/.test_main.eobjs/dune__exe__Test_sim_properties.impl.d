test/test_sim_properties.ml: Barrier Engine Ksurf Lock Mailbox Prng QCheck QCheck_alcotest Resource Rwlock
