test/test_dist.ml: Alcotest Array Dist Float Ksurf Prng QCheck QCheck_alcotest Quantile
