test/test_cluster.ml: Alcotest Apps Cluster Env Generator Ksurf Lazy Option
