test/test_experiments.ml: Alcotest Apps Buckets Cluster Corpus Experiments Format Ksurf Lazy Lightweight List Partition Runner String Virt_config
