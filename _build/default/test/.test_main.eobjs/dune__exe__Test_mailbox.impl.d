test/test_mailbox.ml: Alcotest Array Engine Ksurf List Mailbox
