open Ksurf

let quiet = Kernel_config.quiet
let kvm = Env.Kvm Virt_config.default

let test_partition_table1 () =
  List.iter
    (fun n ->
      let p = Partition.table1 n in
      Alcotest.(check int) "unit count" n (Partition.unit_count p);
      Alcotest.(check int) "total cores" 64 (Partition.total_cores p);
      Alcotest.(check int) "total memory" 32768 (Partition.total_mem_mb p))
    Partition.table1_rows;
  Alcotest.(check bool) "non-row rejected" true
    (try
       ignore (Partition.table1 5);
       false
     with Invalid_argument _ -> true)

let test_partition_uneven () =
  Alcotest.(check bool) "uneven cores" true
    (try
       ignore (Partition.equal_split ~units:3 ~total_cores:64 ~total_mem_mb:32768);
       false
     with Invalid_argument _ -> true)

let test_machines () =
  Alcotest.(check int) "epyc cores" 64 Machine.epyc.Machine.cores;
  Alcotest.(check int) "haswell cores" 48 Machine.haswell_node.Machine.cores;
  Alcotest.(check int) "virtualized cores" 64 Machine.virtualized_cores

let test_deploy_native () =
  let engine = Engine.create () in
  let env = Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1) in
  Alcotest.(check int) "64 ranks" 64 (Env.rank_count env);
  Alcotest.(check int) "one instance" 1 (List.length (Env.instances env));
  Alcotest.(check string) "kind name" "native" (Env.kind_name (Env.kind env))

let test_deploy_kvm_instances () =
  let engine = Engine.create () in
  let env = Env.deploy ~engine ~kernel_config:quiet kvm (Partition.table1 8) in
  Alcotest.(check int) "8 guest kernels" 8 (List.length (Env.instances env));
  Alcotest.(check int) "still 64 ranks" 64 (Env.rank_count env);
  (* Rank -> unit mapping is block-wise. *)
  Alcotest.(check int) "rank 0 in unit 0" 0 (Env.unit_of_rank env 0);
  Alcotest.(check int) "rank 8 in unit 1" 1 (Env.unit_of_rank env 8);
  Alcotest.(check int) "rank 63 in unit 7" 7 (Env.unit_of_rank env 63)

let test_deploy_docker_shares_kernel () =
  let engine = Engine.create () in
  let env = Env.deploy ~engine ~kernel_config:quiet Env.Docker (Partition.table1 4) in
  Alcotest.(check int) "one shared instance" 1 (List.length (Env.instances env));
  let host = List.hd (Env.instances env) in
  Alcotest.(check int) "four cgroups" 4 (Instance.cgroup_count host)

let test_surface_area_ordering () =
  let engine = Engine.create () in
  let native = Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1) in
  let engine2 = Engine.create () in
  let vms = Env.deploy ~engine:engine2 ~kernel_config:quiet kvm (Partition.table1 64) in
  Alcotest.(check bool) "native surface much larger" true
    (Env.surface_area_of_rank native 0 > 10.0 *. Env.surface_area_of_rank vms 0)

let test_exec_syscall_latency () =
  let engine = Engine.create () in
  let env = Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1) in
  let spec = Option.get (Syscalls.by_name "getpid") in
  let latency = ref nan in
  Engine.spawn engine (fun () ->
      latency := Env.exec_syscall env ~rank:0 spec Arg.default);
  Engine.run engine;
  (* entry (180 in quiet config? quiet inherits default entry) + 60 *)
  Alcotest.(check bool) "positive and small" true (!latency > 0.0 && !latency < 10_000.0)

let test_exec_latency_ordering_native_vs_kvm () =
  (* getpid: KVM must cost at least as much as native (exit overheads),
     comparing means over many calls. *)
  let spec = Option.get (Syscalls.by_name "getpid") in
  let mean_of kind =
    let engine = Engine.create ~seed:4 () in
    let env = Env.deploy ~engine ~kernel_config:quiet kind (Partition.table1 1) in
    let total = ref 0.0 in
    Engine.spawn engine (fun () ->
        for _ = 1 to 300 do
          total := !total +. Env.exec_syscall env ~rank:0 spec Arg.default
        done);
    Engine.run engine;
    !total /. 300.0
  in
  Alcotest.(check bool) "kvm >= native" true (mean_of kvm > mean_of Env.Native)

let test_rank_out_of_range () =
  let engine = Engine.create () in
  let env = Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1) in
  let spec = Option.get (Syscalls.by_name "getpid") in
  Engine.spawn engine (fun () ->
      ignore (Env.exec_syscall env ~rank:99 spec Arg.default));
  Alcotest.(check bool) "raises" true
    (try
       Engine.run engine;
       false
     with Engine.Process_error (_, Invalid_argument _) -> true)

let test_partition_exceeding_machine () =
  let engine = Engine.create () in
  Alcotest.(check bool) "too many cores" true
    (try
       ignore
         (Env.deploy ~engine ~machine:Machine.haswell_node ~kernel_config:quiet
            Env.Native (Partition.table1 1));
       false
     with Invalid_argument _ -> true)

let test_barrier_cost_kind_dependent () =
  let engine = Engine.create () in
  let native = Env.deploy ~engine ~kernel_config:quiet Env.Native (Partition.table1 1) in
  let engine2 = Engine.create () in
  let kvm_env = Env.deploy ~engine:engine2 ~kernel_config:quiet kvm (Partition.table1 4) in
  Alcotest.(check bool) "virtio barrier costlier" true
    (Env.barrier_cost_per_party kvm_env > Env.barrier_cost_per_party native)

let test_busy_of_rank_starts_idle () =
  let engine = Engine.create () in
  let env = Env.deploy ~engine ~kernel_config:quiet Env.Docker (Partition.table1 4) in
  Alcotest.(check (float 1e-9)) "idle" 0.0 (Env.busy_of_rank env 0)

let suite =
  [
    Alcotest.test_case "table1 partitions" `Quick test_partition_table1;
    Alcotest.test_case "uneven partition" `Quick test_partition_uneven;
    Alcotest.test_case "machines" `Quick test_machines;
    Alcotest.test_case "deploy native" `Quick test_deploy_native;
    Alcotest.test_case "deploy kvm" `Quick test_deploy_kvm_instances;
    Alcotest.test_case "deploy docker" `Quick test_deploy_docker_shares_kernel;
    Alcotest.test_case "surface area ordering" `Quick test_surface_area_ordering;
    Alcotest.test_case "exec syscall latency" `Quick test_exec_syscall_latency;
    Alcotest.test_case "kvm overhead ordering" `Quick
      test_exec_latency_ordering_native_vs_kvm;
    Alcotest.test_case "rank out of range" `Quick test_rank_out_of_range;
    Alcotest.test_case "partition too large" `Quick test_partition_exceeding_machine;
    Alcotest.test_case "barrier cost by kind" `Quick test_barrier_cost_kind_dependent;
    Alcotest.test_case "busy starts idle" `Quick test_busy_of_rank_starts_idle;
  ]
