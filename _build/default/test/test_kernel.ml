open Ksurf

(* Kernel model: categories, config, caches, instance, background. *)

let quiet_instance ?(cores = 4) ?(mem_mb = 2048) engine =
  Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores ~mem_mb ()

let ctx ?(core = 0) ?(tenant = 0) ?(key = 0) ?cgroup () =
  { Instance.core; tenant; key; cgroup }

(* --- categories ---------------------------------------------------- *)

let test_category_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "roundtrip" true
        (Category.of_string (Category.to_string c) = Some c))
    Category.all;
  Alcotest.(check bool) "unknown" true (Category.of_string "nonsense" = None)

let test_category_index_bijective () =
  let indices = List.map Category.index Category.all in
  Alcotest.(check (list int)) "0..5" [ 0; 1; 2; 3; 4; 5 ] indices

(* --- config -------------------------------------------------------- *)

let test_config_ablations () =
  let c = Kernel_config.default in
  Alcotest.(check bool) "default bg on" true c.Kernel_config.enable_background;
  Alcotest.(check bool) "bg off" false
    (Kernel_config.without_background c).Kernel_config.enable_background;
  Alcotest.(check bool) "tlb off" false
    (Kernel_config.without_tlb_shootdown c).Kernel_config.enable_tlb_shootdown;
  Alcotest.(check bool) "timer off" false
    (Kernel_config.without_timer_noise c).Kernel_config.enable_timer_noise;
  Alcotest.(check bool) "quiet has everything off" false
    Kernel_config.quiet.Kernel_config.enable_background

(* --- caches --------------------------------------------------------- *)

let test_cache_pressure () =
  let c = Caches.create ~name:"t" ~base_hit_rate:0.9 ~pressure_per_sharer:0.01 in
  Alcotest.(check (float 1e-9)) "single tenant" 0.9 (Caches.hit_rate c);
  Caches.set_sharers c 11;
  Alcotest.(check (float 1e-9)) "10 extra sharers" 0.8 (Caches.hit_rate c);
  Caches.set_sharers c 1000;
  Alcotest.(check (float 1e-9)) "floored at 0.5" 0.5 (Caches.hit_rate c)

let test_cache_counters () =
  let c = Caches.create ~name:"t" ~base_hit_rate:1.0 ~pressure_per_sharer:0.0 in
  let rng = Prng.create 1 in
  for _ = 1 to 10 do
    Alcotest.(check bool) "rate 1.0 always hits" true (Caches.probe c rng)
  done;
  Alcotest.(check int) "lookups" 10 (Caches.lookups c);
  Alcotest.(check int) "no misses" 0 (Caches.misses c)

(* --- instance -------------------------------------------------------- *)

let test_boot_validation () =
  let engine = Engine.create () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "0 cores" true
    (raises (fun () ->
         ignore
           (Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:0
              ~mem_mb:1 ())));
  Alcotest.(check bool) "0 mem" true
    (raises (fun () ->
         ignore
           (Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:1
              ~mem_mb:0 ())))

let test_surface_area () =
  let engine = Engine.create () in
  let full = quiet_instance ~cores:64 ~mem_mb:32768 engine in
  let tiny = quiet_instance ~cores:1 ~mem_mb:512 engine in
  Alcotest.(check (float 1e-9)) "full machine" 1.0 (Instance.surface_area full);
  Alcotest.(check bool) "tiny is much smaller" true
    (Instance.surface_area tiny < 0.02)

let test_lock_striping () =
  let engine = Engine.create () in
  let inst = quiet_instance ~cores:8 engine in
  (* Global locks: same object regardless of context. *)
  let a = Instance.lock inst (ctx ~core:0 ()) Ops.Journal in
  let b = Instance.lock inst (ctx ~core:5 ~tenant:3 ()) Ops.Journal in
  Alcotest.(check bool) "journal is global" true (a == b);
  (* Runqueues: per core. *)
  let r0 = Instance.lock inst (ctx ~core:0 ()) Ops.Runqueue in
  let r1 = Instance.lock inst (ctx ~core:1 ()) Ops.Runqueue in
  Alcotest.(check bool) "distinct runqueues" true (r0 != r1);
  (* mmap_sem: per tenant. *)
  let m0 = Instance.rwlock inst (ctx ~tenant:0 ()) Ops.Mmap_sem in
  let m1 = Instance.rwlock inst (ctx ~tenant:1 ()) Ops.Mmap_sem in
  Alcotest.(check bool) "distinct address spaces" true (m0 != m1)

let test_exec_advances_time () =
  let engine = Engine.create () in
  let inst = quiet_instance engine in
  let elapsed = ref 0.0 in
  Engine.spawn engine (fun () ->
      let t0 = Engine.now engine in
      Instance.exec_program inst (ctx ())
        [ Ops.Cpu 100.0; Ops.Lock (Ops.Tasklist, Dist.constant 50.0); Ops.Cpu 25.0 ];
      elapsed := Engine.now engine -. t0);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "sum of ops" 175.0 !elapsed

let test_uniprocessor_shootdown_is_local () =
  (* cores=1: no IPIs, just the local flush. *)
  let engine = Engine.create () in
  let inst = quiet_instance ~cores:1 engine in
  let config =
    { Kernel_config.quiet with Kernel_config.enable_tlb_shootdown = true }
  in
  let inst1 =
    Instance.boot ~engine ~config ~id:1 ~cores:1 ~mem_mb:512 ()
  in
  ignore inst;
  let elapsed = ref nan in
  Engine.spawn engine (fun () ->
      let t0 = Engine.now engine in
      Instance.exec_op inst1 (ctx ()) Ops.Tlb_shootdown;
      elapsed := Engine.now engine -. t0);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "local flush only" 200.0 !elapsed

let test_multicore_shootdown_costs_more () =
  let config =
    { Kernel_config.quiet with Kernel_config.enable_tlb_shootdown = true }
  in
  let run cores =
    let engine = Engine.create () in
    let inst = Instance.boot ~engine ~config ~id:0 ~cores ~mem_mb:512 () in
    let elapsed = ref nan in
    Engine.spawn engine (fun () ->
        let t0 = Engine.now engine in
        Instance.exec_op inst (ctx ()) Ops.Tlb_shootdown;
        elapsed := Engine.now engine -. t0);
    Engine.run engine;
    !elapsed
  in
  Alcotest.(check bool) "8 cores > 2 cores > 1 core" true
    (run 8 > run 2 && run 2 > run 1)

let test_cgroup_registration () =
  let engine = Engine.create () in
  let inst = quiet_instance engine in
  Alcotest.(check int) "none initially" 0 (Instance.cgroup_count inst);
  let a = Instance.register_cgroup inst in
  let b = Instance.register_cgroup inst in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "two registered" 2 (Instance.cgroup_count inst)

let test_cgroup_charge_noop_without_cgroup () =
  let engine = Engine.create () in
  let inst = quiet_instance engine in
  let elapsed = ref nan in
  Engine.spawn engine (fun () ->
      let t0 = Engine.now engine in
      Instance.exec_op inst (ctx ()) Ops.Cgroup_charge;
      elapsed := Engine.now engine -. t0);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "free without a cgroup" 0.0 !elapsed

let test_contention_emerges () =
  (* Two processes hammering the same global lock: one must wait. *)
  let engine = Engine.create () in
  let inst = quiet_instance engine in
  let ops = [ Ops.Lock (Ops.Dcache, Dist.constant 100.0) ] in
  let finish = ref [] in
  for tenant = 0 to 1 do
    Engine.spawn engine (fun () ->
        Instance.exec_program inst (ctx ~core:tenant ~tenant ()) ops;
        finish := Engine.now engine :: !finish)
  done;
  Engine.run engine;
  match List.sort compare !finish with
  | [ a; b ] ->
      Alcotest.(check (float 1e-9)) "first unimpeded" 100.0 a;
      Alcotest.(check (float 1e-9)) "second queued" 200.0 b
  | _ -> Alcotest.fail "expected two finishers"

let test_busy_ramps_under_load () =
  let engine = Engine.create () in
  let inst = quiet_instance ~cores:2 engine in
  Alcotest.(check (float 1e-9)) "idle initially" 0.0 (Instance.busy_fraction inst);
  for core = 0 to 1 do
    Engine.spawn engine (fun () ->
        for _ = 1 to 20_000 do
          Instance.exec_op inst (ctx ~core ()) (Ops.Cpu 500.0)
        done)
  done;
  Engine.run engine;
  Alcotest.(check bool) "busy after sustained load" true
    (Instance.busy_fraction inst > 0.1)

let test_take_activity_resets () =
  let engine = Engine.create () in
  let inst = quiet_instance engine in
  Engine.spawn engine (fun () ->
      Instance.exec_op inst (ctx ()) (Ops.Lock (Ops.Journal, Dist.constant 10.0)));
  Engine.run engine;
  Alcotest.(check int) "one fs op" 1 (Instance.take_activity inst Instance.Fs_activity);
  Alcotest.(check int) "reset after take" 0
    (Instance.take_activity inst Instance.Fs_activity)

let test_block_io_queues () =
  let engine = Engine.create () in
  let config =
    { Kernel_config.quiet with Kernel_config.block_queue_depth = 1;
      block_latency = Dist.constant 1000.0; block_bandwidth_ns_per_byte = 0.0 }
  in
  let inst = Instance.boot ~engine ~config ~id:0 ~cores:2 ~mem_mb:512 () in
  let last = ref nan in
  for i = 0 to 1 do
    Engine.spawn engine (fun () ->
        Instance.exec_op inst (ctx ~core:i ()) (Ops.Block_io { bytes = 0; write = false });
        last := Engine.now engine)
  done;
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "serialised on depth-1 device" 2000.0 !last

(* --- background daemons ---------------------------------------------- *)

let test_daemons_disabled () =
  let engine = Engine.create () in
  let inst = quiet_instance engine in
  Background.start inst;
  Alcotest.(check int) "no daemon events queued" 0 (Engine.pending engine)

let test_daemon_names () =
  Alcotest.(check int) "four daemons" 4 (List.length Background.daemon_names)

let test_journal_daemon_collides () =
  (* With heavy fs activity, the journal daemon's holds delay callers. *)
  let config =
    {
      Kernel_config.quiet with
      Kernel_config.enable_background = true;
      journal_commit_interval = Dist.constant 1e6;
      journal_commit_hold = Dist.constant 5e6;
    }
  in
  let engine = Engine.create ~seed:3 () in
  let inst = Instance.boot ~engine ~config ~id:0 ~cores:64 ~mem_mb:32768 () in
  Background.start inst;
  let max_latency = ref 0.0 in
  Engine.spawn engine (fun () ->
      for _ = 1 to 3_000 do
        let t0 = Engine.now engine in
        Instance.exec_op inst (ctx ())
          (Ops.Lock (Ops.Journal, Dist.constant 200.0));
        let dt = Engine.now engine -. t0 in
        if dt > !max_latency then max_latency := dt;
        Engine.delay 500.0
      done);
  Engine.run ~until:4e6 engine;
  Alcotest.(check bool) "some call queued behind a commit" true
    (!max_latency > 1e5)

let suite =
  [
    Alcotest.test_case "category roundtrip" `Quick test_category_roundtrip;
    Alcotest.test_case "category index" `Quick test_category_index_bijective;
    Alcotest.test_case "config ablations" `Quick test_config_ablations;
    Alcotest.test_case "cache pressure" `Quick test_cache_pressure;
    Alcotest.test_case "cache counters" `Quick test_cache_counters;
    Alcotest.test_case "boot validation" `Quick test_boot_validation;
    Alcotest.test_case "surface area" `Quick test_surface_area;
    Alcotest.test_case "lock striping" `Quick test_lock_striping;
    Alcotest.test_case "exec advances time" `Quick test_exec_advances_time;
    Alcotest.test_case "uniprocessor shootdown" `Quick
      test_uniprocessor_shootdown_is_local;
    Alcotest.test_case "multicore shootdown" `Quick
      test_multicore_shootdown_costs_more;
    Alcotest.test_case "cgroup registration" `Quick test_cgroup_registration;
    Alcotest.test_case "charge without cgroup" `Quick
      test_cgroup_charge_noop_without_cgroup;
    Alcotest.test_case "contention emerges" `Quick test_contention_emerges;
    Alcotest.test_case "busy ramps" `Quick test_busy_ramps_under_load;
    Alcotest.test_case "take_activity resets" `Quick test_take_activity_resets;
    Alcotest.test_case "block io queues" `Quick test_block_io_queues;
    Alcotest.test_case "daemons disabled" `Quick test_daemons_disabled;
    Alcotest.test_case "daemon names" `Quick test_daemon_names;
    Alcotest.test_case "journal daemon collides" `Quick
      test_journal_daemon_collides;
  ]
