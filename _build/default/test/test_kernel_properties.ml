open Ksurf

(* Property tests of the kernel-op interpreter over random programs. *)

let random_ops rng n =
  List.init n (fun _ ->
      match Prng.int rng 9 with
      | 0 -> Ops.Cpu (Prng.float rng 500.0)
      | 1 -> Ops.Lock (Ops.Tasklist, Dist.constant (Prng.float rng 300.0))
      | 2 -> Ops.Lock (Ops.Dcache, Dist.constant (Prng.float rng 300.0))
      | 3 -> Ops.Dcache_lookup
      | 4 -> Ops.Page_cache_lookup
      | 5 -> Ops.Slab_alloc
      | 6 -> Ops.Page_alloc (Prng.int rng 4)
      | 7 -> Ops.Read_lock (Ops.Mmap_sem, Dist.constant (Prng.float rng 200.0))
      | _ -> Ops.Rcu_sync)

let qcheck_exec_advances_at_least_fixed_cost =
  QCheck.Test.make ~name:"exec_program >= fixed cpu cost" ~count:80
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, n) ->
      let engine = Engine.create ~seed () in
      let inst =
        Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:4
          ~mem_mb:1024 ()
      in
      let rng = Prng.create (seed + 10) in
      let ops = random_ops rng n in
      let elapsed = ref nan in
      Engine.spawn engine (fun () ->
          let t0 = Engine.now engine in
          Instance.exec_program inst
            { Instance.core = 0; tenant = 0; key = 0; cgroup = None }
            ops;
          elapsed := Engine.now engine -. t0);
      Engine.run engine;
      !elapsed >= Ops.total_fixed_cost ops -. 1e-6)

let qcheck_exec_deterministic =
  QCheck.Test.make ~name:"identical engines execute identically" ~count:50
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, n) ->
      let run () =
        let engine = Engine.create ~seed () in
        let inst =
          Instance.boot ~engine ~config:Kernel_config.default ~id:0 ~cores:8
            ~mem_mb:4096 ()
        in
        let rng = Prng.create (seed + 20) in
        let ops = random_ops rng n in
        let finish = ref nan in
        for core = 0 to 3 do
          Engine.spawn engine (fun () ->
              Instance.exec_program inst
                { Instance.core; tenant = core; key = 0; cgroup = None }
                ops;
              finish := Engine.now engine)
        done;
        Engine.run engine;
        !finish
      in
      run () = run ())

let qcheck_concurrent_execution_no_crash =
  QCheck.Test.make ~name:"concurrent random programs drain cleanly" ~count:40
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, procs) ->
      let engine = Engine.create ~seed () in
      let inst =
        Instance.boot ~engine ~config:Kernel_config.default ~id:0 ~cores:procs
          ~mem_mb:2048 ()
      in
      let rng = Prng.create (seed + 30) in
      let done_count = ref 0 in
      for core = 0 to procs - 1 do
        let ops = random_ops rng (1 + Prng.int rng 10) in
        Engine.spawn engine (fun () ->
            for _ = 1 to 5 do
              Instance.exec_program inst
                { Instance.core; tenant = core; key = core; cgroup = None }
                ops
            done;
            incr done_count)
      done;
      Engine.run ~stop:(fun () -> !done_count = procs) engine;
      !done_count = procs)

let qcheck_syscall_latency_positive_all_table =
  QCheck.Test.make ~name:"every syscall has positive latency" ~count:60
    QCheck.small_int
    (fun seed ->
      let engine = Engine.create ~seed () in
      let inst =
        Instance.boot ~engine ~config:Kernel_config.quiet ~id:0 ~cores:2
          ~mem_mb:1024 ()
      in
      let rng = Prng.create (seed + 40) in
      let spec = Prng.pick rng Syscalls.all in
      let arg = Arg.generate spec.Spec.arg_model rng in
      let elapsed = ref nan in
      Engine.spawn engine (fun () ->
          let t0 = Engine.now engine in
          Instance.burn inst 120.0;
          Instance.exec_program inst
            { Instance.core = 0; tenant = 0; key = arg.Arg.obj; cgroup = None }
            (spec.Spec.ops arg);
          elapsed := Engine.now engine -. t0);
      Engine.run engine;
      !elapsed > 0.0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_exec_advances_at_least_fixed_cost;
    QCheck_alcotest.to_alcotest qcheck_exec_deterministic;
    QCheck_alcotest.to_alcotest qcheck_concurrent_execution_no_crash;
    QCheck_alcotest.to_alcotest qcheck_syscall_latency_positive_all_table;
  ]
