open Ksurf

let render f = Format.asprintf "%t" f

let test_duration () =
  Alcotest.(check string) "ns" "412ns" (Report.duration_ns 412.0);
  Alcotest.(check string) "us" "3.1us" (Report.duration_ns 3_100.0);
  Alcotest.(check string) "ms" "42.0ms" (Report.duration_ns 4.2e7);
  Alcotest.(check string) "s" "1.20s" (Report.duration_ns 1.2e9)

let test_table () =
  let out =
    render (Report.table ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ])
  in
  Alcotest.(check bool) "header present" true
    (String.length out > 0 && String.sub out 0 1 = "a");
  Alcotest.(check bool) "has rule" true (String.contains out '-')

let test_table_ragged () =
  Alcotest.(check bool) "ragged rejected" true
    (try
       ignore (render (Report.table ~header:[ "a"; "b" ] ~rows:[ [ "1" ] ]));
       false
     with Invalid_argument _ -> true)

let test_bars () =
  let out =
    render (Report.bars ~title:"t" ~unit_label:"ms" [ ("x", 10.0); ("y", 5.0) ])
  in
  Alcotest.(check bool) "bars drawn" true (String.contains out '#');
  Alcotest.(check bool) "labels present" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.exists (fun l -> String.contains l 'x'))

let test_bars_zero_peak () =
  let out = render (Report.bars ~title:"t" ~unit_label:"u" [ ("z", 0.0) ]) in
  Alcotest.(check bool) "no bar for zero" true (not (String.contains out '#'))

let test_grouped_bars () =
  let out =
    render
      (Report.grouped_bars ~title:"g" ~unit_label:"s" ~series:[ "kvm"; "docker" ]
         [ ("app1", [ 1.0; 2.0 ]); ("app2", [ 3.0; 4.0 ]) ])
  in
  Alcotest.(check bool) "series labels" true
    (String.split_on_char '\n' out
    |> List.exists (fun l ->
           String.length l >= 3
           &&
           let rec contains i =
             i + 3 <= String.length l
             && (String.sub l i 3 = "kvm" || contains (i + 1))
           in
           contains 0))

let test_grouped_bars_ragged () =
  Alcotest.(check bool) "ragged group rejected" true
    (try
       ignore
         (render
            (Report.grouped_bars ~title:"g" ~unit_label:"s" ~series:[ "a"; "b" ]
               [ ("x", [ 1.0 ]) ]));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "duration" `Quick test_duration;
    Alcotest.test_case "table" `Quick test_table;
    Alcotest.test_case "table ragged" `Quick test_table_ragged;
    Alcotest.test_case "bars" `Quick test_bars;
    Alcotest.test_case "bars zero peak" `Quick test_bars_zero_peak;
    Alcotest.test_case "grouped bars" `Quick test_grouped_bars;
    Alcotest.test_case "grouped ragged" `Quick test_grouped_bars_ragged;
  ]
