open Ksurf

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_changes_stream () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_split_independent_of_position () =
  (* A child stream depends on the parent's seed and label only. *)
  let a = Prng.create 7 in
  let b = Prng.create 7 in
  ignore (Prng.bits64 b);
  ignore (Prng.bits64 b);
  let ca = Prng.split a "child" and cb = Prng.split b "child" in
  Alcotest.(check int64) "same child stream" (Prng.bits64 ca) (Prng.bits64 cb)

let test_split_labels_differ () =
  let p = Prng.create 7 in
  let a = Prng.split p "left" and b = Prng.split p "right" in
  Alcotest.(check bool) "labels give distinct streams" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_copy () =
  let a = Prng.create 9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

let test_int_rejects_bad_bound () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_uniform_in_range () =
  let rng = Prng.create 11 in
  for _ = 1 to 10_000 do
    let u = Prng.uniform rng in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform out of [0,1)"
  done

let test_uniform_mean () =
  let rng = Prng.create 13 in
  let acc = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.uniform rng
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then
    Alcotest.failf "uniform mean %f too far from 0.5" mean

let test_chance_extremes () =
  let rng = Prng.create 17 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.chance rng 1.0);
  Alcotest.(check bool) "p<0 never" false (Prng.chance rng (-0.5));
  Alcotest.(check bool) "p>1 always" true (Prng.chance rng 1.5)

let test_pick_empty () =
  let rng = Prng.create 19 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick rng [||]))

let test_seed_of () =
  let rng = Prng.create 37 in
  ignore (Prng.bits64 rng);
  Alcotest.(check int) "seed preserved" 37 (Prng.seed_of rng)

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"prng int always in [0,n)" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let rng = Prng.create seed in
      let v = Prng.int rng n in
      v >= 0 && v < n)

let qcheck_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Prng.create seed in
      let a = Array.of_list l in
      Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let qcheck_float_bound =
  QCheck.Test.make ~name:"prng float in [0,x)" ~count:300
    QCheck.(pair small_int pos_float)
    (fun (seed, x) ->
      QCheck.assume (Float.is_finite x && x > 0.0);
      let rng = Prng.create seed in
      let v = Prng.float rng x in
      v >= 0.0 && v <= x)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seed_changes_stream;
    Alcotest.test_case "split position-independent" `Quick
      test_split_independent_of_position;
    Alcotest.test_case "split labels differ" `Quick test_split_labels_differ;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "uniform range" `Quick test_uniform_in_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "pick empty" `Quick test_pick_empty;
    Alcotest.test_case "seed_of" `Quick test_seed_of;
    QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
    QCheck_alcotest.to_alcotest qcheck_shuffle_is_permutation;
    QCheck_alcotest.to_alcotest qcheck_float_bound;
  ]

let () = ignore check_float
