open Ksurf

let tiny_config =
  {
    Cluster.default_config with
    Cluster.nodes_simulated = 1;
    sim_iterations_per_node = 6;
    warmup_iterations = 1;
    requests_per_iteration = 8;
    iterations = 10;
  }

let tiny_corpus =
  lazy
    (Generator.run
       ~params:{ Generator.default_params with Generator.target_programs = 8 }
       ())
      .Generator.corpus

let run_cell ?(contended = false) ?(kind = Env.Docker) () =
  let app = Option.get (Apps.by_name "silo") in
  Cluster.run ~app ~kind ~contended ~config:tiny_config
    ~noise_corpus:(Lazy.force tiny_corpus) ()

let test_smoke () =
  let r = run_cell () in
  Alcotest.(check string) "app" "silo" r.Cluster.app_name;
  Alcotest.(check bool) "positive runtime" true (r.Cluster.runtime_ns > 0.0);
  Alcotest.(check int) "iteration samples" 6 r.Cluster.iteration_samples

let test_straggler_at_least_one () =
  let r = run_cell () in
  Alcotest.(check bool) "max >= mean" true (r.Cluster.straggler_factor >= 1.0)

let test_runtime_scales_with_iterations () =
  let app = Option.get (Apps.by_name "silo") in
  let corpus = Lazy.force tiny_corpus in
  let with_iters n =
    (Cluster.run ~app ~kind:Env.Docker ~contended:false
       ~config:{ tiny_config with Cluster.iterations = n }
       ~noise_corpus:corpus ())
      .Cluster.runtime_ns
  in
  let r10 = with_iters 10 and r20 = with_iters 20 in
  Alcotest.(check (float 1e-6)) "runtime linear in iterations" (2.0 *. r10) r20

let test_deterministic () =
  let a = run_cell () and b = run_cell () in
  Alcotest.(check (float 1e-9)) "same runtime" a.Cluster.runtime_ns
    b.Cluster.runtime_ns

let test_p99_at_least_mean () =
  let r = run_cell () in
  Alcotest.(check bool) "p99 >= mean iteration" true
    (r.Cluster.node_p99_iter_ns >= r.Cluster.node_mean_iter_ns)

let test_relative_loss () =
  let iso = run_cell () in
  let fake = { iso with Cluster.runtime_ns = iso.Cluster.runtime_ns *. 1.5 } in
  Alcotest.(check (float 1e-6)) "+50%" 50.0
    (Cluster.relative_loss ~isolated:iso ~contended:fake)

let test_invalid_nodes () =
  let app = Option.get (Apps.by_name "silo") in
  Alcotest.(check bool) "0 nodes rejected" true
    (try
       ignore
         (Cluster.run ~app ~kind:Env.Docker ~contended:false
            ~config:{ tiny_config with Cluster.nodes_simulated = 0 }
            ~noise_corpus:(Lazy.force tiny_corpus) ());
       false
     with Invalid_argument _ -> true)

let test_more_nodes_more_samples () =
  let app = Option.get (Apps.by_name "silo") in
  let r =
    Cluster.run ~app ~kind:Env.Docker ~contended:false
      ~config:{ tiny_config with Cluster.nodes_simulated = 2 }
      ~noise_corpus:(Lazy.force tiny_corpus) ()
  in
  Alcotest.(check int) "two nodes pool" 12 r.Cluster.iteration_samples

let suite =
  [
    Alcotest.test_case "smoke" `Slow test_smoke;
    Alcotest.test_case "straggler >= 1" `Slow test_straggler_at_least_one;
    Alcotest.test_case "runtime linear in iterations" `Slow
      test_runtime_scales_with_iterations;
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "p99 >= mean" `Slow test_p99_at_least_mean;
    Alcotest.test_case "relative loss" `Slow test_relative_loss;
    Alcotest.test_case "invalid nodes" `Quick test_invalid_nodes;
    Alcotest.test_case "pool size" `Slow test_more_nodes_more_samples;
  ]
