open Ksurf
module P2 = Ksurf_stats.P2_quantile

let test_invalid_quantile () =
  let raises q = try ignore (P2.create q); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "q=0" true (raises 0.0);
  Alcotest.(check bool) "q=1" true (raises 1.0)

let test_empty_fails () =
  let p = P2.create 0.5 in
  Alcotest.(check bool) "empty raises" true
    (try ignore (P2.value p); false with Failure _ -> true)

let test_small_sample_exact () =
  let p = P2.create 0.5 in
  List.iter (P2.add p) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check (float 1e-9)) "exact small-sample median" 2.0 (P2.value p);
  Alcotest.(check int) "count" 3 (P2.count p)

let close_to_exact ~q ~tolerance samples =
  let p = P2.create q in
  Array.iter (P2.add p) samples;
  let exact = Quantile.quantile samples q in
  let est = P2.value p in
  let spread = Quantile.max_value samples -. Quantile.min_value samples in
  Float.abs (est -. exact) <= tolerance *. spread

let test_uniform_median () =
  let rng = Prng.create 1 in
  let samples = Array.init 20_000 (fun _ -> Prng.float rng 1000.0) in
  Alcotest.(check bool) "median within 1% of range" true
    (close_to_exact ~q:0.5 ~tolerance:0.01 samples)

let test_lognormal_p99 () =
  let rng = Prng.create 2 in
  let d = Dist.lognormal ~median:100.0 ~sigma:0.8 in
  let samples = Array.init 50_000 (fun _ -> Dist.sample d rng) in
  let p = P2.create 0.99 in
  Array.iter (P2.add p) samples;
  let exact = Quantile.p99 samples in
  let rel = Float.abs (P2.value p -. exact) /. exact in
  if rel > 0.10 then
    Alcotest.failf "p99 estimate off by %.1f%% (est %g, exact %g)" (100. *. rel)
      (P2.value p) exact

let test_monotone_stream () =
  let p = P2.create 0.9 in
  for i = 1 to 1000 do
    P2.add p (float_of_int i)
  done;
  let est = P2.value p in
  Alcotest.(check bool) "p90 of 1..1000 near 900" true
    (est > 850.0 && est < 950.0)

let qcheck_estimate_within_range =
  QCheck.Test.make ~name:"p2 estimate within sample range" ~count:200
    QCheck.(list_of_size Gen.(int_range 6 200) (float_bound_exclusive 1e6))
    (fun l ->
      let p = P2.create 0.75 in
      List.iter (P2.add p) l;
      let a = Array.of_list l in
      P2.value p >= Quantile.min_value a -. 1e-9
      && P2.value p <= Quantile.max_value a +. 1e-9)

let suite =
  [
    Alcotest.test_case "invalid quantile" `Quick test_invalid_quantile;
    Alcotest.test_case "empty fails" `Quick test_empty_fails;
    Alcotest.test_case "small-sample exact" `Quick test_small_sample_exact;
    Alcotest.test_case "uniform median" `Slow test_uniform_median;
    Alcotest.test_case "lognormal p99" `Slow test_lognormal_p99;
    Alcotest.test_case "monotone stream" `Quick test_monotone_stream;
    QCheck_alcotest.to_alcotest qcheck_estimate_within_range;
  ]
