open Ksurf

(* Randomised-schedule invariants of the simulation core: whatever the
   interleaving, exclusion/capacity/ordering invariants must hold and
   the engine must drain (no lost wakeups, no deadlock). *)

let qcheck_mutex_invariant_random_schedules =
  QCheck.Test.make ~name:"mutual exclusion under random schedules" ~count:60
    QCheck.(triple small_int (int_range 2 8) (int_range 1 12))
    (fun (seed, procs, cycles) ->
      let engine = Engine.create ~seed () in
      let lock = Lock.create ~engine ~name:"m" in
      let rng = Prng.create (seed + 1) in
      let holders = ref 0 in
      let ok = ref true in
      let completed = ref 0 in
      for _ = 1 to procs do
        let start = Prng.float rng 50.0 in
        Engine.spawn ~at:start engine (fun () ->
            for _ = 1 to cycles do
              Engine.delay (Prng.float rng 20.0);
              Lock.acquire lock;
              incr holders;
              if !holders <> 1 then ok := false;
              Engine.delay (Prng.float rng 15.0);
              decr holders;
              Lock.release lock
            done;
            incr completed)
      done;
      Engine.run engine;
      !ok && !completed = procs && Lock.queue_length lock = 0)

let qcheck_resource_capacity_invariant =
  QCheck.Test.make ~name:"resource capacity never exceeded" ~count:60
    QCheck.(triple small_int (int_range 1 5) (int_range 2 12))
    (fun (seed, capacity, procs) ->
      let engine = Engine.create ~seed () in
      let r = Resource.create ~engine ~name:"r" ~capacity in
      let rng = Prng.create (seed + 2) in
      let ok = ref true in
      for _ = 1 to procs do
        Engine.spawn ~at:(Prng.float rng 30.0) engine (fun () ->
            for _ = 1 to 5 do
              Resource.acquire r;
              if Resource.in_use r > capacity then ok := false;
              Engine.delay (Prng.float rng 10.0);
              Resource.release r
            done)
      done;
      Engine.run engine;
      !ok && Resource.in_use r = 0)

let qcheck_rwlock_invariant =
  QCheck.Test.make ~name:"rwlock: writers exclude everyone" ~count:60
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, procs) ->
      let engine = Engine.create ~seed () in
      let rw = Rwlock.create ~engine ~name:"rw" in
      let rng = Prng.create (seed + 3) in
      let readers = ref 0 and writers = ref 0 in
      let ok = ref true in
      for i = 1 to procs do
        Engine.spawn ~at:(Prng.float rng 20.0) engine (fun () ->
            for _ = 1 to 6 do
              Engine.delay (Prng.float rng 10.0);
              if i mod 2 = 0 then begin
                Rwlock.acquire_read rw;
                incr readers;
                if !writers > 0 then ok := false;
                Engine.delay (Prng.float rng 5.0);
                decr readers;
                Rwlock.release_read rw
              end
              else begin
                Rwlock.acquire_write rw;
                incr writers;
                if !writers <> 1 || !readers > 0 then ok := false;
                Engine.delay (Prng.float rng 5.0);
                decr writers;
                Rwlock.release_write rw
              end
            done)
      done;
      Engine.run engine;
      !ok)

let qcheck_barrier_rounds_complete =
  QCheck.Test.make ~name:"barrier: all parties complete all rounds" ~count:60
    QCheck.(triple small_int (int_range 2 10) (int_range 1 8))
    (fun (seed, parties, rounds) ->
      let engine = Engine.create ~seed () in
      let barrier = Barrier.create ~engine ~name:"b" ~parties in
      let rng = Prng.create (seed + 4) in
      let finished = ref 0 in
      for _ = 1 to parties do
        Engine.spawn engine (fun () ->
            for _ = 1 to rounds do
              Engine.delay (Prng.float rng 25.0);
              Barrier.arrive barrier
            done;
            incr finished)
      done;
      Engine.run engine;
      !finished = parties && Barrier.generation barrier = rounds)

let qcheck_time_monotone =
  QCheck.Test.make ~name:"virtual time never decreases" ~count:60
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, procs) ->
      let engine = Engine.create ~seed () in
      let rng = Prng.create (seed + 5) in
      let last = ref 0.0 in
      let ok = ref true in
      for _ = 1 to procs do
        Engine.spawn ~at:(Prng.float rng 40.0) engine (fun () ->
            for _ = 1 to 10 do
              Engine.delay (Prng.float rng 10.0);
              let now = Engine.now engine in
              if now < !last then ok := false;
              last := now
            done)
      done;
      Engine.run engine;
      !ok)

let qcheck_mailbox_conserves_messages =
  QCheck.Test.make ~name:"mailbox conserves messages" ~count:60
    QCheck.(triple small_int (int_range 1 6) (int_range 1 30))
    (fun (seed, consumers, messages) ->
      let engine = Engine.create ~seed () in
      let mb = Mailbox.create ~engine ~name:"mb" in
      let rng = Prng.create (seed + 6) in
      let received = ref 0 in
      for _ = 1 to consumers do
        Engine.spawn engine (fun () ->
            let rec loop () =
              ignore (Mailbox.recv mb);
              incr received;
              loop ()
            in
            loop ())
      done;
      Engine.spawn engine (fun () ->
          for _ = 1 to messages do
            Engine.delay (Prng.float rng 5.0);
            Mailbox.send mb ()
          done);
      Engine.run ~stop:(fun () -> !received = messages) engine;
      !received = messages && Mailbox.length mb = 0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_mutex_invariant_random_schedules;
    QCheck_alcotest.to_alcotest qcheck_resource_capacity_invariant;
    QCheck_alcotest.to_alcotest qcheck_rwlock_invariant;
    QCheck_alcotest.to_alcotest qcheck_barrier_rounds_complete;
    QCheck_alcotest.to_alcotest qcheck_time_monotone;
    QCheck_alcotest.to_alcotest qcheck_mailbox_conserves_messages;
  ]
