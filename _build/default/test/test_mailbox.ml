open Ksurf

let test_fifo_order () =
  let engine = Engine.create () in
  let mb = Mailbox.create ~engine ~name:"m" in
  let received = ref [] in
  Engine.spawn engine (fun () ->
      for _ = 1 to 3 do
        received := Mailbox.recv mb :: !received
      done);
  Engine.spawn engine (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !received)

let test_recv_blocks () =
  let engine = Engine.create () in
  let mb = Mailbox.create ~engine ~name:"m" in
  let received_at = ref nan in
  Engine.spawn engine (fun () ->
      ignore (Mailbox.recv mb);
      received_at := Engine.now engine);
  Engine.spawn engine (fun () ->
      Engine.delay 42.0;
      Mailbox.send mb ());
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "waited for sender" 42.0 !received_at

let test_multiple_consumers_fifo () =
  let engine = Engine.create () in
  let mb = Mailbox.create ~engine ~name:"m" in
  let got = Array.make 3 (-1) in
  for i = 0 to 2 do
    Engine.spawn ~at:(float_of_int i) engine (fun () -> got.(i) <- Mailbox.recv mb)
  done;
  Engine.spawn ~at:10.0 engine (fun () ->
      Mailbox.send mb 100;
      Mailbox.send mb 200;
      Mailbox.send mb 300);
  Engine.run engine;
  (* Consumers are served in the order they started waiting. *)
  Alcotest.(check (array int)) "consumer order" [| 100; 200; 300 |] got

let test_queue_length () =
  let engine = Engine.create () in
  let mb = Mailbox.create ~engine ~name:"m" in
  Engine.spawn engine (fun () ->
      Mailbox.send mb "a";
      Mailbox.send mb "b";
      Alcotest.(check int) "queued" 2 (Mailbox.length mb);
      ignore (Mailbox.recv mb);
      Alcotest.(check int) "one left" 1 (Mailbox.length mb));
  Engine.run engine

let test_sent_counter () =
  let engine = Engine.create () in
  let mb = Mailbox.create ~engine ~name:"m" in
  Engine.spawn engine (fun () ->
      for i = 1 to 5 do
        Mailbox.send mb i
      done);
  Engine.run engine;
  Alcotest.(check int) "sent" 5 (Mailbox.sent mb)

let test_waiting_consumers () =
  let engine = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create ~engine ~name:"m" in
  Engine.spawn engine (fun () -> ignore (Mailbox.recv mb));
  Engine.run engine;
  Alcotest.(check int) "one waiting" 1 (Mailbox.waiting_consumers mb)

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "recv blocks" `Quick test_recv_blocks;
    Alcotest.test_case "multiple consumers" `Quick test_multiple_consumers_fifo;
    Alcotest.test_case "queue length" `Quick test_queue_length;
    Alcotest.test_case "sent counter" `Quick test_sent_counter;
    Alcotest.test_case "waiting consumers" `Quick test_waiting_consumers;
  ]
