open Ksurf

let test_known_classification () =
  (* One latency per band: 0.5us, 5us, 50us, 0.5ms, 5ms, 50ms. *)
  let row =
    Buckets.of_latencies [| 500.0; 5_000.0; 50_000.0; 5e5; 5e6; 5e7 |]
  in
  let pct = 100.0 /. 6.0 in
  Alcotest.(check (float 1e-6)) "le 1us" pct row.Buckets.le_1us;
  Alcotest.(check (float 1e-6)) "le 10us" (2.0 *. pct) row.Buckets.le_10us;
  Alcotest.(check (float 1e-6)) "le 100us" (3.0 *. pct) row.Buckets.le_100us;
  Alcotest.(check (float 1e-6)) "le 1ms" (4.0 *. pct) row.Buckets.le_1ms;
  Alcotest.(check (float 1e-6)) "le 10ms" (5.0 *. pct) row.Buckets.le_10ms;
  Alcotest.(check (float 1e-6)) "gt 10ms" pct row.Buckets.gt_10ms

let test_all_fast () =
  let row = Buckets.of_latencies [| 100.0; 200.0; 300.0 |] in
  Alcotest.(check (float 1e-6)) "all below 1us" 100.0 row.Buckets.le_1us;
  Alcotest.(check (float 1e-6)) "none above" 0.0 row.Buckets.gt_10ms

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Buckets.of_latencies: empty")
    (fun () -> ignore (Buckets.of_latencies [||]))

let test_edges () =
  Alcotest.(check int) "5 edges" 5 (Array.length Buckets.edges_ns);
  Alcotest.(check (float 1e-9)) "first edge 1us" 1e3 Buckets.edges_ns.(0);
  Alcotest.(check (float 1e-9)) "last edge 10ms" 1e7 Buckets.edges_ns.(4)

let qcheck_cumulative_monotone =
  QCheck.Test.make ~name:"bucket row is cumulative" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 100) (float_bound_exclusive 1e8))
    (fun l ->
      let r = Buckets.of_latencies (Array.of_list l) in
      r.Buckets.le_1us <= r.Buckets.le_10us +. 1e-9
      && r.Buckets.le_10us <= r.Buckets.le_100us +. 1e-9
      && r.Buckets.le_100us <= r.Buckets.le_1ms +. 1e-9
      && r.Buckets.le_1ms <= r.Buckets.le_10ms +. 1e-9
      && Float.abs (r.Buckets.le_10ms +. r.Buckets.gt_10ms -. 100.0) < 1e-6)

let test_pp_width () =
  let row = Buckets.of_latencies [| 500.0 |] in
  let rendered = Format.asprintf "%a" Buckets.pp row in
  Alcotest.(check bool) "has 6 columns" true
    (List.length
       (String.split_on_char ' ' rendered |> List.filter (fun s -> s <> ""))
    = 6)

let suite =
  [
    Alcotest.test_case "known classification" `Quick test_known_classification;
    Alcotest.test_case "all fast" `Quick test_all_fast;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "edges" `Quick test_edges;
    Alcotest.test_case "pp width" `Quick test_pp_width;
    QCheck_alcotest.to_alcotest qcheck_cumulative_monotone;
  ]
