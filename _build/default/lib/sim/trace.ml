type t = {
  engine : Engine.t;
  ring : (float * string) array;
  mutable head : int;  (* next write position *)
  mutable recorded : int;
}

let create ?(capacity = 4096) ~engine () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { engine; ring = Array.make capacity (0.0, ""); head = 0; recorded = 0 }

let record t label =
  t.ring.(t.head) <- (Engine.now t.engine, label);
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.recorded <- t.recorded + 1

let recordf t fmt = Format.kasprintf (record t) fmt

let retained t = min t.recorded (Array.length t.ring)

let events t =
  let n = retained t in
  let cap = Array.length t.ring in
  let start = (t.head - n + cap + cap) mod cap in
  List.init n (fun i -> t.ring.((start + i) mod cap))

let recorded t = t.recorded
let dropped t = t.recorded - retained t

let clear t =
  t.head <- 0;
  t.recorded <- 0

let pp ppf t =
  List.iter
    (fun (time, label) -> Format.fprintf ppf "[%12.1f] %s@." time label)
    (events t)
