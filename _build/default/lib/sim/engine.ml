type t = {
  mutable now : float;
  mutable seq : int;
  heap : (unit -> unit) Heap.t;
  root_rng : Ksurf_util.Prng.t;
  mutable executed : int;
}

exception Process_error of string * exn

type _ Effect.t +=
  | Delay : t * float -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

(* The engine whose handler is currently executing a process.  Effects
   carry the engine explicitly so nested engines (e.g. per-node cluster
   simulations driven from a parent program) never interfere; the
   ambient reference only serves the argumentless [delay]/[suspend]
   public API. *)
let current : t option ref = ref None

let create ?(seed = 0) () =
  { now = 0.0; seq = 0; heap = Heap.create (); root_rng = Ksurf_util.Prng.create seed; executed = 0 }

let now t = t.now
let rng t = t.root_rng
let pending t = Heap.size t.heap
let events_executed t = t.executed

let schedule t ~at thunk =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" at t.now);
  t.seq <- t.seq + 1;
  Heap.push t.heap ~time:at ~seq:t.seq thunk

let handle t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun exn ->
          raise (Process_error (Printf.sprintf "at t=%g" t.now, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (eng, d) when eng == t ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule t ~at:(t.now +. d) (fun () -> continue k ()))
          | Suspend (eng, register) when eng == t ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let woken = ref false in
                  let wake () =
                    if !woken then failwith "Engine: process woken twice";
                    woken := true;
                    schedule t ~at:t.now (fun () -> continue k ())
                  in
                  register wake)
          | _ -> None);
    }

let spawn ?at t f =
  let at = match at with Some a -> a | None -> t.now in
  schedule t ~at (fun () -> handle t f)

let engine_of_process name =
  match !current with
  | Some t -> t
  | None -> failwith (name ^ ": called outside of a simulation process")

let delay d =
  if d < 0.0 then invalid_arg "Engine.delay: negative";
  if d = 0.0 then ()
  else begin
    let t = engine_of_process "Engine.delay" in
    Effect.perform (Delay (t, d))
  end

let suspend register =
  let t = engine_of_process "Engine.suspend" in
  Effect.perform (Suspend (t, register))

let run ?until ?stop t =
  let saved = !current in
  current := Some t;
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () ->
      let continue = ref true in
      while !continue do
        if (match stop with Some f -> f () | None -> false) then continue := false
        else
          match Heap.peek_time t.heap with
          | None -> continue := false
          | Some time when (match until with Some u -> time > u | None -> false)
            ->
              continue := false
          | Some _ -> (
              match Heap.pop t.heap with
              | None -> continue := false
              | Some (time, thunk) ->
                  t.now <- time;
                  t.executed <- t.executed + 1;
                  thunk ())
      done;
      match until with
      | Some u when u > t.now && Heap.is_empty t.heap -> t.now <- u
      | _ -> ())
