(** Reusable n-party barrier.

    The varbench harness inserts one of these between every system-call
    program so that all ranks issue the next program at the same virtual
    time; the cluster harness uses one per BSP iteration.  Reusable in
    the generation-counting sense: a party arriving "early" for the next
    round simply joins the next generation. *)

type t

val create : engine:Engine.t -> name:string -> parties:int -> t
(** Raises [Invalid_argument] if parties < 1. *)

val arrive : t -> unit
(** Block until all [parties] processes have arrived for this
    generation, then all are released at the same virtual time. *)

val arrive_with_cost : t -> per_party_cost:float -> unit
(** Like {!arrive} but adds a synchronisation cost after release —
    models the latency of an MPI barrier over the virtual network. *)

val generation : t -> int
(** Completed generations, for tests. *)

val waiting : t -> int
