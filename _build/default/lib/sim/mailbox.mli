(** Unbounded FIFO channel between simulation processes.

    The client/server request path of the tailbench models: producers
    {!send} without blocking, consumers {!recv} and suspend while the
    queue is empty.  Multiple waiting consumers are served in FIFO
    order. *)

type 'a t

val create : engine:Engine.t -> name:string -> 'a t
val send : 'a t -> 'a -> unit
val recv : 'a t -> 'a
(** Suspends (in virtual time) until a message is available. *)

val length : 'a t -> int
(** Messages queued (0 when consumers are waiting). *)

val waiting_consumers : 'a t -> int
val sent : 'a t -> int
(** Total messages ever sent. *)
