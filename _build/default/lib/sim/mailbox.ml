type 'a t = {
  engine : Engine.t;
  name : string;
  queue : 'a Queue.t;
  consumers : ('a -> unit) Queue.t;
  mutable sent : int;
}

let create ~engine ~name =
  { engine; name; queue = Queue.create (); consumers = Queue.create (); sent = 0 }

let send t msg =
  t.sent <- t.sent + 1;
  match Queue.take_opt t.consumers with
  | Some deliver -> deliver msg
  | None -> Queue.push msg t.queue

let recv t =
  match Queue.take_opt t.queue with
  | Some msg -> msg
  | None ->
      let slot = ref None in
      Engine.suspend (fun wake ->
          Queue.push
            (fun msg ->
              slot := Some msg;
              wake ())
            t.consumers);
      (match !slot with
      | Some msg -> msg
      | None -> failwith (t.name ^ ": woken without a message"))

let length t = Queue.length t.queue
let waiting_consumers t = Queue.length t.consumers
let sent t = t.sent
