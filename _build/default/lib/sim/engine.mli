(** The discrete-event simulation engine.

    Processes are ordinary OCaml functions executed under an effect
    handler.  Inside a process, {!delay} advances virtual time and
    {!suspend} parks the process until an external wake; everything else
    is plain code.  The engine is single-domain and fully deterministic:
    events at equal times fire in creation order, and all randomness
    flows through the engine's {!Ksurf_util.Prng.t} streams.

    Typical use:
    {[
      let eng = Engine.create ~seed:42 () in
      Engine.spawn eng (fun () ->
        Engine.delay 100.0;
        Format.printf "woke at %f@." (Engine.now eng));
      Engine.run eng
    ]} *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine at virtual time 0 (nanoseconds by ksurf convention). *)

val now : t -> float
val rng : t -> Ksurf_util.Prng.t
(** The engine's root random stream; components should [Prng.split] it. *)

val spawn : ?at:float -> t -> (unit -> unit) -> unit
(** Schedule a new process.  [at] defaults to the current time and must
    not be in the past. *)

val delay : float -> unit
(** Advance the calling process's virtual time.  Negative delays raise.
    Must be called from inside a process. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and hands [register] a
    wake function.  Calling the wake function reschedules the process at
    the then-current virtual time; waking twice raises [Failure]. *)

val run : ?until:float -> ?stop:(unit -> bool) -> t -> unit
(** Drain the event queue (or stop once the next event is later than
    [until]).  [stop] is polled before each event: returning [true]
    halts the run — the way harnesses terminate measurement while
    infinite background daemons still hold queued events.  May be called
    repeatedly as more work is spawned. *)

val pending : t -> int
(** Number of queued events, for diagnostics and tests. *)

val events_executed : t -> int
(** Total events fired since creation. *)

exception Process_error of string * exn
(** Wraps an exception escaping a process with a description of when it
    fired. *)
