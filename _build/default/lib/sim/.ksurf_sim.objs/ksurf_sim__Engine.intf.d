lib/sim/engine.mli: Ksurf_util
