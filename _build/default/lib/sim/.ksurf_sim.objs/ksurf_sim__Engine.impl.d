lib/sim/engine.ml: Effect Fun Heap Ksurf_util Printf
