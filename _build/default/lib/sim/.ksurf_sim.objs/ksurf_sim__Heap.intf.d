lib/sim/heap.mli:
