lib/sim/rwlock.mli: Engine Ksurf_util
