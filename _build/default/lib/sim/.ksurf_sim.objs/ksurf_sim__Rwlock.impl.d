lib/sim/rwlock.ml: Engine Ksurf_util Queue
