lib/sim/lock.mli: Engine Ksurf_util
