lib/sim/resource.mli: Engine Ksurf_util
