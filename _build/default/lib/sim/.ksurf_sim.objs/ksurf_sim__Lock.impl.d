lib/sim/lock.ml: Engine Ksurf_util Printf Queue
