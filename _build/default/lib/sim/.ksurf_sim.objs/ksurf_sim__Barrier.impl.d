lib/sim/barrier.ml: Engine Float Queue
