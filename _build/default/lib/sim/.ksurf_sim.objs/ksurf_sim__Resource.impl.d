lib/sim/resource.ml: Engine Ksurf_util Queue
