(** Binary min-heap of timestamped events.

    Ordering is (time, sequence number): two events at the same virtual
    time fire in insertion order, which makes whole-simulation execution
    deterministic (DESIGN.md §6). *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
