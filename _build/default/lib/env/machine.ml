type t = { cores : int; mem_mb : int; memory_channels : int }

let epyc = { cores = 64; mem_mb = 65536; memory_channels = 4 }
let haswell_node = { cores = 48; mem_mb = 131072; memory_channels = 2 }
let virtualized_cores = 64
let virtualized_mem_mb = 32768
