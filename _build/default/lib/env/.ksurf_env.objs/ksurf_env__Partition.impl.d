lib/env/partition.ml: Format List Machine Printf String
