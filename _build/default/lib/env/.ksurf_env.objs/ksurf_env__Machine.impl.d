lib/env/machine.ml:
