lib/env/machine.mli:
