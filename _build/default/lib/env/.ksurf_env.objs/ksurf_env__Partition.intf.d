lib/env/partition.mli: Format
