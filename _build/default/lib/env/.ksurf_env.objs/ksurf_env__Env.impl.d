lib/env/env.ml: Array Ksurf_container Ksurf_kernel Ksurf_sim Ksurf_syscalls Ksurf_virt List Machine Partition Printf
