lib/env/env.mli: Ksurf_kernel Ksurf_sim Ksurf_syscalls Ksurf_virt Machine Partition
