(** The evaluation machine (§4.1 of the paper).

    A Dell PowerEdge R6415: AMD EPYC, 64 hardware threads, 64 GB DRAM
    over four memory channels.  Table 1 virtualises 64 cores and 32 GB
    of that memory for the benchmark. *)

type t = { cores : int; mem_mb : int; memory_channels : int }

val epyc : t
(** 64 cores / 65536 MB / 4 channels — the single-node platform. *)

val haswell_node : t
(** One Chameleon node (§6.3): 48 hyperthreads / 131072 MB / 2 sockets
    (modeled as 2 channels). *)

val virtualized_cores : int
(** 64 — cores given to the benchmark in Table 1 configurations. *)

val virtualized_mem_mb : int
(** 32768 — memory given to the benchmark in Table 1 configurations. *)
