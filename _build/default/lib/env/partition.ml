type unit_spec = { cores : int; mem_mb : int }
type t = { units : unit_spec list }

let equal_split ~units ~total_cores ~total_mem_mb =
  if units < 1 then invalid_arg "Partition.equal_split: units must be >= 1";
  if total_cores mod units <> 0 then
    invalid_arg "Partition.equal_split: cores do not divide evenly";
  if total_mem_mb mod units <> 0 then
    invalid_arg "Partition.equal_split: memory does not divide evenly";
  let spec = { cores = total_cores / units; mem_mb = total_mem_mb / units } in
  { units = List.init units (fun _ -> spec) }

let table1_rows = [ 1; 2; 4; 8; 16; 32; 64 ]

let table1 n =
  if not (List.mem n table1_rows) then
    invalid_arg (Printf.sprintf "Partition.table1: %d is not a Table 1 row" n);
  equal_split ~units:n ~total_cores:Machine.virtualized_cores
    ~total_mem_mb:Machine.virtualized_mem_mb

let total_cores t = List.fold_left (fun acc u -> acc + u.cores) 0 t.units
let total_mem_mb t = List.fold_left (fun acc u -> acc + u.mem_mb) 0 t.units
let unit_count t = List.length t.units

let pp ppf t =
  match t.units with
  | [] -> Format.pp_print_string ppf "<empty partition>"
  | u :: _ when List.for_all (fun v -> v = u) t.units ->
      Format.fprintf ppf "%d x (%d cores, %d MB)" (unit_count t) u.cores u.mem_mb
  | units ->
      Format.fprintf ppf "[%s]"
        (String.concat "; "
           (List.map (fun u -> Printf.sprintf "(%dc,%dMB)" u.cores u.mem_mb) units))
