(** Resource partitions: how the virtualised resources are split into
    isolation units (VMs or containers).

    Table 1 of the paper: {1, 2, 4, 8, 16, 32, 64} units over 64 cores
    and 32 GB, each unit getting an equal share. *)

type unit_spec = { cores : int; mem_mb : int }

type t = { units : unit_spec list }

val equal_split : units:int -> total_cores:int -> total_mem_mb:int -> t
(** Raises [Invalid_argument] if the division is not exact. *)

val table1 : int -> t
(** [table1 n] for n in {1,2,4,8,16,32,64}: the paper's VM configuration
    rows.  Raises [Invalid_argument] for other values. *)

val table1_rows : int list
(** [1; 2; 4; 8; 16; 32; 64]. *)

val total_cores : t -> int
val total_mem_mb : t -> int
val unit_count : t -> int

val pp : Format.formatter -> t -> unit
