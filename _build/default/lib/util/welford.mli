(** Online mean/variance accumulation (Welford's algorithm).

    Used for streaming summaries where storing every sample would be
    wasteful, e.g. per-lock wait-time accounting inside the simulator. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 if fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** [infinity] if empty. *)

val max_value : t -> float
(** [neg_infinity] if empty. *)

val total : t -> float
val merge : t -> t -> t
(** Combine two accumulators (parallel Welford merge). *)
