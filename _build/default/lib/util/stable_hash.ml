let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

(* Keep 62 bits: Int64.to_int truncates to the native 63-bit int, so a
   1-bit shift could still produce a negative value. *)
let fold_int64 h = Int64.to_int (Int64.shift_right_logical h 2)

let string s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  fold_int64 !h

let step h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) fnv_prime

let int64_of_int i = Int64.of_int i

let combine a b =
  let h = ref fnv_offset in
  let feed v =
    let v = int64_of_int v in
    for shift = 0 to 7 do
      h := step !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
    done
  in
  feed a;
  feed b;
  fold_int64 !h

let ints l = List.fold_left combine (string "ksurf") l
