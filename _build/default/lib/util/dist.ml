type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Erlang of { k : int; mean : float }
  | Lognormal of { mu : float; sigma : float }
  | Pareto of { scale : float; shape : float }
  | Bounded_pareto of { lo : float; hi : float; shape : float }
  | Shifted of float * t
  | Scaled of float * t
  | Mixture of { cumulative : float array; components : t array }

let constant v =
  if v < 0.0 then invalid_arg "Dist.constant: negative";
  Constant v

let uniform ~lo ~hi =
  if lo < 0.0 || hi < lo then invalid_arg "Dist.uniform: bad bounds";
  Uniform { lo; hi }

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean must be positive";
  Exponential { mean }

let erlang ~k ~mean =
  if k <= 0 || mean <= 0.0 then invalid_arg "Dist.erlang: bad parameters";
  Erlang { k; mean }

let lognormal ~median ~sigma =
  if median <= 0.0 || sigma < 0.0 then invalid_arg "Dist.lognormal: bad parameters";
  Lognormal { mu = Float.log median; sigma }

let pareto ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Dist.pareto: bad parameters";
  Pareto { scale; shape }

let bounded_pareto ~lo ~hi ~shape =
  if lo <= 0.0 || hi <= lo || shape <= 0.0 then
    invalid_arg "Dist.bounded_pareto: bad parameters";
  Bounded_pareto { lo; hi; shape }

let shifted c d =
  if c < 0.0 then invalid_arg "Dist.shifted: negative shift";
  Shifted (c, d)

let scaled f d =
  if f < 0.0 then invalid_arg "Dist.scaled: negative factor";
  Scaled (f, d)

let mixture parts =
  if parts = [] then invalid_arg "Dist.mixture: empty";
  let weights = List.map fst parts in
  if List.exists (fun w -> w < 0.0) weights then
    invalid_arg "Dist.mixture: negative weight";
  let total = List.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist.mixture: zero total weight";
  let n = List.length parts in
  let cumulative = Array.make n 0.0 in
  let components = Array.make n (Constant 0.0) in
  let acc = ref 0.0 in
  List.iteri
    (fun i (w, d) ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc;
      components.(i) <- d)
    parts;
  cumulative.(n - 1) <- 1.0;
  Mixture { cumulative; components }

let rec sample d rng =
  let v =
    match d with
    | Constant v -> v
    | Uniform { lo; hi } -> lo +. Prng.float rng (hi -. lo)
    | Exponential { mean } ->
        let u = 1.0 -. Prng.uniform rng in
        -.mean *. Float.log u
    | Erlang { k; mean } ->
        let stage_mean = mean /. float_of_int k in
        let acc = ref 0.0 in
        for _ = 1 to k do
          let u = 1.0 -. Prng.uniform rng in
          acc := !acc -. (stage_mean *. Float.log u)
        done;
        !acc
    | Lognormal { mu; sigma } ->
        (* Box–Muller; one draw per sample keeps the stream usage simple
           and deterministic. *)
        let u1 = 1.0 -. Prng.uniform rng and u2 = Prng.uniform rng in
        let z = Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2) in
        Float.exp (mu +. (sigma *. z))
    | Pareto { scale; shape } ->
        let u = 1.0 -. Prng.uniform rng in
        scale /. Float.pow u (1.0 /. shape)
    | Bounded_pareto { lo; hi; shape } ->
        (* Inverse CDF of the truncated Pareto. *)
        let u = Prng.uniform rng in
        let la = Float.pow lo shape and ha = Float.pow hi shape in
        let x = -.((u *. ha) -. u *. la -. ha) /. (ha *. la) in
        Float.pow (1.0 /. x) (1.0 /. shape)
    | Shifted (c, d) -> c +. sample d rng
    | Scaled (f, d) -> f *. sample d rng
    | Mixture { cumulative; components } ->
        let u = Prng.uniform rng in
        let rec find i =
          if i >= Array.length cumulative - 1 || u < cumulative.(i) then i
          else find (i + 1)
        in
        sample components.(find 0) rng
  in
  if v < 0.0 then 0.0 else v

let rec mean_estimate = function
  | Constant v -> v
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
  | Erlang { mean; _ } -> mean
  | Lognormal { mu; sigma } -> Float.exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto { scale; shape } ->
      if shape > 1.0 then shape *. scale /. (shape -. 1.0)
        (* Infinite-mean regime: report the 99.9th percentile as a usable
           magnitude for rate planning. *)
      else scale /. Float.pow 0.001 (1.0 /. shape)
  | Bounded_pareto { lo; hi; shape } ->
      if Float.abs (shape -. 1.0) < 1e-9 then
        lo *. hi /. (hi -. lo) *. Float.log (hi /. lo)
      else
        let la = Float.pow lo shape and ha = Float.pow hi shape in
        shape /. (shape -. 1.0)
        *. ((la /. Float.pow lo (shape -. 1.0)) -. (la /. Float.pow hi (shape -. 1.0)))
        /. (1.0 -. (la /. ha))
  | Shifted (c, d) -> c +. mean_estimate d
  | Scaled (f, d) -> f *. mean_estimate d
  | Mixture { cumulative; components } ->
      let n = Array.length components in
      let acc = ref 0.0 and prev = ref 0.0 in
      for i = 0 to n - 1 do
        let w = cumulative.(i) -. !prev in
        prev := cumulative.(i);
        acc := !acc +. (w *. mean_estimate components.(i))
      done;
      !acc
