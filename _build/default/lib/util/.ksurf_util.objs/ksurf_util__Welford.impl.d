lib/util/welford.ml: Float
