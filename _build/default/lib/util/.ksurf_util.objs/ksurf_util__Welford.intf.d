lib/util/welford.mli:
