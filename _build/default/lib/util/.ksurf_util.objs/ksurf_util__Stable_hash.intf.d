lib/util/stable_hash.mli:
