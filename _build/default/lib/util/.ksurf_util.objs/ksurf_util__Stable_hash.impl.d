lib/util/stable_hash.ml: Char Int64 List String
