lib/util/prng.mli:
