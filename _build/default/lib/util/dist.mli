(** Probability distributions used by the machine and kernel models.

    All samplers take the {!Prng.t} stream explicitly.  Times are plain
    floats; ksurf uses nanoseconds of virtual time throughout, but nothing
    here depends on the unit. *)

type t
(** A distribution over non-negative floats. *)

val constant : float -> t
(** Degenerate distribution (always the same value). *)

val uniform : lo:float -> hi:float -> t
(** Uniform on \[lo, hi). *)

val exponential : mean:float -> t
(** Exponential with the given mean. *)

val erlang : k:int -> mean:float -> t
(** Erlang-[k] (sum of [k] exponentials) with the given total mean;
    lower variance than exponential, used for service stages. *)

val lognormal : median:float -> sigma:float -> t
(** Lognormal parameterised by its median and the log-space std dev.
    The workhorse for latencies: right-skewed with controllable tail. *)

val pareto : scale:float -> shape:float -> t
(** Pareto with minimum [scale] and tail index [shape] ([shape > 0]).
    Heavy-tailed; models unbounded software interference episodes. *)

val bounded_pareto : lo:float -> hi:float -> shape:float -> t
(** Pareto truncated to \[lo, hi\]. *)

val shifted : float -> t -> t
(** [shifted c d] adds constant [c] to each sample of [d]. *)

val scaled : float -> t -> t
(** [scaled f d] multiplies each sample of [d] by [f] ([f >= 0]). *)

val mixture : (float * t) list -> t
(** [mixture [(w1,d1); ...]] picks component [i] with probability
    proportional to [wi].  Raises [Invalid_argument] on an empty list or
    non-positive total weight. *)

val sample : t -> Prng.t -> float
(** Draw one sample; always [>= 0] (negatives are clamped). *)

val mean_estimate : t -> float
(** Analytic mean where available, otherwise an estimate; used to set
    client arrival rates for target utilisation.  Heavy tails are
    truncation-estimated. *)
