(** Stable, portable hashing for deterministic derived identifiers.

    The coverage model ({!Ksurf_syzgen.Coverage}) maps (syscall, argument
    bucket, state) tuples to basic-block identifiers via hashing; those ids
    must be identical across runs and platforms, so we avoid
    [Hashtbl.hash] and use an explicit FNV-1a. *)

val string : string -> int
(** FNV-1a of a string, folded to a non-negative OCaml int. *)

val combine : int -> int -> int
(** Mix two hashes into one (order-sensitive). *)

val ints : int list -> int
(** Hash a list of ints (order-sensitive). *)
