lib/varbench/noise.ml: Array Ksurf_env Ksurf_sim Ksurf_stats Ksurf_syzgen Ksurf_util List Printf
