lib/varbench/harness.mli: Ksurf_env Ksurf_syscalls Ksurf_syzgen Samples
