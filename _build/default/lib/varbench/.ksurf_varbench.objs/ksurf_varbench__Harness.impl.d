lib/varbench/harness.ml: Array Float Ksurf_env Ksurf_sim Ksurf_syscalls Ksurf_syzgen List Samples
