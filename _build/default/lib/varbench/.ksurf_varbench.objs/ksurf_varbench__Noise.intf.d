lib/varbench/noise.mli: Ksurf_env Ksurf_syzgen
