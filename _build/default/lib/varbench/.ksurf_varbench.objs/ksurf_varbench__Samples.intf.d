lib/varbench/samples.mli:
