lib/varbench/study.ml: Array Harness Hashtbl Ksurf_kernel Ksurf_stats Ksurf_syscalls List Samples
