lib/varbench/samples.ml: Array
