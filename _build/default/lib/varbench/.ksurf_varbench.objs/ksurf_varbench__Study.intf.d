lib/varbench/study.mli: Harness Ksurf_kernel Ksurf_stats
