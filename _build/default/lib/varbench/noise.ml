module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Program = Ksurf_syzgen.Program
module Corpus = Ksurf_syzgen.Corpus

let issued = ref 0

let syscalls_issued () = !issued

type stream_stats = { calls : int; mean_ns : float; p99_ns : float }

let start_general ~env ~corpus ~ranks ~think_time ~observe =
  let engine = Env.engine env in
  let programs = Corpus.programs corpus in
  List.iter
    (fun rank ->
      if rank < 0 || rank >= Env.rank_count env then
        invalid_arg (Printf.sprintf "Noise.start: rank %d out of range" rank);
      Engine.spawn engine (fun () ->
          (* Offset start positions so noise ranks are not in lock-step. *)
          let start_at = rank mod Array.length programs in
          let rec loop pi =
            let p = programs.(pi) in
            List.iter
              (fun (c : Program.call) ->
                let latency =
                  Env.exec_syscall env ~rank c.Program.spec c.Program.arg
                in
                observe latency;
                incr issued)
              p.Program.calls;
            if think_time > 0.0 then Engine.delay think_time;
            loop ((pi + 1) mod Array.length programs)
          in
          loop start_at))
    ranks

let start ~env ~corpus ~ranks ?(think_time = 0.0) () =
  start_general ~env ~corpus ~ranks ~think_time ~observe:(fun _ -> ())

let start_tracked ~env ~corpus ~ranks ?(think_time = 0.0) () =
  let p99 = Ksurf_stats.P2_quantile.create 0.99 in
  let mean = Ksurf_util.Welford.create () in
  let observe latency =
    Ksurf_stats.P2_quantile.add p99 latency;
    Ksurf_util.Welford.add mean latency
  in
  start_general ~env ~corpus ~ranks ~think_time ~observe;
  fun () ->
    {
      calls = Ksurf_util.Welford.count mean;
      mean_ns = Ksurf_util.Welford.mean mean;
      p99_ns = Ksurf_stats.P2_quantile.value p99;
    }
