module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Barrier = Ksurf_sim.Barrier
module Program = Ksurf_syzgen.Program
module Corpus = Ksurf_syzgen.Corpus

type params = { iterations : int; warmup_iterations : int }

let default_params = { iterations = 20; warmup_iterations = 2 }

type site = {
  program : int;
  index : int;
  syscall : Ksurf_syscalls.Spec.t;
  samples : Samples.t;
}

type result = {
  sites : site array;
  ranks : int;
  iterations : int;
  wall_time_ns : float;
}

let total_invocations r =
  Array.fold_left (fun acc s -> acc + Samples.count s.samples) 0 r.sites

let run ~env ~corpus ?(params = default_params) () =
  if params.iterations < 1 then invalid_arg "Harness.run: iterations must be >= 1";
  let engine = Env.engine env in
  let ranks = Env.rank_count env in
  let programs = Corpus.programs corpus in
  (* Flat site table: sites.(site_offset program + call index). *)
  let offsets = Array.make (Array.length programs) 0 in
  let total_sites = ref 0 in
  Array.iteri
    (fun pi p ->
      offsets.(pi) <- !total_sites;
      total_sites := !total_sites + Program.length p)
    programs;
  let sites = Array.make !total_sites None in
  Array.iteri
    (fun pi (p : Program.t) ->
      List.iteri
        (fun ci (c : Program.call) ->
          sites.(offsets.(pi) + ci) <-
            Some
              {
                program = p.Program.id;
                index = ci;
                syscall = c.Program.spec;
                samples = Samples.create ();
              })
        p.Program.calls)
    programs;
  let sites =
    Array.map (function Some s -> s | None -> assert false) sites
  in
  let barrier = Barrier.create ~engine ~name:"varbench" ~parties:ranks in
  let barrier_cost = Env.barrier_cost_per_party env in
  let finished = ref 0 in
  let measure_start = ref nan in
  let total_iters = params.warmup_iterations + params.iterations in
  for rank = 0 to ranks - 1 do
    Engine.spawn engine (fun () ->
        for iter = 0 to total_iters - 1 do
          let measuring = iter >= params.warmup_iterations in
          Array.iteri
            (fun pi (p : Program.t) ->
              (* Every rank starts every program at the same time. *)
              Barrier.arrive_with_cost barrier ~per_party_cost:barrier_cost;
              if measuring && rank = 0 && Float.is_nan !measure_start then
                measure_start := Engine.now engine;
              List.iteri
                (fun ci (c : Program.call) ->
                  let latency =
                    Env.exec_syscall env ~rank c.Program.spec c.Program.arg
                  in
                  if measuring then
                    Samples.add sites.(offsets.(pi) + ci).samples latency)
                p.Program.calls)
            programs
        done;
        incr finished)
  done;
  Engine.run ~stop:(fun () -> !finished = ranks) engine;
  {
    sites;
    ranks;
    iterations = params.iterations;
    wall_time_ns = Engine.now engine -. !measure_start;
  }
