type t = { mutable data : float array; mutable len : int }

let create () = { data = Array.make 64 0.0; len = 0 }

let add t v =
  if t.len = Array.length t.data then begin
    let ndata = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let count t = t.len
let to_array t = Array.sub t.data 0 t.len

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done
