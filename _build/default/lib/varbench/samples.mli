(** Growable per-site latency sample storage. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val to_array : t -> float array
(** Fresh array of all samples in insertion order. *)

val iter : t -> (float -> unit) -> unit
