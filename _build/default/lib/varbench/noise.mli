(** Varbench as antagonist (§6.2): system-call "noise" generators that
    stress the kernel while another workload is measured.

    Noise ranks loop over the corpus continuously (no barriers — the
    goal is sustained pressure, not synchronised measurement) until the
    caller stops draining the engine. *)

val start :
  env:Ksurf_env.Env.t ->
  corpus:Ksurf_syzgen.Corpus.t ->
  ranks:int list ->
  ?think_time:float ->
  unit ->
  unit
(** Spawn an infinite noise loop on each listed rank of [env].
    [think_time] (ns, default 0) is an idle gap between programs, for
    intensity control.  Run the engine with [~until] or [~stop] to bound
    the simulation. *)

val syscalls_issued : unit -> int
(** Total noise system calls issued since process start (diagnostic;
    monotone across runs). *)

type stream_stats = {
  calls : int;
  mean_ns : float;
  p99_ns : float;  (** streaming P² estimate — O(1) memory *)
}

val start_tracked :
  env:Ksurf_env.Env.t ->
  corpus:Ksurf_syzgen.Corpus.t ->
  ranks:int list ->
  ?think_time:float ->
  unit ->
  unit -> stream_stats
(** Like {!start}, but returns a closure reporting the noise workload's
    own latency statistics so far — useful to confirm the antagonist is
    actually being slowed by the environment under test.  Raises
    [Failure] if called before any call completed. *)
