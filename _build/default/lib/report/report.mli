(** Terminal rendering of the paper's tables and figure data.

    Figures are rendered as the numeric series a plotting tool would
    consume, plus simple ASCII bars so the shape is visible in a
    terminal. *)

val table :
  header:string list -> rows:string list list -> Format.formatter -> unit
(** Columns sized to the widest cell; first row separated by a rule.
    Raises [Invalid_argument] if a row's width differs from the
    header's. *)

val bars :
  title:string ->
  unit_label:string ->
  (string * float) list ->
  Format.formatter ->
  unit
(** Horizontal bar chart: one labelled bar per entry, scaled to the
    maximum value. *)

val grouped_bars :
  title:string ->
  unit_label:string ->
  series:string list ->
  (string * float list) list ->
  Format.formatter ->
  unit
(** Grouped bars (Figure 3/4 style): per group label, one bar per
    series.  Raises [Invalid_argument] on ragged input. *)

val duration_ns : float -> string
(** Human duration: "412ns", "3.1us", "42ms", "1.2s". *)
