lib/report/csv.mli:
