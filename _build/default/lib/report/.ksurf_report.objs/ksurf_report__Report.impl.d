lib/report/report.ml: Float Format List Printf String
