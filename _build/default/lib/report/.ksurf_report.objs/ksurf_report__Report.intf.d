lib/report/report.mli: Format
