let duration_ns v =
  if v < 1e3 then Printf.sprintf "%.0fns" v
  else if v < 1e6 then Printf.sprintf "%.1fus" (v /. 1e3)
  else if v < 1e9 then Printf.sprintf "%.1fms" (v /. 1e6)
  else Printf.sprintf "%.2fs" (v /. 1e9)

let table ~header ~rows ppf =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Report.table: ragged row")
    rows;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Format.fprintf ppf "%-*s  " (List.nth widths i) cell)
      cells;
    Format.fprintf ppf "@."
  in
  print_row header;
  Format.fprintf ppf "%s@."
    (String.concat "" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows

let bar_width = 40

let render_bar ppf value peak =
  let n =
    if peak <= 0.0 then 0
    else int_of_float (value /. peak *. float_of_int bar_width)
  in
  let n = if n > bar_width then bar_width else if n < 0 then 0 else n in
  Format.fprintf ppf "%s" (String.make n '#')

let bars ~title ~unit_label entries ppf =
  Format.fprintf ppf "%s (%s)@." title unit_label;
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  List.iter
    (fun (label, value) ->
      Format.fprintf ppf "  %-*s %10.2f  " label_width label value;
      render_bar ppf value peak;
      Format.fprintf ppf "@.")
    entries

let grouped_bars ~title ~unit_label ~series groups ppf =
  List.iter
    (fun (_, values) ->
      if List.length values <> List.length series then
        invalid_arg "Report.grouped_bars: ragged group")
    groups;
  Format.fprintf ppf "%s (%s)@." title unit_label;
  let peak =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      0.0 groups
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 groups
  in
  let series_width =
    List.fold_left (fun acc s -> max acc (String.length s)) 0 series
  in
  List.iter
    (fun (label, values) ->
      List.iteri
        (fun i value ->
          let tag = if i = 0 then label else "" in
          Format.fprintf ppf "  %-*s %-*s %10.2f  " label_width tag series_width
            (List.nth series i) value;
          render_bar ppf value peak;
          Format.fprintf ppf "@.")
        values)
    groups
