(** Facade: boot a kernel instance with its background daemons. *)

val boot :
  engine:Ksurf_sim.Engine.t ->
  ?config:Config.t ->
  id:int ->
  cores:int ->
  mem_mb:int ->
  ?block_dev:Ksurf_sim.Resource.t ->
  unit ->
  Instance.t
(** {!Instance.boot} followed by {!Background.start}.  [config] defaults
    to {!Config.default}. *)
