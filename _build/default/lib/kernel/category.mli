(** System-call categories (§5 of the paper).

    Each Linux system call is assigned one or more of six categories
    reflecting its purpose; Figure 2 analyses 99th-percentile latency per
    category.  Some calls belong to several (the paper's example: [chmod]
    is both filesystem-management and permission related). *)

type t =
  | Process  (** (a) process management / scheduling *)
  | Memory  (** (b) memory management *)
  | File_io  (** (c) file I/O *)
  | Fs_mgmt  (** (d) filesystem management *)
  | Ipc  (** (e) inter-process communication *)
  | Perm  (** (f) permission / capabilities management *)

val all : t list
(** In the paper's (a)–(f) order. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val index : t -> int
(** 0-based position in {!all}. *)
