lib/kernel/background.mli: Instance
