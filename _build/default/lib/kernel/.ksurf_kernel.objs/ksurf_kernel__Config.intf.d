lib/kernel/config.mli: Ksurf_util
