lib/kernel/caches.mli: Ksurf_util
