lib/kernel/category.mli: Format
