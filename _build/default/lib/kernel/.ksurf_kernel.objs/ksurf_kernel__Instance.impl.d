lib/kernel/instance.ml: Array Caches Config Float Ksurf_sim Ksurf_util List Ops Printf
