lib/kernel/kernel.mli: Config Instance Ksurf_sim
