lib/kernel/caches.ml: Float Ksurf_util
