lib/kernel/kernel.ml: Background Config Instance
