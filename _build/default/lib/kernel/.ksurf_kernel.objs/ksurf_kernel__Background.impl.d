lib/kernel/background.ml: Config Float Instance Ksurf_sim Ksurf_util Ops
