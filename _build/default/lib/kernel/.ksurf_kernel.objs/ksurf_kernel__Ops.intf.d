lib/kernel/ops.mli: Format Ksurf_util
