lib/kernel/config.ml: Ksurf_util
