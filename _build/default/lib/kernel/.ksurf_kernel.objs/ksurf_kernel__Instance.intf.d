lib/kernel/instance.mli: Config Ksurf_sim Ksurf_util Ops
