lib/kernel/ops.ml: Format Ksurf_util List
