lib/kernel/category.ml: Format Int
