type t = Process | Memory | File_io | Fs_mgmt | Ipc | Perm

let all = [ Process; Memory; File_io; Fs_mgmt; Ipc; Perm ]

let to_string = function
  | Process -> "process"
  | Memory -> "memory"
  | File_io -> "file-io"
  | Fs_mgmt -> "fs-mgmt"
  | Ipc -> "ipc"
  | Perm -> "perm"

let of_string = function
  | "process" -> Some Process
  | "memory" -> Some Memory
  | "file-io" -> Some File_io
  | "fs-mgmt" -> Some Fs_mgmt
  | "ipc" -> Some Ipc
  | "perm" -> Some Perm
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let index = function
  | Process -> 0
  | Memory -> 1
  | File_io -> 2
  | Fs_mgmt -> 3
  | Ipc -> 4
  | Perm -> 5

let compare a b = Int.compare (index a) (index b)
let equal a b = index a = index b
