(** Background kernel activity.

    Every kernel instance runs housekeeping daemons whose critical
    sections collide with system calls: the journal commit thread, the
    page reclaim daemon (kswapd), the scheduler load balancer, and the
    cgroup statistics flusher.  Their hold times scale with the
    instance's surface area — more cores mean more runqueues to balance,
    more memory means longer reclaim scans, more tenants mean more dirty
    journal metadata — which is precisely how a reduction in surface
    area reduces tail variability without any change to the workload. *)

val start : Instance.t -> unit
(** Spawn the daemons on the instance's engine.  A no-op when
    [enable_background] is false in the instance's {!Config.t} (the
    cgroup flusher also needs [enable_cgroup_accounting] and at least
    one registered cgroup at fire time). *)

val daemon_names : string list
(** For documentation and tests. *)
