let boot ~engine ?(config = Config.default) ~id ~cores ~mem_mb ?block_dev () =
  let inst = Instance.boot ~engine ~config ~id ~cores ~mem_mb ?block_dev () in
  Background.start inst;
  inst
