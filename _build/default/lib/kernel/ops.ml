type lock_ref =
  | Runqueue
  | Tasklist
  | Zone
  | Page_cache_tree
  | Dcache
  | Inode
  | Journal
  | Pipe
  | Msgq_registry
  | Futex_bucket
  | Cred
  | Audit
  | Cgroup_css

type rw_ref = Mmap_sem | Sb_umount

let lock_ref_name = function
  | Runqueue -> "runqueue"
  | Tasklist -> "tasklist"
  | Zone -> "zone"
  | Page_cache_tree -> "page_cache_tree"
  | Dcache -> "dcache"
  | Inode -> "inode"
  | Journal -> "journal"
  | Pipe -> "pipe"
  | Msgq_registry -> "msgq_registry"
  | Futex_bucket -> "futex_bucket"
  | Cred -> "cred"
  | Audit -> "audit"
  | Cgroup_css -> "cgroup_css"

let rw_ref_name = function Mmap_sem -> "mmap_sem" | Sb_umount -> "sb_umount"

let global_lock_refs = [ Tasklist; Zone; Dcache; Journal; Msgq_registry; Audit; Cgroup_css ]

type op =
  | Cpu of float
  | Cpu_dist of Ksurf_util.Dist.t
  | Lock of lock_ref * Ksurf_util.Dist.t
  | Read_lock of rw_ref * Ksurf_util.Dist.t
  | Write_lock of rw_ref * Ksurf_util.Dist.t
  | Dcache_lookup
  | Page_cache_lookup
  | Slab_alloc
  | Page_alloc of int
  | Tlb_shootdown
  | Rcu_sync
  | Block_io of { bytes : int; write : bool }
  | Cgroup_charge
  | Sleep of Ksurf_util.Dist.t

let pp_op ppf = function
  | Cpu ns -> Format.fprintf ppf "cpu(%.0fns)" ns
  | Cpu_dist _ -> Format.fprintf ppf "cpu(dist)"
  | Lock (l, _) -> Format.fprintf ppf "lock(%s)" (lock_ref_name l)
  | Read_lock (l, _) -> Format.fprintf ppf "rdlock(%s)" (rw_ref_name l)
  | Write_lock (l, _) -> Format.fprintf ppf "wrlock(%s)" (rw_ref_name l)
  | Dcache_lookup -> Format.pp_print_string ppf "dcache_lookup"
  | Page_cache_lookup -> Format.pp_print_string ppf "page_cache_lookup"
  | Slab_alloc -> Format.pp_print_string ppf "slab_alloc"
  | Page_alloc order -> Format.fprintf ppf "page_alloc(order=%d)" order
  | Tlb_shootdown -> Format.pp_print_string ppf "tlb_shootdown"
  | Rcu_sync -> Format.pp_print_string ppf "rcu_sync"
  | Block_io { bytes; write } ->
      Format.fprintf ppf "block_%s(%dB)" (if write then "write" else "read") bytes
  | Cgroup_charge -> Format.pp_print_string ppf "cgroup_charge"
  | Sleep _ -> Format.pp_print_string ppf "sleep"

let total_fixed_cost ops =
  List.fold_left (fun acc op -> match op with Cpu ns -> acc +. ns | _ -> acc) 0.0 ops
