lib/container/container.ml: Ksurf_kernel
