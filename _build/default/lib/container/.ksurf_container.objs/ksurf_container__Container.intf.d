lib/container/container.mli: Ksurf_kernel
