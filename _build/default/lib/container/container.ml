module Instance = Ksurf_kernel.Instance

type shape = { cpus : int; mem_limit_mb : int }

type t = { id : int; shape : shape; cgroup : int; host : Instance.t }

let launch ~host ~id shape =
  if shape.cpus < 1 then invalid_arg "Container.launch: cpus must be >= 1";
  let cgroup = Instance.register_cgroup host in
  { id; shape; cgroup; host }

let id t = t.id
let shape t = t.shape
let cgroup t = t.cgroup
let host t = t.host

let namespace_cost = 35.0

let exec_syscall t ~core ~tenant ~key ops =
  let cfg = Instance.config t.host in
  let ctx = { Instance.core; tenant; key; cgroup = Some t.cgroup } in
  Instance.burn t.host
    (cfg.Ksurf_kernel.Config.syscall_entry_cost +. namespace_cost);
  (* Every containerised call passes resource accounting (cpuacct on
     entry, memcg on any allocation) before its own ops run. *)
  Instance.exec_op t.host ctx Ksurf_kernel.Ops.Cgroup_charge;
  Instance.exec_program t.host ctx ops
