(** Docker-style OS containers.

    Containers are namespaces plus control groups over the {e shared}
    host kernel: the kernel surface area their workload sees is the full
    machine, which is the paper's central contrast with VMs.  Each
    container contributes a cgroup whose accounting traffic (and the
    host-wide stats flusher it feeds) grows with the container count —
    the mechanism behind Table 3's worst-case degradation. *)

type shape = { cpus : int; mem_limit_mb : int }

type t

val launch :
  host:Ksurf_kernel.Instance.t -> id:int -> shape -> t
(** Create a container on the host kernel: registers its cgroup and
    namespace set.  [cpus] is the size of its pinned cpuset. *)

val id : t -> int
val shape : t -> shape
val cgroup : t -> int
val host : t -> Ksurf_kernel.Instance.t

val namespace_cost : float
(** Per-syscall namespace translation cost (ns): pid/mnt/net indirection
    on entry. *)

val exec_syscall :
  t -> core:int -> tenant:int -> key:int -> Ksurf_kernel.Ops.op list -> unit
(** Run an op program on the shared host kernel from inside the
    container: entry cost + namespace cost, cgroup context set so charge
    ops are live.  [core] is the pinned physical CPU. *)
