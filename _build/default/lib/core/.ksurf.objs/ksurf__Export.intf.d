lib/core/export.mli: Experiments
