lib/core/experiments.mli: Format Ksurf_cluster Ksurf_env Ksurf_kernel Ksurf_stats Ksurf_syzgen Ksurf_tailbench
