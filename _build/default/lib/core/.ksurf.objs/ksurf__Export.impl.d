lib/core/export.ml: Experiments Filename Ksurf_cluster Ksurf_kernel Ksurf_report Ksurf_stats Ksurf_tailbench List Option Printf
