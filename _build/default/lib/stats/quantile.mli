(** Quantile and ECDF computation over float samples.

    The estimator is R's type-7 (linear interpolation between order
    statistics), the common default, applied to a sorted copy of the
    input.  All functions raise [Invalid_argument] on empty input unless
    stated otherwise. *)

val sorted_copy : float array -> float array

val of_sorted : float array -> float -> float
(** [of_sorted sorted q] with [q] in \[0,1\], on pre-sorted data. *)

val quantile : float array -> float -> float
(** [quantile samples q] sorts internally. *)

val median : float array -> float
val p99 : float array -> float
val p95 : float array -> float
val max_value : float array -> float
val min_value : float array -> float

val ecdf : float array -> float -> float
(** [ecdf samples x] is the fraction of samples [<= x]; 0 on empty input. *)

type summary = {
  count : int;
  mean : float;
  median : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** One-pass summary of a sample set. *)

val pp_summary : Format.formatter -> summary -> unit
