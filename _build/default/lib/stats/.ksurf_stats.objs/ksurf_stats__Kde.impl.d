lib/stats/kde.ml: Array Float Ksurf_util List Quantile
