lib/stats/violin.mli: Format
