lib/stats/p2_quantile.ml: Array Float Quantile
