lib/stats/quantile.mli: Format
