lib/stats/kde.mli:
