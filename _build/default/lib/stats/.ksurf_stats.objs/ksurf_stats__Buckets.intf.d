lib/stats/buckets.mli: Format
