lib/stats/violin.ml: Array Buffer Float Format Kde List Printf Quantile String
