lib/stats/buckets.ml: Array Format
