let silverman_bandwidth samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Kde.silverman_bandwidth: empty";
  let acc = Ksurf_util.Welford.create () in
  Array.iter (Ksurf_util.Welford.add acc) samples;
  let sd = Ksurf_util.Welford.stddev acc in
  let sorted = Quantile.sorted_copy samples in
  let iqr = Quantile.of_sorted sorted 0.75 -. Quantile.of_sorted sorted 0.25 in
  let spread =
    let candidates = List.filter (fun v -> v > 0.0) [ sd; iqr /. 1.349 ] in
    match candidates with [] -> 0.0 | l -> List.fold_left Float.min infinity l
  in
  if spread <= 0.0 then
    (* Degenerate sample: pick a bandwidth proportional to the magnitude
       so the density is still well-defined. *)
    Float.max 1e-9 (Float.abs sorted.(0) *. 0.01 +. 1e-9)
  else 0.9 *. spread *. Float.pow (float_of_int n) (-0.2)

let gaussian u = Float.exp (-0.5 *. u *. u) /. Float.sqrt (2.0 *. Float.pi)

let estimate ?bandwidth samples x =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Kde.estimate: empty";
  let h = match bandwidth with Some h -> h | None -> silverman_bandwidth samples in
  let acc = ref 0.0 in
  Array.iter (fun s -> acc := !acc +. gaussian ((x -. s) /. h)) samples;
  !acc /. (float_of_int n *. h)

let curve ?bandwidth ?(points = 64) samples =
  if Array.length samples = 0 then invalid_arg "Kde.curve: empty";
  if points < 2 then invalid_arg "Kde.curve: need at least two points";
  let h = match bandwidth with Some h -> h | None -> silverman_bandwidth samples in
  let lo = Quantile.min_value samples -. (3.0 *. h) in
  let hi = Quantile.max_value samples +. (3.0 *. h) in
  Array.init points (fun i ->
      let x = lo +. (float_of_int i /. float_of_int (points - 1) *. (hi -. lo)) in
      (x, estimate ~bandwidth:h samples x))

let log_curve ?bandwidth ?(points = 64) samples =
  let logs =
    Array.of_list
      (List.filter_map
         (fun v -> if v > 0.0 then Some (Float.log10 v) else None)
         (Array.to_list samples))
  in
  if Array.length logs = 0 then invalid_arg "Kde.log_curve: no positive samples";
  let pairs = curve ?bandwidth ~points logs in
  Array.map (fun (lx, d) -> (Float.pow 10.0 lx, d)) pairs
