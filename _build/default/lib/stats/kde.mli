(** Gaussian kernel density estimation.

    Figure 2 of the paper shows violin plots: a box plot overlaid with a
    kernel density of the per-syscall 99th percentiles.  [Kde] produces
    the density curve; {!Violin} combines it with the quantile box. *)

val silverman_bandwidth : float array -> float
(** Silverman's rule-of-thumb bandwidth.  Falls back to a small positive
    value for degenerate (constant) samples.  Raises [Invalid_argument]
    on empty input. *)

val estimate : ?bandwidth:float -> float array -> float -> float
(** [estimate samples x] is the estimated density at [x].  Bandwidth
    defaults to {!silverman_bandwidth}. *)

val curve :
  ?bandwidth:float -> ?points:int -> float array -> (float * float) array
(** [curve samples] evaluates the density at [points] (default 64)
    positions spanning \[min-3h, max+3h\]; returns (x, density) pairs. *)

val log_curve :
  ?bandwidth:float -> ?points:int -> float array -> (float * float) array
(** Density of log10(samples), evaluated on a log-spaced grid and
    reported against the original scale — matches the log-axis violins
    in the paper.  Non-positive samples are dropped. *)
