type t = {
  label : string;
  count : int;
  median : float;
  q1 : float;
  q3 : float;
  lo95 : float;
  hi95 : float;
  min : float;
  max : float;
  density : (float * float) array;
}

let of_samples ~label samples =
  let sorted = Quantile.sorted_copy samples in
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Violin.of_samples: empty";
  let q p = Quantile.of_sorted sorted p in
  let density =
    if n >= 2 && sorted.(n - 1) > sorted.(0) then Kde.log_curve ~points:48 sorted
    else [| (sorted.(0), 1.0) |]
  in
  {
    label;
    count = n;
    median = q 0.5;
    q1 = q 0.25;
    q3 = q 0.75;
    lo95 = q 0.025;
    hi95 = q 0.975;
    min = sorted.(0);
    max = sorted.(n - 1);
    density;
  }

let header =
  "label            n      min     lo95       q1      med       q3     hi95      max"

let pp_row ppf v =
  Format.fprintf ppf "%-12s %5d %8.3g %8.3g %8.3g %8.3g %8.3g %8.3g %8.3g" v.label
    v.count v.min v.lo95 v.q1 v.median v.q3 v.hi95 v.max

let render_ascii ?(height = 20) violins =
  match violins with
  | [] -> ""
  | _ ->
      let lo =
        List.fold_left (fun acc v -> Float.min acc v.min) infinity violins
      in
      let hi =
        List.fold_left (fun acc v -> Float.max acc v.max) neg_infinity violins
      in
      let lo = Float.max lo 1.0 and hi = Float.max hi 2.0 in
      let log_lo = Float.log10 lo and log_hi = Float.log10 (hi *. 1.05) in
      let row_of v =
        let pos = (Float.log10 (Float.max v 1.0) -. log_lo) /. (log_hi -. log_lo) in
        let r = int_of_float (pos *. float_of_int (height - 1)) in
        if r < 0 then 0 else if r >= height then height - 1 else r
      in
      let col_width = 9 in
      let peak_density v =
        Array.fold_left (fun acc (_, d) -> Float.max acc d) 1e-30 v.density
      in
      let density_at v value =
        (* Nearest density sample on the curve. *)
        let best = ref 0.0 and best_dist = ref infinity in
        Array.iter
          (fun (x, d) ->
            let dist = Float.abs (Float.log10 (Float.max x 1.0) -. Float.log10 (Float.max value 1.0)) in
            if dist < !best_dist then begin
              best_dist := dist;
              best := d
            end)
          v.density;
        !best
      in
      let buf = Buffer.create 1024 in
      for row = height - 1 downto 0 do
        let frac = float_of_int row /. float_of_int (height - 1) in
        let value = Float.pow 10.0 (log_lo +. (frac *. (log_hi -. log_lo))) in
        Buffer.add_string buf (Printf.sprintf "%8.2g |" value);
        List.iter
          (fun v ->
            let cell =
              if row_of v.median = row then "O"
              else if row >= row_of v.q1 && row <= row_of v.q3 then "#"
              else if row >= row_of v.lo95 && row <= row_of v.hi95 then "|"
              else if row >= row_of v.min && row <= row_of v.max then begin
                let d = density_at v value /. peak_density v in
                if d > 0.5 then "=" else if d > 0.15 then "-" else "."
              end
              else " "
            in
            let pad = (col_width - 1) / 2 in
            Buffer.add_string buf (String.make pad ' ');
            Buffer.add_string buf cell;
            Buffer.add_string buf (String.make (col_width - 1 - pad) ' '))
          violins;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make 9 ' ' ^ "+");
      List.iter (fun _ -> Buffer.add_string buf (String.make col_width '-')) violins;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make 10 ' ');
      List.iter
        (fun v ->
          let label =
            if String.length v.label > col_width - 1 then
              String.sub v.label 0 (col_width - 1)
            else v.label
          in
          Buffer.add_string buf (Printf.sprintf "%-*s" col_width label))
        violins;
      Buffer.add_char buf '\n';
      Buffer.contents buf
