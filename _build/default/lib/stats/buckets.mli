(** The paper's latency discretisation (Tables 2 and 3).

    Tables 2/3 report, for a chosen statistic of each unique system call
    (median, 99th percentile, or max), the {e cumulative} percentage of
    system calls whose statistic falls below 1µs, 10µs, 100µs, 1ms and
    10ms, plus the residual above 10ms.  Latencies here are nanoseconds,
    matching the rest of ksurf. *)

type row = {
  le_1us : float;
  le_10us : float;
  le_100us : float;
  le_1ms : float;
  le_10ms : float;
  gt_10ms : float;
}
(** Cumulative percentages (0–100). *)

val edges_ns : float array
(** [| 1e3; 1e4; 1e5; 1e6; 1e7 |] — bucket edges in nanoseconds. *)

val of_latencies : float array -> row
(** Classify one statistic per system call into the cumulative row.
    Raises [Invalid_argument] on empty input. *)

val pp : Format.formatter -> row -> unit
(** Prints the six columns in the paper's format (two decimals). *)

val header : string
(** Column header matching {!pp}. *)
