let sorted_copy samples =
  let copy = Array.copy samples in
  Array.sort Float.compare copy;
  copy

let of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile.of_sorted: q out of range";
  if n = 1 then sorted.(0)
  else begin
    (* Type-7: h = (n-1) q; interpolate between floor and ceil. *)
    let h = float_of_int (n - 1) *. q in
    let lo = int_of_float (Float.floor h) in
    let hi = if lo + 1 < n then lo + 1 else lo in
    let frac = h -. Float.floor h in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let quantile samples q = of_sorted (sorted_copy samples) q
let median samples = quantile samples 0.5
let p99 samples = quantile samples 0.99
let p95 samples = quantile samples 0.95

let max_value samples =
  if Array.length samples = 0 then invalid_arg "Quantile.max_value: empty";
  Array.fold_left Float.max neg_infinity samples

let min_value samples =
  if Array.length samples = 0 then invalid_arg "Quantile.min_value: empty";
  Array.fold_left Float.min infinity samples

let ecdf samples x =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let below = ref 0 in
    Array.iter (fun v -> if v <= x then incr below) samples;
    float_of_int !below /. float_of_int n
  end

type summary = {
  count : int;
  mean : float;
  median : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

let summarize samples =
  let sorted = sorted_copy samples in
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.summarize: empty";
  let total = Array.fold_left ( +. ) 0.0 sorted in
  {
    count = n;
    mean = total /. float_of_int n;
    median = of_sorted sorted 0.5;
    p95 = of_sorted sorted 0.95;
    p99 = of_sorted sorted 0.99;
    min = sorted.(0);
    max = sorted.(n - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3g med=%.3g p95=%.3g p99=%.3g min=%.3g max=%.3g" s.count
    s.mean s.median s.p95 s.p99 s.min s.max
