(** Violin-plot summaries (Figure 2 of the paper).

    A violin is a box plot (median, interquartile range, 95% interval)
    plus a kernel density curve.  We store the numbers a plotting tool
    would need, and can render an ASCII approximation for terminals. *)

type t = {
  label : string;
  count : int;
  median : float;
  q1 : float;
  q3 : float;
  lo95 : float;  (** 2.5th percentile *)
  hi95 : float;  (** 97.5th percentile *)
  min : float;
  max : float;
  density : (float * float) array;  (** log-scale KDE curve, (value, density) *)
}

val of_samples : label:string -> float array -> t
(** Raises [Invalid_argument] on empty input. *)

val pp_row : Format.formatter -> t -> unit
(** One-line numeric summary. *)

val header : string

val render_ascii : ?height:int -> t list -> string
(** Side-by-side vertical ASCII violins on a shared log axis — the
    textual stand-in for the paper's Figure 2 panels. *)
