type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  bins : int array;
  mutable total : int;
}

let create_linear ~lo ~hi ~bins =
  if bins <= 0 || hi <= lo then invalid_arg "Histogram.create_linear";
  { scale = Linear; lo; hi; bins = Array.make bins 0; total = 0 }

let create_log ~lo ~hi ~bins =
  if bins <= 0 || hi <= lo || lo <= 0.0 then invalid_arg "Histogram.create_log";
  { scale = Log; lo; hi; bins = Array.make bins 0; total = 0 }

let bin_count t = Array.length t.bins
let count t = t.total

let position t v =
  match t.scale with
  | Linear -> (v -. t.lo) /. (t.hi -. t.lo)
  | Log ->
      if v <= 0.0 then 0.0
      else Float.log (v /. t.lo) /. Float.log (t.hi /. t.lo)

let bin_of t v =
  let pos = position t v in
  let i = int_of_float (pos *. float_of_int (bin_count t)) in
  if i < 0 then 0 else if i >= bin_count t then bin_count t - 1 else i

let add t v =
  let i = bin_of t v in
  t.bins.(i) <- t.bins.(i) + 1;
  t.total <- t.total + 1

let edge t frac =
  match t.scale with
  | Linear -> t.lo +. (frac *. (t.hi -. t.lo))
  | Log -> t.lo *. Float.pow (t.hi /. t.lo) frac

let bin_lo t i = edge t (float_of_int i /. float_of_int (bin_count t))
let bin_hi t i = edge t (float_of_int (i + 1) /. float_of_int (bin_count t))
let bin_value t i = t.bins.(i)

let densities t =
  if t.total = 0 then Array.make (bin_count t) 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.bins

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.bins.(!best) then best := i) t.bins;
  !best

let spark_chars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let pp ppf t =
  let dens = densities t in
  let peak = Array.fold_left Float.max 0.0 dens in
  let render d =
    if peak <= 0.0 then ' '
    else begin
      let idx = int_of_float (d /. peak *. 9.0) in
      spark_chars.(if idx > 9 then 9 else idx)
    end
  in
  Format.fprintf ppf "[%s] n=%d" (String.init (bin_count t) (fun i -> render dens.(i))) t.total
