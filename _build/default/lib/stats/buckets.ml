type row = {
  le_1us : float;
  le_10us : float;
  le_100us : float;
  le_1ms : float;
  le_10ms : float;
  gt_10ms : float;
}

let edges_ns = [| 1e3; 1e4; 1e5; 1e6; 1e7 |]

let of_latencies latencies =
  let n = Array.length latencies in
  if n = 0 then invalid_arg "Buckets.of_latencies: empty";
  let counts = Array.make (Array.length edges_ns) 0 in
  Array.iter
    (fun v ->
      Array.iteri (fun i edge -> if v < edge then counts.(i) <- counts.(i) + 1) edges_ns)
    latencies;
  let pct c = 100.0 *. float_of_int c /. float_of_int n in
  {
    le_1us = pct counts.(0);
    le_10us = pct counts.(1);
    le_100us = pct counts.(2);
    le_1ms = pct counts.(3);
    le_10ms = pct counts.(4);
    gt_10ms = 100.0 -. pct counts.(4);
  }

let header = "    1us   10us  100us    1ms   10ms  >10ms"

let pp ppf r =
  Format.fprintf ppf "%6.2f %6.2f %6.2f %6.2f %6.2f %6.2f" r.le_1us r.le_10us
    r.le_100us r.le_1ms r.le_10ms r.gt_10ms
