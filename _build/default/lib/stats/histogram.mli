(** Fixed-bin and logarithmic histograms.

    Log-spaced histograms are the natural shape for system-call latencies,
    which span six orders of magnitude (100ns … 100ms). *)

type t

val create_linear : lo:float -> hi:float -> bins:int -> t
(** Linear bins over \[lo, hi); out-of-range samples land in the edge
    bins.  Raises [Invalid_argument] on bad parameters. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Log-spaced bins over \[lo, hi), [lo > 0]. *)

val add : t -> float -> unit
val count : t -> int
val bin_count : t -> int
val bin_of : t -> float -> int
(** Index of the bin a value falls into (clamped to the edges). *)

val bin_lo : t -> int -> float
val bin_hi : t -> int -> float
val bin_value : t -> int -> int
(** Number of samples in bin [i]. *)

val densities : t -> float array
(** Per-bin fraction of total samples (sums to 1 when non-empty). *)

val mode_bin : t -> int
(** Index of the fullest bin; 0 when empty. *)

val pp : Format.formatter -> t -> unit
(** A compact sparkline-style dump, for logs and examples. *)
