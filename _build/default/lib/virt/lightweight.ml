module Dist = Ksurf_util.Dist

let firecracker =
  {
    Virt_config.default with
    Virt_config.exit_cost = 520.0;
    exits_per_syscall = 0.5;
    (* The lean VMM services device exits in microseconds, not hundreds
       of microseconds: the slow-exit tail nearly disappears. *)
    exit_slow_prob = 0.006;
    exit_slow_cost = Dist.bounded_pareto ~lo:1.5e4 ~hi:1.2e5 ~shape:1.0;
    cpu_factor = 1.07;
    virtio_request_cost = 6_000.0 (* virtio-mmio, no PCI traversal *);
    virtio_net_per_msg = 3_200.0;
  }

let kata =
  {
    Virt_config.default with
    (* Stock-KVM hardware path plus the kata-agent proxy on the
       container interface: a few more exits per call on average. *)
    Virt_config.exits_per_syscall = 0.75;
    virtio_request_cost = 10_500.0 (* 9p/virtiofs indirection *);
  }

let nabla =
  {
    Virt_config.default with
    (* Unikernel hypercalls: almost every "syscall" is a function call
       inside the library OS; only the seven solo5 hypercalls exit. *)
    Virt_config.exit_cost = 350.0;
    exits_per_syscall = 0.05;
    exit_slow_prob = 0.001;
    exit_slow_cost = Dist.bounded_pareto ~lo:1e4 ~hi:6e4 ~shape:1.2;
    cpu_factor = 1.02;
    virtio_request_cost = 4_000.0;
    virtio_net_per_msg = 2_500.0;
  }

(* Every syscall is intercepted and redirected into the Sentry; the
   "exit" here is the interception trampoline plus Sentry dispatch,
   paid on each call.  The Sentry's own kernel structures play the
   role of the guest kernel (small private surface area); Gofer-side
   file I/O is the expensive punt path. *)
let gvisor =
  {
    Virt_config.exit_cost = 2_400.0;
    exits_per_syscall = 1.0;
    exit_slow_prob = 0.004;
    exit_slow_cost = Dist.bounded_pareto ~lo:2e4 ~hi:2e5 ~shape:1.0;
    cpu_factor = 1.15 (* Go runtime + software MMU emulation *);
    ipi_factor = 1.6;
    virtio_request_cost = 16_000.0 (* 9p to the Gofer process *);
    virtio_net_per_msg = 6_000.0;
    hugepages = false;
  }

let all =
  [
    ("kvm", Virt_config.default);
    ("firecracker", firecracker);
    ("kata", kata);
    ("nabla", nabla);
    ("gvisor", gvisor);
  ]
