(** The host-side hypervisor: boots VM partitions over one machine.

    Owns the physical block device every virtio backend feeds into and
    assigns pinned physical CPU ranges to each VM (vCPU pinning from the
    paper's configuration). *)

type t

val create :
  engine:Ksurf_sim.Engine.t ->
  ?kernel_config:Ksurf_kernel.Config.t ->
  ?virt:Virt_config.t ->
  ?share_host_disk:bool ->
  unit ->
  t
(** [share_host_disk] (default false) queues every VM's virtio requests
    on one shared host device; by default each VM gets a private virtio
    disk (per-VM image files, host page cache absorbing contention). *)

val host_block : t -> Ksurf_sim.Resource.t

val boot_vm : t -> Vm.shape -> Vm.t
(** Boot one VM; ids and pinned CPU ranges are assigned sequentially. *)

val boot_partition : t -> vms:int -> total_cores:int -> total_mem_mb:int -> Vm.t list
(** Boot [vms] identical VMs splitting the given resources evenly (the
    Table 1 configurations).  Raises [Invalid_argument] if the split is
    not exact. *)

val vms : t -> Vm.t list
