module Dist = Ksurf_util.Dist

type t = {
  exit_cost : float;
  exits_per_syscall : float;
  exit_slow_prob : float;
  exit_slow_cost : Dist.t;
  cpu_factor : float;
  ipi_factor : float;
  virtio_request_cost : float;
  virtio_net_per_msg : float;
  hugepages : bool;
}

let default =
  {
    exit_cost = 600.0;
    exits_per_syscall = 0.55;
    exit_slow_prob = 0.03;
    exit_slow_cost = Dist.bounded_pareto ~lo:6e4 ~hi:8e5 ~shape:0.8;
    cpu_factor = 1.08;
    ipi_factor = 2.4;
    virtio_request_cost = 9_000.0;
    virtio_net_per_msg = 4_500.0;
    hugepages = true;
  }

let scale f t =
  if f < 0.0 then invalid_arg "Virt_config.scale: negative";
  {
    t with
    exit_cost = t.exit_cost *. f;
    exits_per_syscall = t.exits_per_syscall;
    exit_slow_prob = t.exit_slow_prob *. f;
    cpu_factor = 1.0 +. ((t.cpu_factor -. 1.0) *. f);
    ipi_factor = 1.0 +. ((t.ipi_factor -. 1.0) *. f);
    virtio_request_cost = t.virtio_request_cost *. f;
    virtio_net_per_msg = t.virtio_net_per_msg *. f;
  }

let derive_kernel_config t (k : Ksurf_kernel.Config.t) =
  let cpu_factor = if t.hugepages then t.cpu_factor else t.cpu_factor *. 1.05 in
  {
    k with
    Ksurf_kernel.Config.ipi_cost = k.Ksurf_kernel.Config.ipi_cost *. t.ipi_factor;
    block_latency =
      Dist.shifted t.virtio_request_cost k.Ksurf_kernel.Config.block_latency;
    cpu_cost_factor = k.Ksurf_kernel.Config.cpu_cost_factor *. cpu_factor;
    syscall_entry_cost = k.Ksurf_kernel.Config.syscall_entry_cost *. cpu_factor;
  }
