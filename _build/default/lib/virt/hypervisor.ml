module Resource = Ksurf_sim.Resource

type t = {
  engine : Ksurf_sim.Engine.t;
  kernel_config : Ksurf_kernel.Config.t;
  virt : Virt_config.t;
  host_block : Resource.t;
  share_host_disk : bool;
  mutable next_id : int;
  mutable booted : Vm.t list;
}

let create ~engine ?(kernel_config = Ksurf_kernel.Config.default)
    ?(virt = Virt_config.default) ?(share_host_disk = false) () =
  {
    engine;
    kernel_config;
    virt;
    host_block =
      Resource.create ~engine ~name:"host.blkdev"
        ~capacity:kernel_config.Ksurf_kernel.Config.block_queue_depth;
    share_host_disk;
    next_id = 0;
    booted = [];
  }

let host_block t = t.host_block

let boot_vm t shape =
  let id = t.next_id in
  t.next_id <- id + 1;
  let vm =
    if t.share_host_disk then
      Vm.boot ~engine:t.engine ~host_block:t.host_block
        ~kernel_config:t.kernel_config ~virt:t.virt ~id shape
    else Vm.boot ~engine:t.engine ~kernel_config:t.kernel_config ~virt:t.virt ~id shape
  in
  t.booted <- vm :: t.booted;
  vm

let boot_partition t ~vms ~total_cores ~total_mem_mb =
  if vms < 1 then invalid_arg "Hypervisor.boot_partition: vms must be >= 1";
  if total_cores mod vms <> 0 || total_mem_mb mod vms <> 0 then
    invalid_arg "Hypervisor.boot_partition: uneven split";
  let shape = { Vm.vcpus = total_cores / vms; mem_mb = total_mem_mb / vms } in
  List.init vms (fun _ -> boot_vm t shape)

let vms t = List.rev t.booted
