(** Hardware-virtualisation overhead model.

    The paper's system model (§4.3): virtualisation adds a {e bounded}
    overhead to most system calls — VM entries/exits, nested paging,
    virtio I/O — in contrast to the unbounded software interference of a
    shared kernel.  Every cost here is a fixed or narrowly-distributed
    quantity; none of them queues behind other tenants. *)

type t = {
  exit_cost : float;  (** one VM exit + re-entry round trip (ns) *)
  exits_per_syscall : float;
      (** expected involuntary exits per system call (timer, APIC,
          instruction emulation); fractional values are Bernoulli *)
  exit_slow_prob : float;
      (** probability an exit needs host-side service (halt polling,
          host IRQ, userspace device emulation) *)
  exit_slow_cost : Ksurf_util.Dist.t;
      (** duration of such a serviced exit — bounded, unlike shared-
          kernel interference *)
  cpu_factor : float;
      (** dilation of in-kernel CPU work from nested paging / TLB
          pressure (>= 1.0) *)
  ipi_factor : float;
      (** multiplier on IPI cost: a cross-vCPU kick exits on the sender
          and injects on the receiver *)
  virtio_request_cost : float;
      (** guest driver + host handoff per block request (ns) *)
  virtio_net_per_msg : float;  (** TAP/virtio-net cost per network message *)
  hugepages : bool;  (** 2 MiB guest mappings: cheaper nested walks *)
}

val default : t
(** Calibrated KVM-on-EPYC-like values (pinned vCPUs, hugetlbfs,
    virtio-blk) matching the paper's VM configuration (§4.1). *)

val scale : float -> t -> t
(** Multiply all exit-related costs by a factor — the E8 ablation
    ("hardware continues to implement more support for virtualisation").
    [scale 0.0 t] is free virtualisation. *)

val derive_kernel_config : t -> Ksurf_kernel.Config.t -> Ksurf_kernel.Config.t
(** The guest kernel's view of the hardware: IPIs cost more (exit on
    both ends), block requests carry the virtio handoff, in-kernel CPU
    dilates by [cpu_factor]. *)
