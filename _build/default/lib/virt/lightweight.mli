(** Lightweight-VM technology presets (the paper's future work, §2).

    The paper evaluates Docker and stock KVM and notes that emerging
    "lightweight VM" projects — Amazon Firecracker, Kata Containers,
    IBM Nabla — "would be interesting to evaluate in a similar
    fashion".  Each preset is a {!Virt_config.t} tuned to the published
    design of the technology, so every ksurf experiment can swap it in
    via [Env.Kvm preset]:

    - {b Firecracker}: a minimal VMM (no PCI, no BIOS, virtio-mmio, tiny
      device model).  Exits that reach userspace are serviced by a lean
      event loop, so exit tails shrink substantially; steady-state exit
      cost is close to raw KVM.
    - {b Kata}: VM-per-container with a guest agent.  Hardware isolation
      equals stock KVM; the agent adds a small per-syscall proxy cost to
      I/O-adjacent calls, modeled as extra expected exits.
    - {b Nabla}: a library-OS unikernel on a seccomp-restricted host
      process (solo5).  There is no guest Linux at all: "exits" are
      seven whitelisted hypercalls, and everything else runs at function
      call cost.  The closest ksurf model is vanishingly small exit
      overhead with no nested-paging dilation — but note that a real
      Nabla cannot run the unmodified tailbench binaries.
    - {b gVisor}: a user-space kernel (the Sentry) intercepting {e every}
      system call; most are served from the Sentry's own state (a
      private surface area, like a guest kernel), file I/O crosses a
      second process (the Gofer).  Interception costs microseconds per
      call — the steepest median overhead of the set — in exchange for
      the same unbounded-interference removal as a VM. *)

val firecracker : Virt_config.t
val kata : Virt_config.t
val nabla : Virt_config.t
val gvisor : Virt_config.t

val all : (string * Virt_config.t) list
(** [("kvm", default); ("firecracker", ...); ("kata", ...); ("nabla", ...);
    ("gvisor", ...)] — stock KVM first for comparison. *)
