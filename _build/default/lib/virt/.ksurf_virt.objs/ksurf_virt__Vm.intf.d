lib/virt/vm.mli: Ksurf_kernel Ksurf_sim Virt_config
