lib/virt/lightweight.mli: Virt_config
