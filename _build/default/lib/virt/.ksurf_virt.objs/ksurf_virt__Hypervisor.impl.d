lib/virt/hypervisor.ml: Ksurf_kernel Ksurf_sim List Virt_config Vm
