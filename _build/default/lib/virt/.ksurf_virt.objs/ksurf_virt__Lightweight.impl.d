lib/virt/lightweight.ml: Ksurf_util Virt_config
