lib/virt/hypervisor.mli: Ksurf_kernel Ksurf_sim Virt_config Vm
