lib/virt/virt_config.ml: Ksurf_kernel Ksurf_util
