lib/virt/vm.ml: Ksurf_kernel Ksurf_sim Ksurf_util Printf Virt_config
