lib/virt/virt_config.mli: Ksurf_kernel Ksurf_util
