(** A syzgen program: a straight-line sequence of system calls.

    This mirrors a Syzkaller corpus entry: each program is small, its
    calls and arguments are fixed, and every invocation of the program
    issues exactly the same call sequence — the property the paper
    relies on to compare the "same position in its program with the same
    arguments" across environments (§4.2). *)

type call = { spec : Ksurf_syscalls.Spec.t; arg : Ksurf_syscalls.Arg.t }

type t = { id : int; calls : call list }

val length : t -> int

val call_site : t -> int -> call
(** [call_site p i] is the [i]-th call.  Raises [Invalid_argument] if
    out of range. *)

val site_name : t -> int -> string
(** Stable identifier of a call site: ["<prog id>/<index>:<syscall>"].
    Per-site latency tabulation keys on this. *)

val random :
  Ksurf_util.Prng.t -> id:int -> min_len:int -> max_len:int -> t
(** A fresh random program with length uniform in [min_len, max_len]. *)

val to_string : t -> string
(** Textual form, one call per line: [name(size:obj:flags)]. *)

val of_string : id:int -> string -> (t, string) result
(** Parse {!to_string} output.  Unknown syscall names are an error. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
(** Same call sequence (ids may differ). *)
