module Prng = Ksurf_util.Prng

type params = {
  seed : int;
  target_programs : int;
  max_rounds : int;
  min_len : int;
  max_len : int;
  mutation_bias : float;
  target_calls : int option;
}

let default_params =
  {
    seed = 42;
    target_programs = 64;
    max_rounds = 20_000;
    min_len = 3;
    max_len = 10;
    mutation_bias = 0.7;
    target_calls = None;
  }

type report = {
  corpus : Corpus.t;
  rounds : int;
  admitted : int;
  coverage_blocks : int;
  coverage_fraction : float;
}

let minimise ~against (p : Program.t) =
  (* Greedy backwards pass: drop a call if the program's coverage beyond
     [against] is unchanged without it.  Backwards so that edge blocks
     of earlier pairs are preserved while later redundancy goes. *)
  let contribution calls =
    let prog = { Program.id = p.Program.id; calls } in
    Coverage.Set.diff_cardinal (Coverage.of_program prog) against
  in
  let full = contribution p.Program.calls in
  let rec drop_pass calls i =
    if i < 0 then calls
    else begin
      let without = List.filteri (fun j _ -> j <> i) calls in
      if without <> [] && contribution without = full then drop_pass without (i - 1)
      else drop_pass calls (i - 1)
    end
  in
  let calls = drop_pass p.Program.calls (List.length p.Program.calls - 1) in
  { Program.id = p.Program.id; calls }

let run ?(params = default_params) () =
  let rng = Prng.create params.seed in
  let corpus_rev = ref [] in
  let corpus_len = ref 0 in
  let covered = ref Coverage.Set.empty in
  let rounds = ref 0 in
  let admitted = ref 0 in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let corpus_pick () =
    match !corpus_rev with
    | [] -> None
    | l -> Some (List.nth l (Prng.int rng (List.length l)))
  in
  let candidate () =
    let mutate_existing =
      !corpus_rev <> [] && Prng.chance rng params.mutation_bias
    in
    if mutate_existing then begin
      match corpus_pick () with
      | Some base -> Mutate.mutate rng ~corpus_pick ~id:(fresh_id ()) base
      | None -> assert false
    end
    else
      Program.random rng ~id:(fresh_id ()) ~min_len:params.min_len
        ~max_len:params.max_len
  in
  while !corpus_len < params.target_programs && !rounds < params.max_rounds do
    incr rounds;
    let cand = candidate () in
    let cov = Coverage.of_program cand in
    if Coverage.Set.diff_cardinal cov !covered > 0 then begin
      let cand = minimise ~against:!covered cand in
      corpus_rev := cand :: !corpus_rev;
      incr corpus_len;
      incr admitted;
      covered := Coverage.Set.union !covered (Coverage.of_program cand)
    end
  done;
  (* Paper-scale growth: once admission is done, extend with mutants of
     admitted programs (coverage preserved by construction — supersets
     only grow coverage, and mutation keeps members too). *)
  (match params.target_calls with
  | None -> ()
  | Some target ->
      let calls_of l =
        List.fold_left (fun acc p -> acc + Program.length p) 0 l
      in
      while calls_of !corpus_rev < target && !next_id < 10 * target do
        match corpus_pick () with
        | None -> next_id := 10 * target (* cannot grow an empty corpus *)
        | Some base ->
            let mutant = Mutate.mutate rng ~corpus_pick ~id:(fresh_id ()) base in
            corpus_rev := mutant :: !corpus_rev;
            incr corpus_len;
            covered := Coverage.Set.union !covered (Coverage.of_program mutant)
      done);
  let corpus = Corpus.of_programs (List.rev !corpus_rev) in
  let blocks = Coverage.Set.cardinal !covered in
  {
    corpus;
    rounds = !rounds;
    admitted = !admitted;
    coverage_blocks = blocks;
    coverage_fraction =
      float_of_int blocks /. float_of_int (max 1 (Coverage.universe_estimate ()));
  }
