lib/syzgen/generator.mli: Corpus Coverage Program
