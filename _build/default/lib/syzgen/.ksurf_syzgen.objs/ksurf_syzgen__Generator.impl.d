lib/syzgen/generator.ml: Corpus Coverage Ksurf_util List Mutate Program
