lib/syzgen/corpus.ml: Array Coverage Format Fun Ksurf_kernel Ksurf_syscalls List Printf Program String
