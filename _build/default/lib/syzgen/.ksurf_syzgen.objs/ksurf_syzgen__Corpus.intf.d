lib/syzgen/corpus.mli: Coverage Format Ksurf_kernel Program
