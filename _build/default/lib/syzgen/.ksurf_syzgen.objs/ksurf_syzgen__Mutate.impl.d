lib/syzgen/mutate.ml: Array Ksurf_syscalls Ksurf_util List Program
