lib/syzgen/program.mli: Format Ksurf_syscalls Ksurf_util
