lib/syzgen/program.ml: Format Ksurf_syscalls Ksurf_util List Printf String
