lib/syzgen/coverage.ml: Array Int Ksurf_kernel Ksurf_syscalls Ksurf_util List Program Stdlib
