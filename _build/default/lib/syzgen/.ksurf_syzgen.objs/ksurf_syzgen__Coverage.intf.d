lib/syzgen/coverage.mli: Ksurf_syscalls Program
