lib/syzgen/mutate.mli: Ksurf_util Program
