module Prng = Ksurf_util.Prng
module Arg = Ksurf_syscalls.Arg
module Spec = Ksurf_syscalls.Spec
module Syscalls = Ksurf_syscalls.Syscalls

type op = Insert | Remove | Replace_arg | Splice | Swap

let all_ops = [ Insert; Remove; Replace_arg; Splice; Swap ]

let op_name = function
  | Insert -> "insert"
  | Remove -> "remove"
  | Replace_arg -> "replace-arg"
  | Splice -> "splice"
  | Swap -> "swap"

let max_program_len = 16

let fresh_call rng =
  let spec = Prng.pick rng Syscalls.all in
  { Program.spec; arg = Arg.generate spec.Spec.arg_model rng }

let insert rng (p : Program.t) ~id =
  if List.length p.Program.calls >= max_program_len then { p with Program.id = id }
  else begin
    let pos = Prng.int rng (List.length p.Program.calls + 1) in
    let call = fresh_call rng in
    let calls =
      List.concat
        [
          List.filteri (fun i _ -> i < pos) p.Program.calls;
          [ call ];
          List.filteri (fun i _ -> i >= pos) p.Program.calls;
        ]
    in
    { Program.id; calls }
  end

let remove rng (p : Program.t) ~id =
  let n = List.length p.Program.calls in
  if n <= 1 then { p with Program.id = id }
  else begin
    let pos = Prng.int rng n in
    { Program.id; calls = List.filteri (fun i _ -> i <> pos) p.Program.calls }
  end

let replace_arg rng (p : Program.t) ~id =
  let n = List.length p.Program.calls in
  let pos = Prng.int rng n in
  let calls =
    List.mapi
      (fun i (c : Program.call) ->
        if i = pos then
          { c with Program.arg = Arg.generate c.Program.spec.Spec.arg_model rng }
        else c)
      p.Program.calls
  in
  { Program.id; calls }

let splice rng (p : Program.t) ~partner ~id =
  let cut a = List.filteri (fun i _ -> i < a) in
  let tail a l = List.filteri (fun i _ -> i >= a) l in
  let na = List.length p.Program.calls in
  let nb = List.length partner.Program.calls in
  let ca = Prng.int rng (na + 1) and cb = Prng.int rng (nb + 1) in
  let calls = cut ca p.Program.calls @ tail cb partner.Program.calls in
  let calls =
    if calls = [] then [ fresh_call rng ]
    else List.filteri (fun i _ -> i < max_program_len) calls
  in
  { Program.id; calls }

let swap rng (p : Program.t) ~id =
  let n = List.length p.Program.calls in
  if n < 2 then { p with Program.id = id }
  else begin
    let arr = Array.of_list p.Program.calls in
    let i = Prng.int rng n and j = Prng.int rng n in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    { Program.id; calls = Array.to_list arr }
  end

let apply rng ~corpus_pick ~id op p =
  match op with
  | Insert -> insert rng p ~id
  | Remove -> remove rng p ~id
  | Replace_arg -> replace_arg rng p ~id
  | Swap -> swap rng p ~id
  | Splice -> (
      match corpus_pick () with
      | Some partner -> splice rng p ~partner ~id
      | None -> insert rng p ~id)

let mutate rng ~corpus_pick ~id p =
  let op = Prng.pick rng (Array.of_list all_ops) in
  apply rng ~corpus_pick ~id op p
