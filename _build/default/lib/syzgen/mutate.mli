(** Mutation operators over programs (the Syzkaller mutation set).

    The generator combines these to explore the coverage space:
    inserting fresh calls reaches new syscalls, argument mutation
    reaches new size/flag paths, splicing combines productive call
    sequences (new edge blocks). *)

type op = Insert | Remove | Replace_arg | Splice | Swap

val all_ops : op list
val op_name : op -> string

val apply :
  Ksurf_util.Prng.t ->
  corpus_pick:(unit -> Program.t option) ->
  id:int ->
  op ->
  Program.t ->
  Program.t
(** [apply rng ~corpus_pick ~id op p] returns a mutant with the given
    id.  [Splice] draws a partner from [corpus_pick] (falls back to
    [Insert] when the corpus is empty).  Programs never shrink below one
    call. *)

val mutate : Ksurf_util.Prng.t -> corpus_pick:(unit -> Program.t option) ->
  id:int -> Program.t -> Program.t
(** Apply a randomly chosen operator. *)
