(** The coverage-guided generation loop.

    Candidate programs are drawn either fresh at random or by mutating
    a corpus member; a candidate is admitted iff it covers at least one
    basic block the corpus does not already cover (Syzkaller's admission
    rule).  Admitted programs are minimised: calls that contribute no
    new coverage relative to the rest of the corpus are dropped, keeping
    programs small and targeted. *)

type params = {
  seed : int;
  target_programs : int;  (** stop once the corpus reaches this size *)
  max_rounds : int;  (** hard bound on candidate evaluations *)
  min_len : int;
  max_len : int;
  mutation_bias : float;
      (** probability of mutating an existing member vs generating fresh,
          once the corpus is non-empty *)
  target_calls : int option;
      (** paper-scale mode: after coverage-guided admission saturates (or
          [target_programs] is reached), keep appending mutated variants
          until the corpus holds at least this many call sites.  The
          paper's corpus had 27,408 calls against a kernel with millions
          of basic blocks; our model's block universe is far smaller, so
          strict admission alone cannot reach that size.  [None] (the
          default) keeps the pure Syzkaller discipline. *)
}

val default_params : params
(** seed 42, 64 programs, generous round budget, lengths 3–10,
    mutation bias 0.7. *)

type report = {
  corpus : Corpus.t;
  rounds : int;  (** candidates evaluated *)
  admitted : int;
  coverage_blocks : int;
  coverage_fraction : float;  (** of {!Coverage.universe_estimate} *)
}

val run : ?params:params -> unit -> report
(** Generate a corpus.  Deterministic for a given [params.seed]. *)

val minimise : against:Coverage.Set.t -> Program.t -> Program.t
(** Drop calls that add no coverage beyond [against]; never returns an
    empty program.  Exposed for testing. *)
