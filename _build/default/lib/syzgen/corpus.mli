(** A corpus: the set of generated programs used as the workload.

    Mirrors the paper's "libsyzcorpus": every program covers at least
    one kernel basic block no other program covers (guaranteed by the
    generator's admission rule). *)

type t

val of_programs : Program.t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val programs : t -> Program.t array
val program_count : t -> int
val total_calls : t -> int
(** Total call sites across all programs — the paper's "27,408 system
    calls" figure for its corpus. *)

val coverage : t -> Coverage.Set.t
val unique_syscalls : t -> string list
val category_histogram : t -> (Ksurf_kernel.Category.t * int) list
(** Call sites per category (multi-category calls counted in each). *)

val to_string : t -> string
(** Printable serialisation: programs separated by [%] lines. *)

val of_string : string -> (t, string) result

val save : t -> string -> unit
(** Write {!to_string} to a file. *)

val load : string -> (t, string) result

val filter_by_category : t -> Ksurf_kernel.Category.t -> t option
(** Programs containing at least one call of the category, with the
    other calls intact (sequence context preserved).  [None] if no
    program qualifies.  Used to build per-subsystem stress corpora. *)

val distill : t -> t
(** Greedy minimum-ish subset of programs preserving the corpus's full
    block coverage (classic corpus distillation).  Deterministic. *)

val pp_stats : Format.formatter -> t -> unit
