module Spec = Ksurf_syscalls.Spec
module Arg = Ksurf_syscalls.Arg
module Syscalls = Ksurf_syscalls.Syscalls
module Prng = Ksurf_util.Prng

type call = { spec : Spec.t; arg : Arg.t }
type t = { id : int; calls : call list }

let length t = List.length t.calls

let call_site t i =
  match List.nth_opt t.calls i with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Program.call_site: index %d" i)

let site_name t i =
  let c = call_site t i in
  Printf.sprintf "%d/%d:%s" t.id i c.spec.Spec.name

let random_call rng =
  let spec = Prng.pick rng Syscalls.all in
  { spec; arg = Arg.generate spec.Spec.arg_model rng }

let random rng ~id ~min_len ~max_len =
  if min_len < 1 || max_len < min_len then invalid_arg "Program.random: bad lengths";
  let len = min_len + Prng.int rng (max_len - min_len + 1) in
  { id; calls = List.init len (fun _ -> random_call rng) }

let to_string t =
  String.concat "\n"
    (List.map
       (fun c -> Printf.sprintf "%s(%s)" c.spec.Spec.name (Arg.to_string c.arg))
       t.calls)

let parse_line line =
  match String.index_opt line '(' with
  | None -> Error (Printf.sprintf "missing '(' in %S" line)
  | Some open_paren -> (
      let name = String.sub line 0 open_paren in
      match String.rindex_opt line ')' with
      | None -> Error (Printf.sprintf "missing ')' in %S" line)
      | Some close_paren -> (
          let args =
            String.sub line (open_paren + 1) (close_paren - open_paren - 1)
          in
          match Syscalls.by_name name with
          | None -> Error (Printf.sprintf "unknown syscall %S" name)
          | Some spec -> (
              match Arg.of_string args with
              | None -> Error (Printf.sprintf "bad arguments %S" args)
              | Some arg -> Ok { spec; arg })))

let of_string ~id s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec build acc = function
    | [] -> Ok { id; calls = List.rev acc }
    | line :: rest -> (
        match parse_line line with
        | Ok call -> build (call :: acc) rest
        | Error _ as e -> e)
  in
  match build [] lines with
  | Ok t when t.calls = [] -> Error "empty program"
  | result -> (match result with Ok _ as ok -> ok | Error e -> Error e)

let pp ppf t = Format.fprintf ppf "@[<v>prog %d:@,%s@]" t.id (to_string t)

let equal a b =
  List.length a.calls = List.length b.calls
  && List.for_all2
       (fun x y -> x.spec.Spec.name = y.spec.Spec.name && Arg.equal x.arg y.arg)
       a.calls b.calls
