lib/cluster/cluster.ml: Array Float Ksurf_env Ksurf_sim Ksurf_stats Ksurf_syzgen Ksurf_tailbench Ksurf_util Ksurf_varbench Ksurf_virt List Printf
