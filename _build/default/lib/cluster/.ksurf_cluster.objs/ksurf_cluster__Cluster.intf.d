lib/cluster/cluster.mli: Ksurf_env Ksurf_syzgen Ksurf_tailbench
