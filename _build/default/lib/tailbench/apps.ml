module Dist = Ksurf_util.Dist
module Syscalls = Ksurf_syscalls.Syscalls

type t = {
  name : string;
  doc : string;
  service_cpu : Dist.t;
  calls_per_request : int;
  mix : (float * string) list;
  io_calls : (string * int) list;
  virt_cpu_penalty : float;
}

let scale_note =
  "service times scaled ~10x below the physical tailbench suite so a \
   full tail experiment fits the simulation budget; relative magnitudes \
   across applications are preserved"

(* Per-request service parameters.  Relative ordering follows the
   suite's published request latencies: sphinx and moses are the long,
   compute-heavy requests; masstree/silo/specjbb are sub-millisecond
   in-memory services; xapian/img-dnn/shore sit between. *)

let xapian =
  {
    name = "xapian";
    doc = "search engine: index lookups via mmap'd files";
    service_cpu = Dist.lognormal ~median:2.2e6 ~sigma:0.5;
    calls_per_request = 24;
    mix =
      [
        (4.0, "pread64");
        (3.0, "read");
        (2.0, "mmap");
        (1.0, "munmap");
        (2.0, "stat");
        (1.5, "open");
        (1.5, "close");
        (2.0, "futex_wake");
        (1.0, "madvise");
      ];
    io_calls = [];
    virt_cpu_penalty = 1.08 (* large mmap'd index: EPT-walk heavy *);
  }

let masstree =
  {
    name = "masstree";
    doc = "in-memory key-value store: network + RCU-style reads";
    service_cpu = Dist.lognormal ~median:3.5e5 ~sigma:0.4;
    calls_per_request = 8;
    mix =
      [
        (3.0, "recvfrom");
        (3.0, "sendto");
        (1.5, "futex_wait");
        (1.5, "futex_wake");
        (0.5, "epoll_wait");
        (0.5, "mmap");
      ];
    io_calls = [];
    virt_cpu_penalty = 1.05;
  }

let moses =
  {
    name = "moses";
    doc = "statistical machine translation: phrase tables in mapped memory";
    service_cpu = Dist.lognormal ~median:8.8e6 ~sigma:0.55;
    calls_per_request = 30;
    mix =
      [
        (4.0, "mmap");
        (2.0, "munmap");
        (3.0, "brk");
        (2.0, "madvise");
        (7.0, "pread64");
        (4.0, "read");
        (2.0, "open");
        (2.0, "close");
        (2.0, "stat");
        (1.0, "futex_wake");
      ];
    io_calls = [];
    virt_cpu_penalty = 1.12 (* huge phrase tables: worst nested-paging case *);
  }

let sphinx =
  {
    name = "sphinx";
    doc = "speech recognition: long compute with model paging";
    service_cpu = Dist.lognormal ~median:1.55e7 ~sigma:0.55;
    calls_per_request = 38;
    mix =
      [
        (6.0, "read");
        (5.0, "pread64");
        (4.0, "mmap");
        (2.0, "munmap");
        (3.0, "brk");
        (1.5, "madvise");
        (2.0, "open");
        (2.0, "close");
        (2.0, "fstat");
        (1.0, "futex_wait");
        (1.0, "futex_wake");
      ];
    io_calls = [];
    virt_cpu_penalty = 1.10 (* big acoustic models *);
  }

let img_dnn =
  {
    name = "img-dnn";
    doc = "handwriting recognition: dense compute, light kernel use";
    service_cpu = Dist.lognormal ~median:1.6e6 ~sigma:0.45;
    calls_per_request = 10;
    mix =
      [
        (3.0, "read");
        (2.0, "write");
        (2.0, "futex_wait");
        (2.0, "futex_wake");
        (1.0, "mmap");
      ];
    io_calls = [];
    virt_cpu_penalty = 1.05;
  }

let specjbb =
  {
    name = "specjbb";
    doc = "Java middleware: GC-driven memory traffic and futex churn";
    service_cpu = Dist.lognormal ~median:7e5 ~sigma:0.5;
    calls_per_request = 14;
    mix =
      [
        (4.0, "futex_wait");
        (4.0, "futex_wake");
        (2.0, "mmap");
        (2.0, "madvise");
        (1.0, "write");
      ];
    io_calls = [];
    virt_cpu_penalty = 1.06;
  }

let silo =
  {
    name = "silo";
    doc = "in-memory OLTP: cache/TLB sensitive, minimal kernel use";
    service_cpu = Dist.lognormal ~median:2.4e5 ~sigma:0.35;
    calls_per_request = 3;
    mix = [ (1.5, "futex_wake"); (1.0, "recvfrom"); (1.0, "sendto") ];
    io_calls = [];
    virt_cpu_penalty = 1.14;
  }

let shore =
  {
    name = "shore";
    doc = "disk-based OLTP: log writes and syncs dominate";
    service_cpu = Dist.lognormal ~median:1.0e6 ~sigma:0.5;
    calls_per_request = 12;
    mix =
      [
        (3.0, "pread64");
        (3.0, "pwrite64");
        (2.0, "lseek");
        (2.0, "futex_wake");
        (1.0, "fstat");
      ];
    io_calls = [ ("pwrite64", 8192); ("fsync", 16384) ]
    (* commit = data flush + journalled metadata: fsync, not fdatasync *);
    virt_cpu_penalty = 1.06;
  }

let all = [ xapian; masstree; moses; sphinx; img_dnn; specjbb; silo; shore ]

let by_name name = List.find_opt (fun a -> a.name = name) all
let names = List.map (fun a -> a.name) all

(* Uncontended per-call cost estimate: entry + a few hundred ns of work.
   I/O calls estimated at one device round trip plus transfer. *)
let per_call_estimate = 2_300.0

let io_estimate (name, size) =
  ignore name;
  90_000.0 +. (float_of_int size *. 0.5)

let mean_service_estimate t =
  Dist.mean_estimate t.service_cpu
  +. (float_of_int t.calls_per_request *. per_call_estimate)
  +. List.fold_left (fun acc io -> acc +. io_estimate io) 0.0 t.io_calls

let validate t =
  let missing =
    List.filter_map
      (fun (_, name) ->
        match Syscalls.by_name name with Some _ -> None | None -> Some name)
      t.mix
    @ List.filter_map
        (fun (name, _) ->
          match Syscalls.by_name name with Some _ -> None | None -> Some name)
        t.io_calls
  in
  match missing with
  | [] -> Ok ()
  | l -> Error (t.name ^ ": unknown syscalls " ^ String.concat ", " l)
