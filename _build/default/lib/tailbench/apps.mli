(** The tailbench application models (Table 4 of the paper).

    Each application is reduced to the features that matter for kernel-
    interference experiments: user-space CPU per request, the number and
    mix of kernel calls a request makes, per-request disk I/O, and
    sensitivity of its user-space code to virtualisation (cache/TLB
    pollution from VM exits — the paper's explanation for silo).

    Service times are scaled down ~10x from the real suite so that a
    full tail-latency experiment fits the simulation budget; relative
    magnitudes between applications are preserved (DESIGN.md
    substitution table). *)

type t = {
  name : string;
  doc : string;
  service_cpu : Ksurf_util.Dist.t;  (** user CPU per request (ns) *)
  calls_per_request : int;  (** kernel calls per request *)
  mix : (float * string) list;  (** weighted syscall names (from the table) *)
  io_calls : (string * int) list;
      (** calls issued once per request with a fixed size argument
          (shore's log writes + syncs) *)
  virt_cpu_penalty : float;
      (** user-CPU multiplier when running inside a VM (>= 1) *)
}

val all : t list
(** xapian, masstree, moses, sphinx, img-dnn, specjbb, silo, shore. *)

val by_name : string -> t option
val names : string list

val scale_note : string
(** Human-readable statement of the service-time scaling. *)

val mean_service_estimate : t -> float
(** Estimated native mean service time (ns): user CPU + kernel calls at
    uncontended cost + I/O.  Used to set client rates for ~75%% target
    utilisation, as the paper configures its clients. *)

val validate : t -> (unit, string) result
(** Check that every syscall the mix references exists in the table. *)
