(** Request execution: what one tailbench request does to the system.

    A request is received over the loopback socket, burns the app's user
    CPU (split around its kernel calls), issues the app's kernel-call
    mix against the environment, performs its per-request I/O calls, and
    sends the reply.  Under KVM, user CPU is dilated by the app's
    [virt_cpu_penalty] (cache/TLB pollution from exits). *)

type compiled
(** An app's mix resolved against the syscall table. *)

val compile : Apps.t -> compiled
(** Raises [Invalid_argument] if the mix references unknown calls. *)

val app : compiled -> Apps.t

val handle :
  compiled ->
  env:Ksurf_env.Env.t ->
  rank:int ->
  rng:Ksurf_util.Prng.t ->
  ?hw_dilation:float ->
  unit ->
  unit
(** Execute one request on [rank].  Must run inside a simulation
    process.  Virtual time advances by the full service time including
    any kernel queueing.  [hw_dilation] (default 1.0) multiplies the
    user-CPU portion: residual hardware interference (LLC, memory
    bandwidth) from co-located workloads, present in {e every}
    environment kind because it is below the kernel. *)

val estimate_native_service : compiled -> float
(** {!Apps.mean_service_estimate} of the compiled app. *)
