lib/tailbench/service.mli: Apps Ksurf_env Ksurf_util
