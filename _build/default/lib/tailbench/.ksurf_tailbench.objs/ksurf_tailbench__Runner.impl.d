lib/tailbench/runner.ml: Apps Array Float Ksurf_env Ksurf_sim Ksurf_stats Ksurf_syzgen Ksurf_util Ksurf_varbench List Printf Service
