lib/tailbench/apps.mli: Ksurf_util
