lib/tailbench/runner.mli: Apps Ksurf_env Ksurf_syzgen
