lib/tailbench/apps.ml: Ksurf_syscalls Ksurf_util List String
