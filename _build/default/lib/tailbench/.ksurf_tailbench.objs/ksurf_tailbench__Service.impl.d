lib/tailbench/service.ml: Apps Array Ksurf_env Ksurf_sim Ksurf_syscalls Ksurf_util List Printf
