(** One modeled system call. *)

type t = {
  name : string;
  number : int;  (** x86_64 syscall number (for realism in dumps) *)
  categories : Ksurf_kernel.Category.t list;  (** §5 categories, >= 1 *)
  doc : string;  (** man-page-style one-liner *)
  arg_model : Arg.model;
  ops : Arg.t -> Ksurf_kernel.Ops.op list;
      (** the kernel-op program the call executes for given arguments *)
}

val make :
  name:string ->
  number:int ->
  categories:Ksurf_kernel.Category.t list ->
  doc:string ->
  ?arg_model:Arg.model ->
  (Arg.t -> Ksurf_kernel.Ops.op list) ->
  t
(** [arg_model] defaults to {!Arg.no_args}.  Raises [Invalid_argument]
    on an empty category list or empty name. *)

val in_category : t -> Ksurf_kernel.Category.t -> bool
val pp : Format.formatter -> t -> unit
