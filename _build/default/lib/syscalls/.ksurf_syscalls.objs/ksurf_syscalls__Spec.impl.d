lib/syscalls/spec.ml: Arg Format Ksurf_kernel List String
