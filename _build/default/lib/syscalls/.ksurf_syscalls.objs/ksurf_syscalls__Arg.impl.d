lib/syscalls/arg.ml: Array Format Ksurf_util Printf String
