lib/syscalls/syscalls.mli: Ksurf_kernel Spec
