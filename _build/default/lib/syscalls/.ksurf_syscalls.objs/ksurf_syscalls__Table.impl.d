lib/syscalls/table.ml: Arg Ksurf_kernel Ksurf_util List Spec
