lib/syscalls/spec.mli: Arg Format Ksurf_kernel
