lib/syscalls/arg.mli: Format Ksurf_util
