lib/syscalls/table.mli: Spec
