lib/syscalls/syscalls.ml: Array Hashtbl List Spec String Table
