(** The modeled system-call table (data module).

    Use {!Syscalls} for lookup; this module only exposes the raw list. *)

val specs : Spec.t list
(** Every modeled call.  Names are unique; see {!Syscalls.by_name}. *)
