(** System-call argument model.

    Real Syzkaller explores the full argument space of each call; the
    behaviourally relevant dimensions for latency are the transfer
    {e size}, the {e object} the call operates on (file, pipe, futex —
    drives lock striping), and a {e flags} word that selects different
    kernel paths (e.g. [O_SYNC] vs buffered).  A {!model} declares which
    values a call's generator may draw. *)

type t = { size : int; obj : int; flags : int }

type model = {
  sizes : int array;  (** candidate transfer sizes (bytes); non-empty *)
  max_obj : int;  (** objects are drawn from \[0, max_obj) *)
  max_flags : int;  (** flags are drawn from \[0, max_flags) *)
}

val default : t
(** size 0, obj 0, flags 0. *)

val no_args : model
(** Calls whose latency is argument-independent. *)

val sized : int array -> model
(** Transfer-size-sensitive calls (reads, writes, mmaps). *)

val objected : ?max_flags:int -> int -> model
(** Object-identity-sensitive calls (locks stripe by object). *)

val io : model
(** Common I/O model: sizes {64, 4096, 65536, 1 MiB}, 8 objects, 4 flag
    values. *)

val generate : model -> Ksurf_util.Prng.t -> t

val size_bucket : int -> int
(** Log2-ish bucket of a size — the granularity at which the coverage
    map distinguishes argument values. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
(** Parses the output of {!to_string}; [None] on malformed input. *)

val equal : t -> t -> bool
