type t = {
  name : string;
  number : int;
  categories : Ksurf_kernel.Category.t list;
  doc : string;
  arg_model : Arg.model;
  ops : Arg.t -> Ksurf_kernel.Ops.op list;
}

let make ~name ~number ~categories ~doc ?(arg_model = Arg.no_args) ops =
  if name = "" then invalid_arg "Spec.make: empty name";
  if categories = [] then invalid_arg "Spec.make: no categories";
  { name; number; categories; doc; arg_model; ops }

let in_category t cat =
  List.exists (fun c -> Ksurf_kernel.Category.equal c cat) t.categories

let pp ppf t =
  Format.fprintf ppf "%s(%d) [%s] — %s" t.name t.number
    (String.concat "," (List.map Ksurf_kernel.Category.to_string t.categories))
    t.doc
