type t = { size : int; obj : int; flags : int }

type model = { sizes : int array; max_obj : int; max_flags : int }

let default = { size = 0; obj = 0; flags = 0 }
let no_args = { sizes = [| 0 |]; max_obj = 1; max_flags = 1 }
let sized sizes =
  if Array.length sizes = 0 then invalid_arg "Arg.sized: empty";
  { sizes; max_obj = 8; max_flags = 2 }

let objected ?(max_flags = 2) max_obj =
  if max_obj < 1 then invalid_arg "Arg.objected: max_obj must be >= 1";
  { sizes = [| 0 |]; max_obj; max_flags }

let io = { sizes = [| 64; 4096; 65536; 1 lsl 20 |]; max_obj = 8; max_flags = 4 }

let generate model rng =
  {
    size = Ksurf_util.Prng.pick rng model.sizes;
    obj = Ksurf_util.Prng.int rng model.max_obj;
    flags = Ksurf_util.Prng.int rng model.max_flags;
  }

let size_bucket size =
  if size <= 0 then 0
  else begin
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    (* Group adjacent powers of two: 1-127 -> 1, 128-2047 -> 2, ... *)
    1 + (log2 0 size / 4)
  end

let pp ppf t = Format.fprintf ppf "size=%d obj=%d flags=%d" t.size t.obj t.flags
let to_string t = Printf.sprintf "%d:%d:%d" t.size t.obj t.flags

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
      | Some size, Some obj, Some flags -> Some { size; obj; flags }
      | _ -> None)
  | _ -> None

let equal a b = a.size = b.size && a.obj = b.obj && a.flags = b.flags
