(** Lookup and iteration over the modeled system-call table. *)

val all : Spec.t array
(** All modeled calls, sorted by name.  Do not mutate. *)

val count : int
val by_name : string -> Spec.t option
val by_number : int -> Spec.t option

val in_category : Ksurf_kernel.Category.t -> Spec.t list
(** Calls belonging to a category (multi-category calls appear in each
    of their categories, as in the paper's Figure 2 grouping). *)

val names : unit -> string list
