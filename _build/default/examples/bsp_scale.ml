(* BSP at scale: why small tail differences matter at 64 nodes.

   A bulk-synchronous workload advances at the pace of its slowest
   node.  This example runs one tailbench app on a simulated cluster
   node, synthesises the 64-node barrier-synchronised runtime, and
   shows the straggler amplification that makes most applications
   prefer the virtualised deployment under contention (Figure 4).

     dune exec examples/bsp_scale.exe *)

open Ksurf

let () =
  let app = Option.get (Apps.by_name "xapian") in
  let corpus = Experiments.default_corpus Experiments.Quick in
  let config =
    {
      Cluster.default_config with
      Cluster.nodes_simulated = 1;
      sim_iterations_per_node = 16;
      requests_per_iteration = 15;
    }
  in
  Format.printf "app: %s on %d nodes, %d barrier-synced iterations@.@."
    app.Apps.name config.Cluster.nodes_total config.Cluster.iterations;
  Format.printf "%-8s %-11s %14s %14s %12s %10s@." "env" "tenancy"
    "node mean iter" "node p99 iter" "straggler x" "runtime";
  List.iter
    (fun (name, kind) ->
      List.iter
        (fun contended ->
          let r =
            Cluster.run ~app ~kind ~contended ~config ~noise_corpus:corpus ()
          in
          Format.printf "%-8s %-11s %14s %14s %12.2f %10s@." name
            (if contended then "contended" else "isolated")
            (Report.duration_ns r.Cluster.node_mean_iter_ns)
            (Report.duration_ns r.Cluster.node_p99_iter_ns)
            r.Cluster.straggler_factor
            (Report.duration_ns r.Cluster.runtime_ns))
        [ false; true ])
    [ ("kvm", Env.Kvm Virt_config.default); ("docker", Env.Docker) ];
  Format.printf
    "@.The straggler column is mean(slowest of 64)/mean(single node): \
     the barrier pays for every node's worst moments.@."
