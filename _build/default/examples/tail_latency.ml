(* Tail latency: one cell of the paper's Figure 3 story.

   Run the sphinx speech-recognition service next to a kernel-hammering
   noise workload, once under Docker (shared kernel) and once under KVM
   (private guest kernel), and compare the 99th-percentile request
   latency.

     dune exec examples/tail_latency.exe *)

open Ksurf

let () =
  let app = Option.get (Apps.by_name "sphinx") in
  Format.printf "app: %s — %s@.@." app.Apps.name app.Apps.doc;
  let corpus = Experiments.default_corpus Experiments.Full in
  let config = { Runner.default_config with Runner.requests = 2500 } in
  let cell kind contended =
    let r =
      Runner.run_single_node ~app ~kind ~contended ~config ~noise_corpus:corpus ()
    in
    (r.Runner.p99, r.Runner.mean)
  in
  let show name (p99, mean) =
    Format.printf "  %-22s p99 %-10s mean %s@." name (Report.duration_ns p99)
      (Report.duration_ns mean)
  in
  let kvm = Env.Kvm Virt_config.default in
  Format.printf "isolated (the whole machine to itself):@.";
  let kvm_iso = cell kvm false in
  let dkr_iso = cell Env.Docker false in
  show "kvm" kvm_iso;
  show "docker" dkr_iso;
  Format.printf
    "@.with a 48-core system-call noise workload in the other units:@.";
  let kvm_cont = cell kvm true in
  let dkr_cont = cell Env.Docker true in
  show "kvm" kvm_cont;
  show "docker" dkr_cont;
  let pct (after, _) (before, _) = 100.0 *. (after -. before) /. before in
  Format.printf
    "@.Docker p99 degraded %.0f%%, KVM %.0f%% — the noise shares Docker's \
     kernel but not KVM's guest kernel.@."
    (pct dkr_cont dkr_iso) (pct kvm_cont kvm_iso)
