examples/bsp_scale.mli:
