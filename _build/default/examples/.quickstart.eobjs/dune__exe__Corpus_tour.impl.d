examples/corpus_tour.ml: Array Corpus Filename Format Generator Ksurf Program Sys
