examples/quickstart.mli:
