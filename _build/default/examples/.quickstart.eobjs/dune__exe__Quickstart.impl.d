examples/quickstart.ml: Arg Array Engine Format Hashtbl Instance Kernel Kernel_config Ksurf List Option Printf Prng Quantile Report Spec Syscalls
