examples/lock_attribution.ml: Experiments Export Filename Format Ksurf List Report String
