examples/tail_latency.ml: Apps Env Experiments Format Ksurf Option Report Runner Virt_config
