examples/lock_attribution.mli:
