examples/surface_sweep.mli:
