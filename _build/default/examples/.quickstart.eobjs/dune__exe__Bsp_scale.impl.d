examples/bsp_scale.ml: Apps Cluster Env Experiments Format Ksurf List Option Report Virt_config
