examples/surface_sweep.ml: Array Category Corpus Engine Env Experiments Format Harness Ksurf List Partition Quantile Report Study Virt_config
