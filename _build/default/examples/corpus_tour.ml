(* Corpus tour: generate a coverage-guided system-call corpus (the
   Syzkaller-substitute workload), inspect it, and round-trip it through
   the textual serialisation.

     dune exec examples/corpus_tour.exe *)

open Ksurf

let () =
  let report = Generator.run ~params:Generator.default_params () in
  let corpus = report.Generator.corpus in
  Format.printf "generation: %d candidate programs evaluated, %d admitted@."
    report.Generator.rounds report.Generator.admitted;
  Format.printf "coverage: %d blocks = %.1f%% of the reachable block universe@.@."
    report.Generator.coverage_blocks
    (100.0 *. report.Generator.coverage_fraction);
  Format.printf "%a@.@." Corpus.pp_stats corpus;

  (* Every program covers blocks no other program covers — that's the
     generator's admission rule.  Look at one. *)
  let programs = Corpus.programs corpus in
  let prog = programs.(Array.length programs / 2) in
  Format.printf "a corpus program (id %d, %d calls):@.%s@.@." prog.Program.id
    (Program.length prog) (Program.to_string prog);

  (* Round-trip through the on-disk format. *)
  let path = Filename.temp_file "ksurf-corpus" ".txt" in
  Corpus.save corpus path;
  (match Corpus.load path with
  | Ok corpus' ->
      Format.printf "round-trip through %s: %d programs, %d calls — %s@." path
        (Corpus.program_count corpus')
        (Corpus.total_calls corpus')
        (if Corpus.total_calls corpus' = Corpus.total_calls corpus then "intact"
         else "MISMATCH")
  | Error e -> Format.printf "reload failed: %s@." e);
  Sys.remove path
