(* Surface sweep: the paper's core idea in one page.

   Run the same barrier-synchronised system-call workload over kernel
   surface areas shrinking from one 64-core kernel to sixty-four 1-core
   kernels, and watch the tail latencies of the contended subsystems
   collapse while the workload itself never changes.

     dune exec examples/surface_sweep.exe *)

open Ksurf

let () =
  let corpus = Experiments.default_corpus Experiments.Quick in
  Format.printf
    "workload: %d call sites, identical in every configuration@.@."
    (Corpus.total_calls corpus);
  let params = { Harness.iterations = 10; warmup_iterations = 1 } in
  Format.printf "%-22s %14s %14s %14s@." "configuration" "fs-mgmt p99"
    "memory p99" "process p99";
  let categories = Category.[ Fs_mgmt; Memory; Process ] in
  List.iter
    (fun vms ->
      let engine = Engine.create ~seed:42 () in
      let env =
        Env.deploy ~engine (Env.Kvm Virt_config.default) (Partition.table1 vms)
      in
      let stats = Study.site_stats (Harness.run ~env ~corpus ~params ()) in
      let by_category = Study.p99_by_category stats in
      let p99_of cat =
        match List.assoc_opt cat by_category with
        | Some values when Array.length values > 0 ->
            (* The worst site's p99 — the extreme outliers Figure 2 is
               about. *)
            Report.duration_ns (Quantile.max_value values)
        | _ -> "-"
      in
      let label =
        Format.asprintf "%a" Partition.pp (Partition.table1 vms)
      in
      Format.printf "%-22s %14s %14s %14s@." label
        (p99_of (List.nth categories 0))
        (p99_of (List.nth categories 1))
        (p99_of (List.nth categories 2)))
    Partition.table1_rows;
  Format.printf
    "@.Same programs, same parallelism — only the kernel surface area \
     behind each core changed.@."
