(* Lock attribution: find out *which* kernel lock is hurting you, then
   export everything for plotting.

   The paper's §3.3 lists the latent variability sources in a shared
   kernel; this example runs the E10 diagnostic that measures them
   directly, prints the top offenders, and writes the Table-2 data next
   to it as CSV for a plotting tool.

     dune exec examples/lock_attribution.exe *)

open Ksurf
module E = Experiments

let () =
  let corpus = E.default_corpus E.Quick in
  let locks = E.Locks.run ~scale:E.Quick ~corpus () in
  Format.printf "%a@." E.Locks.pp locks;

  (* The headline comparison: the most contended lock natively, and the
     same lock when each rank has its own kernel. *)
  let worst =
    List.find (fun r -> r.E.Locks.env = "native") locks.E.Locks.rows
  in
  let same_in_vms =
    List.find_opt
      (fun r -> r.E.Locks.env = "kvm-64" && r.E.Locks.lock = worst.E.Locks.lock)
      locks.E.Locks.rows
  in
  (match same_in_vms with
  | Some vm when vm.E.Locks.mean_wait_ns >= 1.0 ->
      Format.printf
        "@.Worst native lock: %s (mean wait %s).  In 64 one-core VMs the \
         same lock waits %s — %.0fx less.@." worst.E.Locks.lock
        (Report.duration_ns worst.E.Locks.mean_wait_ns)
        (Report.duration_ns vm.E.Locks.mean_wait_ns)
        (worst.E.Locks.mean_wait_ns /. vm.E.Locks.mean_wait_ns)
  | Some _ ->
      Format.printf
        "@.Worst native lock: %s (mean wait %s).  In 64 one-core VMs it is \
         simply uncontended.@." worst.E.Locks.lock
        (Report.duration_ns worst.E.Locks.mean_wait_ns)
  | None -> ());

  (* Export the Table-2 comparison for external plotting. *)
  let table2 = E.Table2.run ~scale:E.Quick ~corpus () in
  let dir = Filename.get_temp_dir_name () in
  let files = Export.table2 ~dir table2 in
  Format.printf "@.CSV written: %s@." (String.concat ", " files)
