(* Quickstart: boot a simulated kernel, issue some system calls from a
   few concurrent processes, and look at what contention does to them.

     dune exec examples/quickstart.exe *)

open Ksurf

let () =
  (* A deterministic simulation engine: all randomness flows from the
     seed, so this program prints the same thing every run. *)
  let engine = Engine.create ~seed:7 () in

  (* Boot a kernel instance managing 8 cores and 4 GB — its "surface
     area".  Background housekeeping daemons start automatically. *)
  let kernel = Kernel.boot ~engine ~id:0 ~cores:8 ~mem_mb:4096 () in
  Instance.set_tenants kernel 8;

  (* Each simulated process issues the same little sequence of calls and
     records the latency of each.  Contention on shared kernel state
     (dentry cache, zone lock, journal) emerges from concurrency. *)
  let sequence = [ "open"; "read"; "munmap"; "chmod"; "close" ] in
  let latencies = Hashtbl.create 16 in
  for core = 0 to 7 do
    Engine.spawn engine (fun () ->
        let rng = Prng.split (Engine.rng engine) (Printf.sprintf "p%d" core) in
        for _ = 1 to 200 do
          List.iter
            (fun name ->
              let spec = Option.get (Syscalls.by_name name) in
              let arg = Arg.generate spec.Spec.arg_model rng in
              let ctx =
                { Instance.core; tenant = core; key = arg.Arg.obj; cgroup = None }
              in
              let t0 = Engine.now engine in
              Instance.burn kernel
                (Instance.config kernel).Kernel_config.syscall_entry_cost;
              Instance.exec_program kernel ctx (spec.Spec.ops arg);
              let dt = Engine.now engine -. t0 in
              let samples =
                match Hashtbl.find_opt latencies name with
                | Some s -> s
                | None ->
                    let s = ref [] in
                    Hashtbl.add latencies name s;
                    s
              in
              samples := dt :: !samples)
            sequence
        done)
  done;
  Engine.run engine ~until:10e9;

  Format.printf "8 processes x 200 iterations on an 8-core kernel instance:@.@.";
  Format.printf "%-8s %10s %10s %10s@." "syscall" "median" "p99" "max";
  List.iter
    (fun name ->
      let samples = Array.of_list !(Hashtbl.find latencies name) in
      let s = Quantile.summarize samples in
      Format.printf "%-8s %10s %10s %10s@." name
        (Report.duration_ns s.Quantile.median)
        (Report.duration_ns s.Quantile.p99)
        (Report.duration_ns s.Quantile.max))
    sequence;
  Format.printf
    "@.Note the gap between median and max: that's shared-kernel \
     interference, the paper's subject.@."
