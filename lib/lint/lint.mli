(** Repo-specific source lint (klint), built on the compiler's own
    parser ([compiler-libs]).

    [Mutable_state] flags module-level [ref]/[Hashtbl.create]/
    [Buffer.create] bindings — state implicitly shared across worker
    domains — unless the binding routes through [Domain.DLS], creates
    a mutex alongside the state, or carries a [(* klint: allow *)]
    annotation on the flagged line or the line above.  Creations
    inside a [fun] body do not count: they are fresh per call.

    [Raw_open_out] flags any direct [open_out]/[open_out_bin]/
    [open_out_gen] use ([raw-open-out]), plus [Unix.openfile]
    ([raw-openfile]) and [Sys.rename] ([raw-rename]) on durable
    paths; such writes must go through [Ksurf_util.Fileio] so they
    are crash-consistent and visible to the kdur I/O hook. *)

type check = Mutable_state | Raw_open_out

type finding = { file : string; line : int; code : string; message : string }

val pp_finding : Format.formatter -> finding -> unit

val lint_source : path:string -> checks:check list -> string -> finding list
(** Lint source text directly (used by the fixture tests).  An
    unparseable input yields a single [parse-error] finding. *)

val lint_file : checks:check list -> string -> finding list

val default_checks : path:string -> check list
(** The repo policy: [Mutable_state] for files under [lib/sim] and
    [lib/par]; [Raw_open_out] for everything except [fileio.ml]
    itself. *)
