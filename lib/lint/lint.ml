(* Source lint over the repo's own OCaml, using the compiler's parser.

   Two checks, both born from real hazards in this codebase:

   - [Mutable_state]: module-level [ref] / [Hashtbl.create] /
     [Buffer.create] in the domain-parallel layers (lib/sim, lib/par)
     and in lib/adapt, whose driftbench cells run inside kpar pool
     domains.
     A top-level table shared by worker domains is a data race the
     type system will never flag; state must be per-domain
     (Domain.DLS), mutex-guarded in the same binding, or explicitly
     annotated [(* klint: allow *)] with a reason.

   - [Raw_open_out]: any direct [open_out] family call, plus
     [Unix.openfile] and [Sys.rename].  Durable writes must go through
     [Fileio.write_atomic] so an interrupted run leaves the previous
     complete file (never a truncated one), the rename is fsynced into
     its directory, and the kdur I/O hook sees — and can fault — every
     operation.

   The parser drops comments, so allow-annotations are recognised
   textually: a finding is suppressed when its line or the line above
   contains "klint: allow". *)

type check = Mutable_state | Raw_open_out

type finding = { file : string; line : int; code : string; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.code f.message

let rec flatten_longident = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_longident l @ [ s ]
  | Longident.Lapply (_, l) -> flatten_longident l

let ident_string l = String.concat "." (flatten_longident l)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Line numbers (1-based) whose findings are suppressed: any line that
   contains the marker allows itself and the line after it. *)
let allowed_lines source =
  let tbl = Hashtbl.create 8 in
  let contains_marker line =
    let marker = "klint: allow" in
    let n = String.length line and m = String.length marker in
    let rec at i = i + m <= n && (String.sub line i m = marker || at (i + 1)) in
    at 0
  in
  List.iteri
    (fun i line ->
      if contains_marker line then begin
        Hashtbl.replace tbl (i + 1) ();
        Hashtbl.replace tbl (i + 2) ()
      end)
    (String.split_on_char '\n' source);
  tbl

(* --- mutable-state check ----------------------------------------------- *)

let creator_names = [ "ref"; "Hashtbl.create"; "Buffer.create" ]
let guard_names = [ "Mutex.create"; "Domain.DLS" ]

let is_guard name =
  List.exists
    (fun g ->
      name = g
      || String.length name > String.length g
         && String.sub name 0 (String.length g + 1) = g ^ ".")
    guard_names

(* Mutable-state creations evaluated when the binding is — anything
   inside a [fun]/[function] body is fresh per call and does not
   count (that is exactly how Domain.DLS.new_key thunks stay legal). *)
let creations expr =
  let acc = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> ()
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _) ->
              let name = ident_string txt in
              if List.mem name creator_names then
                acc := (e.Parsetree.pexp_loc, name) :: !acc;
              Ast_iterator.default_iterator.expr self e
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter expr;
  List.rev !acc

let mentions_guard expr =
  let found = ref false in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } ->
              if is_guard (ident_string txt) then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter expr;
  !found

let rec mutable_state_of_structure ~file ~allowed (str : Parsetree.structure) =
  List.concat_map (mutable_state_of_item ~file ~allowed) str

and mutable_state_of_item ~file ~allowed (item : Parsetree.structure_item) =
  match item.Parsetree.pstr_desc with
  | Parsetree.Pstr_value (_, vbs) ->
      List.concat_map
        (fun (vb : Parsetree.value_binding) ->
          if mentions_guard vb.Parsetree.pvb_expr then []
          else
            List.filter_map
              (fun (loc, what) ->
                let line = line_of loc in
                if Hashtbl.mem allowed line then None
                else
                  Some
                    {
                      file;
                      line;
                      code = "toplevel-mutable-state";
                      message =
                        Printf.sprintf
                          "module-level mutable state (%s) shared across \
                           domains; use Domain.DLS, guard it with a mutex in \
                           the same binding, or annotate (* klint: allow *)"
                          what;
                    })
              (creations vb.Parsetree.pvb_expr))
        vbs
  | Parsetree.Pstr_module mb ->
      mutable_state_of_module ~file ~allowed mb.Parsetree.pmb_expr
  | Parsetree.Pstr_recmodule mbs ->
      List.concat_map
        (fun (mb : Parsetree.module_binding) ->
          mutable_state_of_module ~file ~allowed mb.Parsetree.pmb_expr)
        mbs
  | _ -> []

and mutable_state_of_module ~file ~allowed (me : Parsetree.module_expr) =
  match me.Parsetree.pmod_desc with
  | Parsetree.Pmod_structure str -> mutable_state_of_structure ~file ~allowed str
  | Parsetree.Pmod_constraint (me, _) -> mutable_state_of_module ~file ~allowed me
  | _ -> []

(* --- raw durable-I/O check --------------------------------------------- *)

(* Writer primitives that bypass Fileio's crash-consistency protocol.
   open_out leaves truncated files; Unix.openfile dodges the I/O hook
   (so torture cells cannot see or fault the op); Sys.rename without
   the temp + fsync + dir-fsync dance is neither atomic-with-content
   nor durable. *)
let raw_io_names =
  [
    ("open_out", "raw-open-out");
    ("open_out_bin", "raw-open-out");
    ("open_out_gen", "raw-open-out");
    ("Unix.openfile", "raw-openfile");
    ("Sys.rename", "raw-rename");
  ]

let raw_io_message name =
  match name with
  | "Sys.rename" ->
      "direct Sys.rename bypasses Fileio's temp + fsync + dir-fsync \
       protocol; the rename is invisible to the I/O hook and not durable"
  | "Unix.openfile" ->
      "direct Unix.openfile bypasses Fileio and the I/O hook; durable \
       writes must go through Fileio.write_atomic"
  | _ ->
      Printf.sprintf
        "direct %s bypasses Fileio.write_atomic; a crash mid-write leaves a \
         truncated result file"
        name

let raw_open_out ~file ~allowed (str : Parsetree.structure) =
  let acc = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ }
            when List.mem_assoc (ident_string txt) raw_io_names ->
              let name = ident_string txt in
              let line = line_of e.Parsetree.pexp_loc in
              if not (Hashtbl.mem allowed line) then
                acc :=
                  {
                    file;
                    line;
                    code = List.assoc name raw_io_names;
                    message = raw_io_message name;
                  }
                  :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter str;
  List.rev !acc

(* --- entry points ------------------------------------------------------ *)

let lint_source ~path ~checks source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception _ ->
      [
        {
          file = path;
          line = 1;
          code = "parse-error";
          message = "file does not parse as an OCaml implementation";
        };
      ]
  | str ->
      let allowed = allowed_lines source in
      List.concat_map
        (function
          | Mutable_state -> mutable_state_of_structure ~file:path ~allowed str
          | Raw_open_out -> raw_open_out ~file:path ~allowed str)
        checks
      |> List.sort (fun a b -> Int.compare a.line b.line)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ~checks path = lint_source ~path ~checks (read_file path)

(* Which checks a repo file gets: mutable-state only in the
   domain-parallel layers; open_out everywhere except the one module
   whose job is to wrap it. *)
let default_checks ~path =
  let has_sub sub =
    let n = String.length path and m = String.length sub in
    let rec at i = i + m <= n && (String.sub path i m = sub || at (i + 1)) in
    at 0
  in
  let checks =
    if has_sub "lib/sim" || has_sub "lib/par" || has_sub "lib/adapt" then
      [ Mutable_state ]
    else []
  in
  if has_sub "fileio.ml" then checks else checks @ [ Raw_open_out ]
