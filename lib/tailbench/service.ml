module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Dist = Ksurf_util.Dist
module Prng = Ksurf_util.Prng
module Spec = Ksurf_syscalls.Spec
module Arg = Ksurf_syscalls.Arg
module Syscalls = Ksurf_syscalls.Syscalls

type weighted_call = { cumulative : float; spec : Spec.t }

type compiled = {
  app : Apps.t;
  calls : weighted_call array;  (** mix with cumulative weights *)
  io : (Spec.t * Arg.t) list;
  recv : Spec.t;
  send : Spec.t;
}

let resolve name =
  match Syscalls.by_name name with
  | Some spec -> spec
  | None -> invalid_arg (Printf.sprintf "Service.compile: unknown syscall %s" name)

let compile (app : Apps.t) =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 app.Apps.mix in
  if total <= 0.0 then invalid_arg "Service.compile: empty mix";
  let acc = ref 0.0 in
  let calls =
    List.map
      (fun (w, name) ->
        acc := !acc +. (w /. total);
        { cumulative = !acc; spec = resolve name })
      app.Apps.mix
    |> Array.of_list
  in
  calls.(Array.length calls - 1) <- { (calls.(Array.length calls - 1)) with cumulative = 1.0 };
  let io =
    List.map
      (fun (name, size) ->
        (resolve name, { Arg.size; obj = 0; flags = 0 }))
      app.Apps.io_calls
  in
  { app; calls; io; recv = resolve "recvfrom"; send = resolve "sendto" }

let app t = t.app

let pick_call t rng =
  let u = Prng.uniform rng in
  let rec find i =
    if i >= Array.length t.calls - 1 || u < t.calls.(i).cumulative then
      t.calls.(i).spec
    else find (i + 1)
  in
  find 0

let softnet_delay = Dist.lognormal ~median:25_000.0 ~sigma:0.9

let handle t ~env ~rank ~rng ?(hw_dilation = 1.0) () =
  let app = t.app in
  let penalty =
    match Env.kind env with
    | Env.Kvm _ -> app.Apps.virt_cpu_penalty
    | Env.Native | Env.Multikernel | Env.Docker -> 1.0
  in
  let cpu = Dist.sample app.Apps.service_cpu rng *. penalty *. hw_dilation in
  let issue spec size_override =
    let arg = Arg.generate spec.Spec.arg_model rng in
    let arg = match size_override with None -> arg | Some size -> { arg with Arg.size } in
    (* Give each worker its own object neighbourhood so app file/futex
       objects are distinct from the noise generators'. *)
    let arg = { arg with Arg.obj = (arg.Arg.obj + (rank * 3)) mod 64 } in
    ignore (Env.exec_syscall env ~rank spec arg)
  in
  (* Loopback delivery rides the shared kernel's softirq processing:
     on a busy kernel the reply to the socket wait is delayed behind
     whatever net_rx work is queued.  Bounded inside a quiet guest. *)
  let softirq_delay =
    Env.busy_of_rank env rank *. Dist.sample softnet_delay rng
  in
  if softirq_delay > 0.0 then Engine.delay softirq_delay;
  issue t.recv (Some 512);
  (* First half of the compute, then the kernel-call mix interleaved
     with the rest: requests alternate user and kernel time. *)
  Engine.delay (cpu *. 0.5);
  let n = app.Apps.calls_per_request in
  let per_gap = cpu *. 0.5 /. float_of_int (max 1 n) in
  for _ = 1 to n do
    issue (pick_call t rng) None;
    Engine.delay per_gap
  done;
  List.iter (fun (spec, (arg : Arg.t)) -> issue spec (Some arg.Arg.size)) t.io;
  issue t.send (Some 512)

let estimate_native_service t = Apps.mean_service_estimate t.app
