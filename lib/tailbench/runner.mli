(** Single-node tail-latency experiments (§6.2 / Figure 3).

    Layout mirrors the paper: four isolation units of 16 cores and 8 GB
    on the EPYC machine.  Unit 0 runs one tailbench application with an
    open-loop client over loopback; units 1–3 run a 48-rank varbench
    noise workload when the run is {e contended}.  The client rate is
    set from the app's {e native} service estimate for ~72%% worker
    utilisation and kept identical across environments, so environments
    that inflate service times absorb the extra load as queueing — the
    paper's fixed-rate configuration. *)

type config = {
  requests : int;  (** completed requests to measure *)
  warmup_fraction : float;  (** leading fraction of latencies discarded *)
  seed : int;
  util_target : float;
  units : int;
  unit_cores : int;
  unit_mem_mb : int;
  machine : Ksurf_env.Machine.t;
}

val default_config : config
(** 4000 requests, 20%% warm-up, seed 42, util 0.65, 4 x (16 cores, 8 GB)
    on {!Ksurf_env.Machine.epyc}. *)

type result = {
  app_name : string;
  kind : string;
  contended : bool;
  count : int;  (** measured requests *)
  mean : float;
  p95 : float;
  p99 : float;
  max : float;
  wall_ns : float;  (** virtual time span of the measured phase *)
  degraded : bool;  (** some workers crashed and did not restart *)
  survivors : int;  (** workers still serving at the end *)
  crashes : int;  (** injected worker crashes (fault plan) *)
  restarts : int;  (** crashed workers that came back *)
  timeouts : int;  (** requests exceeding [request_timeout_ns] *)
}

val run_single_node :
  app:Apps.t ->
  kind:Ksurf_env.Env.kind ->
  contended:bool ->
  ?config:config ->
  ?noise_corpus:Ksurf_syzgen.Corpus.t ->
  ?request_timeout_ns:float ->
  ?on_engine:(Ksurf_sim.Engine.t -> unit) ->
  ?on_env:(Ksurf_env.Env.t -> unit) ->
  unit ->
  result
(** One cell of Figure 3.  [noise_corpus] defaults to a freshly
    generated corpus (pass one in to share across cells).  [on_engine]
    is called on the freshly created engine before anything is spawned —
    the hook sanitizers use to attach probes — and [on_env] on the
    freshly deployed environment — the hook fault injection uses to arm
    a plan.  Deterministic for a given seed.

    Robustness (inert without an armed fault plan): a worker whose plan
    schedules a crash requeues its in-flight request for the survivors
    and, if the plan allows, restarts after the downtime; with
    [request_timeout_ns] set, requests slower than the deadline count as
    [timeouts] instead of latency samples.  A run that permanently lost
    workers is stamped [degraded] with the survivor count. *)

val percent_increase : isolated:result -> contended:result -> float
(** Figure 3(c): p99 increase from the isolated to the contended run,
    in percent. *)
