module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Machine = Ksurf_env.Machine
module Partition = Ksurf_env.Partition
module Mailbox = Ksurf_sim.Mailbox
module Prng = Ksurf_util.Prng
module Quantile = Ksurf_stats.Quantile
module Streamstat = Ksurf_stats.Streamstat
module Noise = Ksurf_varbench.Noise

type config = {
  requests : int;
  warmup_fraction : float;
  seed : int;
  util_target : float;
  units : int;
  unit_cores : int;
  unit_mem_mb : int;
  machine : Machine.t;
}

let default_config =
  {
    requests = 4_000;
    warmup_fraction = 0.2;
    seed = 42;
    util_target = 0.65;
    units = 4;
    unit_cores = 16;
    unit_mem_mb = 8192;
    machine = Machine.epyc;
  }

type result = {
  app_name : string;
  kind : string;
  contended : bool;
  count : int;
  mean : float;
  p95 : float;
  p99 : float;
  max : float;
  wall_ns : float;
  degraded : bool;
  survivors : int;
  crashes : int;
  restarts : int;
  timeouts : int;
}

let run_single_node ~app ~kind ~contended ?(config = default_config)
    ?noise_corpus ?request_timeout_ns ?(on_engine = fun (_ : Engine.t) -> ())
    ?(on_env = fun (_ : Env.t) -> ()) () =
  let compiled = Service.compile app in
  let engine = Engine.create ~seed:config.seed () in
  (* Observer hook: lets sanitizers attach probes before anything runs. *)
  on_engine engine;
  let partition =
    Partition.equal_split ~units:config.units
      ~total_cores:(config.units * config.unit_cores)
      ~total_mem_mb:(config.units * config.unit_mem_mb)
  in
  let env = Env.deploy ~engine ~machine:config.machine kind partition in
  (* Deployment hook: lets callers arm a fault plan on the fresh env. *)
  on_env env;
  (* Unit 0 hosts the application; the rest host noise when contended. *)
  let workers = List.init config.unit_cores (fun i -> i) in
  let noise_ranks =
    List.init
      (Env.rank_count env - config.unit_cores)
      (fun i -> config.unit_cores + i)
  in
  if contended then begin
    let corpus =
      match noise_corpus with
      | Some c -> c
      | None -> (Ksurf_syzgen.Generator.run ()).Ksurf_syzgen.Generator.corpus
    in
    ignore (Noise.start ~env ~corpus ~ranks:noise_ranks () : Noise.handle)
  end;
  (* Open-loop client at a fixed rate derived from the native service
     estimate: identical across environments. *)
  let mean_service = Service.estimate_native_service compiled in
  let rate =
    config.util_target *. float_of_int config.unit_cores /. mean_service
  in
  let mailbox = Mailbox.create ~engine ~name:(app.Apps.name ^ ".reqs") in
  (* Seed-scale runs keep every latency in the exact buffer, so the
     retrospective warmup skip below reproduces the historical
     array-based summary byte-for-byte.  Past the cap the run switches
     to constant-memory streaming and the warmup is skipped online
     instead: the first [requests x warmup_fraction] recorded latencies
     are discarded as they arrive. *)
  (* [>=], not [>]: at exactly [exact_cap] requests a timeout-free run
     fills the buffer and the cap'th add would spill it, losing the
     exact path while the online warmup skip is disarmed.  Whenever a
     spill is possible, stream from the start. *)
  let streaming_mode = config.requests >= Streamstat.default_exact_cap in
  let latencies =
    Streamstat.create
      ~exact_cap:(if streaming_mode then 0 else Streamstat.default_exact_cap)
      ()
  in
  let warmup_skip =
    if streaming_mode then
      int_of_float (float_of_int config.requests *. config.warmup_fraction)
    else 0
  in
  let recorded = ref 0 in
  let completed = ref 0 in
  (* Robustness accounting: a fault plan (kfault) may schedule worker
     crashes; a crashed worker hands its request back to the mailbox so
     a survivor serves it, and either restarts after the plan's
     downtime or exits for good. *)
  let worker_count = List.length workers in
  let live = ref worker_count in
  let crashes = ref 0 in
  let restarts = ref 0 in
  let timeouts = ref 0 in
  List.iter
    (fun rank ->
      let rng = Prng.split (Engine.rng engine) (Printf.sprintf "worker-%d" rank) in
      Engine.spawn engine (fun () ->
          let crash_at = Env.crash_time_of_rank env ~rank in
          let restart_delay = Env.restart_delay_of_rank env ~rank in
          let crash_handled = ref false in
          let inject fault =
            if Engine.observed engine then
              Engine.emit engine
                (Engine.Injected
                   {
                     now = Engine.now engine;
                     pid = Engine.current_pid engine;
                     fault;
                     magnitude = float_of_int rank;
                   })
          in
          let rec serve () =
            let arrival = Mailbox.recv mailbox in
            match crash_at with
            | Some at
              when (not !crash_handled) && Engine.now engine >= at -> (
                crash_handled := true;
                incr crashes;
                inject "rank-crash";
                (* The in-flight request survives the crash: back to the
                   queue for whoever is still serving. *)
                Mailbox.send mailbox arrival;
                match restart_delay with
                | Some downtime ->
                    Engine.delay downtime;
                    incr restarts;
                    inject "rank-restart";
                    serve ()
                | None -> decr live)
            | _ ->
                (* Residual hardware interference from the co-runners.
                   The paper's VM setup allocates each VM's memory from
                   a single memory channel, so cross-VM bandwidth
                   interference is lower than between containers sharing
                   all channels. *)
                let hw_dilation =
                  if not contended then 1.0
                  else
                    match kind with
                    | Env.Kvm _ -> 1.005 +. Prng.float rng 0.01
                    | Env.Native | Env.Multikernel | Env.Docker -> 1.01 +. Prng.float rng 0.03
                in
                Service.handle compiled ~env ~rank ~rng ~hw_dilation ();
                let latency = Engine.now engine -. arrival in
                (* A per-request straggler timeout: requests slower than
                   the deadline count as errors, not latency samples. *)
                (match request_timeout_ns with
                | Some deadline when latency > deadline -> incr timeouts
                | _ ->
                    incr recorded;
                    if !recorded > warmup_skip then
                      Streamstat.add latencies latency);
                incr completed;
                serve ()
          in
          serve ()))
    workers;
  let client_rng = Prng.split (Engine.rng engine) "client" in
  let client_done = ref false in
  Engine.spawn engine (fun () ->
      for _ = 1 to config.requests do
        let gap = -.Float.log (1.0 -. Prng.uniform client_rng) /. rate in
        Engine.delay gap;
        Mailbox.send mailbox (Engine.now engine)
      done;
      client_done := true);
  let t0 = Engine.now engine in
  (* Stop on full completion, or — degraded total loss — once the client
     has sent everything and no worker is left to serve it. *)
  Engine.run
    ~stop:(fun () ->
      !completed >= config.requests || (!client_done && !live = 0))
    engine;
  let wall_ns = Engine.now engine -. t0 in
  let count, mean, p95, p99, max =
    match Streamstat.exact latencies with
    | Some all ->
        let skip =
          int_of_float (float_of_int (Array.length all) *. config.warmup_fraction)
        in
        let measured = Array.sub all skip (Array.length all - skip) in
        if Array.length measured = 0 then (0, 0.0, 0.0, 0.0, 0.0)
        else
          let s = Quantile.summarize measured in
          ( s.Quantile.count,
            s.Quantile.mean,
            s.Quantile.p95,
            s.Quantile.p99,
            s.Quantile.max )
    | None ->
        let n = Streamstat.count latencies in
        if n = 0 then (0, 0.0, 0.0, 0.0, 0.0)
        else
          ( n,
            Streamstat.mean latencies,
            Streamstat.p95 latencies,
            Streamstat.p99 latencies,
            Streamstat.max_value latencies )
  in
  {
    app_name = app.Apps.name;
    kind = Env.kind_name kind;
    contended;
    count;
    mean;
    p95;
    p99;
    max;
    wall_ns;
    degraded = !live < worker_count;
    survivors = !live;
    crashes = !crashes;
    restarts = !restarts;
    timeouts = !timeouts;
  }

let percent_increase ~isolated ~contended =
  100.0 *. (contended.p99 -. isolated.p99) /. isolated.p99
