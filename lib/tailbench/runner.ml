module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Machine = Ksurf_env.Machine
module Partition = Ksurf_env.Partition
module Mailbox = Ksurf_sim.Mailbox
module Prng = Ksurf_util.Prng
module Quantile = Ksurf_stats.Quantile
module Samples = Ksurf_varbench.Samples
module Noise = Ksurf_varbench.Noise

type config = {
  requests : int;
  warmup_fraction : float;
  seed : int;
  util_target : float;
  units : int;
  unit_cores : int;
  unit_mem_mb : int;
  machine : Machine.t;
}

let default_config =
  {
    requests = 4_000;
    warmup_fraction = 0.2;
    seed = 42;
    util_target = 0.65;
    units = 4;
    unit_cores = 16;
    unit_mem_mb = 8192;
    machine = Machine.epyc;
  }

type result = {
  app_name : string;
  kind : string;
  contended : bool;
  count : int;
  mean : float;
  p95 : float;
  p99 : float;
  max : float;
  wall_ns : float;
}

let run_single_node ~app ~kind ~contended ?(config = default_config)
    ?noise_corpus ?(on_engine = fun (_ : Engine.t) -> ()) () =
  let compiled = Service.compile app in
  let engine = Engine.create ~seed:config.seed () in
  (* Observer hook: lets sanitizers attach probes before anything runs. *)
  on_engine engine;
  let partition =
    Partition.equal_split ~units:config.units
      ~total_cores:(config.units * config.unit_cores)
      ~total_mem_mb:(config.units * config.unit_mem_mb)
  in
  let env = Env.deploy ~engine ~machine:config.machine kind partition in
  (* Unit 0 hosts the application; the rest host noise when contended. *)
  let workers = List.init config.unit_cores (fun i -> i) in
  let noise_ranks =
    List.init
      (Env.rank_count env - config.unit_cores)
      (fun i -> config.unit_cores + i)
  in
  if contended then begin
    let corpus =
      match noise_corpus with
      | Some c -> c
      | None -> (Ksurf_syzgen.Generator.run ()).Ksurf_syzgen.Generator.corpus
    in
    Noise.start ~env ~corpus ~ranks:noise_ranks ()
  end;
  (* Open-loop client at a fixed rate derived from the native service
     estimate: identical across environments. *)
  let mean_service = Service.estimate_native_service compiled in
  let rate =
    config.util_target *. float_of_int config.unit_cores /. mean_service
  in
  let mailbox = Mailbox.create ~engine ~name:(app.Apps.name ^ ".reqs") in
  let latencies = Samples.create () in
  let completed = ref 0 in
  List.iter
    (fun rank ->
      let rng = Prng.split (Engine.rng engine) (Printf.sprintf "worker-%d" rank) in
      Engine.spawn engine (fun () ->
          let rec serve () =
            let arrival = Mailbox.recv mailbox in
            (* Residual hardware interference from the co-runners.  The
               paper's VM setup allocates each VM's memory from a single
               memory channel, so cross-VM bandwidth interference is
               lower than between containers sharing all channels. *)
            let hw_dilation =
              if not contended then 1.0
              else
                match kind with
                | Env.Kvm _ -> 1.005 +. Prng.float rng 0.01
                | Env.Native | Env.Docker -> 1.01 +. Prng.float rng 0.03
            in
            Service.handle compiled ~env ~rank ~rng ~hw_dilation ();
            Samples.add latencies (Engine.now engine -. arrival);
            incr completed;
            serve ()
          in
          serve ()))
    workers;
  let client_rng = Prng.split (Engine.rng engine) "client" in
  Engine.spawn engine (fun () ->
      for _ = 1 to config.requests do
        let gap = -.Float.log (1.0 -. Prng.uniform client_rng) /. rate in
        Engine.delay gap;
        Mailbox.send mailbox (Engine.now engine)
      done);
  let t0 = Engine.now engine in
  Engine.run ~stop:(fun () -> !completed >= config.requests) engine;
  let wall_ns = Engine.now engine -. t0 in
  let all = Samples.to_array latencies in
  let skip = int_of_float (float_of_int (Array.length all) *. config.warmup_fraction) in
  let measured = Array.sub all skip (Array.length all - skip) in
  let s = Quantile.summarize measured in
  {
    app_name = app.Apps.name;
    kind = Env.kind_name kind;
    contended;
    count = s.Quantile.count;
    mean = s.Quantile.mean;
    p95 = s.Quantile.p95;
    p99 = s.Quantile.p99;
    max = s.Quantile.max;
    wall_ns;
  }

let percent_increase ~isolated ~contended =
  100.0 *. (contended.p99 -. isolated.p99) /. isolated.p99
