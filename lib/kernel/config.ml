module Dist = Ksurf_util.Dist

type t = {
  enable_background : bool;
  enable_journal_daemon : bool;
  enable_kswapd : bool;
  enable_load_balancer : bool;
  enable_stat_flusher : bool;
  enable_tlb_shootdown : bool;
  enable_cgroup_accounting : bool;
  enable_timer_noise : bool;
  syscall_entry_cost : float;
  cpu_cost_factor : float;
  ipi_cost : float;
  tick_period : float;
  tick_service_cost : Dist.t;
  tlb_ack_slow_prob : float;
  tlb_ack_slow_cost : Dist.t;
  journal_commit_interval : Dist.t;
  journal_commit_hold : Dist.t;
  kswapd_interval : Dist.t;
  kswapd_hold : Dist.t;
  balancer_interval : Dist.t;
  balancer_hold_per_core : Dist.t;
  flusher_interval : Dist.t;
  flusher_hold_per_cgroup : Dist.t;
  dcache_hit_cost : float;
  dcache_miss_cost : Dist.t;
  page_cache_hit_cost : float;
  page_cache_miss_cost : Dist.t;
  slab_fast_cost : float;
  slab_refill_cost : Dist.t;
  slab_refill_prob : float;
  cache_pressure_per_sharer : float;
  cgroup_charge_fast_cost : float;
  cgroup_charge_slow_prob : float;
  cgroup_charge_slow_hold : Dist.t;
  block_latency : Dist.t;
  block_bandwidth_ns_per_byte : float;
  block_queue_depth : int;
}

let default =
  {
    enable_background = true;
    enable_journal_daemon = true;
    enable_kswapd = true;
    enable_load_balancer = true;
    enable_stat_flusher = true;
    enable_tlb_shootdown = true;
    enable_cgroup_accounting = true;
    enable_timer_noise = true;
    syscall_entry_cost = 180.0;
    cpu_cost_factor = 1.0;
    ipi_cost = 1_200.0;
    tick_period = 1e6 (* HZ=1000 *);
    tick_service_cost = Dist.lognormal ~median:2_500.0 ~sigma:0.6;
    tlb_ack_slow_prob = 0.04;
    tlb_ack_slow_cost = Dist.bounded_pareto ~lo:5e4 ~hi:1.5e7 ~shape:0.7;
    journal_commit_interval = Dist.uniform ~lo:5e7 ~hi:1.5e8 (* 50-150 ms *);
    journal_commit_hold = Dist.lognormal ~median:3e6 ~sigma:1.2 (* ~3 ms, tail to tens of ms *);
    kswapd_interval = Dist.uniform ~lo:6e7 ~hi:2e8;
    kswapd_hold = Dist.lognormal ~median:1.5e6 ~sigma:1.0;
    balancer_interval = Dist.uniform ~lo:8e6 ~hi:4e7 (* 8-40 ms *);
    balancer_hold_per_core = Dist.lognormal ~median:9e3 ~sigma:0.7;
    flusher_interval = Dist.uniform ~lo:2e7 ~hi:8e7;
    flusher_hold_per_cgroup = Dist.lognormal ~median:2e4 ~sigma:0.6;
    dcache_hit_cost = 60.0;
    dcache_miss_cost = Dist.lognormal ~median:1_800.0 ~sigma:0.5;
    page_cache_hit_cost = 90.0;
    page_cache_miss_cost = Dist.lognormal ~median:2_600.0 ~sigma:0.6;
    slab_fast_cost = 40.0;
    slab_refill_cost = Dist.lognormal ~median:2_200.0 ~sigma:0.5;
    slab_refill_prob = 0.02;
    cache_pressure_per_sharer = 0.004;
    cgroup_charge_fast_cost = 45.0;
    cgroup_charge_slow_prob = 0.006;
    cgroup_charge_slow_hold = Dist.lognormal ~median:2.5e3 ~sigma:0.6;
    block_latency = Dist.lognormal ~median:8e4 ~sigma:0.35 (* ~80 us SSD *);
    block_bandwidth_ns_per_byte = 0.5 (* ~2 GB/s *);
    block_queue_depth = 32;
  }

let quiet =
  {
    default with
    enable_background = false;
    enable_tlb_shootdown = false;
    enable_cgroup_accounting = false;
    enable_timer_noise = false;
    tlb_ack_slow_prob = 0.0;
    slab_refill_prob = 0.0;
    cgroup_charge_slow_prob = 0.0;
    cache_pressure_per_sharer = 0.0;
  }

let without_background t = { t with enable_background = false }
let without_tlb_shootdown t = { t with enable_tlb_shootdown = false }
let without_cgroup_accounting t = { t with enable_cgroup_accounting = false }
let without_timer_noise t = { t with enable_timer_noise = false }

(* Specialization: switch off one machinery (see Ops.machinery_of_category).
   Composable, so the specializer folds it over everything the retained
   categories do not need. *)
let without_machinery (m : Ops.machinery) t =
  match m with
  | Ops.Load_balancer -> { t with enable_load_balancer = false }
  | Ops.Timer_tick -> { t with enable_timer_noise = false }
  | Ops.Kswapd -> { t with enable_kswapd = false }
  | Ops.Tlb_shootdown_m -> { t with enable_tlb_shootdown = false }
  | Ops.Journal_daemon -> { t with enable_journal_daemon = false }
  | Ops.Cgroup_accounting_m ->
      { t with enable_cgroup_accounting = false; enable_stat_flusher = false }
