(** Software-cache interference model.

    The kernel's software caches (dentry cache, page cache, slab per-CPU
    magazines) are shared across every tenant of a kernel instance.
    Co-tenants evict each other's entries, so the effective hit rate of a
    cache decays with the number of tenants sharing the instance — one of
    the cross-tenant variability channels the paper attributes to the
    kernel surface area. *)

type t

val create :
  name:string -> base_hit_rate:float -> pressure_per_sharer:float -> t
(** [base_hit_rate] is the single-tenant hit probability;
    each additional sharer subtracts [pressure_per_sharer] (floored at
    0.5 so caches never become useless). *)

val set_sharers : t -> int -> unit
(** Number of tenants actively using the instance (>= 1). *)

val set_extra_pressure : t -> float -> unit
(** Transient additional hit-rate penalty (clamped at 0 below), on top
    of sharer pressure — how a cache-flush fault-injection storm evicts
    entries for a window.  The 0.5 hit-rate floor still applies. *)

val extra_pressure : t -> float

val hit_rate : t -> float

val probe : t -> Ksurf_util.Prng.t -> bool
(** One lookup: [true] on hit. *)

val name : t -> string
val lookups : t -> int
val misses : t -> int
