module Engine = Ksurf_sim.Engine
module Lock = Ksurf_sim.Lock
module Rwlock = Ksurf_sim.Rwlock
module Resource = Ksurf_sim.Resource
module Dist = Ksurf_util.Dist
module Prng = Ksurf_util.Prng

type ctx = { core : int; tenant : int; key : int; cgroup : int option }

type t = {
  engine : Engine.t;
  config : Config.t;
  id : int;
  cores : int;
  mem_mb : int;
  rng : Prng.t;
  (* Global (one per instance) locks, in Ops.lock_ref order where global. *)
  tasklist : Lock.t;
  zone : Lock.t;
  dcache_lock : Lock.t;
  journal : Lock.t;
  msgq_registry : Lock.t;
  cred : Lock.t;
  audit : Lock.t;
  cgroup_css : Lock.t;
  (* Striped locks. *)
  runqueues : Lock.t array; (* one per core *)
  page_cache_tree : Lock.t array;
  inode : Lock.t array;
  pipe : Lock.t array;
  futex : Lock.t array;
  (* Reader-writer semaphores. *)
  mmap_sem : Rwlock.t array; (* striped by tenant: per-address-space *)
  sb_umount : Rwlock.t;
  (* Software caches. *)
  dcache : Caches.t;
  page_cache : Caches.t;
  (* Devices. *)
  block_dev : Resource.t;
  mutable tenants : int;
  mutable cgroups : int;
  (* Activity tracking: housekeeping intensity follows load (jbd2 only
     commits dirty transactions, kswapd only scans under pressure, IPI
     targets only ack late when busy in the kernel). *)
  mutable win_start : float;
  mutable win_ops : int;
  mutable busy : float;  (* smoothed per-core kernel-op rate, 0..1 *)
  activity : int array;  (* per activity-class op counters *)
  (* Fault-injection state, written by kfault.  [burn_mult] dilates all
     in-kernel CPU time (a slow memory channel window);
     [daemon_hold_mult] lets an injector stretch the background
     daemons' lock holds (a daemon storm). *)
  mutable burn_mult : float;
  mutable daemon_hold_mult : (string -> float) option;
  (* Shutdown: background daemons exit at their next wakeup instead of
     looping forever, so a decommissioned guest (a departed tenant's
     private kernel) stops generating events and can be collected. *)
  mutable halted : bool;
  (* Specialization state, written by kspec (lib/spec): per-tenant
     syscall policies on a shared instance (seccomp-style filters
     installed per process).  Consulted by Env on every syscall —
     tenant-id-indexed array, not a hashtable, so the per-call lookup
     neither hashes nor allocates (the stored option is returned as
     is).  Installs are rare; the array grows to the largest tenant id
     seen. *)
  mutable policies : syscall_policy option array;
  mutable policy_count : int;
}

and policy_mode = Audit | Enforce

and syscall_policy = {
  allows : string -> bool;  (** syscall name -> permitted? *)
  policy_mode : policy_mode;
  reachable : float;  (** fraction of the coverage universe left reachable *)
  denials : int ref;  (** incremented on every rejected call *)
}

type activity_class = Fs_activity | Mm_activity | Sched_activity | Charge_activity

let class_index = function
  | Fs_activity -> 0
  | Mm_activity -> 1
  | Sched_activity -> 2
  | Charge_activity -> 3

let make_stripes engine name n =
  Array.init n (fun i ->
      Lock.create ~engine ~name:(Printf.sprintf "%s[%d]" name i))

let boot ~engine ~config ~id ~cores ~mem_mb ?block_dev () =
  if cores < 1 then invalid_arg "Instance.boot: cores must be >= 1";
  if mem_mb < 1 then invalid_arg "Instance.boot: mem_mb must be >= 1";
  let rng = Prng.split (Engine.rng engine) (Printf.sprintf "kernel-%d" id) in
  let lock name = Lock.create ~engine ~name:(Printf.sprintf "k%d.%s" id name) in
  let block_dev =
    match block_dev with
    | Some dev -> dev
    | None ->
        Resource.create ~engine
          ~name:(Printf.sprintf "k%d.blkdev" id)
          ~capacity:config.Config.block_queue_depth
  in
  {
    engine;
    config;
    id;
    cores;
    mem_mb;
    rng;
    tasklist = lock "tasklist";
    zone = lock "zone";
    dcache_lock = lock "dcache";
    journal = lock "journal";
    msgq_registry = lock "msgq_registry";
    cred = lock "cred";
    audit = lock "audit";
    cgroup_css = lock "cgroup_css";
    runqueues = make_stripes engine (Printf.sprintf "k%d.runqueue" id) cores;
    page_cache_tree = make_stripes engine (Printf.sprintf "k%d.pct" id) 8;
    inode = make_stripes engine (Printf.sprintf "k%d.inode" id) 16;
    pipe = make_stripes engine (Printf.sprintf "k%d.pipe" id) 32;
    futex = make_stripes engine (Printf.sprintf "k%d.futex" id) 64;
    mmap_sem =
      Array.init 64 (fun i ->
          Rwlock.create ~engine ~name:(Printf.sprintf "k%d.mmap_sem[%d]" id i));
    sb_umount = Rwlock.create ~engine ~name:(Printf.sprintf "k%d.sb_umount" id);
    dcache =
      Caches.create ~name:"dcache" ~base_hit_rate:0.97
        ~pressure_per_sharer:config.Config.cache_pressure_per_sharer;
    page_cache =
      Caches.create ~name:"page_cache" ~base_hit_rate:0.95
        ~pressure_per_sharer:config.Config.cache_pressure_per_sharer;
    block_dev;
    tenants = 1;
    cgroups = 0;
    win_start = 0.0;
    win_ops = 0;
    busy = 0.0;
    activity = Array.make 4 0;
    burn_mult = 1.0;
    daemon_hold_mult = None;
    halted = false;
    policies = [||];
    policy_count = 0;
  }

let engine t = t.engine
let config t = t.config
let id t = t.id
let cores t = t.cores
let mem_mb t = t.mem_mb

let surface_area t =
  ((float_of_int t.cores /. 64.0) +. (float_of_int t.mem_mb /. 32768.0)) /. 2.0

let set_tenants t n =
  t.tenants <- max 1 n;
  Caches.set_sharers t.dcache t.tenants;
  Caches.set_sharers t.page_cache t.tenants

let tenants t = t.tenants

let register_cgroup t =
  t.cgroups <- t.cgroups + 1;
  t.cgroups

let cgroup_count t = t.cgroups
let block_dev t = t.block_dev
let rng t = t.rng
let halt t = t.halted <- true
let halted t = t.halted

(* --- fault-injection controls (kfault) ------------------------------- *)

let set_burn_mult t m =
  if m <= 0.0 then invalid_arg "Instance.set_burn_mult: must be positive";
  t.burn_mult <- m

let burn_mult t = t.burn_mult

let set_daemon_hold_mult t f = t.daemon_hold_mult <- f

let daemon_hold_mult t ~daemon =
  match t.daemon_hold_mult with None -> 1.0 | Some f -> f daemon

let set_cache_pressure t p =
  Caches.set_extra_pressure t.dcache p;
  Caches.set_extra_pressure t.page_cache p

(* --- specialization controls (kspec) --------------------------------- *)

let set_syscall_policy t ~tenant policy =
  if tenant < 0 then invalid_arg "Instance.set_syscall_policy: negative tenant";
  (match policy with
  | None -> ()
  | Some p ->
      if not (p.reachable > 0.0 && p.reachable <= 1.0) then
        invalid_arg "Instance.set_syscall_policy: reachable must be in (0, 1]");
  if tenant >= Array.length t.policies then begin
    match policy with
    | None -> ()  (* removing a policy that was never installed *)
    | Some _ ->
        let ncap = max 8 (max (2 * Array.length t.policies) (tenant + 1)) in
        let np = Array.make ncap None in
        Array.blit t.policies 0 np 0 (Array.length t.policies);
        t.policies <- np
  end;
  if tenant < Array.length t.policies then begin
    (match (t.policies.(tenant), policy) with
    | None, Some _ -> t.policy_count <- t.policy_count + 1
    | Some _, None -> t.policy_count <- t.policy_count - 1
    | None, None | Some _, Some _ -> ());
    t.policies.(tenant) <- policy
  end

let syscall_policy t ~tenant =
  if tenant >= 0 && tenant < Array.length t.policies then t.policies.(tenant)
  else None

let policy_count t = t.policy_count

(* A core driving the kernel flat out executes roughly one op per 12 µs (lock convoys and sleeps included);
   [busy] is the instance's smoothed per-core rate relative to that. *)
let full_ops_per_core_ns = 8e-5
let busy_window_ns = 5e6

let note_op t =
  t.win_ops <- t.win_ops + 1;
  let elapsed = Engine.now t.engine -. t.win_start in
  if elapsed >= busy_window_ns then begin
    let rate =
      float_of_int t.win_ops /. Float.max 1.0 elapsed
      /. (full_ops_per_core_ns *. float_of_int t.cores)
    in
    (* Light smoothing so one quiet window does not erase pressure. *)
    t.busy <- Float.min 1.0 ((0.3 *. t.busy) +. (0.7 *. rate));
    t.win_start <- Engine.now t.engine;
    t.win_ops <- 0
  end

let busy_fraction t = t.busy

let note_activity t cls = t.activity.(class_index cls) <- t.activity.(class_index cls) + 1

let take_activity t cls =
  let i = class_index cls in
  let v = t.activity.(i) in
  t.activity.(i) <- 0;
  v

let lock t ctx (ref : Ops.lock_ref) =
  match ref with
  | Ops.Runqueue -> t.runqueues.(ctx.core mod t.cores)
  | Ops.Tasklist -> t.tasklist
  | Ops.Zone -> t.zone
  | Ops.Page_cache_tree ->
      (* Striped by (tenant, object): tenants mostly touch private files,
         but stripes are few enough that co-tenants do collide. *)
      t.page_cache_tree.((ctx.tenant + ctx.key) mod Array.length t.page_cache_tree)
  | Ops.Dcache -> t.dcache_lock
  | Ops.Inode -> t.inode.((ctx.tenant * 7 + ctx.key) mod Array.length t.inode)
  | Ops.Journal -> t.journal
  | Ops.Pipe -> t.pipe.((ctx.tenant * 13 + ctx.key) mod Array.length t.pipe)
  | Ops.Msgq_registry -> t.msgq_registry
  | Ops.Futex_bucket -> t.futex.((ctx.tenant * 31 + ctx.key) mod Array.length t.futex)
  | Ops.Cred -> t.cred
  | Ops.Audit -> t.audit
  | Ops.Cgroup_css -> t.cgroup_css

let rwlock t ctx (ref : Ops.rw_ref) =
  match ref with
  | Ops.Mmap_sem -> t.mmap_sem.(ctx.tenant mod Array.length t.mmap_sem)
  | Ops.Sb_umount -> t.sb_umount

(* In-kernel CPU time plus probabilistic timer-tick interference: a
   burst of duration [d] overlaps a tick with probability d/period, in
   which case the tick handler's work is added to the caller's time. *)
let burn t d =
  let d = d *. t.config.Config.cpu_cost_factor *. t.burn_mult in
  let d =
    if not t.config.Config.enable_timer_noise then d
    else begin
      let p = Float.min 1.0 (d /. t.config.Config.tick_period) in
      if Prng.chance t.rng p then
        d +. Dist.sample t.config.Config.tick_service_cost t.rng
      else d
    end
  in
  if d > 0.0 then Engine.delay d

let sample t dist = Dist.sample dist t.rng

(* TLB shootdown: flush the local TLB, then IPI every other core the
   address space has run on and wait for all acknowledgements.  The span
   is bounded by the instance's cores — a uniprocessor instance never
   leaves the local-flush fast path (the paper's 64-VM collapse).  Some
   targets acknowledge late (interrupts disabled, deep kernel paths);
   the wait is the max over targets, so the tail grows with the span. *)
let tlb_shootdown t =
  let cfg = t.config in
  burn t 200.0;
  if cfg.Config.enable_tlb_shootdown && t.cores > 1 then begin
    let span = min (t.cores - 1) 7 in
    let base = float_of_int span *. cfg.Config.ipi_cost in
    (* Targets only acknowledge late when they are busy inside the
       kernel; both the probability and the length of the stall follow
       the instance's load (the stall is the target's remaining
       interrupts-off section, which only co-tenant kernel activity can
       stretch). *)
    let load = Float.max 0.005 t.busy in
    let slow_prob = cfg.Config.tlb_ack_slow_prob *. load in
    let slowest = ref 0.0 in
    for _ = 1 to span do
      if Prng.chance t.rng slow_prob then begin
        let cost = sample t cfg.Config.tlb_ack_slow_cost *. Float.max 0.1 t.busy in
        if cost > !slowest then slowest := cost
      end
    done;
    burn t (base +. !slowest)
  end

(* RCU synchronisation: wait for a grace period.  Grace periods must
   observe a quiescent state on every core of the instance, so the wait
   scales with the surface area. *)
let rcu_sync t =
  let per_core = 350.0 in
  let base = 2_000.0 in
  let jitter = Prng.float t.rng (float_of_int t.cores *. per_core) in
  burn t (base +. (float_of_int t.cores *. per_core) +. jitter)

let page_alloc t _ctx order =
  let pages = 1 lsl order in
  let hold = 120.0 +. (float_of_int pages *. 15.0) in
  Lock.acquire t.zone;
  burn t hold;
  Lock.release t.zone

let block_io t ~bytes ~write =
  let cfg = t.config in
  let service =
    sample t cfg.Config.block_latency
    +. (float_of_int bytes *. cfg.Config.block_bandwidth_ns_per_byte)
    +. if write then 5_000.0 else 0.0
  in
  Resource.acquire t.block_dev;
  Engine.delay service;
  Resource.release t.block_dev

let cgroup_charge t ctx =
  let cfg = t.config in
  match ctx.cgroup with
  | None -> ()
  | Some _ when not cfg.Config.enable_cgroup_accounting -> ()
  | Some _ ->
      burn t cfg.Config.cgroup_charge_fast_cost;
      (* Per-cpu charge caches absorb most charges; occasionally the
         batch spills to the shared subsystem state.  The spill rate
         grows with the number of live cgroups: more cgroups means less
         per-cgroup cache headroom and more hierarchy levels to walk. *)
      let slow_prob =
        cfg.Config.cgroup_charge_slow_prob
        *. (1.0 +. (float_of_int t.cgroups /. 24.0))
      in
      if Prng.chance t.rng slow_prob then begin
        Lock.acquire t.cgroup_css;
        burn t (sample t cfg.Config.cgroup_charge_slow_hold);
        Lock.release t.cgroup_css
      end

let locked_burn t l hold =
  Lock.acquire l;
  burn t hold;
  Lock.release l

let rec exec_op t ctx (op : Ops.op) =
  let cfg = t.config in
  note_op t;
  (match op with
  | Ops.Lock (Ops.Journal, _) | Ops.Lock (Ops.Inode, _)
  | Ops.With_lock (Ops.Journal, _, _) | Ops.With_lock (Ops.Inode, _, _)
  | Ops.Dcache_lookup ->
      note_activity t Fs_activity
  | Ops.Page_alloc _ | Ops.Slab_alloc | Ops.Tlb_shootdown
  | Ops.Write_lock (Ops.Mmap_sem, _) ->
      note_activity t Mm_activity
  | Ops.Lock (Ops.Runqueue, _) | Ops.Lock (Ops.Tasklist, _)
  | Ops.With_lock (Ops.Runqueue, _, _) | Ops.With_lock (Ops.Tasklist, _, _) ->
      note_activity t Sched_activity
  | Ops.Cgroup_charge -> note_activity t Charge_activity
  | Ops.Cpu _ | Ops.Cpu_dist _ | Ops.Lock (_, _) | Ops.With_lock (_, _, _)
  | Ops.Read_lock (_, _) | Ops.Write_lock (Ops.Sb_umount, _)
  | Ops.Page_cache_lookup | Ops.Rcu_sync | Ops.Block_io _ | Ops.Sleep _ ->
      ());
  match op with
  | Ops.Cpu d -> burn t d
  | Ops.Cpu_dist dist -> burn t (sample t dist)
  | Ops.Lock (ref, hold) -> locked_burn t (lock t ctx ref) (sample t hold)
  | Ops.With_lock (ref, hold, body) ->
      (* The outer lock stays held across the body: this is the only op
         that nests acquisitions, so it is the sole source of lock-order
         edges in syscall programs (observed by lockdep, predicted by
         the static lock graph in lib/staticcheck). *)
      let l = lock t ctx ref in
      Lock.acquire l;
      burn t (sample t hold);
      List.iter (exec_op t ctx) body;
      Lock.release l
  | Ops.Read_lock (ref, hold) ->
      let l = rwlock t ctx ref in
      Rwlock.acquire_read l;
      burn t (sample t hold);
      Rwlock.release_read l
  | Ops.Write_lock (ref, hold) ->
      let l = rwlock t ctx ref in
      Rwlock.acquire_write l;
      burn t (sample t hold);
      Rwlock.release_write l
  | Ops.Dcache_lookup ->
      if Caches.probe t.dcache t.rng then burn t cfg.Config.dcache_hit_cost
      else
        (* Miss: allocate and insert a dentry under the dcache lock. *)
        locked_burn t t.dcache_lock (sample t cfg.Config.dcache_miss_cost)
  | Ops.Page_cache_lookup ->
      if Caches.probe t.page_cache t.rng then burn t cfg.Config.page_cache_hit_cost
      else begin
        let l = lock t ctx Ops.Page_cache_tree in
        locked_burn t l (sample t cfg.Config.page_cache_miss_cost)
      end
  | Ops.Slab_alloc ->
      if Prng.chance t.rng cfg.Config.slab_refill_prob then
        (* Per-cpu magazine empty: refill from the shared slab. *)
        locked_burn t t.zone (sample t cfg.Config.slab_refill_cost)
      else burn t cfg.Config.slab_fast_cost
  | Ops.Page_alloc order -> page_alloc t ctx order
  | Ops.Tlb_shootdown -> tlb_shootdown t
  | Ops.Rcu_sync -> rcu_sync t
  | Ops.Block_io { bytes; write } -> block_io t ~bytes ~write
  | Ops.Cgroup_charge -> cgroup_charge t ctx
  | Ops.Sleep dist -> Engine.delay (sample t dist)

let exec_program t ctx ops = List.iter (exec_op t ctx) ops

(* --- cgroup lifecycle (ktenant churn storms) ------------------------- *)

let unregister_cgroup t = t.cgroups <- max 0 (t.cgroups - 1)

let cgroup_create t ctx =
  let id = register_cgroup t in
  let ctx = { ctx with cgroup = Some id } in
  (if t.config.Config.enable_cgroup_accounting then
     let cfg = t.config in
     (* mkdir: allocate the css, bring every controller online under
        the css lock, attach the first task under the task list, then
        prime the charge caches.  Runs as an ordinary op program so
        probes see the storm exactly like syscall traffic. *)
     exec_program t ctx
       [
         Ops.Slab_alloc;
         Ops.With_lock
           ( Ops.Cgroup_css,
             Dist.scaled 4.0 cfg.Config.cgroup_charge_slow_hold,
             [ Ops.Lock (Ops.Tasklist, Dist.scaled 2.0 cfg.Config.cgroup_charge_slow_hold) ]
           );
         Ops.Cgroup_charge;
       ]);
  id

let cgroup_destroy t ctx ~cgroup =
  let ctx = { ctx with cgroup = Some cgroup } in
  (if t.config.Config.enable_cgroup_accounting then
     let cfg = t.config in
     (* rmdir: flush residual per-cpu stats into the shared subsystem
        state — work that grows with the live cgroup population, the
        same scaling the stats flusher pays — detach under the task
        list, then wait out a grace period before the css is freed. *)
     let flush_scale = 1.0 +. (float_of_int t.cgroups /. 64.0) in
     exec_program t ctx
       [
         Ops.With_lock
           ( Ops.Cgroup_css,
             Dist.scaled (2.0 *. flush_scale) cfg.Config.flusher_hold_per_cgroup,
             [ Ops.Lock (Ops.Tasklist, Dist.scaled 2.0 cfg.Config.cgroup_charge_slow_hold) ]
           );
         Ops.Rcu_sync;
       ]);
  unregister_cgroup t

type lock_report = {
  lock_name : string;
  acquisitions : int;
  contended : int;
  mean_wait_ns : float;
  max_wait_ns : float;
}

let lock_contention_report t =
  let of_group name locks =
    let stats =
      List.fold_left
        (fun acc l -> Ksurf_util.Welford.merge acc (Lock.wait_stats l))
        (Ksurf_util.Welford.create ()) locks
    in
    let max_wait = Ksurf_util.Welford.max_value stats in
    {
      lock_name = name;
      acquisitions = List.fold_left (fun acc l -> acc + Lock.acquisitions l) 0 locks;
      contended =
        List.fold_left (fun acc l -> acc + Lock.contended_acquisitions l) 0 locks;
      mean_wait_ns = Ksurf_util.Welford.mean stats;
      max_wait_ns = (if Float.is_finite max_wait then Float.max 0.0 max_wait else 0.0);
    }
  in
  [
    of_group "tasklist" [ t.tasklist ];
    of_group "zone" [ t.zone ];
    of_group "dcache" [ t.dcache_lock ];
    of_group "journal" [ t.journal ];
    of_group "msgq_registry" [ t.msgq_registry ];
    of_group "cred" [ t.cred ];
    of_group "audit" [ t.audit ];
    of_group "cgroup_css" [ t.cgroup_css ];
    of_group "runqueue" (Array.to_list t.runqueues);
    of_group "page_cache_tree" (Array.to_list t.page_cache_tree);
    of_group "inode" (Array.to_list t.inode);
    of_group "pipe" (Array.to_list t.pipe);
    of_group "futex" (Array.to_list t.futex);
  ]
