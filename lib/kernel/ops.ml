type lock_ref =
  | Runqueue
  | Tasklist
  | Zone
  | Page_cache_tree
  | Dcache
  | Inode
  | Journal
  | Pipe
  | Msgq_registry
  | Futex_bucket
  | Cred
  | Audit
  | Cgroup_css

type rw_ref = Mmap_sem | Sb_umount

let lock_ref_name = function
  | Runqueue -> "runqueue"
  | Tasklist -> "tasklist"
  | Zone -> "zone"
  | Page_cache_tree -> "page_cache_tree"
  | Dcache -> "dcache"
  | Inode -> "inode"
  | Journal -> "journal"
  | Pipe -> "pipe"
  | Msgq_registry -> "msgq_registry"
  | Futex_bucket -> "futex_bucket"
  | Cred -> "cred"
  | Audit -> "audit"
  | Cgroup_css -> "cgroup_css"

let rw_ref_name = function Mmap_sem -> "mmap_sem" | Sb_umount -> "sb_umount"

let global_lock_refs = [ Tasklist; Zone; Dcache; Journal; Msgq_registry; Audit; Cgroup_css ]

type op =
  | Cpu of float
  | Cpu_dist of Ksurf_util.Dist.t
  | Lock of lock_ref * Ksurf_util.Dist.t
  | With_lock of lock_ref * Ksurf_util.Dist.t * op list
  | Read_lock of rw_ref * Ksurf_util.Dist.t
  | Write_lock of rw_ref * Ksurf_util.Dist.t
  | Dcache_lookup
  | Page_cache_lookup
  | Slab_alloc
  | Page_alloc of int
  | Tlb_shootdown
  | Rcu_sync
  | Block_io of { bytes : int; write : bool }
  | Cgroup_charge
  | Sleep of Ksurf_util.Dist.t

let rec pp_op ppf = function
  | Cpu ns -> Format.fprintf ppf "cpu(%.0fns)" ns
  | Cpu_dist _ -> Format.fprintf ppf "cpu(dist)"
  | Lock (l, _) -> Format.fprintf ppf "lock(%s)" (lock_ref_name l)
  | With_lock (l, _, body) ->
      Format.fprintf ppf "with_lock(%s){%a}" (lock_ref_name l)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_op)
        body
  | Read_lock (l, _) -> Format.fprintf ppf "rdlock(%s)" (rw_ref_name l)
  | Write_lock (l, _) -> Format.fprintf ppf "wrlock(%s)" (rw_ref_name l)
  | Dcache_lookup -> Format.pp_print_string ppf "dcache_lookup"
  | Page_cache_lookup -> Format.pp_print_string ppf "page_cache_lookup"
  | Slab_alloc -> Format.pp_print_string ppf "slab_alloc"
  | Page_alloc order -> Format.fprintf ppf "page_alloc(order=%d)" order
  | Tlb_shootdown -> Format.pp_print_string ppf "tlb_shootdown"
  | Rcu_sync -> Format.pp_print_string ppf "rcu_sync"
  | Block_io { bytes; write } ->
      Format.fprintf ppf "block_%s(%dB)" (if write then "write" else "read") bytes
  | Cgroup_charge -> Format.pp_print_string ppf "cgroup_charge"
  | Sleep _ -> Format.pp_print_string ppf "sleep"

let rec total_fixed_cost ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Cpu ns -> acc +. ns
      | With_lock (_, _, body) -> acc +. total_fixed_cost body
      | _ -> acc)
    0.0 ops

(* Kernel machinery that exists to serve specific syscall categories.
   The specializer (lib/spec) prunes every machinery no retained
   category needs — the KASR/unikernel move of compiling subsystems out
   of a workload-specific kernel build. *)
type machinery =
  | Load_balancer  (** periodic runqueue balancing (scheduler) *)
  | Timer_tick  (** the periodic scheduler tick (NO_HZ_FULL when pruned) *)
  | Kswapd  (** background page reclaim *)
  | Tlb_shootdown_m  (** cross-core TLB invalidation broadcasts *)
  | Journal_daemon  (** periodic filesystem journal commits *)
  | Cgroup_accounting_m  (** memcg/io charge path and stat flusher *)

let machinery_name = function
  | Load_balancer -> "load_balancer"
  | Timer_tick -> "timer_tick"
  | Kswapd -> "kswapd"
  | Tlb_shootdown_m -> "tlb_shootdown"
  | Journal_daemon -> "journal_daemon"
  | Cgroup_accounting_m -> "cgroup_accounting"

let all_machinery =
  [
    Load_balancer; Timer_tick; Kswapd; Tlb_shootdown_m; Journal_daemon;
    Cgroup_accounting_m;
  ]

(* A workload that never manages processes runs tickless with no
   balancing; one that never grows its address space needs neither
   reclaim nor shootdowns (memory is fixed at boot, unikernel-style);
   only filesystem users dirty the journal; cgroup controllers charge
   memory and I/O. *)
let machinery_of_category = function
  | Category.Process -> [ Load_balancer; Timer_tick ]
  | Category.Memory -> [ Kswapd; Tlb_shootdown_m; Cgroup_accounting_m ]
  | Category.File_io -> [ Journal_daemon; Cgroup_accounting_m ]
  | Category.Fs_mgmt -> [ Journal_daemon ]
  | Category.Ipc -> []
  | Category.Perm -> []
