module Engine = Ksurf_sim.Engine
module Lock = Ksurf_sim.Lock
module Dist = Ksurf_util.Dist
module Prng = Ksurf_util.Prng

let daemon_names = [ "jbd2"; "kswapd"; "load_balancer"; "cgroup_flusher" ]

(* Each daemon is an infinite loop in virtual time: sleep for a sampled
   interval, then do a batch of housekeeping sized by the activity that
   accumulated since its last pass — an idle kernel commits nothing,
   scans nothing, balances nothing.  Hold times additionally scale with
   the instance's surface area (more cores -> more runqueues and dirtier
   journals, more memory -> longer reclaim scans), which is how smaller
   kernel surface areas shrink the collision tails without any workload
   change. *)

(* "Forever" until the instance is halted: a decommissioned guest's
   daemons exit at their next wakeup, so retired kernels stop
   generating events. *)
let forever ~inst ~interval ~rng body =
  let rec loop () =
    Engine.delay (Dist.sample interval rng);
    if not (Instance.halted inst) then begin
      body ();
      loop ()
    end
  in
  loop

(* Activity factor: fraction of a "full" batch, where full corresponds
   to [per_core_threshold] ops per core since the last pass. *)
let activity_factor inst cls ~per_core_threshold =
  let delta = Instance.take_activity inst cls in
  let full = per_core_threshold *. float_of_int (Instance.cores inst) in
  Float.min 1.0 (float_of_int delta /. Float.max 1.0 full)

let ctx0 = { Instance.core = 0; tenant = 0; key = 0; cgroup = None }

let hold_lock inst lock_ref hold =
  if hold > 0.0 then begin
    let l = Instance.lock inst ctx0 lock_ref in
    Lock.acquire l;
    Engine.delay hold;
    Lock.release l
  end

(* Journal commit: work proportional to metadata dirtied since the last
   commit, bounded by a surface-area-scaled full-commit time. *)
let journal_daemon inst rng () =
  let cfg = Instance.config inst in
  let size_scale = Float.max 0.02 (float_of_int (Instance.cores inst) /. 64.0) in
  let factor = activity_factor inst Instance.Fs_activity ~per_core_threshold:250.0 in
  let hold =
    Dist.sample cfg.Config.journal_commit_hold rng
    *. size_scale *. factor
    *. Instance.daemon_hold_mult inst ~daemon:"jbd2"
  in
  hold_lock inst Ops.Journal hold

(* Reclaim: scan length follows allocation pressure and the memory the
   instance manages. *)
let kswapd_daemon inst rng () =
  let cfg = Instance.config inst in
  let size_scale = Float.max 0.02 (float_of_int (Instance.mem_mb inst) /. 32768.0) in
  let factor = activity_factor inst Instance.Mm_activity ~per_core_threshold:400.0 in
  let hold =
    Dist.sample cfg.Config.kswapd_hold rng
    *. size_scale *. factor
    *. Instance.daemon_hold_mult inst ~daemon:"kswapd"
  in
  hold_lock inst Ops.Zone hold

(* Load balancing: a task-list sweep whose length grows with the core
   count and recent scheduling churn, then a brief visit to each
   runqueue. *)
let balancer_daemon inst rng () =
  let cfg = Instance.config inst in
  let factor = activity_factor inst Instance.Sched_activity ~per_core_threshold:150.0 in
  let storm = Instance.daemon_hold_mult inst ~daemon:"load_balancer" in
  let sweep =
    float_of_int (Instance.cores inst)
    *. Dist.sample cfg.Config.balancer_hold_per_core rng
    *. factor *. storm
  in
  hold_lock inst Ops.Tasklist sweep;
  if factor > 0.01 then
    for core = 0 to Instance.cores inst - 1 do
      let ctx = { Instance.core; tenant = 0; key = 0; cgroup = None } in
      let rq = Instance.lock inst ctx Ops.Runqueue in
      Lock.acquire rq;
      Engine.delay
        (Dist.sample cfg.Config.balancer_hold_per_core rng *. factor *. storm);
      Lock.release rq
    done

(* Flushing per-cgroup statistics serialises on the css lock for a time
   proportional to the cgroup count and recent charge traffic — the
   Table 3 mechanism. *)
let flusher_daemon inst rng () =
  let cfg = Instance.config inst in
  let n = Instance.cgroup_count inst in
  if cfg.Config.enable_cgroup_accounting && n > 0 then begin
    let factor =
      activity_factor inst Instance.Charge_activity ~per_core_threshold:50.0
    in
    let hold =
      Dist.sample cfg.Config.flusher_hold_per_cgroup rng
      *. float_of_int n *. factor
      *. Instance.daemon_hold_mult inst ~daemon:"cgroup_flusher"
    in
    hold_lock inst Ops.Cgroup_css hold
  end

let start inst =
  let cfg = Instance.config inst in
  if cfg.Config.enable_background then begin
    let engine = Instance.engine inst in
    let spawn name interval body =
      let rng = Prng.split (Instance.rng inst) name in
      (* Desynchronise daemons across instances with a random phase. *)
      let phase = Prng.float rng (Dist.mean_estimate interval) in
      Engine.spawn engine (fun () ->
          Engine.delay phase;
          forever ~inst ~interval ~rng (body inst rng) ())
    in
    (* Per-daemon switches: a specialized kernel spawns only the
       daemons its retained syscall categories need. *)
    if cfg.Config.enable_journal_daemon then
      spawn "jbd2" cfg.Config.journal_commit_interval journal_daemon;
    if cfg.Config.enable_kswapd then
      spawn "kswapd" cfg.Config.kswapd_interval kswapd_daemon;
    if cfg.Config.enable_load_balancer then
      spawn "load_balancer" cfg.Config.balancer_interval balancer_daemon;
    if cfg.Config.enable_stat_flusher then
      spawn "cgroup_flusher" cfg.Config.flusher_interval flusher_daemon
  end
