(** A kernel instance: one booted OS kernel managing a surface area.

    The {e kernel surface area} is the pair (cores, memory) the instance
    manages (§3.3 of the paper).  A native deployment has one instance
    covering the whole machine; each KVM guest gets its own small
    instance; containers all share the host instance.

    The instance owns the shared software state — global and striped
    locks, reader-writer semaphores, software caches, the block-device
    queue — and interprets {!Ops.op} programs against it.  Contention and
    its variability {e emerge} from concurrent interpretation, rather
    than being injected. *)

type t

type ctx = {
  core : int;  (** virtual core (0-based) within the instance *)
  tenant : int;  (** process/tenant id: address-space identity *)
  key : int;  (** object identity for striped locks (file, pipe, futex) *)
  cgroup : int option;  (** active cgroup (containers only) *)
}

val boot :
  engine:Ksurf_sim.Engine.t ->
  config:Config.t ->
  id:int ->
  cores:int ->
  mem_mb:int ->
  ?block_dev:Ksurf_sim.Resource.t ->
  unit ->
  t
(** Boot an instance.  [block_dev] lets several instances share one
    physical device (the host SSD under virtualisation); by default the
    instance gets a private device.  Background daemons are {e not}
    started here — call {!Background.start} (via {!Kernel.boot}) so that
    tests can run a daemon-free instance. *)

val engine : t -> Ksurf_sim.Engine.t
val config : t -> Config.t
val id : t -> int
val cores : t -> int
val mem_mb : t -> int

val surface_area : t -> float
(** Normalised scalar surface area: (cores/64 + mem_mb/32768) / 2 — the
    simplification of the multi-dimensional parameter used for
    reporting. *)

val set_tenants : t -> int -> unit
(** Declare how many tenants actively share the instance; drives
    software-cache pressure.  At least 1. *)

val tenants : t -> int

val register_cgroup : t -> int
(** Allocate a cgroup id (containers).  Increases the accounting load of
    the stats flusher. *)

val cgroup_count : t -> int

val unregister_cgroup : t -> unit
(** Drop one cgroup from the accounting population (floor 0).  Plain
    bookkeeping — {!cgroup_destroy} is the simulated teardown path. *)

val halt : t -> unit
(** Decommission the instance: background daemons observe {!halted} and
    exit at their next wakeup instead of looping forever, so the
    instance stops generating events (a fleet retiring a departed
    tenant's private kernel relies on this).  Syscall execution is not
    blocked — in-flight requests drain normally. *)

val halted : t -> bool

val cgroup_create : t -> ctx -> int
(** Allocate a cgroup id {e and} execute the creation storm: css
    allocation and online under the css lock, first-task attach under
    the task list, initial charge.  Must run inside a simulation
    process; the storm is probe-visible like any syscall program.
    Returns the new id. *)

val cgroup_destroy : t -> ctx -> cgroup:int -> unit
(** Execute the teardown storm for [cgroup] — residual stat flush under
    the css lock (cost grows with the live cgroup population), detach
    under the task list, RCU grace period — then unregister it.  Must
    run inside a simulation process. *)

val exec_op : t -> ctx -> Ops.op -> unit
(** Interpret one op in virtual time.  Must run inside a simulation
    process of the instance's engine. *)

val exec_program : t -> ctx -> Ops.op list -> unit
(** Interpret a whole op program (no entry cost — wrappers add it). *)

val lock : t -> ctx -> Ops.lock_ref -> Ksurf_sim.Lock.t
(** Resolve a lock reference for a context (striping applied) — exposed
    for {!Background} and for white-box tests. *)

val rwlock : t -> ctx -> Ops.rw_ref -> Ksurf_sim.Rwlock.t
val block_dev : t -> Ksurf_sim.Resource.t
val rng : t -> Ksurf_util.Prng.t

type lock_report = {
  lock_name : string;
  acquisitions : int;
  contended : int;
  mean_wait_ns : float;
  max_wait_ns : float;  (** 0 when never contended *)
}

val lock_contention_report : t -> lock_report list
(** Per-lock contention accounting (striped locks aggregated), for the
    lock-attribution experiment and white-box tests. *)

type activity_class =
  | Fs_activity  (** journalled metadata, dentry traffic *)
  | Mm_activity  (** allocations, unmapping, TLB invalidation *)
  | Sched_activity  (** runqueue and task-list operations *)
  | Charge_activity  (** cgroup accounting *)

val busy_fraction : t -> float
(** Smoothed per-core kernel-op rate, 0..1.  Housekeeping intensity and
    IPI-ack tails follow this, so an idle instance is quiet — the reason
    an isolated container environment performs well even though its
    kernel surface area is the whole machine. *)

val take_activity : t -> activity_class -> int
(** Read and reset a class's op counter — consumed by the matching
    background daemon to size its next batch of work. *)

val burn : t -> float -> unit
(** Consume [d] ns of in-kernel CPU, including probabilistic timer-tick
    interference when enabled.  Exposed for wrappers that add their own
    costs (virtualisation entry/exit, namespace translation). *)

(** {2 Fault-injection controls}

    Written by kfault ([lib/fault]); every accessor defaults to the
    identity so an un-armed instance behaves exactly as before. *)

val set_burn_mult : t -> float -> unit
(** Dilate all in-kernel CPU time by a factor — a slow-memory-channel
    window.  Must be positive; 1.0 restores stock behaviour. *)

val burn_mult : t -> float

val set_daemon_hold_mult : t -> (string -> float) option -> unit
(** Install a per-daemon lock-hold multiplier, keyed by daemon name
    ("jbd2", "kswapd", "load_balancer", "cgroup_flusher").  {!Background}
    consults it on every housekeeping pass; [None] restores 1.0. *)

val daemon_hold_mult : t -> daemon:string -> float
(** The current multiplier for [daemon] (1.0 when no hook installed). *)

val set_cache_pressure : t -> float -> unit
(** Extra hit-rate penalty on both software caches (dcache and page
    cache) — a cache-flush storm window.  0.0 restores stock. *)

(** {2 Specialization controls}

    Written by kspec ([lib/spec]): per-tenant syscall policies on a
    shared instance — the seccomp-style allowlist a specialized kernel
    installs for each process.  [Ksurf_env.Env] consults the calling
    rank's policy on every system call; with no policy installed (the
    default) behaviour is exactly as before. *)

type policy_mode =
  | Audit  (** log-only: denied calls still execute *)
  | Enforce  (** denied calls fail ENOSYS after the entry path *)

type syscall_policy = {
  allows : string -> bool;  (** syscall name -> permitted? *)
  policy_mode : policy_mode;
  reachable : float;
      (** fraction of the coverage universe the policy leaves reachable,
          in (0, 1] — the functional term of the surface-area metric *)
  denials : int ref;  (** incremented on every rejected call *)
}

val set_syscall_policy : t -> tenant:int -> syscall_policy option -> unit
(** Install ([Some]) or remove ([None]) a tenant's policy.  Raises
    [Invalid_argument] if [reachable] is outside (0, 1]. *)

val syscall_policy : t -> tenant:int -> syscall_policy option
val policy_count : t -> int
(** Number of tenants with an installed policy. *)
