(** The kernel-operation DSL.

    A system call's in-kernel behaviour is a sequence of [op]s; the
    {!Instance} interpreter executes them against shared kernel state.
    The vocabulary mirrors the latent variability sources the paper
    enumerates in §3.3: synchronisation constructs, cross-core
    communication, software caches, timers, and background activity. *)

type lock_ref =
  | Runqueue  (** per-core run queue: picked by the calling core *)
  | Tasklist  (** instance-global task list / pid table *)
  | Zone  (** page-allocator zone lock (instance-global) *)
  | Page_cache_tree  (** page-cache radix-tree lock, striped per file set *)
  | Dcache  (** dentry hash / LRU lock (instance-global) *)
  | Inode  (** per-inode lock, striped by object *)
  | Journal  (** filesystem journal (instance-global, long holds) *)
  | Pipe  (** per-pipe lock, striped by object *)
  | Msgq_registry  (** System-V IPC registry (instance-global) *)
  | Futex_bucket  (** futex hash bucket, striped by object *)
  | Cred  (** credentials / capability update lock *)
  | Audit  (** audit-log serialisation (instance-global) *)
  | Cgroup_css  (** cgroup subsystem state / memcg stats *)

type rw_ref =
  | Mmap_sem  (** per-address-space semaphore, striped by tenant *)
  | Sb_umount  (** superblock guard: read on path ops, write on (u)mount *)

val lock_ref_name : lock_ref -> string
val rw_ref_name : rw_ref -> string

val global_lock_refs : lock_ref list
(** Locks with a single instance-wide instance (contention grows with
    the number of tenants sharing the kernel). *)

type op =
  | Cpu of float  (** in-kernel computation, fixed ns *)
  | Cpu_dist of Ksurf_util.Dist.t  (** in-kernel computation, sampled *)
  | Lock of lock_ref * Ksurf_util.Dist.t  (** critical section; hold sampled *)
  | With_lock of lock_ref * Ksurf_util.Dist.t * op list
      (** nested critical section: the lock is held (for the sampled
          base hold) {e across} the body ops, so every acquisition in
          the body establishes a lock-order edge under the outer lock —
          the construct lockdep and the static lock-order graph reason
          about.  Paths that nest in the real kernel (rename's
          dcache-then-inode, journalled inode updates opening a
          transaction handle under the inode lock) use this form. *)
  | Read_lock of rw_ref * Ksurf_util.Dist.t
  | Write_lock of rw_ref * Ksurf_util.Dist.t
  | Dcache_lookup  (** dentry cache probe: hit or miss-and-fill *)
  | Page_cache_lookup  (** page cache probe *)
  | Slab_alloc  (** slab allocation: per-cpu fast path or global refill *)
  | Page_alloc of int  (** buddy allocation of 2^order pages: zone lock *)
  | Tlb_shootdown  (** broadcast invalidation to the instance's cores *)
  | Rcu_sync  (** wait for a grace period: scales with cores *)
  | Block_io of { bytes : int; write : bool }  (** block-device request *)
  | Cgroup_charge  (** memcg accounting on the charge path *)
  | Sleep of Ksurf_util.Dist.t  (** voluntary block (timeout, wait) *)

val pp_op : Format.formatter -> op -> unit

val total_fixed_cost : op list -> float
(** Sum of the deterministic [Cpu] components — a lower bound on the
    latency of the op program, used by tests and the coverage model. *)

(** Kernel machinery that exists to serve specific syscall categories.
    The specializer ([lib/spec]) switches off every machinery that no
    retained category touches, via {!Config.without_machinery}. *)
type machinery =
  | Load_balancer  (** periodic runqueue balancing (scheduler) *)
  | Timer_tick  (** the periodic scheduler tick (NO_HZ_FULL when pruned) *)
  | Kswapd  (** background page reclaim *)
  | Tlb_shootdown_m  (** cross-core TLB invalidation broadcasts *)
  | Journal_daemon  (** periodic filesystem journal commits *)
  | Cgroup_accounting_m  (** memcg/io charge path and stat flusher *)

val machinery_name : machinery -> string
val all_machinery : machinery list

val machinery_of_category : Category.t -> machinery list
(** The machinery a category depends on: a kernel retaining only some
    categories may drop everything outside the union of their lists.
    Process needs the tick and the balancer; Memory needs reclaim,
    shootdowns and the memcg controller; File_io/Fs_mgmt dirty the
    journal (File_io also charges the io controller); Ipc and Perm need
    no prunable machinery. *)
