(** Tunable parameters of the kernel model.

    All times are nanoseconds of virtual time.  The defaults are
    calibrated so that a 64-core shared instance under the syzgen corpus
    reproduces the latency-bucket shape of the paper's Table 2 native
    column; the ablation experiments (DESIGN.md E7) flip the [enable_*]
    switches. *)

type t = {
  (* --- switches (ablations) ------------------------------------- *)
  enable_background : bool;
      (** master switch for all background daemons *)
  enable_journal_daemon : bool;  (** periodic journal commits (jbd2) *)
  enable_kswapd : bool;  (** background page reclaim *)
  enable_load_balancer : bool;  (** periodic runqueue balancing *)
  enable_stat_flusher : bool;  (** cgroup statistics flusher *)
  enable_tlb_shootdown : bool;  (** cross-core TLB invalidation IPIs *)
  enable_cgroup_accounting : bool;  (** memcg charge path for containers *)
  enable_timer_noise : bool;  (** per-tick interruption of in-kernel work *)
  (* --- fixed hardware-ish costs ---------------------------------- *)
  syscall_entry_cost : float;  (** user->kernel transition *)
  cpu_cost_factor : float;
      (** dilation of all in-kernel CPU work (nested paging under
          virtualisation); 1.0 natively *)
  ipi_cost : float;  (** one inter-processor interrupt round trip *)
  tick_period : float;  (** timer tick interval (HZ=1000 -> 1e6 ns) *)
  tick_service_cost : Ksurf_util.Dist.t;  (** work stolen per tick *)
  (* --- TLB shootdown --------------------------------------------- *)
  tlb_ack_slow_prob : float;
      (** probability a shootdown target is slow to acknowledge
          (interrupts disabled / deep in the kernel) *)
  tlb_ack_slow_cost : Ksurf_util.Dist.t;  (** extra wait for a slow ack *)
  (* --- background daemons ---------------------------------------- *)
  journal_commit_interval : Ksurf_util.Dist.t;
  journal_commit_hold : Ksurf_util.Dist.t;
      (** scaled by instance activity; collides with fs-mgmt calls *)
  kswapd_interval : Ksurf_util.Dist.t;
  kswapd_hold : Ksurf_util.Dist.t;  (** zone-lock hold during a scan pass *)
  balancer_interval : Ksurf_util.Dist.t;
  balancer_hold_per_core : Ksurf_util.Dist.t;
      (** per-runqueue inspection time; total hold grows with cores *)
  flusher_interval : Ksurf_util.Dist.t;
  flusher_hold_per_cgroup : Ksurf_util.Dist.t;
      (** cgroup stats flush; total hold grows with cgroup count *)
  (* --- software caches -------------------------------------------- *)
  dcache_hit_cost : float;
  dcache_miss_cost : Ksurf_util.Dist.t;
  page_cache_hit_cost : float;
  page_cache_miss_cost : Ksurf_util.Dist.t;
  slab_fast_cost : float;
  slab_refill_cost : Ksurf_util.Dist.t;
  slab_refill_prob : float;
  cache_pressure_per_sharer : float;
      (** hit-rate degradation per extra tenant sharing the instance *)
  (* --- cgroup accounting ------------------------------------------ *)
  cgroup_charge_fast_cost : float;
  cgroup_charge_slow_prob : float;  (** per-charge chance of hitting css lock *)
  cgroup_charge_slow_hold : Ksurf_util.Dist.t;
  (* --- block device ------------------------------------------------ *)
  block_latency : Ksurf_util.Dist.t;  (** per-request SSD latency *)
  block_bandwidth_ns_per_byte : float;
  block_queue_depth : int;
}

val default : t
(** The calibrated configuration. *)

val quiet : t
(** All variability mechanisms off — useful as a test baseline where
    latency should be (nearly) deterministic. *)

val without_background : t -> t
val without_tlb_shootdown : t -> t
val without_cgroup_accounting : t -> t
val without_timer_noise : t -> t

val without_machinery : Ops.machinery -> t -> t
(** Switch off one machinery (per-daemon switch, shootdowns, the tick,
    or the cgroup charge path + flusher together).  Composable; the
    specializer folds it over every machinery the retained syscall
    categories do not touch. *)
