type t = {
  name : string;
  base_hit_rate : float;
  pressure_per_sharer : float;
  mutable sharers : int;
  mutable extra_pressure : float;
  mutable lookups : int;
  mutable misses : int;
}

let create ~name ~base_hit_rate ~pressure_per_sharer =
  if base_hit_rate < 0.0 || base_hit_rate > 1.0 then
    invalid_arg "Caches.create: hit rate out of range";
  {
    name;
    base_hit_rate;
    pressure_per_sharer;
    sharers = 1;
    extra_pressure = 0.0;
    lookups = 0;
    misses = 0;
  }

let set_sharers t n = t.sharers <- max 1 n
let set_extra_pressure t p = t.extra_pressure <- Float.max 0.0 p
let extra_pressure t = t.extra_pressure

let hit_rate t =
  let degraded =
    t.base_hit_rate
    -. (float_of_int (t.sharers - 1) *. t.pressure_per_sharer)
    -. t.extra_pressure
  in
  Float.max 0.5 degraded

let probe t rng =
  t.lookups <- t.lookups + 1;
  let hit = Ksurf_util.Prng.chance rng (hit_rate t) in
  if not hit then t.misses <- t.misses + 1;
  hit

let name t = t.name
let lookups t = t.lookups
let misses t = t.misses
