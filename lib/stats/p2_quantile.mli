(** Streaming quantile estimation (the P² algorithm, Jain & Chlamtac 1985).

    The harness stores every latency sample for the paper's statistics,
    but long-running deployments (the noise co-runners, multi-hour soak
    runs) need tail estimates in O(1) memory.  P² maintains five markers
    whose heights approximate the target quantile with parabolic
    adjustment; accuracy is within a few percent for the smooth,
    heavy-tailed latency distributions ksurf produces. *)

type t

val create : float -> t
(** [create q] for a quantile [q] in (0, 1), e.g. [create 0.99].
    Raises [Invalid_argument] outside the open interval. *)

val add : t -> float -> unit
val count : t -> int

val value : t -> float
(** Current estimate.  Before five samples have arrived, falls back to
    the exact small-sample quantile.  Raises [Failure] when empty. *)

val quantile_opt : t -> float option
(** [Some (value t)] when at least one sample has arrived, [None] on an
    empty estimator.  The safe no-data path for epoch logic that may
    legitimately observe nothing (an idle tenant, a zero-length audit
    window). *)

val quantile : t -> float
(** The target quantile this estimator tracks. *)
