(** Hybrid exact/streaming latency summary.

    Small runs (the seed-scale varbench/tailbench configurations) keep
    every sample in an exact buffer, so summary quantiles computed from
    {!exact} are byte-identical to the historical array-based pipeline.
    Once the sample count crosses [exact_cap] the buffer is replayed —
    in insertion order — into three {!P2_quantile} estimators
    (p50/p95/p99) and dropped; from then on the accumulator is
    constant-size no matter how many samples arrive.  Mean, variance,
    min, max and total are tracked by a {!Ksurf_util.Welford}
    accumulator throughout, in both regimes.

    This is the LiveStack-style discipline fleet studies need: a
    million-request run holds a handful of floats per statistic instead
    of a million samples. *)

type t

val default_exact_cap : int
(** 4096 — comfortably above every seed-scale per-site and per-run
    sample count, so existing CSV output is unchanged. *)

val create : ?exact_cap:int -> unit -> t
(** [exact_cap] defaults to {!default_exact_cap}.  [~exact_cap:0] never
    buffers: pure streaming from the first sample. *)

val streaming : unit -> t
(** [create ~exact_cap:0 ()] — for fleet-scale consumers that must
    never materialize samples. *)

val add : t -> float -> unit

val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance (from Welford); 0 if fewer than two
    samples. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val total : t -> float

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float
(** Exact (type-7) while buffered, P² estimates after spilling.  0 if
    empty. *)

val spilled : t -> bool
(** [true] once the exact buffer has been replayed into the P²
    estimators (or from creation with [~exact_cap:0]). *)

val exact : t -> float array option
(** The retained samples in insertion order while still buffered;
    [None] once spilled.  Callers that need historical byte-exact
    derived statistics (pooled quantiles, population variance in a
    specific fold order) recompute them from this. *)
