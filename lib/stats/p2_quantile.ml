type t = {
  q : float;
  (* Marker heights and (1-based) positions; desired positions advance
     by the increments below on every observation. *)
  heights : float array;  (* 5 *)
  positions : float array;
  desired : float array;
  increments : float array;
  mutable n : int;
  initial : float array;  (* first five samples, for startup *)
}

let create q =
  if q <= 0.0 || q >= 1.0 then invalid_arg "P2_quantile.create: q in (0,1)";
  {
    q;
    heights = Array.make 5 0.0;
    positions = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
    desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
    increments = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
    n = 0;
    initial = Array.make 5 0.0;
  }

let quantile t = t.q
let count t = t.n

let parabolic t i d =
  let qi = t.heights.(i) in
  let ni = t.positions.(i) in
  let np = t.positions.(i + 1) and nm = t.positions.(i - 1) in
  let qp = t.heights.(i + 1) and qm = t.heights.(i - 1) in
  qi
  +. d /. (np -. nm)
     *. (((ni -. nm +. d) *. (qp -. qi) /. (np -. ni))
        +. ((np -. ni -. d) *. (qi -. qm) /. (ni -. nm)))

let linear t i d =
  let j = i + int_of_float d in
  t.heights.(i)
  +. (d *. (t.heights.(j) -. t.heights.(i)) /. (t.positions.(j) -. t.positions.(i)))

let add t x =
  t.n <- t.n + 1;
  if t.n <= 5 then begin
    t.initial.(t.n - 1) <- x;
    if t.n = 5 then begin
      let sorted = Array.copy t.initial in
      Array.sort Float.compare sorted;
      Array.blit sorted 0 t.heights 0 5
    end
  end
  else begin
    (* Find the cell and bump marker positions above it. *)
    let k =
      if x < t.heights.(0) then begin
        t.heights.(0) <- x;
        0
      end
      else if x >= t.heights.(4) then begin
        t.heights.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < t.heights.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      t.positions.(i) <- t.positions.(i) +. 1.0
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust the three interior markers. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. t.positions.(i) in
      if
        (d >= 1.0 && t.positions.(i + 1) -. t.positions.(i) > 1.0)
        || (d <= -1.0 && t.positions.(i - 1) -. t.positions.(i) < -1.0)
      then begin
        let d = if d >= 0.0 then 1.0 else -1.0 in
        let candidate = parabolic t i d in
        let candidate =
          if t.heights.(i - 1) < candidate && candidate < t.heights.(i + 1) then
            candidate
          else linear t i d
        in
        t.heights.(i) <- candidate;
        t.positions.(i) <- t.positions.(i) +. d
      end
    done
  end

let value t =
  if t.n = 0 then failwith "P2_quantile.value: empty";
  if t.n < 5 then begin
    let sorted = Array.sub t.initial 0 t.n in
    Array.sort Float.compare sorted;
    Quantile.of_sorted sorted t.q
  end
  else t.heights.(2)

let quantile_opt t = if t.n = 0 then None else Some (value t)
