module Welford = Ksurf_util.Welford

let default_exact_cap = 4096

type t = {
  exact_cap : int;
  welford : Welford.t;
  q50 : P2_quantile.t;
  q95 : P2_quantile.t;
  q99 : P2_quantile.t;
  mutable buf : float array;
  mutable len : int;
  mutable spilled : bool;
}

let create ?(exact_cap = default_exact_cap) () =
  if exact_cap < 0 then invalid_arg "Streamstat.create: negative exact_cap";
  {
    exact_cap;
    welford = Welford.create ();
    q50 = P2_quantile.create 0.5;
    q95 = P2_quantile.create 0.95;
    q99 = P2_quantile.create 0.99;
    buf = [||];
    len = 0;
    spilled = exact_cap = 0;
  }

let streaming () = create ~exact_cap:0 ()

let feed_p2 t x =
  P2_quantile.add t.q50 x;
  P2_quantile.add t.q95 x;
  P2_quantile.add t.q99 x

let spill t =
  for i = 0 to t.len - 1 do
    feed_p2 t t.buf.(i)
  done;
  t.buf <- [||];
  t.spilled <- true

let push t x =
  if t.len = Array.length t.buf then begin
    let cap = max 16 (min t.exact_cap (2 * t.len)) in
    let grown = Array.make cap 0.0 in
    Array.blit t.buf 0 grown 0 t.len;
    t.buf <- grown
  end;
  t.buf.(t.len) <- x;
  t.len <- t.len + 1

let add t x =
  Welford.add t.welford x;
  if t.spilled then feed_p2 t x
  else begin
    push t x;
    if t.len >= t.exact_cap then spill t
  end

let count t = Welford.count t.welford
let mean t = Welford.mean t.welford
let variance t = Welford.variance t.welford
let stddev t = Welford.stddev t.welford
let min_value t = Welford.min_value t.welford
let max_value t = Welford.max_value t.welford
let total t = Welford.total t.welford
let spilled t = t.spilled

let exact t = if t.spilled then None else Some (Array.sub t.buf 0 t.len)

let exact_quantile t q =
  if t.len = 0 then 0.0
  else begin
    let sorted = Array.sub t.buf 0 t.len in
    Array.sort compare sorted;
    Quantile.of_sorted sorted q
  end

let spilled_quantile q =
  Option.value (P2_quantile.quantile_opt q) ~default:0.0

let p50 t = if t.spilled then spilled_quantile t.q50 else exact_quantile t 0.5
let p95 t = if t.spilled then spilled_quantile t.q95 else exact_quantile t 0.95
let p99 t = if t.spilled then spilled_quantile t.q99 else exact_quantile t 0.99
