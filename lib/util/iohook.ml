(* Operation-level hook beneath Fileio.

   Durable-state torture (lib/dur) needs two capabilities the happy
   path never exercises: observing the exact op stream a writer emits
   (to enumerate crash states from it) and perturbing individual ops
   (transient errno, ENOSPC window, torn write, dropped fsync, crash).
   Both land here: Fileio consults the ambient handler before every
   host I/O primitive and obeys its verdict.

   The handler lives in Domain.DLS, not a global: parallel torture
   cells run in separate pool domains, each with its own fault
   schedule, and must not perturb the sweep journal being written by
   the coordinating domain.  With no handler installed (the normal
   case) consult is a DLS read and a match — no allocation. *)

type op =
  | Open of { path : string }
  | Write of { path : string; content : string }
  | Fsync of { path : string }
  | Fsync_dir of { path : string }
  | Rename of { src : string; dst : string }
  | Remove of { path : string }
  | Read of { path : string }
  | Mkdir of { path : string }

type outcome = Proceed | Fail of Unix.error | Torn of float | Drop | Crash

type handler = op -> outcome

exception Crashed of string

let path_of = function
  | Open { path }
  | Write { path; _ }
  | Fsync { path }
  | Fsync_dir { path }
  | Remove { path }
  | Read { path }
  | Mkdir { path } ->
      path
  | Rename { src; _ } -> src

let describe = function
  | Open { path } -> "open " ^ path
  | Write { path; content } ->
      Printf.sprintf "write %s (%d bytes)" path (String.length content)
  | Fsync { path } -> "fsync " ^ path
  | Fsync_dir { path } -> "fsync-dir " ^ path
  | Rename { src; dst } -> Printf.sprintf "rename %s -> %s" src dst
  | Remove { path } -> "remove " ^ path
  | Read { path } -> "read " ^ path
  | Mkdir { path } -> "mkdir " ^ path

let key : handler option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get key <> None

let consult op =
  match Domain.DLS.get key with
  | None -> Proceed
  | Some h -> (
      match h op with
      | Crash -> raise (Crashed (describe op))
      | verdict -> verdict)

let with_handler h f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some h);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
