/* Monotonic time for wall-clock measurements (bench harness, the CLI's
   `timed`, BENCH_*.json).  CLOCK_MONOTONIC is immune to NTP steps and
   manual clock changes, which corrupt Unix.gettimeofday deltas. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value ksurf_clock_monotonic_ns(value unit)
{
    struct timespec ts;
    (void)unit;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
