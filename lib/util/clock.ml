external monotonic_ns : unit -> int64 = "ksurf_clock_monotonic_ns"

let now_s () = Int64.to_float (monotonic_ns ()) /. 1e9

let elapsed_s ~since = now_s () -. since
