(** Crash-consistent file I/O.

    Every file ksurf writes that a later run depends on — checkpoints,
    sweep journals, CSV exports, fault plans — goes through
    {!write_atomic}: write to a sibling temp file (unique per process
    and call, so concurrent writers cannot clobber each other's temp),
    flush, [fsync], atomically rename over the destination, then
    [fsync] the containing directory so the rename itself is durable.
    A crash mid-write leaves the previous complete file (or nothing),
    never a truncated one.

    Every host I/O primitive consults the ambient {!Iohook} handler
    first, which is how the kdur torture harness records op traces and
    injects faults.  Transient [EINTR]/[EAGAIN] — real or injected —
    is absorbed by a bounded retry with exponential backoff. *)

exception Io_error of string
(** An I/O failure (ENOSPC, permissions, missing directory, …) with the
    affected path.  Raised instead of [Sys_error] so the CLI can map
    file-system trouble to a distinct exit code. *)

val write_atomic : path:string -> (out_channel -> unit) -> unit
(** [write_atomic ~path f] runs [f] on a temp channel, flushes, fsyncs,
    renames the temp file to [path] and fsyncs the containing
    directory.  On failure the temp file is removed and {!Io_error}
    raised; [path] is never left partial.  Safe against concurrent
    writers to the same [path]: temp names are unique per process and
    call, and each rename installs one complete file.  A simulated
    crash ({!Iohook.Crashed}) escapes {e without} cleanup, as a real
    process death would. *)

val read_lines : string -> string list
(** All lines of a file.  Raises {!Io_error} if unreadable. *)

val ensure_dir : string -> unit
(** [ensure_dir dir] creates [dir] and any missing parents (fsyncing
    each parent after creating a new entry, so a crash cannot forget
    the directory).  No-op if [dir] already exists; {!Io_error} if a
    path component exists but is not a directory, or on any other
    failure. *)

val remove : string -> unit
(** Remove a file, through the I/O hook.  Raises {!Io_error}. *)

val sweep_tmp : dir:string -> int
(** Remove every [*.tmp.*] temp file left in [dir] by crashed writers;
    returns how many were swept.  A missing or unreadable [dir] sweeps
    nothing (0). *)

val is_tmp_name : string -> bool
(** Does this basename look like a {!write_atomic} temp file? *)

val transient_retries : unit -> int
(** Process-wide count of transient ([EINTR]/[EAGAIN]) faults absorbed
    by retry since start; cumulative across all domains. *)
