(** Crash-consistent file I/O.

    Every file ksurf writes that a later run depends on — checkpoints,
    sweep journals, CSV exports, fault plans — goes through
    {!write_atomic}: write to a sibling temp file (unique per process
    and call, so concurrent writers cannot clobber each other's temp),
    flush, [fsync], then atomically rename over the destination.  A
    crash mid-write leaves the previous complete file (or nothing),
    never a truncated one — and the fsync guarantees the rename cannot
    hit disk ahead of the data. *)

exception Io_error of string
(** An I/O failure (ENOSPC, permissions, missing directory, …) with the
    affected path.  Raised instead of [Sys_error] so the CLI can map
    file-system trouble to a distinct exit code. *)

val write_atomic : path:string -> (out_channel -> unit) -> unit
(** [write_atomic ~path f] runs [f] on a temp channel, flushes, fsyncs
    and renames the temp file to [path].  On failure the temp file is
    removed and {!Io_error} raised; [path] is never left partial.
    Safe against concurrent writers to the same [path]: temp names are
    unique per process and call, and each rename installs one complete
    file. *)

val read_lines : string -> string list
(** All lines of a file.  Raises {!Io_error} if unreadable. *)
