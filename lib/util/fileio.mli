(** Crash-consistent file I/O.

    Every file ksurf writes that a later run depends on — checkpoints,
    sweep journals, CSV exports, fault plans — goes through
    {!write_atomic}: write to a sibling temp file, flush, atomically
    rename over the destination.  A crash mid-write leaves the previous
    complete file (or nothing), never a truncated one. *)

exception Io_error of string
(** An I/O failure (ENOSPC, permissions, missing directory, …) with the
    affected path.  Raised instead of [Sys_error] so the CLI can map
    file-system trouble to a distinct exit code. *)

val write_atomic : path:string -> (out_channel -> unit) -> unit
(** [write_atomic ~path f] runs [f] on a temp channel, flushes, and
    renames the temp file to [path].  On failure the temp file is
    removed and {!Io_error} raised; [path] is never left partial. *)

val read_lines : string -> string list
(** All lines of a file.  Raises {!Io_error} if unreadable. *)
