(** Deterministic pseudo-random number generation.

    Every stochastic component of ksurf draws from a [Prng.t] stream.
    Streams are based on SplitMix64 and support {e splitting}: deriving an
    independent child stream from a parent and a label.  This gives the
    determinism policy from DESIGN.md §6 — an experiment seeded with [s]
    produces identical results regardless of how many unrelated components
    also consume randomness, because each component owns its own stream. *)

type t
(** A mutable pseudo-random stream. *)

val create : int -> t
(** [create seed] makes a fresh stream from an integer seed. *)

val split : t -> string -> t
(** [split parent label] derives an independent child stream.  The child
    depends only on the parent's {e seed} and [label], not on how much of
    the parent stream has been consumed. *)

val copy : t -> t
(** [copy t] duplicates the stream including its current position. *)

val bits64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n).  Raises [Invalid_argument] if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x). *)

val uniform : t -> float
(** Uniform in \[0, 1). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to \[0,1\]). *)

val pick : t -> 'a array -> 'a
(** Uniformly pick an element.  Raises [Invalid_argument] on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val seed_of : t -> int
(** The seed the stream was created from (stable across consumption). *)

val save : t -> int64 * int
(** [(state, seed)] — the complete stream position, for checkpointing.
    Restoring with {!restore} resumes the stream bit-identically. *)

val restore : state:int64 -> seed:int -> t
(** Rebuild a stream from a {!save}d position. *)
