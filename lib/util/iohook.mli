(** Operation-level hook under every host I/O primitive.

    {!Fileio} consults the ambient handler (if any) before each durable
    I/O operation — open, write, fsync, rename, remove, read, mkdir —
    which lets a test or torture harness observe the exact op stream of
    a writer, inject typed failures (transient [EINTR]/[EAGAIN],
    [ENOSPC] windows, hard [EIO]), tear a write, silently drop an
    fsync, or simulate a process crash at a chosen op.

    The handler is {e domain-local} ([Domain.DLS]): parallel sweep
    workers can each run an isolated fault schedule without seeing each
    other's, and code running with no handler installed pays only a
    [Domain.DLS.get] per operation. *)

type op =
  | Open of { path : string }  (** create/truncate a temp file for writing *)
  | Write of { path : string; content : string }
      (** the complete bytes of one atomic write (consulted after the
          data reached the OS, before it is fsynced) *)
  | Fsync of { path : string }
  | Fsync_dir of { path : string }  (** directory-entry durability *)
  | Rename of { src : string; dst : string }
  | Remove of { path : string }
  | Read of { path : string }
  | Mkdir of { path : string }

type outcome =
  | Proceed  (** perform the operation normally *)
  | Fail of Unix.error
      (** the operation fails with this errno; {!Fileio} retries
          [EINTR]/[EAGAIN] and maps the rest to [Io_error] *)
  | Torn of float
      (** [Write] only: keep this fraction of the bytes, then crash —
          a power-cut mid-write *)
  | Drop
      (** [Fsync]/[Fsync_dir] only: report success without syncing
          (silently-dropped flush); elsewhere equivalent to [Proceed] *)
  | Crash  (** simulated process death before the op takes effect *)

type handler = op -> outcome

exception Crashed of string
(** Simulated process death ({!Crash} or the tail of {!Torn}).  Raised
    through the writer; deliberately {e not} an [Io_error], so cleanup
    paths that a dead process could never run (temp-file removal) are
    skipped, exactly as a real crash would leave them. *)

val path_of : op -> string
(** The primary path the op touches ([src] for renames). *)

val describe : op -> string
(** Human-readable form, used in {!Crashed} payloads and traces. *)

val active : unit -> bool
(** Is a handler installed in this domain? *)

val consult : op -> outcome
(** Ask the ambient handler about [op].  Returns {!Proceed} when no
    handler is installed; raises {!Crashed} on {!Crash}. *)

val with_handler : handler -> (unit -> 'a) -> 'a
(** Install [handler] in this domain for the duration of the callback
    (restoring any previous handler afterwards, so handlers nest). *)
