(** Monotonic wall-clock time.

    [Unix.gettimeofday] deltas are corrupted by NTP steps and manual
    clock changes — a sweep "finishing" in negative seconds, or a
    BENCH_*.json throughput off by the adjustment.  Every duration this
    repo reports (the CLI's [timed], the bench harness, the kpar
    throughput sweep) measures with [CLOCK_MONOTONIC] instead. *)

val monotonic_ns : unit -> int64
(** Nanoseconds on the monotonic clock; the origin is arbitrary — only
    differences are meaningful. *)

val now_s : unit -> float
(** {!monotonic_ns} in seconds. *)

val elapsed_s : since:float -> float
(** Seconds elapsed since a previous {!now_s}. *)
