type t = { mutable state : int64; seed : int }

(* SplitMix64 (Steele, Lea, Flood 2014).  Chosen for speed, full 64-bit
   state, and cheap stream derivation: mixing the seed with a label hash
   yields streams that are independent for all practical purposes. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed); seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* FNV-1a over the label, folded into the parent's seed. *)
let label_hash label =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    label;
  !h

let split t label =
  let child_seed =
    Int64.to_int (mix64 (Int64.logxor (Int64.of_int t.seed) (label_hash label)))
  in
  create child_seed

let copy t = { state = t.state; seed = t.seed }
let seed_of t = t.seed
let save t = (t.state, t.seed)
let restore ~state ~seed = { state; seed }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-50 for n < 2^13,
     and all ksurf bounds are small.  Keep 62 bits so the OCaml int is
     guaranteed non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let uniform t =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. (1.0 /. 9007199254740992.0)

let float t x = uniform t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else uniform t < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
