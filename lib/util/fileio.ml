exception Io_error of string

(* Crash-consistent file replacement: the content is written to a
   sibling temp file, flushed, fsynced, and renamed over the
   destination.  POSIX rename is atomic within a filesystem, so a
   reader (or a crashed writer) observes either the old complete file
   or the new complete file — never a prefix.  The fsync before the
   rename matters: without it the rename can reach disk before the
   data, and a crash then leaves a complete-looking file full of
   zeroes.  The directory fsync after the rename matters just as much:
   the rename is a directory-entry update, and until the directory is
   synced a crash can forget the rename itself, resurrecting the old
   version after the writer reported success.  ENOSPC, EACCES and
   friends surface as [Io_error] with the path, so callers can map
   them to a distinct exit code instead of leaving a truncated file
   behind.

   Every host I/O primitive consults {!Iohook} first, so the kdur
   torture harness can observe the exact op stream and inject typed
   faults.  Transient errno ([EINTR]/[EAGAIN]) — real or injected —
   is absorbed by a bounded retry with exponential backoff; each retry
   re-consults the hook, which is how a transient fault plan clears.

   The temp name carries the pid plus a process-local counter:
   concurrent writers to the same destination (parallel sweep workers,
   or two ksurf processes sharing an export directory) each write their
   own temp file instead of clobbering each other's, and the rename
   race resolves to one complete file. *)

let tmp_seq = Atomic.make 0

let tmp_name path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

let tmp_infix = ".tmp."

let is_tmp_name name =
  let n = String.length name and m = String.length tmp_infix in
  let rec at i = i + m <= n && (String.sub name i m = tmp_infix || at (i + 1)) in
  at 0

let io_error ~path msg =
  Io_error (Printf.sprintf "cannot write %s: %s" path msg)

(* --- transient retry --------------------------------------------------- *)

let max_transient_attempts = 16

let transient_retries_counter = Atomic.make 0

let transient_retries () = Atomic.get transient_retries_counter

let backoff attempt =
  (* 1us doubling to a 1ms cap: sub-20ms worst case over a full retry
     budget, enough to let a real transient condition pass. *)
  Unix.sleepf (Float.min 1e-3 (1e-6 *. Float.of_int (1 lsl Int.min attempt 10)))

let retrying f =
  let rec go attempt =
    try f () with
    | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _)
      when attempt < max_transient_attempts ->
        Atomic.incr transient_retries_counter;
        backoff attempt;
        go (attempt + 1)
  in
  go 0

(* Consult the ambient hook; injected failures become Unix_error so the
   retry/Io_error machinery treats them exactly like real ones. *)
let consult op =
  match Iohook.consult op with
  | Iohook.Fail e -> raise (Unix.Unix_error (e, "ksurf-injected", Iohook.path_of op))
  | verdict -> verdict

(* Directory-entry durability.  Injected faults surface (and retry)
   like any other op; errors from the real fsync are swallowed because
   some filesystems refuse fsync on a directory fd (EINVAL) and there
   is nothing useful a caller can do about it. *)
let fsync_dir dir =
  retrying (fun () ->
      match consult (Iohook.Fsync_dir { path = dir }) with
      | Iohook.Drop -> ()
      | _ -> (
          match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
          | exception Unix.Unix_error _ -> ()
          | fd ->
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())))

let read_all_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomic ~path f =
  let tmp = tmp_name path in
  let remove_tmp () = try Sys.remove tmp with Sys_error _ -> () in
  (* Iohook.Crashed deliberately escapes without remove_tmp: it
     simulates process death, and a dead process cleans nothing up —
     that litter is exactly what recovery must sweep. *)
  (try
     let fd =
       retrying (fun () ->
           ignore (consult (Iohook.Open { path = tmp }));
           Unix.openfile tmp
             [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
             0o644)
     in
     let oc = Unix.out_channel_of_descr fd in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         f oc;
         flush oc;
         if Iohook.active () then begin
           (* Only under a hook: read the bytes back so the handler
              sees the full content (to tear it, or to record it for
              crash-state enumeration). *)
           let content = read_all_raw tmp in
           let len = String.length content in
           retrying (fun () ->
               match consult (Iohook.Write { path = tmp; content }) with
               | Iohook.Torn keep ->
                   let keep_n =
                     Int.max 0
                       (Int.min len (int_of_float (keep *. float_of_int len)))
                   in
                   Unix.ftruncate fd keep_n;
                   raise
                     (Iohook.Crashed
                        (Printf.sprintf "torn write %s (%d/%d bytes)" tmp
                           keep_n len))
               | _ -> ())
         end;
         retrying (fun () ->
             match consult (Iohook.Fsync { path = tmp }) with
             | Iohook.Drop -> () (* silently-dropped fsync *)
             | _ -> Unix.fsync fd))
   with
  | Sys_error msg ->
      remove_tmp ();
      raise (io_error ~path msg)
  | Unix.Unix_error (e, _, _) ->
      remove_tmp ();
      raise (io_error ~path (Unix.error_message e)));
  try
    retrying (fun () ->
        ignore (consult (Iohook.Rename { src = tmp; dst = path }));
        Sys.rename tmp path);
    fsync_dir (Filename.dirname path)
  with
  | Sys_error msg ->
      remove_tmp ();
      raise (Io_error (Printf.sprintf "cannot replace %s: %s" path msg))
  | Unix.Unix_error (e, _, _) ->
      remove_tmp ();
      raise
        (Io_error
           (Printf.sprintf "cannot replace %s: %s" path (Unix.error_message e)))

let rec ensure_dir dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else
    match (Unix.stat dir).Unix.st_kind with
    | Unix.S_DIR -> ()
    | _ -> raise (Io_error (dir ^ ": exists but is not a directory"))
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
        ensure_dir (Filename.dirname dir);
        try
          retrying (fun () ->
              ignore (consult (Iohook.Mkdir { path = dir }));
              try Unix.mkdir dir 0o755
              with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          (* First creation: make the new entry durable, or a crash can
             forget the directory along with everything inside it. *)
          fsync_dir (Filename.dirname dir)
        with Unix.Unix_error (e, _, _) ->
          raise
            (Io_error
               (Printf.sprintf "cannot create directory %s: %s" dir
                  (Unix.error_message e))))
    | exception Unix.Unix_error (e, _, _) ->
        raise
          (Io_error
             (Printf.sprintf "cannot access %s: %s" dir (Unix.error_message e)))

let remove path =
  try
    retrying (fun () ->
        ignore (consult (Iohook.Remove { path }));
        Sys.remove path)
  with
  | Sys_error msg ->
      raise (Io_error (Printf.sprintf "cannot remove %s: %s" path msg))
  | Unix.Unix_error (e, _, _) ->
      raise
        (Io_error
           (Printf.sprintf "cannot remove %s: %s" path (Unix.error_message e)))

let sweep_tmp ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun n entry ->
          if is_tmp_name entry then begin
            remove (Filename.concat dir entry);
            n + 1
          end
          else n)
        0 entries

let read_lines path =
  try
    retrying (fun () ->
        ignore (consult (Iohook.Read { path }));
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec loop acc =
              match input_line ic with
              | line -> loop (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            loop []))
  with
  | Sys_error msg ->
      raise (Io_error (Printf.sprintf "cannot read %s: %s" path msg))
  | Unix.Unix_error (e, _, _) ->
      raise
        (Io_error
           (Printf.sprintf "cannot read %s: %s" path (Unix.error_message e)))
