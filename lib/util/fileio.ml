exception Io_error of string

(* Crash-consistent file replacement: the content is written to a
   sibling temp file, flushed, and renamed over the destination.  POSIX
   rename is atomic within a filesystem, so a reader (or a crashed
   writer) observes either the old complete file or the new complete
   file — never a prefix.  ENOSPC, EACCES and friends surface as
   [Io_error] with the path, so callers can map them to a distinct exit
   code instead of leaving a truncated file behind. *)

let write_atomic ~path f =
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         f oc;
         flush oc)
   with Sys_error msg ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise (Io_error (Printf.sprintf "cannot write %s: %s" path msg)));
  try Sys.rename tmp path
  with Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Io_error (Printf.sprintf "cannot replace %s: %s" path msg))

let read_lines path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line -> loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop [])
  with Sys_error msg ->
    raise (Io_error (Printf.sprintf "cannot read %s: %s" path msg))
