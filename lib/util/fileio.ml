exception Io_error of string

(* Crash-consistent file replacement: the content is written to a
   sibling temp file, flushed, fsynced, and renamed over the
   destination.  POSIX rename is atomic within a filesystem, so a
   reader (or a crashed writer) observes either the old complete file
   or the new complete file — never a prefix.  The fsync before the
   rename matters: without it the rename can reach disk before the
   data, and a crash then leaves a complete-looking file full of
   zeroes.  ENOSPC, EACCES and friends surface as [Io_error] with the
   path, so callers can map them to a distinct exit code instead of
   leaving a truncated file behind.

   The temp name carries the pid plus a process-local counter:
   concurrent writers to the same destination (parallel sweep workers,
   or two ksurf processes sharing an export directory) each write their
   own temp file instead of clobbering each other's, and the rename
   race resolves to one complete file. *)

let tmp_seq = Atomic.make 0

let tmp_name path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

let io_error ~path msg =
  Io_error (Printf.sprintf "cannot write %s: %s" path msg)

let write_atomic ~path f =
  let tmp = tmp_name path in
  let remove_tmp () = try Sys.remove tmp with Sys_error _ -> () in
  (try
     let fd =
       Unix.openfile tmp
         [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
         0o644
     in
     let oc = Unix.out_channel_of_descr fd in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         f oc;
         flush oc;
         Unix.fsync fd)
   with
  | Sys_error msg ->
      remove_tmp ();
      raise (io_error ~path msg)
  | Unix.Unix_error (e, _, _) ->
      remove_tmp ();
      raise (io_error ~path (Unix.error_message e)));
  try Sys.rename tmp path
  with Sys_error msg ->
    remove_tmp ();
    raise (Io_error (Printf.sprintf "cannot replace %s: %s" path msg))

let read_lines path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line -> loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop [])
  with Sys_error msg ->
    raise (Io_error (Printf.sprintf "cannot read %s: %s" path msg))
