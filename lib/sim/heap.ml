(* Parallel-array layout: one unboxed float array for times, int
   arrays for sequence numbers and pids, and one payload array — no
   per-entry record.  A [push]/[drop] pair therefore allocates nothing
   (the old boxed { time; seq; payload } entry was ~6 words per event,
   the single largest allocation on the engine hot path), and the
   accessor API ([top_time]/[top_pid]/[top]/[drop]) lets the engine run
   loop inspect and consume the minimum without materialising the
   [Some (time, payload)] tuple that [pop] builds for compatibility. *)

type 'a t = {
  mutable times : float array;  (* unboxed float array *)
  mutable seqs : int array;
  mutable pids : int array;
  mutable data : 'a array;
  mutable len : int;
}

let create () =
  { times = [||]; seqs = [||]; pids = [||]; data = [||]; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

(* (time, seq) lexicographic: same-time events fire in insertion
   order, which keeps whole-simulation execution deterministic. *)
let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let p = t.pids.(i) in
  t.pids.(i) <- t.pids.(j);
  t.pids.(j) <- p;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let grow t payload =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ntimes = Array.make ncap 0.0 in
    Array.blit t.times 0 ntimes 0 t.len;
    t.times <- ntimes;
    let nseqs = Array.make ncap 0 in
    Array.blit t.seqs 0 nseqs 0 t.len;
    t.seqs <- nseqs;
    let npids = Array.make ncap 0 in
    Array.blit t.pids 0 npids 0 t.len;
    t.pids <- npids;
    (* The payload being pushed doubles as the filler for fresh slots;
       the heap never reads a slot beyond [len]. *)
    let ndata = Array.make ncap payload in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let push t ~time ~seq ~pid payload =
  grow t payload;
  let i = ref t.len in
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.pids.(!i) <- pid;
  t.data.(!i) <- payload;
  t.len <- t.len + 1;
  (* Sift up. *)
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t !i parent
  do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let top_time t = t.times.(0)
let top_pid t = t.pids.(0)
let top t = t.data.(0)

let drop t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.times.(0) <- t.times.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.pids.(0) <- t.pids.(t.len);
    t.data.(0) <- t.data.(t.len);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && before t l !smallest then smallest := l;
      if r < t.len && before t r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done
  end;
  (* Release the payload reference so popped events do not linger past
     their execution (the engine holds the returned payload itself). *)
  if t.len < Array.length t.data then t.data.(t.len) <- t.data.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let time = top_time t and payload = top t in
    drop t;
    Some (time, payload)
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)
