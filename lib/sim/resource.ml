type t = {
  engine : Engine.t;
  name : string;
  capacity : int;
  mutable in_use : int;
  waiters : (unit -> unit) Queue.t;
  wait_stats : Ksurf_util.Welford.t;
  mutable served : int;
}

let create ~engine ~name ~capacity =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  {
    engine;
    name;
    capacity;
    in_use = 0;
    waiters = Queue.create ();
    wait_stats = Ksurf_util.Welford.create ();
    served = 0;
  }

let in_use t = t.in_use
let capacity t = t.capacity
let queue_length t = Queue.length t.waiters
let wait_stats t = t.wait_stats
let served t = t.served

let acquire t =
  let start = Engine.now t.engine in
  if t.in_use < t.capacity then t.in_use <- t.in_use + 1
  else Engine.suspend (fun wake -> Queue.push wake t.waiters);
  (* On wake the releaser has transferred the slot to us. *)
  t.served <- t.served + 1;
  Ksurf_util.Welford.add t.wait_stats (Engine.now t.engine -. start);
  (* Fault-injection point: a hook delay here models a stalled device
     channel — the slot is occupied for longer. *)
  match Engine.acquire_hook t.engine with
  | None -> ()
  | Some hook -> hook Engine.Resource_site t.name

let release t =
  if t.in_use <= 0 then
    invalid_arg (Printf.sprintf "Resource.release: %s is idle" t.name);
  match Queue.take_opt t.waiters with
  | Some wake -> wake () (* slot transfers: in_use unchanged *)
  | None -> t.in_use <- t.in_use - 1

let serve t d =
  acquire t;
  Engine.delay d;
  release t
