(** Bounded event tracing for simulations.

    A fixed-capacity ring of timestamped labels: cheap enough to leave
    on in long runs, and the first tool to reach for when a simulation
    deadlocks or produces a surprising tail — trace the lock sites
    around the anomaly and dump the ring. *)

type t

val create : ?capacity:int -> engine:Engine.t -> unit -> t
(** Default capacity 4096 events.  Raises [Invalid_argument] if
    capacity < 1. *)

val record : t -> string -> unit
(** Stamp the label with the current virtual time.  When full, the
    oldest event is dropped. *)

val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!record}. *)

val events : t -> (float * string) list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded (including dropped ones). *)

val dropped : t -> int
val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One "[time] label" line per retained event. *)

val to_csv : t -> string
(** The retained events as CSV ("time_ns,label" header, oldest first,
    RFC-4180 quoting).  Only retained events appear: when the ring has
    wrapped, the dump starts at the oldest surviving event — diff two
    dumps from the same capacity to line up faulted-run post-mortems. *)

val write_csv : t -> string -> unit
(** [write_csv t path] writes {!to_csv} to [path]. *)
