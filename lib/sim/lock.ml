type t = {
  engine : Engine.t;
  name : string;
  mutable held : bool;
  mutable acquired_at : float;
  waiters : (unit -> unit) Queue.t;
  wait_stats : Ksurf_util.Welford.t;
  hold_stats : Ksurf_util.Welford.t;
  mutable acquisitions : int;
  mutable contended : int;
}

let create ~engine ~name =
  {
    engine;
    name;
    held = false;
    acquired_at = 0.0;
    waiters = Queue.create ();
    wait_stats = Ksurf_util.Welford.create ();
    hold_stats = Ksurf_util.Welford.create ();
    acquisitions = 0;
    contended = 0;
  }

let held t = t.held
let queue_length t = Queue.length t.waiters
let name t = t.name
let acquisitions t = t.acquisitions
let contended_acquisitions t = t.contended
let wait_stats t = t.wait_stats
let hold_stats t = t.hold_stats

(* Probe events are emitted at *intent* time — before any blocking — so
   a lock-order analyzer sees the acquisition order even when a request
   deadlocks and never completes (exactly what it exists to catch). *)
let emit t op =
  Engine.emit t.engine
    (Engine.Sync
       {
         now = Engine.now t.engine;
         pid = Engine.current_pid t.engine;
         name = t.name;
         op;
       })

let acquire t =
  let start = Engine.now t.engine in
  if Engine.observed t.engine then
    emit t (Engine.Acquire { contended = t.held });
  if not t.held then t.held <- true
  else begin
    t.contended <- t.contended + 1;
    Engine.suspend (fun wake -> Queue.push wake t.waiters)
    (* On resume the releaser has transferred ownership to us:
       [t.held] is still true and we are the owner. *)
  end;
  t.acquisitions <- t.acquisitions + 1;
  t.acquired_at <- Engine.now t.engine;
  Ksurf_util.Welford.add t.wait_stats (Engine.now t.engine -. start);
  (* Fault-injection point: the hook runs while we own the lock, so any
     [Engine.delay] it performs stretches the critical section
     (lock-holder preemption).  [acquired_at] is already set, keeping
     the stretch inside the recorded hold time. *)
  match Engine.acquire_hook t.engine with
  | None -> ()
  | Some hook -> hook Engine.Lock_site t.name

let release t =
  if Engine.observed t.engine then emit t Engine.Release;
  if not t.held then
    invalid_arg (Printf.sprintf "Lock.release: %s is not held" t.name);
  Ksurf_util.Welford.add t.hold_stats (Engine.now t.engine -. t.acquired_at);
  match Queue.take_opt t.waiters with
  | Some wake ->
      (* Ownership transfer: the lock stays held for the waiter. *)
      t.acquired_at <- Engine.now t.engine;
      wake ()
  | None -> t.held <- false

let with_hold t d =
  acquire t;
  Engine.delay d;
  release t

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception exn ->
      release t;
      raise exn
