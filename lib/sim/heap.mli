(** Binary min-heap of timestamped events.

    Ordering is (time, sequence number): two events at the same virtual
    time fire in insertion order, which makes whole-simulation execution
    deterministic (DESIGN.md §6).

    The layout is allocation-free on the hot path: times, sequence
    numbers, pids and payloads live in parallel arrays (the float array
    is unboxed), so a [push]/[drop] pair allocates nothing.  The engine
    consumes events through the [top_*]/[drop] accessors; [pop] and
    [peek_time] remain as boxing conveniences for tests and
    microbenchmarks. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> pid:int -> 'a -> unit
(** [pid] rides alongside the payload so the engine can attribute the
    event to a logical process without wrapping the payload in a
    closure; callers that don't track processes pass [~pid:0]. *)

val top_time : 'a t -> float
(** Time of the earliest event.  Undefined on an empty heap — check
    {!is_empty} first. *)

val top_pid : 'a t -> int
(** Pid of the earliest event.  Undefined on an empty heap. *)

val top : 'a t -> 'a
(** Payload of the earliest event, without removing it.  Undefined on
    an empty heap. *)

val drop : 'a t -> unit
(** Remove the earliest event.  Must not be called on an empty heap. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event.  Allocates; the engine uses
    {!top_time}/{!top_pid}/{!top}/{!drop} instead. *)

val peek_time : 'a t -> float option
