(** The discrete-event simulation engine.

    Processes are ordinary OCaml functions executed under an effect
    handler.  Inside a process, {!delay} advances virtual time and
    {!suspend} parks the process until an external wake; everything else
    is plain code.  The engine is single-domain and fully deterministic:
    events at equal times fire in creation order, and all randomness
    flows through the engine's {!Ksurf_util.Prng.t} streams.

    Typical use:
    {[
      let eng = Engine.create ~seed:42 () in
      Engine.spawn eng (fun () ->
        Engine.delay 100.0;
        Format.printf "woke at %f@." (Engine.now eng));
      Engine.run eng
    ]} *)

type t

(** Probe events, in engine order.  Emitted only while at least one
    probe is registered (see {!add_probe}); the instrumented hot paths
    are otherwise untouched.  [pid] identifies the simulated process
    (0 outside any process), [token] a single suspension. *)
type event_info =
  | Scheduled of { now : float; at : float; pid : int }
  | Executed of { now : float; pid : int }
  | Suspended of { now : float; pid : int; token : int }
  | Woken of { now : float; pid : int; token : int }
  | Sync of { now : float; pid : int; name : string; op : sync_op }
  | Injected of { now : float; pid : int; fault : string; magnitude : float }
      (** A fault injector (kfault) perturbed the simulation.  [fault]
          names the mechanism (e.g. ["syscall-eagain"],
          ["lock-preemption"]), [magnitude] its size in natural units
          (stretch ns, hold multiplier, errno-coded as 0/1, …).  Flows
          through the same probe stream as every other event, so the
          determinism checker hashes injections along with the behaviour
          they cause. *)
  | Denied of { now : float; pid : int; syscall : string; enforced : bool }
      (** A kernel-specialization policy (kspec) rejected [syscall] for
          the calling tenant.  [enforced] is [true] when the call failed
          with ENOSYS (Enforce mode) and [false] when it was only logged
          (Audit mode).  Probe-visible so the determinism checker hashes
          denials and sanitizer scenarios can assert specialized runs
          are violation-free. *)
  | Rank_transition of {
      now : float;
      pid : int;
      rank : int;
      from_state : string;
      to_state : string;
      incident : int;
    }
      (** A failure detector (krecov) reclassified monitored [rank]
          ([from_state] → [to_state], each one of ["alive"], ["suspect"],
          ["dead"]).  [incident] numbers the crash/recovery episode so
          sanitizer scenarios can assert each transition appears exactly
          once per incident. *)

(** Synchronisation-primitive operations, reported by {!Lock},
    {!Rwlock} and {!Barrier} through their engine.  Acquire events are
    emitted at {e intent} time — before any blocking — so deadlocked
    acquisitions still reach the probes. *)
and sync_op =
  | Acquire of { contended : bool }
  | Release
  | Read_acquire of { contended : bool }
  | Read_release
  | Write_acquire of { contended : bool }
  | Write_release
  | Barrier_arrive of { generation : int; arrived : int; parties : int }
  | Barrier_release of { generation : int }
  | Barrier_depart of { generation : int; parties : int }
      (** A party permanently left the barrier ({!Barrier.depart});
          [parties] is the new, smaller membership. *)

(** Where a fault-injection acquire hook fired: a {!Lock} or a
    {!Resource} slot. *)
type acquire_site = Lock_site | Resource_site

val create : ?seed:int -> unit -> t
(** Fresh engine at virtual time 0 (nanoseconds by ksurf convention). *)

val add_probe : t -> (event_info -> unit) -> unit
(** Register an observer called synchronously on every {!event_info}.
    Probes must not call back into the engine. *)

val clear_probes : t -> unit

val observed : t -> bool
(** [true] iff at least one probe is registered — instrumented call
    sites use this to skip event construction entirely. *)

val emit : t -> event_info -> unit
(** Deliver an event to every registered probe (no-op when none).
    Exposed for the sync primitives; ordinary code never calls it. *)

val current_pid : t -> int
(** Pid of the currently executing process, or 0 outside processes. *)

val set_acquire_hook : t -> (acquire_site -> string -> unit) option -> unit
(** Install (or clear) the fault-injection acquire hook.  {!Lock} and
    {!Resource} call it in process context immediately after a
    successful acquisition, passing the site kind and the primitive's
    name, so the hook may stretch the critical section with {!delay} —
    lock-holder preemption.  At most one hook; [None] restores the
    zero-cost default. *)

val acquire_hook : t -> (acquire_site -> string -> unit) option
(** The installed hook, consulted by the sync primitives. *)

val now : t -> float
val rng : t -> Ksurf_util.Prng.t
(** The engine's root random stream; components should [Prng.split] it. *)

val spawn : ?at:float -> t -> (unit -> unit) -> unit
(** Schedule a new process.  [at] defaults to the current time and must
    not be in the past. *)

val delay : float -> unit
(** Advance the calling process's virtual time.  Negative delays raise.
    Must be called from inside a process. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and hands [register] a
    wake function.  Calling the wake function reschedules the process at
    the then-current virtual time; waking twice raises [Failure]. *)

val run :
  ?until:float ->
  ?stop:(unit -> bool) ->
  ?deadline:float ->
  ?stall_limit:int ->
  t ->
  unit
(** Drain the event queue (or stop once the next event is later than
    [until]).  [stop] is polled before each event: returning [true]
    halts the run — the way harnesses terminate measurement while
    infinite background daemons still hold queued events.  May be called
    repeatedly as more work is spawned.

    Liveness watchdog (krecov): [deadline] raises {!Hung} if the next
    event lies beyond that virtual time — unlike [until], which stops
    silently, a deadline overrun is treated as a wedged simulation and
    aborts with a diagnostic naming the parked processes.  [stall_limit]
    raises {!Hung} after more than that many consecutive events execute
    without virtual time advancing (zero-delay wake loops, livelock). *)

val blocked : t -> (int * int * float) list
(** Parked suspensions as [(pid, token, since)] triples, sorted.  A
    process appears here from {!suspend} until its wake fires — the raw
    material of the {!Hung} diagnostic, exposed for supervisors and
    tests. *)

val pending : t -> int
(** Number of queued events, for diagnostics and tests. *)

val events_executed : t -> int
(** Total events fired since creation. *)

exception Process_error of string * exn
(** Wraps an exception escaping a process with a description of when it
    fired. *)

exception Hung of string
(** Raised by {!run} when the liveness watchdog trips ([deadline] or
    [stall_limit]).  The payload is a human-readable diagnostic: virtual
    time, why the watchdog fired, pending-event count, and the parked
    processes that will never run again. *)
