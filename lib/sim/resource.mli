(** Capacity-[n] queueing station.

    Generalises {!Lock} to [n] concurrent holders.  Models block-device
    queues, memory channels, and the host-side virtio service threads:
    anything where up to [n] requests proceed in parallel and the rest
    queue FIFO. *)

type t

val create : engine:Engine.t -> name:string -> capacity:int -> t
(** Raises [Invalid_argument] if capacity < 1. *)

val acquire : t -> unit

val release : t -> unit
(** Raises [Invalid_argument] (naming the station) if no slot is in
    use. *)

val serve : t -> float -> unit
(** [serve r d] acquires a slot, holds it for [d] ns, releases. *)

val in_use : t -> int
val capacity : t -> int
val queue_length : t -> int
val wait_stats : t -> Ksurf_util.Welford.t
val served : t -> int
