(** FIFO mutual-exclusion lock with contention accounting.

    Models both spinlocks and sleeping locks from the simulation's point
    of view: the caller's virtual time is consumed by queueing delay.
    Ownership transfers directly to the next waiter on release, so the
    lock is fair and the wait time of each acquirer is exactly the
    remaining hold time of everyone ahead of it — the emergent source of
    software-contention variability in the kernel model. *)

type t

val create : engine:Engine.t -> name:string -> t

val acquire : t -> unit
(** Block (in virtual time) until the lock is owned by the caller. *)

val release : t -> unit
(** Raises [Invalid_argument] (naming the lock) if it is not held. *)

val with_hold : t -> float -> unit
(** [with_hold l d] acquires, holds for [d] nanoseconds, releases.  The
    canonical "critical section of length d" operation. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run a function while holding the lock (releases on exception too). *)

val held : t -> bool
val queue_length : t -> int
val name : t -> string

(** Accounting, reset-free since engine creation: *)

val acquisitions : t -> int
val contended_acquisitions : t -> int
val wait_stats : t -> Ksurf_util.Welford.t
(** Wait time per acquisition (0 for uncontended). *)

val hold_stats : t -> Ksurf_util.Welford.t
(** Hold durations as observed between acquire and release. *)
