(** Reusable n-party barrier.

    The varbench harness inserts one of these between every system-call
    program so that all ranks issue the next program at the same virtual
    time; the cluster harness uses one per BSP iteration.  Reusable in
    the generation-counting sense: a party arriving "early" for the next
    round simply joins the next generation. *)

type t

val create : engine:Engine.t -> name:string -> parties:int -> t
(** Raises [Invalid_argument] if parties < 1. *)

val arrive : t -> unit
(** Block until all [parties] processes have arrived for this
    generation, then all are released at the same virtual time. *)

val arrive_with_cost : t -> per_party_cost:float -> unit
(** Like {!arrive} but adds a synchronisation cost after release —
    models the latency of an MPI barrier over the virtual network. *)

val depart : t -> unit
(** Permanently remove one party — a crashed or dropped rank.  Future
    generations wait for one fewer arrival, and if the current
    generation was only waiting for the departing party it is released
    immediately.  The departing process must {e not} also call
    {!arrive} for the round it abandons.  Raises [Invalid_argument] if
    the barrier would be left with no parties. *)

val generation : t -> int
(** Completed generations, for tests. *)

val waiting : t -> int

val parties : t -> int
(** Current membership (shrinks on {!depart}). *)
