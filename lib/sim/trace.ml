type t = {
  engine : Engine.t;
  ring : (float * string) array;
  mutable head : int;  (* next write position *)
  mutable recorded : int;
}

let create ?(capacity = 4096) ~engine () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { engine; ring = Array.make capacity (0.0, ""); head = 0; recorded = 0 }

let record t label =
  t.ring.(t.head) <- (Engine.now t.engine, label);
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.recorded <- t.recorded + 1

let recordf t fmt = Format.kasprintf (record t) fmt

let retained t = min t.recorded (Array.length t.ring)

let events t =
  let n = retained t in
  let cap = Array.length t.ring in
  let start = (t.head - n + cap + cap) mod cap in
  List.init n (fun i -> t.ring.((start + i) mod cap))

let recorded t = t.recorded
let dropped t = t.recorded - retained t

let clear t =
  t.head <- 0;
  t.recorded <- 0

let pp ppf t =
  List.iter
    (fun (time, label) -> Format.fprintf ppf "[%12.1f] %s@." time label)
    (events t)

(* RFC-4180 field quoting, local so ksurf_sim keeps no report-layer
   dependency. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "time_ns,label\n";
  List.iter
    (fun (time, label) ->
      Buffer.add_string buf (Printf.sprintf "%.1f,%s\n" time (csv_field label)))
    (events t);
  Buffer.contents buf

let write_csv t path =
  Ksurf_util.Fileio.write_atomic ~path (fun oc -> output_string oc (to_csv t))
