type t = {
  engine : Engine.t;
  name : string;
  mutable parties : int;
  mutable arrived : int;
  mutable generation : int;
  waiters : (unit -> unit) Queue.t;
}

let create ~engine ~name ~parties =
  if parties < 1 then invalid_arg "Barrier.create: parties must be >= 1";
  { engine; name; parties; arrived = 0; generation = 0; waiters = Queue.create () }

let generation t = t.generation
let waiting t = t.arrived
let parties t = t.parties

let emit t op =
  Engine.emit t.engine
    (Engine.Sync
       {
         now = Engine.now t.engine;
         pid = Engine.current_pid t.engine;
         name = t.name;
         op;
       })

let arrive t =
  t.arrived <- t.arrived + 1;
  if Engine.observed t.engine then
    emit t
      (Engine.Barrier_arrive
         { generation = t.generation; arrived = t.arrived; parties = t.parties });
  if t.arrived < t.parties then Engine.suspend (fun wake -> Queue.push wake t.waiters)
  else begin
    (* Last arrival: release everyone, start a new generation. *)
    t.arrived <- 0;
    t.generation <- t.generation + 1;
    if Engine.observed t.engine then
      emit t (Engine.Barrier_release { generation = t.generation });
    Queue.iter (fun wake -> wake ()) t.waiters;
    Queue.clear t.waiters
  end

let depart t =
  if t.parties <= 1 then
    invalid_arg
      (Printf.sprintf "Barrier.depart: %s would have no parties left" t.name);
  t.parties <- t.parties - 1;
  if Engine.observed t.engine then
    emit t
      (Engine.Barrier_depart { generation = t.generation; parties = t.parties });
  (* The departing party may have been the only arrival the current
     generation was still waiting for: release it now so survivors do
     not deadlock.  Identical to [arrive]'s last-arrival branch, minus
     the extra arrival. *)
  if t.arrived >= t.parties then begin
    t.arrived <- 0;
    t.generation <- t.generation + 1;
    if Engine.observed t.engine then
      emit t (Engine.Barrier_release { generation = t.generation });
    Queue.iter (fun wake -> wake ()) t.waiters;
    Queue.clear t.waiters
  end

let arrive_with_cost t ~per_party_cost =
  arrive t;
  if per_party_cost > 0.0 then
    (* Dissemination-style barrier: log2(parties) network rounds. *)
    let rounds = Float.log (float_of_int t.parties) /. Float.log 2.0 in
    Engine.delay (per_party_cost *. Float.max 1.0 (Float.ceil rounds))
