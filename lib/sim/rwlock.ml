type waiter = Read of (unit -> unit) | Write of (unit -> unit)

type t = {
  engine : Engine.t;
  name : string;
  mutable readers : int;
  mutable writer : bool;
  queue : waiter Queue.t;
  wait_stats : Ksurf_util.Welford.t;
}

let create ~engine ~name =
  {
    engine;
    name;
    readers = 0;
    writer = false;
    queue = Queue.create ();
    wait_stats = Ksurf_util.Welford.create ();
  }

let readers t = t.readers
let writer_held t = t.writer
let wait_stats t = t.wait_stats

let record_wait t start =
  Ksurf_util.Welford.add t.wait_stats (Engine.now t.engine -. start)

(* Like Lock, probe events fire at intent time, before blocking. *)
let emit t op =
  Engine.emit t.engine
    (Engine.Sync
       {
         now = Engine.now t.engine;
         pid = Engine.current_pid t.engine;
         name = t.name;
         op;
       })

(* A write waiter anywhere in the queue blocks new readers (writer
   preference), preventing writer starvation under read-heavy load. *)
let write_waiting t =
  Queue.fold (fun acc w -> acc || match w with Write _ -> true | Read _ -> false)
    false t.queue

let acquire_read t =
  let start = Engine.now t.engine in
  let granted = (not t.writer) && not (write_waiting t) in
  if Engine.observed t.engine then
    emit t (Engine.Read_acquire { contended = not granted });
  if granted then t.readers <- t.readers + 1
  else Engine.suspend (fun wake -> Queue.push (Read wake) t.queue);
  record_wait t start

let acquire_write t =
  let start = Engine.now t.engine in
  let granted = (not t.writer) && t.readers = 0 && Queue.is_empty t.queue in
  if Engine.observed t.engine then
    emit t (Engine.Write_acquire { contended = not granted });
  if granted then t.writer <- true
  else Engine.suspend (fun wake -> Queue.push (Write wake) t.queue);
  record_wait t start

(* Grant the lock to as many queued waiters as compatible: either the
   front writer alone, or the maximal prefix of readers. *)
let drain t =
  if t.writer || t.readers > 0 then ()
  else
    match Queue.peek_opt t.queue with
    | None -> ()
    | Some (Write _) -> (
        match Queue.pop t.queue with
        | Write wake ->
            t.writer <- true;
            wake ()
        | Read _ -> assert false)
    | Some (Read _) ->
        let rec grant_reads () =
          match Queue.peek_opt t.queue with
          | Some (Read _) -> (
              match Queue.pop t.queue with
              | Read wake ->
                  t.readers <- t.readers + 1;
                  wake ();
                  grant_reads ()
              | Write _ -> assert false)
          | Some (Write _) | None -> ()
        in
        grant_reads ()

let release_read t =
  if Engine.observed t.engine then emit t Engine.Read_release;
  if t.readers <= 0 then
    invalid_arg
      (Printf.sprintf "Rwlock.release_read: %s has no readers" t.name);
  t.readers <- t.readers - 1;
  drain t

let release_write t =
  if Engine.observed t.engine then emit t Engine.Write_release;
  if not t.writer then
    invalid_arg
      (Printf.sprintf "Rwlock.release_write: %s has no writer" t.name);
  t.writer <- false;
  drain t

let with_read t d =
  acquire_read t;
  Engine.delay d;
  release_read t

let with_write t d =
  acquire_write t;
  Engine.delay d;
  release_write t
