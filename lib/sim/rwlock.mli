(** Reader-writer lock (writer-preferring, FIFO within each class).

    Models structures like [mmap_sem]: page faults take it for reading
    concurrently, while [mmap]/[munmap]/[mprotect] take it for writing
    and exclude everyone — the mechanism behind memory-management
    variability spikes in the kernel model. *)

type t

val create : engine:Engine.t -> name:string -> t

val acquire_read : t -> unit

val release_read : t -> unit
(** Raises [Invalid_argument] (naming the lock) if no reader holds it. *)

val acquire_write : t -> unit

val release_write : t -> unit
(** Raises [Invalid_argument] (naming the lock) if no writer holds it. *)

val with_read : t -> float -> unit
(** Hold for reading for a fixed duration. *)

val with_write : t -> float -> unit
(** Hold for writing for a fixed duration. *)

val readers : t -> int
val writer_held : t -> bool
val wait_stats : t -> Ksurf_util.Welford.t
