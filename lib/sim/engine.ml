(* A queued event is either a plain thunk (spawns, explicit schedules)
   or a suspended-process continuation (delay expiries, suspension
   wakes).  Storing the continuation directly — rather than a
   [fun () -> continue k ()] wrapper — keeps the delay/wake hot path
   from allocating a closure per event; together with the
   parallel-array heap this makes scheduling itself allocation-free.
   The executing pid travels in the heap's int channel, so there is no
   per-event record tying (pid, job) together either. *)
type job =
  | Thunk of (unit -> unit)
  | Cont of (unit, unit) Effect.Deep.continuation

type t = {
  mutable now : float;
  mutable seq : int;
  heap : job Heap.t;
  root_rng : Ksurf_util.Prng.t;
  mutable executed : int;
  (* Observer layer: analyzers (lockdep, determinism, invariants)
     register probes; the hot path only pays when one is attached. *)
  mutable probes : (event_info -> unit) list;
  (* Process identity: every [spawn] gets a fresh pid, and continuations
     (delay/suspend wake-ups) run under the pid that created them, so
     probes can attribute lock operations to logical processes. *)
  mutable cur_pid : int;
  mutable next_pid : int;
  mutable next_token : int;
  (* Fault-injection layer: kfault installs a hook that runs in process
     context right after a Lock/Resource acquisition succeeds, so it may
     stretch the critical section with [delay].  None (the default)
     costs one load on the acquire path. *)
  mutable acquire_hook : (acquire_site -> string -> unit) option;
  (* Liveness accounting (krecov): every parked suspension is tracked so
     a watchdog abort can name the processes that will never run again.
     Maintained unconditionally — one hashtable op per suspend/wake. *)
  parked : (int, int * float) Hashtbl.t;  (* token -> (pid, since) *)
}

and acquire_site = Lock_site | Resource_site

(* Probe events.  Synchronization primitives (lock.ml, rwlock.ml,
   barrier.ml) funnel their events through the engine so one
   [add_probe] observes a whole simulation; the types live here to
   avoid dependency cycles inside the library. *)
and event_info =
  | Scheduled of { now : float; at : float; pid : int }
      (** an event was pushed on the heap, to run as [pid] *)
  | Executed of { now : float; pid : int }
      (** a heap event started executing *)
  | Suspended of { now : float; pid : int; token : int }
      (** [pid] parked on a wait queue; [token] identifies the suspension *)
  | Woken of { now : float; pid : int; token : int }
      (** suspension [token] was woken *)
  | Sync of { now : float; pid : int; name : string; op : sync_op }
      (** a synchronization-primitive operation on primitive [name] *)
  | Injected of { now : float; pid : int; fault : string; magnitude : float }
      (** a fault injector (kfault) perturbed the simulation; [fault]
          names the mechanism, [magnitude] its size in natural units *)
  | Denied of { now : float; pid : int; syscall : string; enforced : bool }
      (** a specialization policy (kspec) rejected a system call;
          [enforced] distinguishes ENOSYS failures from audit-only logs *)
  | Rank_transition of {
      now : float;
      pid : int;
      rank : int;
      from_state : string;
      to_state : string;
      incident : int;
    }
      (** a failure detector (krecov) reclassified a monitored rank;
          [incident] groups the transitions of one crash/recovery episode *)

and sync_op =
  | Acquire of { contended : bool }
  | Release
  | Read_acquire of { contended : bool }
  | Read_release
  | Write_acquire of { contended : bool }
  | Write_release
  | Barrier_arrive of { generation : int; arrived : int; parties : int }
  | Barrier_release of { generation : int }
  | Barrier_depart of { generation : int; parties : int }

exception Process_error of string * exn
exception Hung of string

type _ Effect.t +=
  | Delay : t * float -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

(* The engine whose handler is currently executing a process.  Effects
   carry the engine explicitly so nested engines (e.g. per-node cluster
   simulations driven from a parent program) never interfere; the
   ambient reference only serves the argumentless [delay]/[suspend]
   public API.  Domain-local, not global: independent engines running
   concurrently on worker domains (Ksurf_par sweep cells) must not
   clobber each other's ambient engine. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let get_current () = Domain.DLS.get current_key
let set_current v = Domain.DLS.set current_key v

let create ?(seed = 0) () =
  {
    now = 0.0;
    seq = 0;
    heap = Heap.create ();
    root_rng = Ksurf_util.Prng.create seed;
    executed = 0;
    probes = [];
    cur_pid = 0;
    next_pid = 0;
    next_token = 0;
    acquire_hook = None;
    parked = Hashtbl.create 16;
  }

let now t = t.now
let rng t = t.root_rng
let pending t = Heap.size t.heap
let events_executed t = t.executed

let add_probe t probe = t.probes <- t.probes @ [ probe ]
let clear_probes t = t.probes <- []
let observed t = t.probes <> []
let emit t info = List.iter (fun probe -> probe info) t.probes
let current_pid t = t.cur_pid
let set_acquire_hook t hook = t.acquire_hook <- hook
let acquire_hook t = t.acquire_hook

let schedule_job t ~pid ~at job =
  (* Emit before validating so a sanitizer records the violation even
     though the engine still refuses it. *)
  if observed t then emit t (Scheduled { now = t.now; at; pid });
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now %g" at t.now);
  t.seq <- t.seq + 1;
  Heap.push t.heap ~time:at ~seq:t.seq ~pid job

let schedule_pid t ~pid ~at thunk = schedule_job t ~pid ~at (Thunk thunk)

(* Execute one dequeued event under its pid.  The pid save/restore and
   the [Executed] probe used to live in a per-event wrapper closure;
   doing them here in the dispatch loop costs the same work without the
   per-event allocation. *)
let exec_job t ~pid job =
  let saved = t.cur_pid in
  t.cur_pid <- pid;
  if observed t then emit t (Executed { now = t.now; pid });
  match (match job with Thunk f -> f () | Cont k -> Effect.Deep.continue k ()) with
  | () -> t.cur_pid <- saved
  | exception exn ->
      t.cur_pid <- saved;
      raise exn

let handle t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun exn ->
          raise (Process_error (Printf.sprintf "at t=%g" t.now, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (eng, d) when eng == t ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule_job t ~pid:t.cur_pid ~at:(t.now +. d) (Cont k))
          | Suspend (eng, register) when eng == t ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let pid = t.cur_pid in
                  t.next_token <- t.next_token + 1;
                  let token = t.next_token in
                  Hashtbl.replace t.parked token (pid, t.now);
                  if observed t then
                    emit t (Suspended { now = t.now; pid; token });
                  let woken = ref false in
                  let wake () =
                    if observed t then emit t (Woken { now = t.now; pid; token });
                    if !woken then failwith "Engine: process woken twice";
                    woken := true;
                    Hashtbl.remove t.parked token;
                    (* The continuation resumes under the suspended
                       process's pid, not the waker's. *)
                    schedule_job t ~pid ~at:t.now (Cont k)
                  in
                  register wake)
          | _ -> None);
    }

let spawn ?at t f =
  let at = match at with Some a -> a | None -> t.now in
  t.next_pid <- t.next_pid + 1;
  let pid = t.next_pid in
  schedule_pid t ~pid ~at (fun () -> handle t f)

let engine_of_process name =
  match get_current () with
  | Some t -> t
  | None -> failwith (name ^ ": called outside of a simulation process")

let delay d =
  if d < 0.0 then invalid_arg "Engine.delay: negative";
  if d = 0.0 then ()
  else begin
    let t = engine_of_process "Engine.delay" in
    Effect.perform (Delay (t, d))
  end

let suspend register =
  let t = engine_of_process "Engine.suspend" in
  Effect.perform (Suspend (t, register))

let blocked t =
  Hashtbl.fold (fun token (pid, since) acc -> (pid, token, since) :: acc) t.parked []
  |> List.sort compare

let hung_diagnostic t ~reason =
  let parked = blocked t in
  let parked_desc =
    match parked with
    | [] -> "no parked processes"
    | ps ->
        let shown = if List.length ps > 8 then (List.filteri (fun i _ -> i < 8) ps) else ps in
        let body =
          shown
          |> List.map (fun (pid, token, since) ->
                 Printf.sprintf "pid %d (token %d, parked since t=%g)" pid token
                   since)
          |> String.concat "; "
        in
        let extra = List.length ps - List.length shown in
        Printf.sprintf "%d parked: %s%s" (List.length ps) body
          (if extra > 0 then Printf.sprintf "; ... %d more" extra else "")
  in
  Printf.sprintf
    "Engine hung at t=%g (%s): %d runnable event(s) pending, %s" t.now reason
    (Heap.size t.heap) parked_desc

let run ?until ?stop ?deadline ?stall_limit t =
  let saved = get_current () in
  set_current (Some t);
  (* No-progress detection: count consecutive executed events that fail to
     advance virtual time; a livelocked simulation (wake loops, zero-delay
     ping-pong) trips [stall_limit] long before wall-clock patience runs
     out, and the abort names the parked processes. *)
  let stall_at = ref t.now in
  let stalled = ref 0 in
  Fun.protect
    ~finally:(fun () -> set_current saved)
    (fun () ->
      (* The loop reads the heap through the non-allocating accessors
         ([top_time]/[top_pid]/[top]/[drop]): with [Heap.push] also
         allocation-free, a probe-less engine executes timer events
         without a single minor-heap word from the dispatch machinery
         itself — what keeps multi-domain sweeps from serialising on
         stop-the-world minor collections (DESIGN §6). *)
      let continue = ref true in
      while !continue do
        if (match stop with Some f -> f () | None -> false) then continue := false
        else if Heap.is_empty t.heap then continue := false
        else begin
          let time = Heap.top_time t.heap in
          if match until with Some u -> time > u | None -> false then
            continue := false
          else if match deadline with Some d -> time > d | None -> false then begin
            t.now <- (match deadline with Some d -> d | None -> t.now);
            raise
              (Hung
                 (hung_diagnostic t
                    ~reason:
                      (Printf.sprintf
                         "virtual-time deadline %g exceeded by next event at %g"
                         (Option.get deadline) time)))
          end
          else begin
            let pid = Heap.top_pid t.heap in
            let job = Heap.top t.heap in
            Heap.drop t.heap;
            t.now <- time;
            t.executed <- t.executed + 1;
            (match stall_limit with
            | None -> ()
            | Some limit ->
                if time > !stall_at then begin
                  stall_at := time;
                  stalled := 0
                end
                else begin
                  incr stalled;
                  if !stalled > limit then
                    raise
                      (Hung
                         (hung_diagnostic t
                            ~reason:
                              (Printf.sprintf
                                 "no progress: %d consecutive events at t=%g"
                                 !stalled time)))
                end);
            exec_job t ~pid job
          end
        end
      done;
      match until with
      | Some u when u > t.now && Heap.is_empty t.heap -> t.now <- u
      | _ -> ())
