type klass = Native | Docker | Kvm | Multikernel

type t = Static of klass | Adaptive

let klass_name = function
  | Native -> "native"
  | Docker -> "docker"
  | Kvm -> "kvm"
  | Multikernel -> "multikernel"

let name = function
  | Static Native -> "native-shared"
  | Static Docker -> "docker"
  | Static Kvm -> "kvm"
  | Static Multikernel -> "multikernel"
  | Adaptive -> "adaptive"

let all =
  [ Static Native; Static Docker; Static Kvm; Static Multikernel; Adaptive ]

let names = List.map name all

let of_string s = List.find_opt (fun p -> name p = s) all

let initial_klass = function Static k -> k | Adaptive -> Docker

let escalation t klass =
  match (t, klass) with
  | Adaptive, Docker -> Some Multikernel
  | Adaptive, _ | Static _, _ -> None
