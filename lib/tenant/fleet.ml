module Engine = Ksurf_sim.Engine
module Mailbox = Ksurf_sim.Mailbox
module Prng = Ksurf_util.Prng
module Dist = Ksurf_util.Dist
module Streamstat = Ksurf_stats.Streamstat
module P2 = Ksurf_stats.P2_quantile
module Instance = Ksurf_kernel.Instance
module Kernel = Ksurf_kernel.Kernel
module Config = Ksurf_kernel.Config
module Ops = Ksurf_kernel.Ops
module Container = Ksurf_container.Container
module Vm = Ksurf_virt.Vm
module Virt_config = Ksurf_virt.Virt_config
module Spec = Ksurf_syscalls.Spec

type config = {
  tenants : int;
  churn_per_day : float;
  policy : Policy.t;
  seed : int;
  hosts : int;  (* 0 = one host per 128 tenant slots *)
  host_cores : int;
  host_mem_mb : int;
  day_ns : float;
  days : float;
  warmup_fraction : float;
  mean_rate_per_s : float;
  epoch_ns : float;
  slo_ns : float;
  max_replicas : int;
  escalate_after : int;
  min_epoch_samples : int;
  min_tenant_samples : int;
  request_target : int option;
  kernel_config : Config.t;
  virt : Virt_config.t;
}

let default_config =
  {
    tenants = 128;
    churn_per_day = 4.0;
    policy = Policy.Static Policy.Docker;
    seed = 42;
    hosts = 0;
    host_cores = 64;
    host_mem_mb = 262_144;
    day_ns = 2e9;
    days = 1.0;
    warmup_fraction = 0.1;
    mean_rate_per_s = 25.0;
    epoch_ns = 1e8;
    slo_ns = 2.5e5;
    max_replicas = 4;
    escalate_after = 3;
    min_epoch_samples = 8;
    min_tenant_samples = 20;
    request_target = None;
    kernel_config = Config.default;
    virt = Virt_config.default;
  }

type result = {
  policy : string;
  tenants : int;
  churn_per_day : float;
  completed : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  slo_ns : float;
  measured : int;
  slo_met : int;
  attainment : float;
  epoch_violations : int;
  arrivals : int;
  departures : int;
  cgroup_creates : int;
  cgroup_destroys : int;
  migrations : int;
  scale_ups : int;
  scale_downs : int;
  replica_imbalance : int;
  peak_cgroups : int;
  final_native : int;
  final_docker : int;
  final_kvm : int;
  final_mk : int;
  virtual_ns : float;
}

type host = { inst : Instance.t; mutable sharers : int }

type placement =
  | Shared of host
  | Contained of host * int  (* host, cgroup id *)
  | Virtual of Vm.t
  | Private of Instance.t

type tenant = {
  id : int;
  slot : int;
  profile : Workload.profile;
  client_rng : Prng.t;
  work_rng : Prng.t;
  mailbox : float Mailbox.t;
  mutable klass : Policy.klass;
  mutable placement : placement;
  mutable alive : bool;
  mutable target_replicas : int;
  mutable next_replica : int;  (* replica-id generator (core striping) *)
  mutable pending_retire : int;  (* scale-downs not yet honoured *)
  mutable serving : int;  (* replica fibers not yet retired *)
  mutable bad_epochs : int;
  stats : Streamstat.t;  (* streaming: lifetime post-warmup latencies *)
  mutable epoch_p99 : P2.t;
  mutable epoch_count : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  hosts : host array;
  root_rng : Prng.t;
  churn_rng : Prng.t;
  t_end : float;
  warmup_end : float;
  mk_config : Config.t;
  mutable live : tenant list;  (* live tenants, reverse admission order *)
  (* Lifetime SLO verdicts folded in at departure, so departed tenant
     records can be dropped: fleet memory tracks the live population,
     not every tenant ever admitted. *)
  mutable departed_measured : int;
  mutable departed_slo_met : int;
  mutable next_tenant : int;
  mutable next_guest : int;
  fleet_stats : Streamstat.t;
  mutable completed : int;
  mutable arrivals : int;
  mutable departures : int;
  mutable cgroup_creates : int;
  mutable cgroup_destroys : int;
  mutable migrations : int;
  mutable scale_ups : int;
  mutable scale_downs : int;
  mutable epoch_violations : int;
  mutable peak_cgroups : int;
}

(* kspec-style pruning for the private Multikernel tenants: keep only
   the machinery some category of the service mix depends on — the same
   move Specializer.kernel_config makes from a profiled corpus, derived
   here directly from the tenant syscall mix. *)
let mk_kernel_config base (mix : Spec.t array) =
  let needed =
    Array.fold_left
      (fun acc s ->
        List.concat_map Ops.machinery_of_category s.Spec.categories @ acc)
      [] mix
  in
  List.fold_left
    (fun cfg m -> if List.mem m needed then cfg else Config.without_machinery m cfg)
    base Ops.all_machinery

let vm_boot_delay_ns = 25e6
let mk_boot_delay_ns = 5e6

let host_of t slot = t.hosts.(slot mod Array.length t.hosts)

let total_cgroups t =
  Array.fold_left (fun acc h -> acc + Instance.cgroup_count h.inst) 0 t.hosts

let refresh_sharers h = Instance.set_tenants h.inst h.sharers

(* Placement transitions.  [place] and [release] must run inside a
   simulation process: the Docker paths execute the cgroup
   create/destroy storms on the shared host kernel. *)
let place t (tn : tenant) (klass : Policy.klass) =
  let h = host_of t tn.slot in
  let ctx =
    {
      Instance.core = tn.slot mod t.cfg.host_cores;
      tenant = tn.id;
      key = 0;
      cgroup = None;
    }
  in
  let placement =
    match klass with
    | Policy.Native ->
        h.sharers <- h.sharers + 1;
        refresh_sharers h;
        Shared h
    | Policy.Docker ->
        h.sharers <- h.sharers + 1;
        refresh_sharers h;
        let cg = Instance.cgroup_create h.inst ctx in
        t.cgroup_creates <- t.cgroup_creates + 1;
        t.peak_cgroups <- max t.peak_cgroups (total_cgroups t);
        Contained (h, cg)
    | Policy.Kvm ->
        let id = t.next_guest in
        t.next_guest <- t.next_guest + 1;
        let vm =
          Vm.boot ~engine:t.engine ~host_block:(Instance.block_dev h.inst)
            ~kernel_config:t.cfg.kernel_config ~virt:t.cfg.virt ~id
            { Vm.vcpus = t.cfg.max_replicas; mem_mb = 2048 }
        in
        Engine.delay vm_boot_delay_ns;
        Virtual vm
    | Policy.Multikernel ->
        let id = t.next_guest in
        t.next_guest <- t.next_guest + 1;
        let inst =
          Kernel.boot ~engine:t.engine ~config:t.mk_config ~id:(100_000 + id)
            ~cores:t.cfg.max_replicas ~mem_mb:2048
            ~block_dev:(Instance.block_dev h.inst) ()
        in
        Engine.delay mk_boot_delay_ns;
        Private inst
  in
  tn.klass <- klass;
  tn.placement <- placement

let release t (tn : tenant) =
  match tn.placement with
  | Shared h ->
      h.sharers <- max 0 (h.sharers - 1);
      refresh_sharers h
  | Contained (h, cg) ->
      let ctx =
        {
          Instance.core = tn.slot mod t.cfg.host_cores;
          tenant = tn.id;
          key = 0;
          cgroup = Some cg;
        }
      in
      Instance.cgroup_destroy h.inst ctx ~cgroup:cg;
      t.cgroup_destroys <- t.cgroup_destroys + 1;
      h.sharers <- max 0 (h.sharers - 1);
      refresh_sharers h
  | Virtual vm ->
      (* Decommission the abandoned guest: its daemons exit at their
         next wakeup, so retired kernels stop generating events. *)
      Vm.shutdown vm
  | Private inst -> Instance.halt inst

(* One request on whatever boundary the tenant currently has.  Reads
   [tn.placement] at execution time, so a mid-flight migration simply
   routes the next request to the new kernel. *)
let exec_request t (tn : tenant) ~replica =
  let spec, arg, key = Workload.pick_request tn.profile tn.work_rng in
  let ops = spec.Spec.ops arg in
  match tn.placement with
  | Shared h ->
      let cfg = Instance.config h.inst in
      Instance.burn h.inst cfg.Config.syscall_entry_cost;
      Instance.exec_program h.inst
        {
          Instance.core = (tn.slot + replica) mod t.cfg.host_cores;
          tenant = tn.id;
          key;
          cgroup = None;
        }
        ops
  | Contained (h, cg) ->
      let cfg = Instance.config h.inst in
      Instance.burn h.inst
        (cfg.Config.syscall_entry_cost +. Container.namespace_cost);
      Instance.exec_program h.inst
        {
          Instance.core = (tn.slot + replica) mod t.cfg.host_cores;
          tenant = tn.id;
          key;
          cgroup = Some cg;
        }
        (Ops.Cgroup_charge :: ops)
  | Virtual vm ->
      Vm.exec_syscall vm
        ~core:(replica mod t.cfg.max_replicas)
        ~tenant:tn.id ~key ops
  | Private inst ->
      let cfg = Instance.config inst in
      Instance.burn inst cfg.Config.syscall_entry_cost;
      Instance.exec_program inst
        {
          Instance.core = replica mod t.cfg.max_replicas;
          tenant = tn.id;
          key;
          cgroup = None;
        }
        ops

let hit_request_target t =
  match t.cfg.request_target with
  | Some n -> t.completed >= n
  | None -> false

let spawn_replica t (tn : tenant) =
  let replica = tn.next_replica in
  tn.next_replica <- tn.next_replica + 1;
  tn.serving <- tn.serving + 1;
  Engine.spawn t.engine (fun () ->
      let rec serve () =
        let arrival = Mailbox.recv tn.mailbox in
        if not tn.alive then ()
        else if tn.pending_retire > 0 then begin
          (* Scaled down: retirement is by count, not by replica id —
             whichever replica sees the next request consumes one retire
             token, hands the request back for a survivor, and exits.
             Replicas spawned by a later scale-up therefore always
             serve: [serving - pending_retire] tracks [target_replicas]
             exactly (the [replica_imbalance] result field asserts
             this). *)
          tn.pending_retire <- tn.pending_retire - 1;
          tn.serving <- tn.serving - 1;
          Mailbox.send tn.mailbox arrival
        end
        else begin
          exec_request t tn ~replica;
          let now = Engine.now t.engine in
          let latency = now -. arrival in
          t.completed <- t.completed + 1;
          if now >= t.warmup_end then begin
            Streamstat.add tn.stats latency;
            Streamstat.add t.fleet_stats latency;
            P2.add tn.epoch_p99 latency;
            tn.epoch_count <- tn.epoch_count + 1
          end;
          serve ()
        end
      in
      serve ())

let spawn_client t (tn : tenant) =
  Engine.spawn t.engine (fun () ->
      let rec loop () =
        if tn.alive && not (hit_request_target t) then begin
          let gap =
            Workload.next_gap tn.profile ~day_ns:t.cfg.day_ns tn.client_rng
              ~now:(Engine.now t.engine)
          in
          Engine.delay gap;
          if tn.alive then begin
            Mailbox.send tn.mailbox (Engine.now t.engine);
            loop ()
          end
        end
      in
      loop ())

(* Admission must run inside a simulation process (placement storms). *)
let admit t =
  let id = t.next_tenant in
  t.next_tenant <- t.next_tenant + 1;
  let rng = Prng.split t.root_rng (Printf.sprintf "tenant-%d" id) in
  let profile =
    Workload.make
      ~rng:(Prng.split rng "profile")
      ~params:
        {
          Workload.default_params with
          Workload.day_ns = t.cfg.day_ns;
          horizon_ns = t.t_end;
          mean_rate_per_s = t.cfg.mean_rate_per_s;
        }
  in
  let tn =
    {
      id;
      slot = id;
      profile;
      client_rng = Prng.split rng "client";
      work_rng = Prng.split rng "work";
      mailbox =
        Mailbox.create ~engine:t.engine ~name:(Printf.sprintf "tenant-%d" id);
      klass = Policy.initial_klass t.cfg.policy;
      placement = Shared (host_of t id) (* overwritten by [place] *);
      alive = true;
      target_replicas = 1;
      next_replica = 0;
      pending_retire = 0;
      serving = 0;
      bad_epochs = 0;
      stats = Streamstat.streaming ();
      epoch_p99 = P2.create 0.99;
      epoch_count = 0;
    }
  in
  place t tn (Policy.initial_klass t.cfg.policy);
  t.live <- tn :: t.live;
  t.arrivals <- t.arrivals + 1;
  spawn_client t tn;
  spawn_replica t tn;
  tn

(* Returns whether the tenant was actually torn down: a lifecycle fiber
   may race another that picked the same victim, and the loser's depart
   is a no-op. *)
let depart t (tn : tenant) =
  if not tn.alive then false
  else begin
    tn.alive <- false;
    release t tn;
  (* Wake every replica blocked on the mailbox so the serving fibers
     exit instead of suspending forever (the timestamp is never read
     once [alive] is false).  Surplus wakeups — replicas that already
     retired on scale-down — just sit in the queue and are collected
     with it. *)
  for _ = 1 to tn.next_replica do
    Mailbox.send tn.mailbox (Engine.now t.engine)
  done;
  (* Fold the lifetime SLO verdict now and drop the record. *)
  if Streamstat.count tn.stats >= t.cfg.min_tenant_samples then begin
    t.departed_measured <- t.departed_measured + 1;
    if Streamstat.p99 tn.stats <= t.cfg.slo_ns then
      t.departed_slo_met <- t.departed_slo_met + 1
  end;
    t.live <- List.filter (fun other -> other != tn) t.live;
    t.departures <- t.departures + 1;
    true
  end

let live_tenants t = List.rev t.live

(* The per-epoch SLO control loop: scale out a violating tenant until
   it hits the replica ceiling, then (adaptive policy) migrate it to a
   stronger isolation boundary; scale quiet tenants back in. *)
let control_epoch t =
  List.iter
    (fun tn ->
      if tn.alive then begin
        if tn.epoch_count >= t.cfg.min_epoch_samples then begin
          let p99 = P2.value tn.epoch_p99 in
          if p99 > t.cfg.slo_ns then begin
            t.epoch_violations <- t.epoch_violations + 1;
            tn.bad_epochs <- tn.bad_epochs + 1;
            if tn.target_replicas < t.cfg.max_replicas then begin
              tn.target_replicas <- tn.target_replicas + 1;
              (* An unconsumed retire token cancels against the new
                 capacity; only spawn when every live fiber is staying. *)
              if tn.pending_retire > 0 then
                tn.pending_retire <- tn.pending_retire - 1
              else spawn_replica t tn;
              t.scale_ups <- t.scale_ups + 1
            end
            else if tn.bad_epochs >= t.cfg.escalate_after then
              match Policy.escalation t.cfg.policy tn.klass with
              | Some klass ->
                  release t tn;
                  place t tn klass;
                  tn.bad_epochs <- 0;
                  t.migrations <- t.migrations + 1
              | None -> ()
          end
          else begin
            tn.bad_epochs <- 0;
            if p99 < t.cfg.slo_ns /. 4.0 && tn.target_replicas > 1 then begin
              tn.target_replicas <- tn.target_replicas - 1;
              tn.pending_retire <- tn.pending_retire + 1;
              t.scale_downs <- t.scale_downs + 1
            end
          end
        end;
        tn.epoch_p99 <- P2.create 0.99;
        tn.epoch_count <- 0
      end)
    (List.rev t.live)

let create ?(on_engine = fun (_ : Engine.t) -> ()) (cfg : config) =
  if cfg.tenants < 1 then invalid_arg "Fleet.create: tenants must be >= 1";
  if cfg.churn_per_day < 0.0 then
    invalid_arg "Fleet.create: churn must be >= 0";
  let engine = Engine.create ~seed:cfg.seed () in
  on_engine engine;
  let host_count =
    if cfg.hosts > 0 then cfg.hosts else max 1 ((cfg.tenants + 127) / 128)
  in
  let hosts =
    Array.init host_count (fun i ->
        {
          inst =
            Kernel.boot ~engine ~config:cfg.kernel_config ~id:i
              ~cores:cfg.host_cores ~mem_mb:cfg.host_mem_mb ();
          sharers = 0;
        })
  in
  let root_rng = Prng.split (Engine.rng engine) "ktenant" in
  let t_end = cfg.days *. cfg.day_ns in
  {
    engine;
    cfg;
    hosts;
    root_rng;
    churn_rng = Prng.split root_rng "churn";
    t_end;
    warmup_end = cfg.warmup_fraction *. t_end;
    mk_config = mk_kernel_config cfg.kernel_config Workload.service_mix;
    live = [];
    departed_measured = 0;
    departed_slo_met = 0;
    next_tenant = 0;
    next_guest = 0;
    fleet_stats = Streamstat.streaming ();
    completed = 0;
    arrivals = 0;
    departures = 0;
    cgroup_creates = 0;
    cgroup_destroys = 0;
    migrations = 0;
    scale_ups = 0;
    scale_downs = 0;
    epoch_violations = 0;
    peak_cgroups = 0;
  }

let run ?on_engine (cfg : config) =
  let t = create ?on_engine cfg in
  let engine = t.engine in
  (* Staggered boot storm: admissions spread over half the warmup, so
     the churny steady state — not a thundering herd at t=0 — is what
     the measured phase sees. *)
  let stagger = t.warmup_end /. (2.0 *. float_of_int cfg.tenants) in
  (* One admission fiber per tenant: placement delays (VM or
     multikernel boot) overlap instead of serialising behind a single
     admission loop — 512 KVM tenants boot in a staggered wave, not a
     13-virtual-second queue. *)
  for i = 0 to cfg.tenants - 1 do
    Engine.spawn ~at:(float_of_int i *. stagger) engine (fun () ->
        ignore (admit t : tenant))
  done;
  if cfg.churn_per_day > 0.0 then begin
    let mean_gap = cfg.day_ns /. (cfg.churn_per_day *. float_of_int cfg.tenants) in
    let gap_dist = Dist.exponential ~mean:mean_gap in
    Engine.spawn engine (fun () ->
        let rec loop () =
          Engine.delay (Dist.sample gap_dist t.churn_rng);
          if Engine.now engine < t.t_end && not (hit_request_target t) then begin
            (* Victim choice stays in this fiber (it owns churn_rng);
               the lifecycle work itself — teardown storm, replacement
               boot — runs in its own fiber so slow placements (VM
               boot) don't throttle the churn rate. *)
            let victim =
              match live_tenants t with
              | [] -> None
              | live ->
                  Some (List.nth live (Prng.int t.churn_rng (List.length live)))
            in
            (* A lifecycle event replaces a tenant, so it admits only
               when it actually tore one down.  Both guarded cases would
               otherwise drift the live population above the steady
               state for good: an event firing before the first
               admission finishes its boot delay finds [t.live] empty,
               and an earlier fiber may still be mid-teardown on the
               same victim (depart yields during the storm before
               pruning [t.live]), making the loser's depart a no-op. *)
            Option.iter
              (fun tn ->
                Engine.spawn engine (fun () ->
                    if depart t tn then ignore (admit t : tenant)))
              victim;
            loop ()
          end
        in
        loop ())
  end;
  Engine.spawn engine (fun () ->
      let rec loop () =
        Engine.delay cfg.epoch_ns;
        if Engine.now engine < t.t_end then begin
          control_epoch t;
          loop ()
        end
      in
      loop ());
  Engine.run ~until:t.t_end ~stop:(fun () -> hit_request_target t) engine;
  let measured = ref t.departed_measured
  and slo_met = ref t.departed_slo_met in
  List.iter
    (fun tn ->
      if Streamstat.count tn.stats >= cfg.min_tenant_samples then begin
        incr measured;
        if Streamstat.p99 tn.stats <= cfg.slo_ns then incr slo_met
      end)
    t.live;
  let count_final k =
    List.fold_left
      (fun acc tn -> if tn.alive && tn.klass = k then acc + 1 else acc)
      0 t.live
  in
  let n = Streamstat.count t.fleet_stats in
  {
    policy = Policy.name cfg.policy;
    tenants = cfg.tenants;
    churn_per_day = cfg.churn_per_day;
    completed = t.completed;
    mean = (if n = 0 then 0.0 else Streamstat.mean t.fleet_stats);
    p50 = Streamstat.p50 t.fleet_stats;
    p95 = Streamstat.p95 t.fleet_stats;
    p99 = Streamstat.p99 t.fleet_stats;
    max = (if n = 0 then 0.0 else Streamstat.max_value t.fleet_stats);
    slo_ns = cfg.slo_ns;
    measured = !measured;
    slo_met = !slo_met;
    attainment =
      (if !measured = 0 then 0.0
       else float_of_int !slo_met /. float_of_int !measured);
    epoch_violations = t.epoch_violations;
    arrivals = t.arrivals;
    departures = t.departures;
    cgroup_creates = t.cgroup_creates;
    cgroup_destroys = t.cgroup_destroys;
    migrations = t.migrations;
    scale_ups = t.scale_ups;
    scale_downs = t.scale_downs;
    replica_imbalance =
      (* Autoscaler soundness: for every live tenant the replica fibers
         still serving, net of unconsumed retire tokens, must equal the
         target — a scale-up after a scale-down really added capacity. *)
      List.fold_left
        (fun acc tn ->
          if tn.alive then
            acc + abs ((tn.serving - tn.pending_retire) - tn.target_replicas)
          else acc)
        0 t.live;
    peak_cgroups = t.peak_cgroups;
    final_native = count_final Policy.Native;
    final_docker = count_final Policy.Docker;
    final_kvm = count_final Policy.Kvm;
    final_mk = count_final Policy.Multikernel;
    virtual_ns = Engine.now engine;
  }
