(** Per-tenant open-loop workload model (ktenant).

    Each tenant is an independent open-loop client: requests arrive by
    a non-homogeneous Poisson process whose rate follows a diurnal
    sinusoid (every tenant gets its own mean rate, swing and phase)
    multiplied through any active flash-crowd window.  All randomness
    derives from the PRNG handed to {!make}, so a tenant's entire
    arrival and request stream is a pure function of the fleet seed and
    the tenant's identity. *)

type flash = { from_ns : float; until_ns : float; boost : float }

type profile = {
  base_rate : float;  (** mean requests per ns at the diurnal midpoint *)
  amplitude : float;  (** diurnal swing, 0..1 *)
  phase : float;  (** phase offset as a fraction of a day *)
  flashes : flash list;
  mix : Ksurf_syscalls.Spec.t array;  (** syscalls the service issues *)
  key_space : int;  (** object-identity space for lock striping *)
}

type params = {
  day_ns : float;  (** virtual length of one diurnal period *)
  horizon_ns : float;  (** run length; flash windows land inside it *)
  mean_rate_per_s : float;  (** fleet-mean per-tenant request rate *)
  rate_spread : float;  (** +- relative tenant-to-tenant rate spread *)
  max_flashes : int;
  max_flash_boost : float;
}

val default_params : params
(** One 2-virtual-second day, 25 req/s per tenant +-60%, up to two
    flash crowds of up to 6x. *)

val service_mix : Ksurf_syscalls.Spec.t array
(** The RPC-service syscall mix every tenant draws from: file reads and
    writes, metadata lookups, open/close pairs, socket send/receive. *)

val make : rng:Ksurf_util.Prng.t -> params:params -> profile
(** Draw a tenant's profile.  Consumes only [rng]. *)

val rate_at : profile -> day_ns:float -> float -> float
(** Instantaneous arrival rate (req/ns) at a virtual time. *)

val next_gap : profile -> day_ns:float -> Ksurf_util.Prng.t -> now:float -> float
(** Sample the next inter-arrival gap at the rate in effect [now]. *)

val pick_request :
  profile -> Ksurf_util.Prng.t ->
  Ksurf_syscalls.Spec.t * Ksurf_syscalls.Arg.t * int
(** Draw one request: a syscall from the mix, a generated argument, and
    an object key for lock striping. *)
