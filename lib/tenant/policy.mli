(** Placement / autoscaling policies (ktenant).

    A policy decides which isolation boundary a tenant gets — the
    paper's four deployment kinds — and whether a tenant that keeps
    violating its p99 SLO at maximum replica count is migrated to a
    stronger (smaller-surface-area) boundary. *)

type klass =
  | Native  (** shared host kernel, no cgroup *)
  | Docker  (** shared host kernel + namespaces + a live cgroup *)
  | Kvm  (** private guest kernel behind virtualisation exits *)
  | Multikernel  (** private kspec-pruned kernel at native entry cost *)

type t =
  | Static of klass  (** every tenant gets this class, forever *)
  | Adaptive
      (** start as [Docker]; persistent SLO violators are promoted to a
          private [Multikernel] *)

val klass_name : klass -> string
val name : t -> string
val of_string : string -> t option
val all : t list
val names : string list

val initial_klass : t -> klass

val escalation : t -> klass -> klass option
(** Where a persistently violating tenant migrates next, if anywhere. *)
