module Prng = Ksurf_util.Prng
module Spec = Ksurf_syscalls.Spec
module Arg = Ksurf_syscalls.Arg
module Syscalls = Ksurf_syscalls.Syscalls

type flash = { from_ns : float; until_ns : float; boost : float }

type profile = {
  base_rate : float;
  amplitude : float;
  phase : float;
  flashes : flash list;
  mix : Spec.t array;
  key_space : int;
}

type params = {
  day_ns : float;
  horizon_ns : float;
  mean_rate_per_s : float;
  rate_spread : float;
  max_flashes : int;
  max_flash_boost : float;
}

let default_params =
  {
    day_ns = 2e9;
    horizon_ns = 2e9;
    mean_rate_per_s = 25.0;
    rate_spread = 0.6;
    max_flashes = 2;
    max_flash_boost = 6.0;
  }

(* The service shape: an RPC handler doing file I/O, metadata lookups
   and socket traffic — File_io / Fs_mgmt / Ipc categories only, which
   is what makes a kspec-pruned per-tenant kernel meaningfully smaller
   (no scheduler tick, balancer, reclaim or shootdown machinery). *)
let service_mix =
  let names =
    [ "read"; "write"; "openat"; "close"; "fstat"; "stat"; "sendto"; "recvfrom" ]
  in
  Array.of_list
    (List.map
       (fun n ->
         match Syscalls.by_name n with
         | Some s -> s
         | None -> invalid_arg ("Workload.service_mix: unknown syscall " ^ n))
       names)

let make ~rng ~params =
  let spread = 1.0 +. (params.rate_spread *. ((2.0 *. Prng.uniform rng) -. 1.0)) in
  let base_rate = params.mean_rate_per_s *. spread /. 1e9 in
  let amplitude = 0.3 +. (0.5 *. Prng.uniform rng) in
  let phase = Prng.uniform rng in
  let n_flashes = Prng.int rng (params.max_flashes + 1) in
  let flashes =
    List.init n_flashes (fun _ ->
        let from_ns = Prng.float rng params.horizon_ns in
        let dur = (0.02 +. (0.05 *. Prng.uniform rng)) *. params.day_ns in
        let boost = 1.5 +. Prng.float rng (params.max_flash_boost -. 1.5) in
        { from_ns; until_ns = from_ns +. dur; boost })
  in
  { base_rate; amplitude; phase; flashes; mix = service_mix; key_space = 64 }

let two_pi = 2.0 *. Float.pi

let rate_at p ~day_ns t =
  let diurnal =
    1.0 +. (p.amplitude *. sin (two_pi *. ((t /. day_ns) +. p.phase)))
  in
  let flash =
    List.fold_left
      (fun acc f -> if t >= f.from_ns && t < f.until_ns then acc *. f.boost else acc)
      1.0 p.flashes
  in
  Float.max (0.05 *. p.base_rate) (p.base_rate *. diurnal *. flash)

let next_gap p ~day_ns rng ~now =
  let rate = rate_at p ~day_ns now in
  -.Float.log (1.0 -. Prng.uniform rng) /. rate

let pick_request p rng =
  let spec = Prng.pick rng p.mix in
  let arg = Arg.generate spec.Spec.arg_model rng in
  let key = Prng.int rng p.key_space in
  (spec, arg, key)
