(** ktenant: a rack of hosts serving a churning multi-tenant fleet.

    Hundreds-to-thousands of tenants share a handful of 64-core host
    kernels (or sit behind private KVM / kspec-Multikernel guests,
    depending on policy).  Each tenant is an open-loop diurnal client
    ({!Workload}) served by an autoscaled pool of replica processes;
    tenant churn executes the cgroup create/destroy storms of
    {!Ksurf_kernel.Instance.cgroup_create} on the shared hosts, so the
    probes (lockdep, ksan, the interference matrix) see lifecycle
    traffic exactly like syscall traffic.

    Measurement is streaming end-to-end: per-tenant and fleet-wide
    latency statistics live in {!Ksurf_stats.Streamstat} /
    {!Ksurf_stats.P2_quantile} accumulators and no sample array is ever
    materialized — memory stays flat from 10^5 to 10^6 requests.

    Determinism: everything derives from [config.seed] through split
    PRNG streams, so a run is bit-identical across repetitions and
    across sweep worker counts. *)

type config = {
  tenants : int;  (** initial (and steady-state) tenant population *)
  churn_per_day : float;
      (** expected replacements per tenant per diurnal day; 0 disables
          the churn process entirely *)
  policy : Policy.t;
  seed : int;
  hosts : int;  (** shared-kernel hosts; 0 = one per 128 tenant slots *)
  host_cores : int;
  host_mem_mb : int;
  day_ns : float;  (** virtual length of one diurnal period *)
  days : float;  (** run length in days *)
  warmup_fraction : float;  (** leading fraction excluded from stats *)
  mean_rate_per_s : float;  (** fleet-mean per-tenant request rate *)
  epoch_ns : float;  (** SLO control-loop period *)
  slo_ns : float;  (** per-tenant p99 latency target *)
  max_replicas : int;  (** autoscaler ceiling per tenant *)
  escalate_after : int;
      (** consecutive violating epochs at max replicas before an
          adaptive policy migrates the tenant *)
  min_epoch_samples : int;  (** epochs thinner than this are skipped *)
  min_tenant_samples : int;
      (** tenants thinner than this are excluded from SLO attainment *)
  request_target : int option;
      (** stop once this many requests completed (bench ladders);
          [None] runs to [days * day_ns] *)
  kernel_config : Ksurf_kernel.Config.t;  (** host / KVM-guest kernel *)
  virt : Ksurf_virt.Virt_config.t;
}

val default_config : config
(** 128 tenants, 4 replacements/tenant/day, Docker placement, one
    2-virtual-second day on one 64-core host, 250 us p99 SLO. *)

type result = {
  policy : string;
  tenants : int;
  churn_per_day : float;
  completed : int;  (** requests served (including warmup) *)
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;  (** fleet-wide post-warmup latency summary (ns) *)
  slo_ns : float;
  measured : int;  (** tenants with enough samples to judge *)
  slo_met : int;  (** of those, lifetime p99 within SLO *)
  attainment : float;
      (** slo_met / measured.  Reported as 0 when [measured = 0], but
          that case is no-data, not failure — frontier consumers must
          gate on [measured > 0] (as {!Ksurf.Experiments.Tenancy} does)
          rather than read the 0 as a failing policy. *)
  epoch_violations : int;
  arrivals : int;
  departures : int;
  cgroup_creates : int;
  cgroup_destroys : int;
  migrations : int;
  scale_ups : int;
  scale_downs : int;
  replica_imbalance : int;
      (** autoscaler soundness check, always 0: end-of-run sum over live
          tenants of |serving replicas - unconsumed retire tokens -
          target_replicas|.  Nonzero would mean a scale-up failed to add
          capacity (the retire-by-id bug) or a retirement leaked. *)
  peak_cgroups : int;  (** max live cgroups across all hosts *)
  final_native : int;
  final_docker : int;
  final_kvm : int;
  final_mk : int;  (** live tenants per placement class at the end *)
  virtual_ns : float;
}

val mk_kernel_config :
  Ksurf_kernel.Config.t -> Ksurf_syscalls.Spec.t array -> Ksurf_kernel.Config.t
(** The kspec move for Multikernel tenants: switch off every kernel
    machinery no category of the syscall mix depends on. *)

val run :
  ?on_engine:(Ksurf_sim.Engine.t -> unit) -> config -> result
(** Simulate the fleet.  [on_engine] runs on the freshly created engine
    before anything is booted — the hook sanitizer scenarios use to
    attach probes. *)
