module Spec = Ksurf_syscalls.Spec
module Arg = Ksurf_syscalls.Arg
module Hash = Ksurf_util.Stable_hash
module Ops = Ksurf_kernel.Ops

module Int_set = Stdlib.Set.Make (Int)

module Set = struct
  type t = Int_set.t

  let empty = Int_set.empty
  let cardinal = Int_set.cardinal
  let union = Int_set.union
  let diff_cardinal a b = Int_set.cardinal (Int_set.diff a b)
  let subset = Int_set.subset
  let mem = Int_set.mem

  (* Int_set iterates in increasing element order, so both traversals
     are stable — profiles serialize coverage through them. *)
  let fold f t acc = Int_set.fold f t acc
  let to_list = Int_set.elements
  let of_list = Int_set.of_list
end

(* Discriminant of an op: which argument-independent structure it is.
   Two ops of the same constructor with different lock targets are
   different blocks; sampled hold distributions are not discriminated
   (the same code runs, its duration just varies). *)
let rec op_tag (op : Ops.op) =
  match op with
  | Ops.Cpu _ -> 1
  | Ops.Cpu_dist _ -> 2
  | Ops.Lock (l, _) -> Hash.combine 3 (Hash.string (Ops.lock_ref_name l))
  | Ops.With_lock (l, _, body) ->
      Hash.combine 15
        (Hash.combine
           (Hash.string (Ops.lock_ref_name l))
           (Hash.ints (List.map op_tag body)))
  | Ops.Read_lock (l, _) -> Hash.combine 4 (Hash.string (Ops.rw_ref_name l))
  | Ops.Write_lock (l, _) -> Hash.combine 5 (Hash.string (Ops.rw_ref_name l))
  | Ops.Dcache_lookup -> 6
  | Ops.Page_cache_lookup -> 7
  | Ops.Slab_alloc -> 8
  | Ops.Page_alloc order -> Hash.combine 9 order
  | Ops.Tlb_shootdown -> 10
  | Ops.Rcu_sync -> 11
  | Ops.Block_io { write; _ } -> Hash.combine 12 (if write then 1 else 0)
  | Ops.Cgroup_charge -> 13
  | Ops.Sleep _ -> 14

(* Argument features that select distinct kernel paths. *)
let arg_feature (arg : Arg.t) =
  Hash.ints [ Arg.size_bucket arg.Arg.size; arg.Arg.flags ]

let blocks_of_call ~prev spec arg =
  let base = Hash.combine (Hash.string spec.Spec.name) (arg_feature arg) in
  let ops = spec.Spec.ops arg in
  let blocks =
    List.mapi (fun i op -> Hash.ints [ base; i; op_tag op ]) ops
  in
  let edge =
    match prev with
    | None -> []
    | Some p ->
        [ Hash.ints [ Hash.string "edge"; Hash.string p.Spec.name;
                      Hash.string spec.Spec.name ] ]
  in
  Int_set.of_list (blocks @ edge)

let of_program (prog : Program.t) =
  let _, acc =
    List.fold_left
      (fun (prev, acc) (call : Program.call) ->
        let blocks = blocks_of_call ~prev call.Program.spec call.Program.arg in
        (Some call.Program.spec, Int_set.union acc blocks))
      (None, Int_set.empty) prog.Program.calls
  in
  acc

(* All blocks one syscall can ever express: every (size bucket, flags)
   combination of its argument model, no edges.  One representative size
   per bucket — by construction same-bucket sizes share all block ids. *)
let universe_of_call (spec : Spec.t) =
  let model = spec.Spec.arg_model in
  let sizes =
    if Array.length model.Arg.sizes = 0 then [ 0 ]
    else
      Array.to_list model.Arg.sizes
      |> List.map (fun s -> (Arg.size_bucket s, s))
      |> List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
  in
  let acc = ref Int_set.empty in
  List.iter
    (fun size ->
      for flags = 0 to max 1 model.Arg.max_flags - 1 do
        let arg = { Arg.size; obj = 0; flags } in
        acc := Int_set.union !acc (blocks_of_call ~prev:None spec arg)
      done)
    sizes;
  !acc

let universe =
  let cached = ref None in
  fun () ->
    match !cached with
    | Some u -> u
    | None ->
        let u =
          Array.fold_left
            (fun acc spec -> Int_set.union acc (universe_of_call spec))
            Int_set.empty Ksurf_syscalls.Syscalls.all
        in
        cached := Some u;
        u

let universe_estimate () =
  (* Every (syscall, size bucket, flags) combination contributes its op
     count; enumerate the models exactly. *)
  Array.fold_left
    (fun acc (spec : Spec.t) ->
      let model = spec.Spec.arg_model in
      let buckets =
        Array.to_list model.Arg.sizes
        |> List.map Arg.size_bucket
        |> List.sort_uniq Int.compare
      in
      let combos = ref 0 in
      List.iter
        (fun bucket ->
          for flags = 0 to model.Arg.max_flags - 1 do
            ignore bucket;
            ignore flags;
            incr combos
          done)
        buckets;
      (* Op count depends on args; use a representative arg per combo. *)
      let per_combo =
        let arg =
          { Arg.size = (if Array.length model.Arg.sizes > 0 then model.Arg.sizes.(0) else 0);
            obj = 0; flags = 0 }
        in
        List.length (spec.Spec.ops arg)
      in
      acc + (!combos * per_combo))
    0 Ksurf_syscalls.Syscalls.all
