(** Basic-block coverage model of the simulated kernel.

    Real Syzkaller instruments the kernel (KCOV) and observes which
    basic blocks each program traverses.  Our kernel is the op
    interpreter, so the analogue is exact: a call's "blocks" are its
    kernel ops, discriminated by the argument features that select
    different paths (size bucket, flags, path depth), plus {e edge}
    blocks for state-dependent paths exercised by specific call pairs
    (e.g. [read] after [open] takes the warm-descriptor path).

    Block identifiers are stable hashes ({!Ksurf_util.Stable_hash}), so
    coverage is reproducible across runs and platforms. *)

module Set : sig
  type t

  val empty : t
  val cardinal : t -> int
  val union : t -> t -> t
  val diff_cardinal : t -> t -> int
  (** [diff_cardinal a b] = number of blocks in [a] not in [b]. *)

  val subset : t -> t -> bool
  val mem : int -> t -> bool

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  (** Fold over block ids in increasing order (stable across runs —
      block ids are stable hashes). *)

  val to_list : t -> int list
  (** Block ids in increasing order. *)

  val of_list : int list -> t
  (** Inverse of {!to_list} (accepts any order). *)
end

val blocks_of_call :
  prev:Ksurf_syscalls.Spec.t option ->
  Ksurf_syscalls.Spec.t ->
  Ksurf_syscalls.Arg.t ->
  Set.t
(** Blocks traversed by one call, including the edge block from [prev]
    when present. *)

val of_program : Program.t -> Set.t
(** Union over the program's calls (with sequential edges). *)

val universe_of_call : Ksurf_syscalls.Spec.t -> Set.t
(** Every block one syscall can express across its whole argument model
    (no edge blocks) — the per-call term of the functional surface-area
    metric. *)

val universe : unit -> Set.t
(** Union of {!universe_of_call} over the full syscall table (memoized;
    the table is fixed at build time). *)

val universe_estimate : unit -> int
(** Upper bound on the number of distinct non-edge blocks the model can
    express — lets the generator report percentage coverage. *)
