module Category = Ksurf_kernel.Category
module Spec = Ksurf_syscalls.Spec

type t = { programs : Program.t array }

let of_programs = function
  | [] -> invalid_arg "Corpus.of_programs: empty"
  | progs -> { programs = Array.of_list progs }

let programs t = t.programs
let program_count t = Array.length t.programs

let total_calls t =
  Array.fold_left (fun acc p -> acc + Program.length p) 0 t.programs

let coverage t =
  Array.fold_left
    (fun acc p -> Coverage.Set.union acc (Coverage.of_program p))
    Coverage.Set.empty t.programs

let unique_syscalls t =
  Array.fold_left
    (fun acc (p : Program.t) ->
      List.fold_left
        (fun acc (c : Program.call) -> c.Program.spec.Spec.name :: acc)
        acc p.Program.calls)
    [] t.programs
  |> List.sort_uniq String.compare

let category_histogram t =
  let counts = Array.make (List.length Category.all) 0 in
  Array.iter
    (fun (p : Program.t) ->
      List.iter
        (fun (c : Program.call) ->
          List.iter
            (fun cat ->
              let i = Category.index cat in
              counts.(i) <- counts.(i) + 1)
            c.Program.spec.Spec.categories)
        p.Program.calls)
    t.programs;
  List.map (fun cat -> (cat, counts.(Category.index cat))) Category.all

let filter_by_category t cat =
  let programs =
    Array.to_list t.programs
    |> List.filter (fun (p : Program.t) ->
           List.exists
             (fun (c : Program.call) ->
               Ksurf_syscalls.Spec.in_category c.Program.spec cat)
             p.Program.calls)
  in
  match programs with [] -> None | l -> Some (of_programs l)

(* Greedy set cover: repeatedly take the program contributing the most
   not-yet-covered blocks.  Ties break towards the earliest program, so
   the result is deterministic. *)
let distill t =
  let target = coverage t in
  let remaining = Array.to_list t.programs in
  let rec go covered chosen remaining =
    if Coverage.Set.cardinal covered >= Coverage.Set.cardinal target then
      List.rev chosen
    else begin
      let scored =
        List.map
          (fun p ->
            (Coverage.Set.diff_cardinal (Coverage.of_program p) covered, p))
          remaining
      in
      match
        List.fold_left
          (fun best (gain, p) ->
            match best with
            | Some (bg, _) when bg >= gain -> best
            | _ when gain > 0 -> Some (gain, p)
            | _ -> best)
          None scored
      with
      | None -> List.rev chosen
      | Some (_, pick) ->
          go
            (Coverage.Set.union covered (Coverage.of_program pick))
            (pick :: chosen)
            (List.filter (fun p -> p != pick) remaining)
    end
  in
  of_programs (go Coverage.Set.empty [] remaining)

let separator = "%"

let to_string t =
  Array.to_list t.programs
  |> List.map Program.to_string
  |> String.concat (Printf.sprintf "\n%s\n" separator)

let of_string s =
  let chunks =
    String.split_on_char '\n' s
    |> List.fold_left
         (fun (chunks, cur) line ->
           if String.trim line = separator then (List.rev cur :: chunks, [])
           else (chunks, line :: cur))
         ([], [])
    |> fun (chunks, cur) -> List.rev (List.rev cur :: chunks)
  in
  let rec build id acc = function
    | [] -> Ok (List.rev acc)
    | chunk :: rest -> (
        let text = String.concat "\n" chunk in
        if String.trim text = "" then build id acc rest
        else
          match Program.of_string ~id text with
          | Ok p -> build (id + 1) (p :: acc) rest
          | Error e -> Error (Printf.sprintf "program %d: %s" id e))
  in
  match build 0 [] chunks with
  | Ok [] -> Error "empty corpus"
  | Ok progs -> Ok (of_programs progs)
  | Error _ as e -> e

let save t path =
  Ksurf_util.Fileio.write_atomic ~path (fun oc ->
      output_string oc (to_string t ^ "\n"))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          let content = really_input_string ic len in
          of_string content)

let pp_stats ppf t =
  Format.fprintf ppf
    "@[<v>programs: %d@,call sites: %d@,unique syscalls: %d@,blocks covered: %d@,"
    (program_count t) (total_calls t)
    (List.length (unique_syscalls t))
    (Coverage.Set.cardinal (coverage t));
  List.iter
    (fun (cat, n) -> Format.fprintf ppf "  %-8s: %d call sites@," (Category.to_string cat) n)
    (category_histogram t);
  Format.fprintf ppf "@]"
