(** Deployments: the same workload over native, virtualised, or
    containerised system software (the Environment box of Figure 1).

    A deployment places one {e rank} (worker process) on every core of
    the partition and routes each rank's system calls to the kernel
    instance that serves it: the single host kernel (native, Docker) or
    the rank's guest kernel (KVM).  The workload — call sequence,
    resource demand, parallelism — is identical across kinds; only the
    kernel surface area behind each rank changes. *)

type kind =
  | Native
  | Multikernel
      (** MultiK-style deployment: one kernel instance per partition
          unit, booted on bare metal with the deployment's
          [kernel_config] (typically pruned by
          [Ksurf_spec.Specializer.kernel_config]).  Ranks pay native
          syscall costs — no virtualization tax — but share kernel
          state only within their own unit. *)
  | Kvm of Ksurf_virt.Virt_config.t
  | Docker

val kind_name : kind -> string

type t

val deploy :
  engine:Ksurf_sim.Engine.t ->
  ?machine:Machine.t ->
  ?kernel_config:Ksurf_kernel.Config.t ->
  kind ->
  Partition.t ->
  t
(** Boot the environment: host kernel (+ per-VM guests or per-container
    cgroups), pinned cores, tenant registration.  [machine] defaults to
    {!Machine.epyc}. *)

val kind : t -> kind
val engine : t -> Ksurf_sim.Engine.t
val rank_count : t -> int
(** One rank per partition core. *)

val unit_of_rank : t -> int -> int
(** Which partition unit (VM/container index) a rank is pinned into. *)

val exec_syscall :
  t -> rank:int -> Ksurf_syscalls.Spec.t -> Ksurf_syscalls.Arg.t -> float
(** Execute one call from the given rank and return its latency in ns.
    Must run inside a simulation process.  Consults the rank's
    specialization policy first (see {!Ksurf_kernel.Instance.syscall_policy}):
    an [Enforce]-mode rejection pays only the entry path; use
    {!try_syscall} to distinguish denial from completion. *)

val exec_ops : t -> rank:int -> key:int -> Ksurf_kernel.Ops.op list -> float
(** Lower-level entry point for application models that synthesise their
    own op programs (tailbench): same wrapping, explicit object key. *)

(** {2 Fault injection}

    kfault ([lib/fault]) installs a {!fault_ctl}; harnesses that opt in
    route calls through {!try_syscall} and consult the crash schedule.
    With no control installed (the default) every path below reduces to
    the stock behaviour. *)

type errno = EAGAIN | EINTR
(** The transient failures the fault model injects — both mean "retry". *)

val errno_name : errno -> string

type syscall_outcome =
  | Completed of float  (** latency in ns, as {!exec_syscall} *)
  | Faulted of { errno : errno; latency_ns : float }
      (** the call aborted early; [latency_ns] covers the entry path *)
  | Denied of { latency_ns : float }
      (** an [Enforce]-mode specialization policy rejected the call
          (ENOSYS); [latency_ns] covers the entry path.  Not a transient
          failure — retrying cannot succeed. *)

type fault_ctl = {
  syscall_errno : rank:int -> Ksurf_syscalls.Spec.t -> errno option;
      (** consulted before each {!try_syscall}; [Some e] aborts the call *)
  crash_at : rank:int -> float option;
      (** virtual time at which the rank's process dies, if scheduled *)
  restart_after : rank:int -> float option;
      (** downtime before the rank restarts; [None] = crash is final *)
}

val set_fault_ctl : t -> fault_ctl option -> unit
val fault_ctl : t -> fault_ctl option

val crash_time_of_rank : t -> rank:int -> float option
val restart_delay_of_rank : t -> rank:int -> float option

val try_syscall :
  t ->
  rank:int ->
  Ksurf_syscalls.Spec.t ->
  Ksurf_syscalls.Arg.t ->
  syscall_outcome
(** Like {!exec_syscall} but reports denials and consults the fault
    control.  The specialization policy filter runs first (a call
    seccomp rejects never reaches the faultable paths); a faulted or
    denied call burns only the syscall entry path.  Callers own the
    retry policy — and must not retry [Denied]. *)

val instances : t -> Ksurf_kernel.Instance.t list
(** All kernel instances serving this deployment (1 for native/Docker,
    one per VM for KVM), for diagnostics. *)

val instance_of_rank : t -> int -> Ksurf_kernel.Instance.t
(** The kernel instance serving a rank.  The rank index doubles as the
    tenant id on that instance — the key under which kspec installs
    per-tenant syscall policies. *)

val barrier_cost_per_party : t -> float
(** Network cost of one barrier round for this deployment: MPI over
    loopback (native/Docker) vs over virtio/TAP (KVM). *)

val surface_area_of_rank : t -> int -> float
(** Functional surface area of the kernel behind a rank: the structural
    sharing term ({!Ksurf_kernel.Instance.surface_area}) multiplied by
    the fraction of the coverage universe the rank's specialization
    policy leaves reachable — but only when the policy is in [Enforce]
    mode.  No policy, or an Audit-mode policy that merely counts
    would-be denials, leaves the full structural area exposed. *)

(** {2 Policy hot-swap (kadapt)}

    The kadapt controller promotes/demotes specialization policies on a
    live deployment.  {!swap_policy} replaces a rank's policy without a
    redeploy, preserving the cumulative denial count, and emits a
    probe-visible [Rank_transition] between the policy states
    ["unfiltered"], ["audit"] and ["enforce"] (from
    {!policy_state}). *)

val policy_state : Ksurf_kernel.Instance.syscall_policy option -> string
(** ["unfiltered"] for [None], else ["audit"] / ["enforce"] by the
    policy's mode — the state names the invariant sanitizer validates
    kadapt transitions against. *)

val swap_policy :
  t -> rank:int -> Ksurf_kernel.Instance.syscall_policy option -> unit
(** Hot-install (or remove, with [None]) rank [rank]'s syscall policy.
    The outgoing policy's denial count is carried into the incoming
    policy so {!Ksurf_spec} denial accounting stays monotone across
    swaps.  Each call increments {!policy_swaps} and, when the engine
    is observed, emits an [Engine.Rank_transition] whose [incident] is
    the swap ordinal. *)

val policy_swaps : t -> int
(** Total {!swap_policy} calls on this deployment — the accounting side
    of the probe-visible transition stream. *)

val busy_of_rank : t -> int -> float
(** {!Ksurf_kernel.Instance.busy_fraction} of the kernel instance behind
    a rank — how loaded the kernel serving this rank currently is. *)
