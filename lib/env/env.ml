module Engine = Ksurf_sim.Engine
module Instance = Ksurf_kernel.Instance
module Spec = Ksurf_syscalls.Spec
module Arg = Ksurf_syscalls.Arg
module Vm = Ksurf_virt.Vm
module Hypervisor = Ksurf_virt.Hypervisor
module Container = Ksurf_container.Container

type kind = Native | Multikernel | Kvm of Ksurf_virt.Virt_config.t | Docker

let kind_name = function
  | Native -> "native"
  | Multikernel -> "multikernel"
  | Kvm _ -> "kvm"
  | Docker -> "docker"

type target =
  | On_host of Instance.t  (** native: straight to the host kernel *)
  | On_vm of Vm.t * int  (** guest kernel, local vCPU *)
  | On_ctr of Container.t * int  (** shared host kernel via namespaces *)

type rank = { target : target; unit_index : int; global_core : int }

type errno = EAGAIN | EINTR

let errno_name = function EAGAIN -> "EAGAIN" | EINTR -> "EINTR"

type syscall_outcome =
  | Completed of float
  | Faulted of { errno : errno; latency_ns : float }
  | Denied of { latency_ns : float }

type fault_ctl = {
  syscall_errno : rank:int -> Spec.t -> errno option;
  crash_at : rank:int -> float option;
  restart_after : rank:int -> float option;
}

type t = {
  kind : kind;
  engine : Engine.t;
  ranks : rank array;
  instances : Instance.t list;
  mutable fault : fault_ctl option;
  mutable swaps : int;  (** policy hot-swaps performed via {!swap_policy} *)
}

let deploy ~engine ?(machine = Machine.epyc) ?(kernel_config = Ksurf_kernel.Config.default)
    kind partition =
  let units = partition.Partition.units in
  if Partition.total_cores partition > machine.Machine.cores then
    invalid_arg "Env.deploy: partition exceeds machine cores";
  match kind with
  | Native ->
      let host =
        Ksurf_kernel.Kernel.boot ~engine ~config:kernel_config ~id:0
          ~cores:machine.Machine.cores ~mem_mb:machine.Machine.mem_mb ()
      in
      let ranks = ref [] in
      let core = ref 0 in
      List.iteri
        (fun unit_index (u : Partition.unit_spec) ->
          for _ = 1 to u.Partition.cores do
            ranks :=
              { target = On_host host; unit_index; global_core = !core } :: !ranks;
            incr core
          done)
        units;
      let ranks = Array.of_list (List.rev !ranks) in
      Instance.set_tenants host (Array.length ranks);
      { kind; engine; ranks; instances = [ host ]; fault = None; swaps = 0 }
  | Multikernel ->
      (* MultiK-style: one (typically specialized) kernel instance per
         partition unit, on bare metal.  Ranks pay native syscall costs —
         no exit/virtio tax — but share kernel state only with their own
         unit, so cross-unit lock convoys vanish with the sharing. *)
      let ranks = ref [] in
      let core = ref 0 in
      let kernels =
        List.mapi
          (fun unit_index (u : Partition.unit_spec) ->
            let inst =
              Ksurf_kernel.Kernel.boot ~engine ~config:kernel_config
                ~id:unit_index ~cores:u.Partition.cores
                ~mem_mb:u.Partition.mem_mb ()
            in
            Instance.set_tenants inst u.Partition.cores;
            for _ = 1 to u.Partition.cores do
              ranks :=
                { target = On_host inst; unit_index; global_core = !core }
                :: !ranks;
              incr core
            done;
            inst)
          units
      in
      {
        kind;
        engine;
        ranks = Array.of_list (List.rev !ranks);
        instances = kernels;
        fault = None;
        swaps = 0;
      }
  | Kvm virt ->
      let hv = Hypervisor.create ~engine ~kernel_config ~virt () in
      let ranks = ref [] in
      let core = ref 0 in
      let vms =
        List.mapi
          (fun unit_index (u : Partition.unit_spec) ->
            let vm =
              Hypervisor.boot_vm hv
                { Vm.vcpus = u.Partition.cores; mem_mb = u.Partition.mem_mb }
            in
            Instance.set_tenants (Vm.guest vm) u.Partition.cores;
            for vcpu = 0 to u.Partition.cores - 1 do
              ranks :=
                { target = On_vm (vm, vcpu); unit_index; global_core = !core }
                :: !ranks;
              incr core
            done;
            vm)
          units
      in
      {
        kind;
        engine;
        ranks = Array.of_list (List.rev !ranks);
        instances = List.map Vm.guest vms;
        fault = None;
        swaps = 0;
      }
  | Docker ->
      let host =
        Ksurf_kernel.Kernel.boot ~engine ~config:kernel_config ~id:0
          ~cores:machine.Machine.cores ~mem_mb:machine.Machine.mem_mb ()
      in
      let ranks = ref [] in
      let core = ref 0 in
      List.iteri
        (fun unit_index (u : Partition.unit_spec) ->
          let ctr =
            Container.launch ~host ~id:unit_index
              { Container.cpus = u.Partition.cores;
                mem_limit_mb = u.Partition.mem_mb }
          in
          for _ = 1 to u.Partition.cores do
            ranks :=
              { target = On_ctr (ctr, !core); unit_index; global_core = !core }
              :: !ranks;
            incr core
          done)
        units;
      let ranks = Array.of_list (List.rev !ranks) in
      Instance.set_tenants host (Array.length ranks);
      { kind; engine; ranks; instances = [ host ]; fault = None; swaps = 0 }

let kind t = t.kind
let engine t = t.engine
let rank_count t = Array.length t.ranks

let rank t i =
  if i < 0 || i >= Array.length t.ranks then
    invalid_arg (Printf.sprintf "Env: rank %d out of range" i);
  t.ranks.(i)

let unit_of_rank t i = (rank t i).unit_index

let exec_ops t ~rank:i ~key ops =
  let r = rank t i in
  let t0 = Engine.now t.engine in
  (match r.target with
  | On_host host ->
      let cfg = Instance.config host in
      let ctx =
        { Instance.core = r.global_core; tenant = i; key; cgroup = None }
      in
      Instance.burn host cfg.Ksurf_kernel.Config.syscall_entry_cost;
      Instance.exec_program host ctx ops
  | On_vm (vm, vcpu) -> Vm.exec_syscall vm ~core:vcpu ~tenant:i ~key ops
  | On_ctr (ctr, core) -> Container.exec_syscall ctr ~core ~tenant:i ~key ops);
  Engine.now t.engine -. t0

let instance_of_rank t i =
  match (rank t i).target with
  | On_host host -> host
  | On_vm (vm, _) -> Vm.guest vm
  | On_ctr (ctr, _) -> Container.host ctr

(* Specialization policy (kspec): consult the calling rank's seccomp-style
   allowlist, if one is installed on the instance behind it.  Every
   rejection is counted and probe-visible; only Enforce mode actually
   stops the call. *)
let policy_check t ~rank:i (spec : Ksurf_syscalls.Spec.t) =
  match Instance.syscall_policy (instance_of_rank t i) ~tenant:i with
  | None -> `Allowed
  | Some p ->
      if p.Instance.allows spec.Spec.name then `Allowed
      else begin
        incr p.Instance.denials;
        let enforced = p.Instance.policy_mode = Instance.Enforce in
        if Engine.observed t.engine then
          Engine.emit t.engine
            (Engine.Denied
               {
                 now = Engine.now t.engine;
                 pid = Engine.current_pid t.engine;
                 syscall = spec.Spec.name;
                 enforced;
               });
        if enforced then `Denied else `Allowed
      end

let exec_syscall t ~rank spec (arg : Arg.t) =
  match policy_check t ~rank spec with
  | `Allowed -> exec_ops t ~rank ~key:arg.Arg.obj (spec.Spec.ops arg)
  | `Denied ->
      (* ENOSYS: the call pays the entry path (trap, filter evaluation,
         early bail-out) and nothing else. *)
      exec_ops t ~rank ~key:arg.Arg.obj []

let set_fault_ctl t ctl = t.fault <- ctl
let fault_ctl t = t.fault

let crash_time_of_rank t ~rank =
  match t.fault with None -> None | Some ctl -> ctl.crash_at ~rank

let restart_delay_of_rank t ~rank =
  match t.fault with None -> None | Some ctl -> ctl.restart_after ~rank

let try_syscall t ~rank:i spec (arg : Arg.t) =
  match policy_check t ~rank:i spec with
  | `Denied ->
      (* The policy filter runs before the fault model: a call seccomp
         rejects never reaches the paths kfault perturbs. *)
      let latency_ns = exec_ops t ~rank:i ~key:arg.Arg.obj [] in
      Denied { latency_ns }
  | `Allowed -> (
      let exec_allowed () = exec_ops t ~rank:i ~key:arg.Arg.obj (spec.Spec.ops arg) in
      match t.fault with
      | None -> Completed (exec_allowed ())
      | Some ctl -> (
          match ctl.syscall_errno ~rank:i spec with
          | None -> Completed (exec_allowed ())
          | Some errno ->
              (* The aborted call still pays the entry path (trap, argument
                 copy, early bail-out) — an empty op program wrapped the
                 same way as a real one. *)
              let latency_ns = exec_ops t ~rank:i ~key:arg.Arg.obj [] in
              Faulted { errno; latency_ns }))

let instances t = t.instances

(* Spec-swap hook (kadapt): replace rank [i]'s syscall policy atomically
   with respect to virtual time.  The outgoing policy's denial count is
   carried into the incoming one, so [Specializer.denials] stays
   monotone across swaps; each swap is probe-visible as a
   [Rank_transition] between policy states so the trace tooling sees
   the control loop like any other kernel work. *)
let policy_state = function
  | None -> "unfiltered"
  | Some (p : Instance.syscall_policy) -> (
      match p.Instance.policy_mode with
      | Instance.Audit -> "audit"
      | Instance.Enforce -> "enforce")

let swap_policy t ~rank:i policy =
  let inst = instance_of_rank t i in
  let old_policy = Instance.syscall_policy inst ~tenant:i in
  (match (old_policy, policy) with
  | Some old_p, Some new_p ->
      new_p.Instance.denials := !(old_p.Instance.denials)
  | _ -> ());
  Instance.set_syscall_policy inst ~tenant:i policy;
  t.swaps <- t.swaps + 1;
  if Engine.observed t.engine then
    Engine.emit t.engine
      (Engine.Rank_transition
         {
           now = Engine.now t.engine;
           pid = Engine.current_pid t.engine;
           rank = i;
           from_state = policy_state old_policy;
           to_state = policy_state policy;
           incident = t.swaps;
         })

let policy_swaps t = t.swaps

let barrier_cost_per_party t =
  match t.kind with
  | Native -> 1_500.0
  | Multikernel -> 1_550.0 (* cross-kernel shared-memory doorbell *)
  | Docker -> 1_800.0 (* veth/bridge hop *)
  | Kvm virt -> 1_500.0 +. virt.Ksurf_virt.Virt_config.virtio_net_per_msg

(* Functional surface area: the structural sharing term scaled by the
   fraction of the coverage universe the rank's specialization policy
   leaves reachable.  An unspecialized rank sees the full structural
   area (reachable = 1), and so does an Audit-mode policy — an
   allowlist that only counts would-be denials stops nothing, so it
   reduces nothing. *)
let surface_area_of_rank t i =
  let inst = instance_of_rank t i in
  let structural = Instance.surface_area inst in
  match Instance.syscall_policy inst ~tenant:i with
  | Some p when p.Instance.policy_mode = Instance.Enforce ->
      structural *. p.Instance.reachable
  | _ -> structural

let busy_of_rank t i =
  match (rank t i).target with
  | On_host host -> Instance.busy_fraction host
  | On_vm (vm, _) -> Instance.busy_fraction (Vm.guest vm)
  | On_ctr (ctr, _) -> Instance.busy_fraction (Container.host ctr)
