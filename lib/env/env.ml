module Engine = Ksurf_sim.Engine
module Instance = Ksurf_kernel.Instance
module Spec = Ksurf_syscalls.Spec
module Arg = Ksurf_syscalls.Arg
module Vm = Ksurf_virt.Vm
module Hypervisor = Ksurf_virt.Hypervisor
module Container = Ksurf_container.Container

type kind = Native | Kvm of Ksurf_virt.Virt_config.t | Docker

let kind_name = function Native -> "native" | Kvm _ -> "kvm" | Docker -> "docker"

type target =
  | On_host of Instance.t  (** native: straight to the host kernel *)
  | On_vm of Vm.t * int  (** guest kernel, local vCPU *)
  | On_ctr of Container.t * int  (** shared host kernel via namespaces *)

type rank = { target : target; unit_index : int; global_core : int }

type errno = EAGAIN | EINTR

let errno_name = function EAGAIN -> "EAGAIN" | EINTR -> "EINTR"

type syscall_outcome =
  | Completed of float
  | Faulted of { errno : errno; latency_ns : float }

type fault_ctl = {
  syscall_errno : rank:int -> Spec.t -> errno option;
  crash_at : rank:int -> float option;
  restart_after : rank:int -> float option;
}

type t = {
  kind : kind;
  engine : Engine.t;
  ranks : rank array;
  instances : Instance.t list;
  mutable fault : fault_ctl option;
}

let deploy ~engine ?(machine = Machine.epyc) ?(kernel_config = Ksurf_kernel.Config.default)
    kind partition =
  let units = partition.Partition.units in
  if Partition.total_cores partition > machine.Machine.cores then
    invalid_arg "Env.deploy: partition exceeds machine cores";
  match kind with
  | Native ->
      let host =
        Ksurf_kernel.Kernel.boot ~engine ~config:kernel_config ~id:0
          ~cores:machine.Machine.cores ~mem_mb:machine.Machine.mem_mb ()
      in
      let ranks = ref [] in
      let core = ref 0 in
      List.iteri
        (fun unit_index (u : Partition.unit_spec) ->
          for _ = 1 to u.Partition.cores do
            ranks :=
              { target = On_host host; unit_index; global_core = !core } :: !ranks;
            incr core
          done)
        units;
      let ranks = Array.of_list (List.rev !ranks) in
      Instance.set_tenants host (Array.length ranks);
      { kind; engine; ranks; instances = [ host ]; fault = None }
  | Kvm virt ->
      let hv = Hypervisor.create ~engine ~kernel_config ~virt () in
      let ranks = ref [] in
      let core = ref 0 in
      let vms =
        List.mapi
          (fun unit_index (u : Partition.unit_spec) ->
            let vm =
              Hypervisor.boot_vm hv
                { Vm.vcpus = u.Partition.cores; mem_mb = u.Partition.mem_mb }
            in
            Instance.set_tenants (Vm.guest vm) u.Partition.cores;
            for vcpu = 0 to u.Partition.cores - 1 do
              ranks :=
                { target = On_vm (vm, vcpu); unit_index; global_core = !core }
                :: !ranks;
              incr core
            done;
            vm)
          units
      in
      {
        kind;
        engine;
        ranks = Array.of_list (List.rev !ranks);
        instances = List.map Vm.guest vms;
        fault = None;
      }
  | Docker ->
      let host =
        Ksurf_kernel.Kernel.boot ~engine ~config:kernel_config ~id:0
          ~cores:machine.Machine.cores ~mem_mb:machine.Machine.mem_mb ()
      in
      let ranks = ref [] in
      let core = ref 0 in
      List.iteri
        (fun unit_index (u : Partition.unit_spec) ->
          let ctr =
            Container.launch ~host ~id:unit_index
              { Container.cpus = u.Partition.cores;
                mem_limit_mb = u.Partition.mem_mb }
          in
          for _ = 1 to u.Partition.cores do
            ranks :=
              { target = On_ctr (ctr, !core); unit_index; global_core = !core }
              :: !ranks;
            incr core
          done)
        units;
      let ranks = Array.of_list (List.rev !ranks) in
      Instance.set_tenants host (Array.length ranks);
      { kind; engine; ranks; instances = [ host ]; fault = None }

let kind t = t.kind
let engine t = t.engine
let rank_count t = Array.length t.ranks

let rank t i =
  if i < 0 || i >= Array.length t.ranks then
    invalid_arg (Printf.sprintf "Env: rank %d out of range" i);
  t.ranks.(i)

let unit_of_rank t i = (rank t i).unit_index

let exec_ops t ~rank:i ~key ops =
  let r = rank t i in
  let t0 = Engine.now t.engine in
  (match r.target with
  | On_host host ->
      let cfg = Instance.config host in
      let ctx =
        { Instance.core = r.global_core; tenant = i; key; cgroup = None }
      in
      Instance.burn host cfg.Ksurf_kernel.Config.syscall_entry_cost;
      Instance.exec_program host ctx ops
  | On_vm (vm, vcpu) -> Vm.exec_syscall vm ~core:vcpu ~tenant:i ~key ops
  | On_ctr (ctr, core) -> Container.exec_syscall ctr ~core ~tenant:i ~key ops);
  Engine.now t.engine -. t0

let exec_syscall t ~rank spec (arg : Arg.t) =
  exec_ops t ~rank ~key:arg.Arg.obj (spec.Spec.ops arg)

let set_fault_ctl t ctl = t.fault <- ctl
let fault_ctl t = t.fault

let crash_time_of_rank t ~rank =
  match t.fault with None -> None | Some ctl -> ctl.crash_at ~rank

let restart_delay_of_rank t ~rank =
  match t.fault with None -> None | Some ctl -> ctl.restart_after ~rank

let try_syscall t ~rank:i spec (arg : Arg.t) =
  match t.fault with
  | None -> Completed (exec_syscall t ~rank:i spec arg)
  | Some ctl -> (
      match ctl.syscall_errno ~rank:i spec with
      | None -> Completed (exec_syscall t ~rank:i spec arg)
      | Some errno ->
          (* The aborted call still pays the entry path (trap, argument
             copy, early bail-out) — an empty op program wrapped the
             same way as a real one. *)
          let latency_ns = exec_ops t ~rank:i ~key:arg.Arg.obj [] in
          Faulted { errno; latency_ns })

let instances t = t.instances

let barrier_cost_per_party t =
  match t.kind with
  | Native -> 1_500.0
  | Docker -> 1_800.0 (* veth/bridge hop *)
  | Kvm virt -> 1_500.0 +. virt.Ksurf_virt.Virt_config.virtio_net_per_msg

let surface_area_of_rank t i =
  match (rank t i).target with
  | On_host host -> Instance.surface_area host
  | On_vm (vm, _) -> Instance.surface_area (Vm.guest vm)
  | On_ctr (ctr, _) -> Instance.surface_area (Container.host ctr)

let busy_of_rank t i =
  match (rank t i).target with
  | On_host host -> Instance.busy_fraction host
  | On_vm (vm, _) -> Instance.busy_fraction (Vm.guest vm)
  | On_ctr (ctr, _) -> Instance.busy_fraction (Container.host ctr)
