module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Barrier = Ksurf_sim.Barrier
module Program = Ksurf_syzgen.Program
module Corpus = Ksurf_syzgen.Corpus

type params = { iterations : int; warmup_iterations : int }

let default_params = { iterations = 20; warmup_iterations = 2 }

module Streamstat = Ksurf_stats.Streamstat

type site = {
  program : int;
  index : int;
  syscall : Ksurf_syscalls.Spec.t;
  stats : Streamstat.t;
}

type result = {
  sites : site array;
  overall : Streamstat.t;
  ranks : int;
  iterations : int;
  wall_time_ns : float;
  degraded : bool;
  survivors : int;
  dropped_ranks : int list;
  transient_retries : int;
  abandoned_calls : int;
  denied_calls : int;
}

let total_invocations r =
  Array.fold_left (fun acc s -> acc + Streamstat.count s.stats) 0 r.sites

let backoff_base_ns = 1_000.0
let backoff_cap_ns = 256_000.0
let max_retries = 10

exception Rank_stopped

let run ~env ~corpus ?(params = default_params) ?straggler_timeout_ns () =
  if params.iterations < 1 then invalid_arg "Harness.run: iterations must be >= 1";
  let engine = Env.engine env in
  let ranks = Env.rank_count env in
  let programs = Corpus.programs corpus in
  (* Flat site table: sites.(site_offset program + call index). *)
  let offsets = Array.make (Array.length programs) 0 in
  let total_sites = ref 0 in
  Array.iteri
    (fun pi p ->
      offsets.(pi) <- !total_sites;
      total_sites := !total_sites + Program.length p)
    programs;
  let sites = Array.make !total_sites None in
  Array.iteri
    (fun pi (p : Program.t) ->
      List.iteri
        (fun ci (c : Program.call) ->
          sites.(offsets.(pi) + ci) <-
            Some
              {
                program = p.Program.id;
                index = ci;
                syscall = c.Program.spec;
                stats = Streamstat.create ();
              })
        p.Program.calls)
    programs;
  let sites =
    Array.map (function Some s -> s | None -> assert false) sites
  in
  let overall = Streamstat.streaming () in
  let barrier = Barrier.create ~engine ~name:"varbench" ~parties:ranks in
  let barrier_cost = Env.barrier_cost_per_party env in
  let finished = ref 0 in
  let measure_start = ref nan in
  let total_iters = params.warmup_iterations + params.iterations in
  (* Robustness state: a rank is [alive] until it crashes (fault plan)
     or is dropped as a straggler (watchdog); [waiting] marks ranks
     parked at the barrier so the watchdog never drops a rank that is
     merely waiting for someone slower. *)
  let alive = Array.make ranks true in
  let waiting = Array.make ranks false in
  let completed = Array.make ranks false in
  let progress = Array.make ranks 0.0 in
  let dropped = ref [] in
  let dropped_count = ref 0 in
  let retries = ref 0 in
  let abandoned = ref 0 in
  let denied = ref 0 in
  let drop rank fault =
    if alive.(rank) then begin
      alive.(rank) <- false;
      dropped := rank :: !dropped;
      incr dropped_count;
      if Engine.observed engine then
        Engine.emit engine
          (Engine.Injected
             {
               now = Engine.now engine;
               pid = Engine.current_pid engine;
               fault;
               magnitude = float_of_int rank;
             });
      (* Departing shrinks the barrier so survivors keep running; the
         last survivor has nobody left to release. *)
      if Barrier.parties barrier > 1 then Barrier.depart barrier
    end
  in
  let call_with_retry rank (c : Program.call) =
    let rec go attempt =
      match Env.try_syscall env ~rank c.Program.spec c.Program.arg with
      | Env.Completed _ -> true
      | Env.Denied _ ->
          (* ENOSYS from a specialization policy: permanent, so no retry
             and no sample — the call never did its work. *)
          incr denied;
          false
      | Env.Faulted _ ->
          incr retries;
          if attempt >= max_retries then begin
            incr abandoned;
            false
          end
          else begin
            Engine.delay
              (Float.min backoff_cap_ns
                 (backoff_base_ns *. Float.pow 2.0 (float_of_int attempt)));
            go (attempt + 1)
          end
    in
    go 0
  in
  for rank = 0 to ranks - 1 do
    Engine.spawn engine (fun () ->
        let crash_at = Env.crash_time_of_rank env ~rank in
        let crashed () =
          match crash_at with
          | Some at -> Engine.now engine >= at
          | None -> false
        in
        try
          for iter = 0 to total_iters - 1 do
            let measuring = iter >= params.warmup_iterations in
            Array.iteri
              (fun pi (p : Program.t) ->
                if not alive.(rank) then raise Rank_stopped;
                if crashed () then begin
                  (* varbench is BSP-style: a crashed rank never rejoins
                     the barrier protocol (tailbench honours restarts). *)
                  drop rank "rank-crash";
                  raise Rank_stopped
                end;
                (* Every rank starts every program at the same time. *)
                progress.(rank) <- Engine.now engine;
                waiting.(rank) <- true;
                Barrier.arrive_with_cost barrier ~per_party_cost:barrier_cost;
                waiting.(rank) <- false;
                progress.(rank) <- Engine.now engine;
                if not alive.(rank) then raise Rank_stopped;
                if measuring && Float.is_nan !measure_start then
                  measure_start := Engine.now engine;
                List.iteri
                  (fun ci (c : Program.call) ->
                    let t0 = Engine.now engine in
                    let ok = call_with_retry rank c in
                    progress.(rank) <- Engine.now engine;
                    (* Latency includes retries and backoff — the cost
                       the caller actually paid to get the call through. *)
                    if ok && measuring then begin
                      let latency = Engine.now engine -. t0 in
                      Streamstat.add sites.(offsets.(pi) + ci).stats latency;
                      Streamstat.add overall latency
                    end)
                  p.Program.calls)
              programs
          done;
          completed.(rank) <- true;
          incr finished
        with Rank_stopped -> ())
  done;
  let stop () = !finished + !dropped_count >= ranks in
  (match straggler_timeout_ns with
  | None -> ()
  | Some timeout ->
      if timeout <= 0.0 then
        invalid_arg "Harness.run: straggler timeout must be positive";
      Engine.spawn engine (fun () ->
          let rec tick () =
            if not (stop ()) then begin
              Engine.delay (timeout /. 2.0);
              let now = Engine.now engine in
              for rank = 0 to ranks - 1 do
                if
                  alive.(rank)
                  && (not completed.(rank))
                  && (not waiting.(rank))
                  && now -. progress.(rank) > timeout
                then drop rank "rank-straggler"
              done;
              tick ()
            end
          in
          tick ()));
  Engine.run ~stop engine;
  {
    sites;
    overall;
    ranks;
    iterations = params.iterations;
    wall_time_ns = Engine.now engine -. !measure_start;
    degraded = !dropped <> [];
    survivors = ranks - !dropped_count;
    dropped_ranks = List.rev !dropped;
    transient_retries = !retries;
    abandoned_calls = !abandoned;
    denied_calls = !denied;
  }
