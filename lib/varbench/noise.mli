(** Varbench as antagonist (§6.2): system-call "noise" generators that
    stress the kernel while another workload is measured.

    Noise ranks loop over the corpus continuously (no barriers — the
    goal is sustained pressure, not synchronised measurement) until the
    caller stops draining the engine.

    Noise streams are fault-aware: calls go through
    {!Ksurf_env.Env.try_syscall}, and transiently failed calls retry
    with exponential backoff, so an injected EAGAIN storm slows the
    antagonist down instead of crashing it. *)

type handle
(** Per-stream accounting for one {!start} invocation.  Replaces the
    old process-global counter, which leaked across runs in one process
    and was a latent determinism hazard. *)

val issued : handle -> int
(** Completed noise system calls of this stream. *)

val transient_failures : handle -> int
(** Injected EAGAIN/EINTR faults this stream retried. *)

val abandoned : handle -> int
(** Calls given up on after exhausting retries (only under extreme
    injected fault rates). *)

val denied : handle -> int
(** Calls rejected with ENOSYS by an [Enforce]-mode specialization
    policy (kspec).  Permanent failures — never retried. *)

val start :
  env:Ksurf_env.Env.t ->
  corpus:Ksurf_syzgen.Corpus.t ->
  ranks:int list ->
  ?think_time:float ->
  unit ->
  handle
(** Spawn an infinite noise loop on each listed rank of [env].
    [think_time] (ns, default 0) is an idle gap between programs, for
    intensity control.  Run the engine with [~until] or [~stop] to bound
    the simulation. *)

type stream_stats = {
  calls : int;
  mean_ns : float;
  p99_ns : float;  (** streaming P² estimate — O(1) memory *)
}

val start_tracked :
  env:Ksurf_env.Env.t ->
  corpus:Ksurf_syzgen.Corpus.t ->
  ranks:int list ->
  ?think_time:float ->
  unit ->
  handle * (unit -> stream_stats)
(** Like {!start}, but additionally returns a closure reporting the
    noise workload's own latency statistics so far (latencies include
    any retry/backoff time) — useful to confirm the antagonist is
    actually being slowed by the environment under test.  The closure
    raises [Failure] if called before any call completed. *)
