(** Aggregation of harness results into the paper's statistics.

    Table 2/3: per call site, compute a statistic (median / p99 / max)
    over all ranks and iterations, then bucket the statistics.
    Figure 2: per category, the distribution of per-site p99s, filtered
    to sites whose {e native} median is at least 10 µs. *)

type site_stats = {
  program : int;
  index : int;
  name : string;
  categories : Ksurf_kernel.Category.t list;
  count : int;
  median : float;
  p99 : float;
  max : float;
}

val site_stats : Harness.result -> site_stats array

val pooled_samples : Harness.result -> float array option
(** Every measured latency, concatenated in site order — available only
    while every site is still in its exact regime (seed scale), where
    it reproduces the historical array pipeline byte-for-byte.  [None]
    once any site has spilled to streaming; use
    [result.overall] then. *)

type statistic = Median | P99 | Max

val statistic_name : statistic -> string
val value_of : statistic -> site_stats -> float

val bucket_row : statistic -> site_stats array -> Ksurf_stats.Buckets.row
(** The Table 2/3 row for one environment and statistic. *)

val filter_by_native_median :
  native:site_stats array -> min_median:float -> site_stats array -> site_stats array
(** Keep sites whose counterpart in [native] has median >= [min_median]
    (the paper's 10 µs filter).  Sites are matched by (program, index). *)

val p99_by_category :
  site_stats array -> (Ksurf_kernel.Category.t * float array) list
(** Per category, the vector of per-site p99s (multi-category sites
    contribute to each of their categories) — Figure 2's violin data. *)

val category_violin :
  label:string -> Ksurf_kernel.Category.t -> site_stats array ->
  Ksurf_stats.Violin.t option
(** Violin of a category's p99s; [None] if the category has no sites. *)
