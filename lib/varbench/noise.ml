module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Program = Ksurf_syzgen.Program
module Corpus = Ksurf_syzgen.Corpus

type handle = {
  mutable issued : int;
  mutable transient_failures : int;
  mutable abandoned : int;
  mutable denied : int;
}

let issued h = h.issued
let transient_failures h = h.transient_failures
let abandoned h = h.abandoned
let denied h = h.denied

type stream_stats = { calls : int; mean_ns : float; p99_ns : float }

let backoff_base_ns = 1_000.0
let backoff_cap_ns = 256_000.0
let max_retries = 10

(* One call with retry-on-transient-failure: exponential backoff,
   giving up (rarely) after [max_retries].  With no fault control
   installed this is exactly one [exec_syscall]. *)
let issue_with_retry h ~env ~rank (c : Program.call) =
  let rec go attempt =
    match Env.try_syscall env ~rank c.Program.spec c.Program.arg with
    | Env.Completed _ ->
        h.issued <- h.issued + 1;
        true
    | Env.Denied _ ->
        (* ENOSYS from a specialization policy: permanent, never retried. *)
        h.denied <- h.denied + 1;
        false
    | Env.Faulted _ ->
        h.transient_failures <- h.transient_failures + 1;
        if attempt >= max_retries then begin
          h.abandoned <- h.abandoned + 1;
          false
        end
        else begin
          Engine.delay
            (Float.min backoff_cap_ns
               (backoff_base_ns *. Float.pow 2.0 (float_of_int attempt)));
          go (attempt + 1)
        end
  in
  go 0

let start_general ~env ~corpus ~ranks ~think_time ~observe =
  let engine = Env.engine env in
  let programs = Corpus.programs corpus in
  let h = { issued = 0; transient_failures = 0; abandoned = 0; denied = 0 } in
  List.iter
    (fun rank ->
      if rank < 0 || rank >= Env.rank_count env then
        invalid_arg (Printf.sprintf "Noise.start: rank %d out of range" rank);
      Engine.spawn engine (fun () ->
          (* Offset start positions so noise ranks are not in lock-step. *)
          let start_at = rank mod Array.length programs in
          let rec loop pi =
            let p = programs.(pi) in
            List.iter
              (fun (c : Program.call) ->
                let t0 = Engine.now engine in
                if issue_with_retry h ~env ~rank c then
                  (* Observed latency includes retries and backoff: the
                     antagonist's effective cost of getting the call
                     through. *)
                  observe (Engine.now engine -. t0))
              p.Program.calls;
            if think_time > 0.0 then Engine.delay think_time;
            loop ((pi + 1) mod Array.length programs)
          in
          loop start_at))
    ranks;
  h

let start ~env ~corpus ~ranks ?(think_time = 0.0) () =
  start_general ~env ~corpus ~ranks ~think_time ~observe:(fun _ -> ())

let start_tracked ~env ~corpus ~ranks ?(think_time = 0.0) () =
  let p99 = Ksurf_stats.P2_quantile.create 0.99 in
  let mean = Ksurf_util.Welford.create () in
  let observe latency =
    Ksurf_stats.P2_quantile.add p99 latency;
    Ksurf_util.Welford.add mean latency
  in
  let h = start_general ~env ~corpus ~ranks ~think_time ~observe in
  ( h,
    fun () ->
      {
        calls = Ksurf_util.Welford.count mean;
        mean_ns = Ksurf_util.Welford.mean mean;
        p99_ns =
          Option.value (Ksurf_stats.P2_quantile.quantile_opt p99) ~default:0.0;
      } )
