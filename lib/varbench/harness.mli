(** The varbench harness (§3.2 of the paper).

    Deploys the syzgen corpus across every rank of an environment with
    fine-grained concurrency control: a (simulated) MPI barrier before
    every program ensures that the same sequence of system calls starts
    on all cores at the same virtual time, maximising concurrent
    pressure on shared kernel structures.  Synchronisation is user-level
    (virtual network), so the same harness runs unmodified over native,
    VM and container deployments. *)

type params = {
  iterations : int;  (** measured repetitions of the whole corpus *)
  warmup_iterations : int;  (** discarded leading repetitions *)
}

val default_params : params
(** 20 iterations, 2 warm-up. *)

type site = {
  program : int;  (** program id within the corpus *)
  index : int;  (** call position within the program *)
  syscall : Ksurf_syscalls.Spec.t;
  stats : Ksurf_stats.Streamstat.t;
      (** one latency per rank x iteration — exact at seed scale,
          constant-size streaming past
          {!Ksurf_stats.Streamstat.default_exact_cap} *)
}

type result = {
  sites : site array;
  overall : Ksurf_stats.Streamstat.t;
      (** all measured latencies pooled in arrival order, pure
          streaming (never materialized) — the fallback source for
          corpus-wide quantiles once any site spills its exact buffer *)
  ranks : int;
  iterations : int;
  wall_time_ns : float;  (** virtual time the measured phase spanned *)
  degraded : bool;  (** some ranks crashed or were dropped *)
  survivors : int;  (** ranks still in the barrier protocol at the end *)
  dropped_ranks : int list;  (** in drop order *)
  transient_retries : int;  (** injected EAGAIN/EINTR faults retried *)
  abandoned_calls : int;  (** calls given up on after max retries *)
  denied_calls : int;
      (** calls rejected with ENOSYS by an [Enforce]-mode specialization
          policy (kspec); permanent, never retried, never sampled *)
}

val total_invocations : result -> int

val run :
  env:Ksurf_env.Env.t ->
  corpus:Ksurf_syzgen.Corpus.t ->
  ?params:params ->
  ?straggler_timeout_ns:float ->
  unit ->
  result
(** Execute the corpus on every rank of [env].  Each call site collects
    up to [ranks x iterations] latency samples.  Deterministic given the
    environment's engine seed.

    Robustness (all inert without an armed fault plan): transiently
    failed calls retry with exponential backoff and recorded latencies
    include the retry time; a rank whose fault plan schedules a crash
    leaves the barrier ({!Ksurf_sim.Barrier.depart}) and the survivors
    continue; with [straggler_timeout_ns] set, a watchdog also drops any
    rank that makes no progress for that long while not waiting at the
    barrier.  A run that lost ranks is stamped [degraded] with the
    survivor count. *)
