module Category = Ksurf_kernel.Category
module Quantile = Ksurf_stats.Quantile
module Streamstat = Ksurf_stats.Streamstat
module Buckets = Ksurf_stats.Buckets
module Violin = Ksurf_stats.Violin
module Spec = Ksurf_syscalls.Spec

type site_stats = {
  program : int;
  index : int;
  name : string;
  categories : Category.t list;
  count : int;
  median : float;
  p99 : float;
  max : float;
}

let site_stats (result : Harness.result) =
  Array.map
    (fun (s : Harness.site) ->
      let count, median, p99, max =
        match Streamstat.exact s.Harness.stats with
        | Some samples ->
            (* Exact regime (seed scale): identical to the historical
               array-based computation, byte for byte. *)
            let sorted = Quantile.sorted_copy samples in
            let n = Array.length sorted in
            ( n,
              Quantile.of_sorted sorted 0.5,
              Quantile.of_sorted sorted 0.99,
              sorted.(n - 1) )
        | None ->
            ( Streamstat.count s.Harness.stats,
              Streamstat.p50 s.Harness.stats,
              Streamstat.p99 s.Harness.stats,
              Streamstat.max_value s.Harness.stats )
      in
      {
        program = s.Harness.program;
        index = s.Harness.index;
        name = s.Harness.syscall.Spec.name;
        categories = s.Harness.syscall.Spec.categories;
        count;
        median;
        p99;
        max;
      })
    result.Harness.sites

(* Every measured latency across the whole corpus, concatenated in site
   order — but only while every site is still in its exact regime.
   Consumers (kdose, kspec) use this to keep their historical
   byte-exact pooled statistics at seed scale and fall back to
   [result.overall] streaming estimates past the cap. *)
let pooled_samples (result : Harness.result) =
  let bufs =
    Array.map (fun (s : Harness.site) -> Streamstat.exact s.Harness.stats)
      result.Harness.sites
  in
  if Array.for_all Option.is_some bufs then
    Some (Array.concat (Array.to_list (Array.map Option.get bufs)))
  else None

type statistic = Median | P99 | Max

let statistic_name = function Median -> "median" | P99 -> "p99" | Max -> "max"

let value_of stat s =
  match stat with Median -> s.median | P99 -> s.p99 | Max -> s.max

let bucket_row stat stats =
  Buckets.of_latencies (Array.map (value_of stat) stats)

let filter_by_native_median ~native ~min_median stats =
  let keep = Hashtbl.create (Array.length native) in
  Array.iter
    (fun s ->
      if s.median >= min_median then Hashtbl.replace keep (s.program, s.index) ())
    native;
  Array.of_list
    (List.filter
       (fun s -> Hashtbl.mem keep (s.program, s.index))
       (Array.to_list stats))

let p99_by_category stats =
  List.map
    (fun cat ->
      let values =
        Array.to_list stats
        |> List.filter (fun s -> List.exists (Category.equal cat) s.categories)
        |> List.map (fun s -> s.p99)
      in
      (cat, Array.of_list values))
    Category.all

let category_violin ~label cat stats =
  let values =
    Array.to_list stats
    |> List.filter (fun s -> List.exists (Category.equal cat) s.categories)
    |> List.map (fun s -> s.p99)
  in
  match values with
  | [] -> None
  | l -> Some (Violin.of_samples ~label (Array.of_list l))
