(** Workload profile: what a tenant's workload actually touches.

    The measurement half of kspec.  A profile records, for one
    workload, the system calls it issues, how its call sites distribute
    over the paper's six categories, and the kernel basic blocks it
    covers (the same coverage model syzgen uses).  Profiles come from
    two places: a syzgen corpus ({!of_corpus}, the offline path) or a
    live run observed program-by-program ({!recorder}, the online
    path).  {!Specializer.compile} turns a profile into an enforceable
    {!Spec.t}. *)

type t = {
  name : string;
  syscalls : string list;  (** unique, sorted by name *)
  categories : (Ksurf_kernel.Category.t * int) list;
      (** call sites per category, in {!Ksurf_kernel.Category.all}
          order (multi-category calls counted in each) *)
  coverage : Ksurf_syzgen.Coverage.Set.t;
}

val of_corpus : name:string -> Ksurf_syzgen.Corpus.t -> t

val mix : t -> float array
(** Normalized per-category call-site fractions in
    {!Ksurf_kernel.Category.all} order (sums to 1 when any call site was
    recorded, all zeros otherwise).  The baseline the kadapt drift
    detector diverges against. *)

val retained_categories : t -> Ksurf_kernel.Category.t list
(** Categories with at least one observed call site, in
    {!Ksurf_kernel.Category.all} order.  Everything else is machinery
    the specialized kernel can drop. *)

val restrict :
  Ksurf_syzgen.Corpus.t ->
  keep:Ksurf_kernel.Category.t list ->
  Ksurf_syzgen.Corpus.t option
(** Per-call restriction of a corpus: keep the calls whose categories
    are all in [keep], drop programs left empty.  [None] when nothing
    survives.  This is how a study pins a workload to a subsystem
    subset before profiling it. *)

(** {2 Live recording}

    Observe programs as a harness issues them — e.g. feed every
    program of a varbench iteration — then {!snapshot} the profile. *)

type recorder

val recorder : name:string -> unit -> recorder
val observe : recorder -> Ksurf_syzgen.Program.t -> unit
val observed_programs : recorder -> int

val observed_blocks : recorder -> int
(** Distinct kernel basic blocks covered so far — the coverage-stability
    signal kadapt's promotion rule watches across audit epochs. *)

val snapshot : recorder -> t
(** Raises [Invalid_argument] if nothing was observed. *)

(** {2 Serialisation} *)

val to_string : t -> string
(** Line-based form: profile name, syscall list, per-category counts,
    coverage block ids.  Stable for equal profiles. *)

val of_string : string -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
val pp : Format.formatter -> t -> unit
