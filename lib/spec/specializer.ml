module Category = Ksurf_kernel.Category
module Ops = Ksurf_kernel.Ops
module Config = Ksurf_kernel.Config
module Instance = Ksurf_kernel.Instance
module Syscalls = Ksurf_syscalls.Syscalls
module Coverage = Ksurf_syzgen.Coverage
module Env = Ksurf_env.Env

let reachable_fraction ~allowlist =
  let reachable =
    List.fold_left
      (fun acc name ->
        match Syscalls.by_name name with
        | Some spec -> Coverage.Set.union acc (Coverage.universe_of_call spec)
        | None -> acc)
      Coverage.Set.empty allowlist
  in
  float_of_int (Coverage.Set.cardinal reachable)
  /. float_of_int (Coverage.Set.cardinal (Coverage.universe ()))

let compile ?(mode = Spec.Enforce) (p : Profile.t) =
  if p.Profile.syscalls = [] then
    invalid_arg "Specializer.compile: profile allows no syscalls";
  let retained =
    List.filter
      (fun cat ->
        List.exists
          (fun name ->
            match Syscalls.by_name name with
            | Some spec -> Ksurf_syscalls.Spec.in_category spec cat
            | None -> false)
          p.Profile.syscalls)
      Category.all
  in
  {
    Spec.profile_name = p.Profile.name;
    allowlist = List.sort_uniq String.compare p.Profile.syscalls;
    retained;
    mode;
    reachable = reachable_fraction ~allowlist:p.Profile.syscalls;
  }

let pruned_machinery (s : Spec.t) =
  let needed =
    List.concat_map Ops.machinery_of_category s.Spec.retained
  in
  List.filter (fun m -> not (List.mem m needed)) Ops.all_machinery

let kernel_config ?(base = Config.default) s =
  List.fold_left (fun cfg m -> Config.without_machinery m cfg) base
    (pruned_machinery s)

let policy (s : Spec.t) =
  let allowed = Hashtbl.create (List.length s.Spec.allowlist) in
  List.iter (fun n -> Hashtbl.replace allowed n ()) s.Spec.allowlist;
  {
    Instance.allows = (fun name -> Hashtbl.mem allowed name);
    policy_mode =
      (match s.Spec.mode with
      | Spec.Audit -> Instance.Audit
      | Spec.Enforce -> Instance.Enforce);
    reachable = s.Spec.reachable;
    denials = ref 0;
  }

let install env ~rank (s : Spec.t) =
  Instance.set_syscall_policy
    (Env.instance_of_rank env rank)
    ~tenant:rank
    (Some (policy s))

let install_all env s =
  for rank = 0 to Env.rank_count env - 1 do
    install env ~rank s
  done

let denials env ~rank =
  match
    Instance.syscall_policy (Env.instance_of_rank env rank) ~tenant:rank
  with
  | Some p -> !(p.Instance.denials)
  | None -> 0
