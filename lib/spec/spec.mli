(** A compiled specialization: the reduce half of kspec.

    The declarative result of {!Specializer.compile} on a
    {!Profile.t} — a seccomp-style syscall allowlist, the op
    categories the workload needs, the enforcement mode, and the
    fraction of the coverage universe the allowlist leaves
    reachable.  Installing one changes a kernel instance's behaviour;
    the spec itself is pure data and serialises into reports. *)

type mode =
  | Audit  (** log denials (probe-visible), let the call run *)
  | Enforce  (** deny with ENOSYS after the entry path *)

type t = {
  profile_name : string;
  allowlist : string list;  (** permitted syscall names, sorted *)
  retained : Ksurf_kernel.Category.t list;
      (** categories the allowlist can exercise — the machinery keyed
          to every other category is prunable *)
  mode : mode;
  reachable : float;
      (** fraction of {!Ksurf_syzgen.Coverage.universe} reachable
          through the allowlist, in (0, 1] *)
}

val mode_to_string : mode -> string
val allows : t -> string -> bool
val pp : Format.formatter -> t -> unit
