module Category = Ksurf_kernel.Category
module Spec = Ksurf_syscalls.Spec
module Program = Ksurf_syzgen.Program
module Corpus = Ksurf_syzgen.Corpus
module Coverage = Ksurf_syzgen.Coverage

type t = {
  name : string;
  syscalls : string list;
  categories : (Category.t * int) list;
  coverage : Coverage.Set.t;
}

let of_corpus ~name corpus =
  {
    name;
    syscalls = Corpus.unique_syscalls corpus;
    categories = Corpus.category_histogram corpus;
    coverage = Corpus.coverage corpus;
  }

let mix t =
  let v =
    Array.of_list (List.map (fun cat ->
        match List.assoc_opt cat t.categories with
        | Some n -> float_of_int n
        | None -> 0.0)
      Category.all)
  in
  let total = Array.fold_left ( +. ) 0.0 v in
  if total > 0.0 then Array.iteri (fun i x -> v.(i) <- x /. total) v;
  v

let retained_categories t =
  List.filter_map
    (fun cat ->
      match List.assoc_opt cat t.categories with
      | Some n when n > 0 -> Some cat
      | _ -> None)
    Category.all

let restrict corpus ~keep =
  let keeps cat = List.exists (Category.equal cat) keep in
  let progs =
    Array.to_list (Corpus.programs corpus)
    |> List.filter_map (fun (p : Program.t) ->
           match
             List.filter
               (fun (c : Program.call) ->
                 List.for_all keeps c.Program.spec.Spec.categories)
               p.Program.calls
           with
           | [] -> None
           | calls -> Some { p with Program.calls })
  in
  match progs with [] -> None | progs -> Some (Corpus.of_programs progs)

(* --- live recording --------------------------------------------------- *)

type recorder = {
  rec_name : string;
  mutable programs : int;
  names : (string, unit) Hashtbl.t;
  counts : int array;  (** indexed by {!Category.index} *)
  mutable blocks : Coverage.Set.t;
}

let recorder ~name () =
  {
    rec_name = name;
    programs = 0;
    names = Hashtbl.create 64;
    counts = Array.make (List.length Category.all) 0;
    blocks = Coverage.Set.empty;
  }

let observe r (p : Program.t) =
  r.programs <- r.programs + 1;
  List.iter
    (fun (c : Program.call) ->
      Hashtbl.replace r.names c.Program.spec.Spec.name ();
      List.iter
        (fun cat ->
          let i = Category.index cat in
          r.counts.(i) <- r.counts.(i) + 1)
        c.Program.spec.Spec.categories)
    p.Program.calls;
  r.blocks <- Coverage.Set.union r.blocks (Coverage.of_program p)

let observed_programs r = r.programs
let observed_blocks r = Coverage.Set.cardinal r.blocks

let snapshot r =
  if r.programs = 0 then invalid_arg "Profile.snapshot: nothing observed";
  {
    name = r.rec_name;
    syscalls =
      Hashtbl.fold (fun n () acc -> n :: acc) r.names []
      |> List.sort String.compare;
    categories = List.map (fun cat -> (cat, r.counts.(Category.index cat))) Category.all;
    coverage = r.blocks;
  }

(* --- serialisation ---------------------------------------------------- *)

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "profile %s\n" t.name);
  Buffer.add_string buf
    (Printf.sprintf "syscalls %s\n" (String.concat "," t.syscalls));
  List.iter
    (fun (cat, n) ->
      Buffer.add_string buf
        (Printf.sprintf "category %s %d\n" (Category.to_string cat) n))
    t.categories;
  Buffer.add_string buf
    (Printf.sprintf "coverage %s\n"
       (String.concat ","
          (List.map string_of_int (Coverage.Set.to_list t.coverage))));
  Buffer.contents buf

let of_string s =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let field prefix line =
    let plen = String.length prefix in
    if String.length line >= plen && String.sub line 0 plen = prefix then
      Some (String.sub line plen (String.length line - plen))
    else None
  in
  let rec parse lines name syscalls cats cov =
    match lines with
    | [] -> Ok (name, syscalls, List.rev cats, cov)
    | line :: rest -> (
        match field "profile " line with
        | Some n -> parse rest (Some n) syscalls cats cov
        | None -> (
            match field "syscalls " line with
            | Some body ->
                let names =
                  String.split_on_char ',' body
                  |> List.filter (fun n -> n <> "")
                in
                parse rest name (Some names) cats cov
            | None -> (
                match field "category " line with
                | Some body -> (
                    match String.split_on_char ' ' body with
                    | [ cat_s; n_s ] -> (
                        match
                          (Category.of_string cat_s, int_of_string_opt n_s)
                        with
                        | Some cat, Some n ->
                            parse rest name syscalls ((cat, n) :: cats) cov
                        | _ ->
                            Error
                              (Printf.sprintf "Profile: bad category line %S"
                                 line))
                    | _ ->
                        Error
                          (Printf.sprintf "Profile: bad category line %S" line))
                | None -> (
                    match field "coverage " line with
                    | Some body ->
                        let ids =
                          String.split_on_char ',' body
                          |> List.filter (fun x -> x <> "")
                          |> List.filter_map int_of_string_opt
                        in
                        parse rest name syscalls cats
                          (Some (Coverage.Set.of_list ids))
                    | None ->
                        Error (Printf.sprintf "Profile: unknown line %S" line)))
            ))
  in
  let* name, syscalls, categories, coverage =
    parse lines None None [] None
  in
  match (name, syscalls) with
  | None, _ -> Error "Profile: missing profile line"
  | _, None -> Error "Profile: missing syscalls line"
  | Some name, Some syscalls ->
      Ok
        {
          name;
          syscalls;
          categories;
          coverage = Option.value ~default:Coverage.Set.empty coverage;
        }

let save t path =
  Ksurf_util.Fileio.write_atomic ~path (fun oc -> output_string oc (to_string t))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let pp ppf t =
  Fmt.pf ppf "@[<v>profile %s: %d syscalls, %d blocks@,retained: %a@]" t.name
    (List.length t.syscalls)
    (Coverage.Set.cardinal t.coverage)
    Fmt.(list ~sep:(any ", ") Category.pp)
    (retained_categories t)
