module Category = Ksurf_kernel.Category

type mode = Audit | Enforce

type t = {
  profile_name : string;
  allowlist : string list;
  retained : Category.t list;
  mode : mode;
  reachable : float;
}

let mode_to_string = function Audit -> "audit" | Enforce -> "enforce"
let allows t name = List.mem name t.allowlist

let pp ppf t =
  Fmt.pf ppf
    "@[<v>spec for %s (%s): %d syscalls allowed, %.1f%% of universe \
     reachable@,retained: %a@]"
    t.profile_name (mode_to_string t.mode)
    (List.length t.allowlist)
    (100.0 *. t.reachable)
    Fmt.(list ~sep:(any ", ") Category.pp)
    t.retained
