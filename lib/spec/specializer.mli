(** Compile a {!Profile.t} into a {!Spec.t} and wire it into a
    deployment — the closed measure→reduce loop.

    Three reductions come out of one profile:
    - a per-tenant syscall allowlist, installed on the tenant's kernel
      instance and checked by {!Ksurf_env.Env} on every call;
    - a pruned {!Ksurf_kernel.Config.t}: background daemons, timer
      noise, and accounting machinery keyed to categories the profile
      never exercises are switched off (see
      {!Ksurf_kernel.Ops.machinery_of_category});
    - a functional surface-area term, {!Spec.t.reachable}, multiplying
      the structural sharing term in
      {!Ksurf_env.Env.surface_area_of_rank}. *)

val reachable_fraction : allowlist:string list -> float
(** |union of {!Ksurf_syzgen.Coverage.universe_of_call} over the
    allowlist| / |{!Ksurf_syzgen.Coverage.universe}|.  Monotone in the
    allowlist; unknown names contribute nothing. *)

val compile : ?mode:Spec.mode -> Profile.t -> Spec.t
(** [mode] defaults to [Enforce].  Raises [Invalid_argument] on a
    profile with an empty syscall list. *)

val pruned_machinery : Spec.t -> Ksurf_kernel.Ops.machinery list
(** Machinery needed by no retained category, in
    {!Ksurf_kernel.Ops.all_machinery} order. *)

val kernel_config :
  ?base:Ksurf_kernel.Config.t -> Spec.t -> Ksurf_kernel.Config.t
(** [base] (default {!Ksurf_kernel.Config.default}) with every pruned
    machinery switched off.  Pass as [~kernel_config] to
    {!Ksurf_env.Env.deploy}. *)

val policy : Spec.t -> Ksurf_kernel.Instance.syscall_policy
(** The hashtable-backed allowlist policy a spec compiles to, with a
    fresh denial counter.  {!install} wires this to an instance; the
    kadapt controller hot-swaps it via
    {!Ksurf_env.Env.swap_policy}. *)

val install : Ksurf_env.Env.t -> rank:int -> Spec.t -> unit
(** Install the spec's allowlist as rank [rank]'s syscall policy on
    the instance serving that rank. *)

val install_all : Ksurf_env.Env.t -> Spec.t -> unit
(** {!install} for every rank of the deployment. *)

val denials : Ksurf_env.Env.t -> rank:int -> int
(** Denials charged to [rank]'s policy so far (0 without a policy). *)
