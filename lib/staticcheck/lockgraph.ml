(* Whole-table static lock-order graph.

   The only op that holds one lock across further acquisitions is
   [Ops.With_lock], so walking every syscall's op program over its
   argument lattice with a held-stack produces exactly the class edges
   the dynamic lockdep could ever observe from syscall programs —
   before any run happens.  Implied acquisitions (cache-miss fills,
   slab refills, buddy allocations, charge spills) count: a dcache
   probe inside a critical section can take the dcache lock on a miss
   even if no run of the simulator happens to miss there.

   A cycle in this graph is a potential deadlock by the same criterion
   the dynamic validator uses (a non-trivial SCC, or a self-edge from
   same-class nesting); the stock table must certify cycle-free, and a
   seeded AB/BA pair of specs must be flagged without running. *)

module Ops = Ksurf_kernel.Ops
module Arg = Ksurf_syscalls.Arg
module Spec = Ksurf_syscalls.Spec
module Finding = Ksurf_analysis.Finding
module Lockdep = Ksurf_analysis.Lockdep

type edge = { src : string; dst : string; witness : string }

type t = {
  nodes : string list;  (** insertion order *)
  edges : edge list;  (** insertion order, first witness per (src, dst) *)
}

type builder = {
  mutable b_nodes : string list;
  node_set : (string, unit) Hashtbl.t;
  edge_tbl : (string * string, unit) Hashtbl.t;
  mutable b_edges : edge list;
}

let note_node b n =
  if not (Hashtbl.mem b.node_set n) then begin
    Hashtbl.add b.node_set n ();
    b.b_nodes <- n :: b.b_nodes
  end

let note_edge b ~src ~dst ~witness =
  note_node b src;
  note_node b dst;
  if not (Hashtbl.mem b.edge_tbl (src, dst)) then begin
    Hashtbl.add b.edge_tbl (src, dst) ();
    b.b_edges <- { src; dst; witness } :: b.b_edges
  end

(* Classes an op may acquire at its point in the program (not counting
   the nested body of a With_lock, which is walked with the outer class
   pushed on the held stack). *)
let shallow_acquisitions (op : Ops.op) =
  match op with
  | Ops.Lock (l, _) | Ops.With_lock (l, _, _) ->
      [ Footprint.class_of_lock_ref l ]
  | Ops.Read_lock (r, _) | Ops.Write_lock (r, _) ->
      [ Footprint.class_of_rw_ref r ]
  | Ops.Dcache_lookup -> [ Footprint.class_of_lock_ref Ops.Dcache ]
  | Ops.Page_cache_lookup -> [ Footprint.class_of_lock_ref Ops.Page_cache_tree ]
  | Ops.Slab_alloc | Ops.Page_alloc _ -> [ Footprint.class_of_lock_ref Ops.Zone ]
  | Ops.Cgroup_charge -> [ Footprint.class_of_lock_ref Ops.Cgroup_css ]
  | Ops.Cpu _ | Ops.Cpu_dist _ | Ops.Tlb_shootdown | Ops.Rcu_sync
  | Ops.Block_io _ | Ops.Sleep _ ->
      []

let rec walk b (spec : Spec.t) (arg : Arg.t) ~held op =
  let witness dst held_cls =
    Printf.sprintf "syscall %s (size=%d obj=%d flags=%d): %s held while acquiring %s"
      spec.Spec.name arg.Arg.size arg.Arg.obj arg.Arg.flags held_cls dst
  in
  List.iter
    (fun dst ->
      note_node b dst;
      List.iter (fun h -> note_edge b ~src:h ~dst ~witness:(witness dst h)) held)
    (shallow_acquisitions op);
  match op with
  | Ops.With_lock (l, _, body) ->
      let cls = Footprint.class_of_lock_ref l in
      List.iter (walk b spec arg ~held:(cls :: held)) body
  | _ -> ()

let of_specs specs =
  let b =
    {
      b_nodes = [];
      node_set = Hashtbl.create 32;
      edge_tbl = Hashtbl.create 64;
      b_edges = [];
    }
  in
  List.iter
    (fun (spec : Spec.t) ->
      List.iter
        (fun arg ->
          List.iter (walk b spec arg ~held:[]) (spec.Spec.ops arg))
        (Footprint.lattice_points spec.Spec.arg_model))
    specs;
  { nodes = List.rev b.b_nodes; edges = List.rev b.b_edges }

let of_table () = of_specs (Array.to_list Ksurf_syscalls.Syscalls.all)

let edge_count t = List.length t.edges
let node_count t = List.length t.nodes

let cycles t =
  let adjacency = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt adjacency e.src) in
      Hashtbl.replace adjacency e.src (e.dst :: existing))
    (List.rev t.edges);
  let succs v = Option.value ~default:[] (Hashtbl.find_opt adjacency v) in
  let has_edge src dst =
    List.exists (fun e -> e.src = src && e.dst = dst) t.edges
  in
  let sccs = Lockdep.strongly_connected_components ~nodes:t.nodes ~succs in
  List.filter_map
    (fun scc ->
      let cyclic =
        match scc with
        | [ v ] -> has_edge v v
        | _ :: _ :: _ -> true
        | [] -> false
      in
      if not cyclic then None
      else begin
        let members = List.sort String.compare scc in
        let in_scc c = List.mem c members in
        let witness_lines =
          List.filter_map
            (fun e ->
              if in_scc e.src && in_scc e.dst then Some e.witness else None)
            t.edges
        in
        Some
          (Finding.make ~severity:Finding.Error ~check:"staticcheck"
             ~code:"static-lock-order-cycle"
             ~message:
               (Printf.sprintf "potential deadlock: lock-order cycle [%s]"
                  (String.concat " -> " (members @ [ List.hd members ])))
             ~witness:witness_lines ())
      end)
    sccs

let findings = cycles

let pp ppf t =
  Format.fprintf ppf "@[<v>static lock-order graph: %d classes, %d edges@,"
    (node_count t) (edge_count t);
  List.iter
    (fun e -> Format.fprintf ppf "  %s -> %s  (%s)@," e.src e.dst e.witness)
    t.edges;
  (match cycles t with
  | [] -> Format.fprintf ppf "  no lock-order cycles: table certified@,"
  | cs ->
      List.iter
        (fun (f : Finding.t) -> Format.fprintf ppf "  CYCLE: %s@," f.Finding.message)
        cs);
  Format.fprintf ppf "@]"

let csv_header = [ "src"; "dst"; "witness" ]
let csv_rows t = List.map (fun e -> [ e.src; e.dst; e.witness ]) t.edges
