(* Static interference matrix (the Table-3 mechanism, derived without
   running anything).

   Two calls interfere when both can acquire the same instance-global
   lock — the locks with one instance per kernel, where contention
   grows with the number of tenants sharing it (Ops.global_lock_refs).
   Striped locks (inode, pipe, futex buckets, page-cache-tree stripes)
   only collide on shared objects and are excluded: the matrix captures
   the structural coupling that partitioning or specialization removes,
   not data sharing the tenants opted into. *)

module Ops = Ksurf_kernel.Ops

type t = {
  classes : (string * string list) list;
      (* global lock class -> calls that can take it, table order *)
  pairs : (string * string * string list) list;
      (* call_a < call_b -> shared global classes *)
}

let global_classes =
  List.map Footprint.class_of_lock_ref Ops.global_lock_refs

let of_footprints fps =
  let global_locks_of fp =
    List.filter
      (fun c -> List.mem c global_classes)
      (List.map Footprint.class_of_lock_ref fp.Footprint.locks)
  in
  let classes =
    List.map
      (fun cls ->
        ( cls,
          List.filter_map
            (fun fp ->
              if List.mem cls (global_locks_of fp) then
                Some fp.Footprint.name
              else None)
            fps ))
      global_classes
  in
  let pairs = ref [] in
  let rec each_pair = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            let shared =
              List.filter
                (fun c -> List.mem c (global_locks_of b))
                (global_locks_of a)
            in
            if shared <> [] then
              pairs :=
                (a.Footprint.name, b.Footprint.name, shared) :: !pairs)
          rest;
        each_pair rest
  in
  each_pair fps;
  { classes; pairs = List.rev !pairs }

let of_table () = of_footprints (Footprint.all ())

let interfering_pairs t = List.length t.pairs

let total_pairs t =
  (* over the calls that appear under at least one global class *)
  let calls =
    List.concat_map snd t.classes |> List.sort_uniq String.compare
  in
  let n = List.length calls in
  n * (n - 1) / 2

let calls_on t cls = Option.value ~default:[] (List.assoc_opt cls t.classes)

let shared_locks t a b =
  List.filter_map
    (fun (x, y, shared) ->
      if (x = a && y = b) || (x = b && y = a) then Some shared else None)
    t.pairs
  |> List.concat

let pp ppf t =
  Format.fprintf ppf
    "@[<v>static interference: %d of %d call pairs share an instance-global lock@,"
    (interfering_pairs t) (total_pairs t);
  List.iter
    (fun (cls, calls) ->
      if calls <> [] then
        Format.fprintf ppf "  %-14s %2d calls: %s@," cls (List.length calls)
          (String.concat " " calls))
    t.classes;
  Format.fprintf ppf "@]"

let csv_header = [ "call_a"; "call_b"; "shared_global_locks" ]

let csv_rows t =
  List.map (fun (a, b, shared) -> [ a; b; String.concat "+" shared ]) t.pairs
