(** Driver for the static analysis pass (kstat).

    Combines {!Footprint} (per-call static footprints), {!Lockgraph}
    (whole-table lock-order graph + potential-deadlock cycles) and
    {!Interference} (instance-global contention matrix) with static
    allowlist verification for kspec deployments.  All of it is
    computed from the syscall table alone — no simulator run. *)

val reachable_names : ?keep:Ksurf_kernel.Category.t list -> unit -> string list
(** Calls whose categories are all within [keep] (default: every
    category — the whole table), sorted.  Mirrors
    {!Ksurf_spec.Profile.restrict}: a multi-category call needs every
    one of its categories kept. *)

val static_surface : allowlist:string list -> float
(** {!Ksurf_spec.Specializer.reachable_fraction}: fraction of the
    coverage universe reachable through the allowlist. *)

val dynamic_surface : Ksurf_spec.Profile.t -> float
(** Fraction of the coverage universe the profile actually covered —
    the dynamic number the static one must upper-bound. *)

type spec_report = {
  workload : string;
  keep : Ksurf_kernel.Category.t list;
  reachable : string list;  (** statically reachable under [keep] *)
  allowlist : string list;
  gaps : string list;
      (** corpus-issued-but-not-allowed: ENOSYS hazards under Enforce *)
  slack : string list;  (** allowed-but-unreachable *)
  findings : Ksurf_analysis.Finding.t list;
  static_surface : float;
  dynamic_surface : float;
}

val verify :
  workload:string ->
  keep:Ksurf_kernel.Category.t list ->
  profile:Ksurf_spec.Profile.t ->
  spec:Ksurf_spec.Spec.t ->
  config:Ksurf_kernel.Config.t ->
  unit ->
  spec_report
(** Verify a (profile, allowlist, kernel config) triple: gaps are
    errors under [Enforce] (the call would hit ENOSYS) and warnings
    under [Audit]; slack is always a warning; an allowed call whose
    footprint needs machinery the config prunes is an error
    ([machinery-pruned]). *)

val pp_spec_report : Format.formatter -> spec_report -> unit

val table_findings : unit -> Ksurf_analysis.Finding.t list
(** Lock-order cycles of the stock table (empty = certified). *)

val export_csv : dir:string -> unit -> string list
(** Write static_footprints.csv, static_lock_graph.csv and
    static_interference.csv under [dir]; returns the paths written. *)
