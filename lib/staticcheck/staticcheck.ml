(* Driver for the static analysis pass: ties footprints, the
   lock-order graph, the interference matrix and allowlist
   verification together for the CLI and `make staticcheck`.

   Everything here is computed from the syscall table alone — no
   engine, no instances, no sampling.  The dynamic side of each claim
   is checked against this one by test/test_staticcheck.ml. *)

module Category = Ksurf_kernel.Category
module Config = Ksurf_kernel.Config
module Ops = Ksurf_kernel.Ops
module Spec = Ksurf_syscalls.Spec
module Finding = Ksurf_analysis.Finding
module Profile = Ksurf_spec.Profile
module Kspec = Ksurf_spec.Spec
module Coverage = Ksurf_syzgen.Coverage
module Csv = Ksurf_report.Csv

(* --- static reachability ---------------------------------------------- *)

(* Mirrors Profile.restrict: a call is reachable under a category
   subset when ALL of its categories are kept (restrict drops any call
   with a category outside [keep], so a multi-category call needs every
   one of them). *)
let reachable_names ?(keep = Category.all) () =
  Array.to_list Ksurf_syscalls.Syscalls.all
  |> List.filter_map (fun (spec : Spec.t) ->
         if
           List.for_all
             (fun c -> List.exists (Category.equal c) keep)
             spec.Spec.categories
         then Some spec.Spec.name
         else None)
  |> List.sort String.compare

let static_surface ~allowlist =
  Ksurf_spec.Specializer.reachable_fraction ~allowlist

let dynamic_surface (profile : Profile.t) =
  float_of_int (Coverage.Set.cardinal profile.Profile.coverage)
  /. float_of_int (Coverage.Set.cardinal (Coverage.universe ()))

(* --- allowlist verification (kspec) ------------------------------------ *)

type spec_report = {
  workload : string;
  keep : Category.t list;
  reachable : string list;  (** statically reachable under [keep] *)
  allowlist : string list;
  gaps : string list;  (** reachable but not allowed: ENOSYS hazards *)
  slack : string list;  (** allowed but statically unreachable *)
  findings : Finding.t list;
  static_surface : float;  (** reachable fraction through the allowlist *)
  dynamic_surface : float;  (** fraction the profile actually covered *)
}

let cats_str keep = String.concat "+" (List.map Category.to_string keep)

(* Machinery hazards: an allowed call whose footprint needs machinery
   the given (pruned) kernel config switches off.  Config-driven on
   purpose — the stock table legitimately contains Perm-only calls
   that take the journal lock, so category/machinery mismatch is not a
   table error; it only becomes one when a specific deployment prunes
   the machinery an allowed call depends on. *)
let machinery_findings ~(config : Config.t) fps allowlist =
  List.concat_map
    (fun name ->
      match Footprint.find fps name with
      | None -> []
      | Some fp ->
          let need = [] in
          let need =
            if
              List.mem Ops.Journal fp.Footprint.locks
              && not
                   (config.Config.enable_background
                   && config.Config.enable_journal_daemon)
            then
              ( "journal-daemon",
                Printf.sprintf
                  "%s dirties the journal but the journal commit daemon is \
                   pruned"
                  name )
              :: need
            else need
          in
          let need =
            if fp.Footprint.ipi && not config.Config.enable_tlb_shootdown
            then
              ( "tlb-shootdown",
                Printf.sprintf
                  "%s broadcasts TLB-shootdown IPIs but shootdowns are pruned"
                  name )
              :: need
            else need
          in
          let need =
            if
              List.mem Ops.Cgroup_css fp.Footprint.locks
              && not config.Config.enable_cgroup_accounting
            then
              ( "cgroup-accounting",
                Printf.sprintf
                  "%s charges the cgroup controller but accounting is pruned"
                  name )
              :: need
            else need
          in
          List.rev_map
            (fun (what, msg) ->
              Finding.make ~severity:Finding.Error ~check:"staticcheck"
                ~code:"machinery-pruned" ~message:msg
                ~witness:[ Printf.sprintf "machinery: %s" what ]
                ())
            need)
    allowlist

let verify ~workload ~keep ~(profile : Profile.t) ~(spec : Kspec.t)
    ~(config : Config.t) () =
  let reachable = reachable_names ~keep () in
  let allowlist = List.sort String.compare spec.Kspec.allowlist in
  (* Gap: the corpus demonstrably issues the call, the allowlist
     denies it.  Corpus-reachable, not category-reachable — an exact
     profile-derived allowlist must certify clean even when the corpus
     did not cover its whole category universe. *)
  let gaps =
    List.filter
      (fun n -> not (List.mem n allowlist))
      profile.Profile.syscalls
  in
  let slack =
    List.filter (fun n -> not (List.mem n reachable)) allowlist
  in
  let fps = Footprint.all () in
  let gap_findings =
    List.map
      (fun n ->
        let severity, hazard =
          match spec.Kspec.mode with
          | Kspec.Enforce -> (Finding.Error, "denied with ENOSYS")
          | Kspec.Audit -> (Finding.Warning, "would be denied under Enforce")
        in
        Finding.make ~severity ~check:"staticcheck" ~code:"allowlist-gap"
          ~message:
            (Printf.sprintf
               "allowlist gap: the %s corpus issues %s but the allowlist \
                denies it (%s)"
               workload n hazard)
          ~witness:
            [
              Printf.sprintf "workload %s, profile %s, mode %s" workload
                profile.Profile.name
                (Kspec.mode_to_string spec.Kspec.mode);
            ]
          ())
      gaps
  in
  let slack_findings =
    List.map
      (fun n ->
        Finding.make ~severity:Finding.Warning ~check:"staticcheck"
          ~code:"allowlist-slack"
          ~message:
            (Printf.sprintf
               "allowlist slack: %s is allowed but not statically reachable \
                under [%s]"
               n (cats_str keep))
          ~witness:
            [ Printf.sprintf "workload %s, profile %s" workload
                profile.Profile.name ]
          ())
      slack
  in
  {
    workload;
    keep;
    reachable;
    allowlist;
    gaps;
    slack;
    findings =
      Finding.sort
        (gap_findings @ slack_findings
        @ machinery_findings ~config fps allowlist);
    static_surface = static_surface ~allowlist;
    dynamic_surface = dynamic_surface profile;
  }

let pp_spec_report ppf r =
  Format.fprintf ppf
    "@[<v>allowlist verification: workload %s (categories [%s])@,\
    \  statically reachable %d calls, allowed %d calls@,\
    \  gaps %d, slack %d@,\
    \  surface area: static %.4f, dynamic %.4f@,"
    r.workload (cats_str r.keep)
    (List.length r.reachable)
    (List.length r.allowlist)
    (List.length r.gaps) (List.length r.slack) r.static_surface
    r.dynamic_surface;
  List.iter (fun f -> Format.fprintf ppf "  %a@," Finding.pp f) r.findings;
  Format.fprintf ppf "@]"

(* --- whole-table entry points ------------------------------------------ *)

let table_findings () = Lockgraph.findings (Lockgraph.of_table ())

let export_csv ~dir () =
  let fps = Footprint.all () in
  let graph = Lockgraph.of_table () in
  let matrix = Interference.of_table () in
  let write name header rows =
    let path = Filename.concat dir name in
    Csv.write ~path ~header ~rows;
    path
  in
  [
    write "static_footprints.csv" Footprint.csv_header
      (Footprint.csv_rows fps);
    write "static_lock_graph.csv" Lockgraph.csv_header
      (Lockgraph.csv_rows graph);
    write "static_interference.csv" Interference.csv_header
      (Interference.csv_rows matrix);
  ]
