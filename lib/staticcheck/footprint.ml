(* Per-call static footprint by abstract interpretation.

   A syscall's [ops : Arg.t -> op list] program is a total function
   over a small argument lattice: the size buckets of its argument
   model times its object stripes times its flag values.  Enumerating
   the whole lattice and unioning the effects of every op yields the
   complete may-set of kernel structures the call can ever touch —
   no simulator run required, and no interleaving luck involved.

   Soundness direction: static ⊇ dynamic.  Every lock the [Instance]
   interpreter can take while executing the program must appear here,
   including the *implied* acquisitions the op vocabulary hides behind
   probabilistic paths: a dcache miss fills under the dcache lock, a
   page-cache miss fills under a page-cache-tree stripe, a slab
   refill and every buddy allocation take the zone lock, and a
   cgroup-charge spill serialises on the css lock.  The agreement
   tests in test/test_staticcheck.ml execute every call dynamically
   and assert the subset relation. *)

module Ops = Ksurf_kernel.Ops
module Category = Ksurf_kernel.Category
module Arg = Ksurf_syscalls.Arg
module Spec = Ksurf_syscalls.Spec

type t = {
  name : string;
  number : int;
  categories : Category.t list;
  locks : Ops.lock_ref list;
  rw_reads : Ops.rw_ref list;
  rw_writes : Ops.rw_ref list;
  machinery : Ops.machinery list;
  ipi : bool;
  rcu : bool;
  block_io : bool;
  sleeps : bool;
  arg_points : int;
}

(* The lock-class name the simulator's instances use (and lockdep
   normalises to): [Instance.boot] names the page-cache-tree stripes
   "pct" and the futex buckets "futex"; everything else matches
   [Ops.lock_ref_name]. *)
let class_of_lock_ref = function
  | Ops.Page_cache_tree -> "pct"
  | Ops.Futex_bucket -> "futex"
  | l -> Ops.lock_ref_name l

let class_of_rw_ref = Ops.rw_ref_name

(* Every argument point the model distinguishes: one representative
   size per coverage bucket (same-bucket sizes select the same paths by
   construction, mirroring Coverage.universe_of_call), every object
   stripe, every flag value.  Bounded by 4 buckets x 16 objects x 8
   flags, so full enumeration is cheap. *)
let lattice_points (model : Arg.model) =
  let sizes =
    if Array.length model.Arg.sizes = 0 then [ 0 ]
    else
      Array.to_list model.Arg.sizes
      |> List.map (fun s -> (Arg.size_bucket s, s))
      |> List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
  in
  let points = ref [] in
  List.iter
    (fun size ->
      for obj = 0 to max 1 model.Arg.max_obj - 1 do
        for flags = 0 to max 1 model.Arg.max_flags - 1 do
          points := { Arg.size; obj; flags } :: !points
        done
      done)
    sizes;
  List.rev !points

type acc = {
  mutable a_locks : Ops.lock_ref list;
  mutable a_reads : Ops.rw_ref list;
  mutable a_writes : Ops.rw_ref list;
  mutable a_ipi : bool;
  mutable a_rcu : bool;
  mutable a_block : bool;
  mutable a_sleeps : bool;
}

let add_lock acc l = if not (List.mem l acc.a_locks) then acc.a_locks <- l :: acc.a_locks

let rec absorb_op acc (op : Ops.op) =
  match op with
  | Ops.Cpu _ | Ops.Cpu_dist _ -> ()
  | Ops.Lock (l, _) -> add_lock acc l
  | Ops.With_lock (l, _, body) ->
      add_lock acc l;
      List.iter (absorb_op acc) body
  | Ops.Read_lock (r, _) ->
      if not (List.mem r acc.a_reads) then acc.a_reads <- r :: acc.a_reads
  | Ops.Write_lock (r, _) ->
      if not (List.mem r acc.a_writes) then acc.a_writes <- r :: acc.a_writes
  | Ops.Dcache_lookup -> add_lock acc Ops.Dcache (* miss fills under it *)
  | Ops.Page_cache_lookup -> add_lock acc Ops.Page_cache_tree (* miss path *)
  | Ops.Slab_alloc -> add_lock acc Ops.Zone (* per-cpu magazine refill *)
  | Ops.Page_alloc _ -> add_lock acc Ops.Zone
  | Ops.Tlb_shootdown -> acc.a_ipi <- true
  | Ops.Rcu_sync -> acc.a_rcu <- true
  | Ops.Block_io _ -> acc.a_block <- true
  | Ops.Cgroup_charge -> add_lock acc Ops.Cgroup_css (* charge spill path *)
  | Ops.Sleep _ -> acc.a_sleeps <- true

let sort_by f l = List.sort (fun a b -> String.compare (f a) (f b)) l

let of_spec (spec : Spec.t) =
  let acc =
    {
      a_locks = [];
      a_reads = [];
      a_writes = [];
      a_ipi = false;
      a_rcu = false;
      a_block = false;
      a_sleeps = false;
    }
  in
  let points = lattice_points spec.Spec.arg_model in
  List.iter
    (fun arg -> List.iter (absorb_op acc) (spec.Spec.ops arg))
    points;
  let machinery =
    List.filter
      (fun m ->
        List.exists
          (fun cat -> List.mem m (Ops.machinery_of_category cat))
          spec.Spec.categories)
      Ops.all_machinery
  in
  {
    name = spec.Spec.name;
    number = spec.Spec.number;
    categories = spec.Spec.categories;
    locks = sort_by Ops.lock_ref_name acc.a_locks;
    rw_reads = sort_by Ops.rw_ref_name acc.a_reads;
    rw_writes = sort_by Ops.rw_ref_name acc.a_writes;
    machinery;
    ipi = acc.a_ipi;
    rcu = acc.a_rcu;
    block_io = acc.a_block;
    sleeps = acc.a_sleeps;
    arg_points = List.length points;
  }

let lock_classes t =
  List.map class_of_lock_ref t.locks
  @ List.map class_of_rw_ref t.rw_reads
  @ List.map class_of_rw_ref t.rw_writes
  |> List.sort_uniq String.compare

let all =
  let cached = ref None in
  fun () ->
    match !cached with
    | Some fps -> fps
    | None ->
        let fps =
          Array.to_list Ksurf_syscalls.Syscalls.all |> List.map of_spec
        in
        cached := Some fps;
        fps

let find fps name = List.find_opt (fun fp -> fp.name = name) fps

let pp ppf t =
  let names f l = String.concat "," (List.map f l) in
  Format.fprintf ppf "%-18s locks[%s]" t.name
    (names Ops.lock_ref_name t.locks);
  if t.rw_reads <> [] then
    Format.fprintf ppf " rd[%s]" (names Ops.rw_ref_name t.rw_reads);
  if t.rw_writes <> [] then
    Format.fprintf ppf " wr[%s]" (names Ops.rw_ref_name t.rw_writes);
  Format.fprintf ppf " daemons[%s]" (names Ops.machinery_name t.machinery);
  if t.ipi then Format.fprintf ppf " ipi";
  if t.rcu then Format.fprintf ppf " rcu";
  if t.block_io then Format.fprintf ppf " blkio";
  if t.sleeps then Format.fprintf ppf " sleeps"

let csv_header =
  [
    "syscall"; "number"; "categories"; "locks"; "rw_reads"; "rw_writes";
    "machinery"; "ipi"; "rcu"; "block_io"; "sleeps"; "arg_points";
  ]

let csv_rows fps =
  List.map
    (fun t ->
      [
        t.name;
        string_of_int t.number;
        String.concat "+" (List.map Category.to_string t.categories);
        String.concat "+" (List.map Ops.lock_ref_name t.locks);
        String.concat "+" (List.map Ops.rw_ref_name t.rw_reads);
        String.concat "+" (List.map Ops.rw_ref_name t.rw_writes);
        String.concat "+" (List.map Ops.machinery_name t.machinery);
        string_of_bool t.ipi;
        string_of_bool t.rcu;
        string_of_bool t.block_io;
        string_of_bool t.sleeps;
        string_of_int t.arg_points;
      ])
    fps
