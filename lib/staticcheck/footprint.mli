(** Per-call static footprint: the complete may-set of kernel
    structures a syscall can touch, computed by abstractly
    interpreting its op program over the full argument lattice
    (size buckets x object stripes x flag values) without running
    the simulator.

    Soundness: static ⊇ dynamic.  Implied acquisitions are included —
    cache-miss fills (dcache, page-cache tree), slab refills and buddy
    allocations (zone), cgroup-charge spills (css) — so every lock the
    {!Ksurf_kernel.Instance} interpreter can take on any execution of
    the program appears in the footprint. *)

type t = {
  name : string;
  number : int;
  categories : Ksurf_kernel.Category.t list;
  locks : Ksurf_kernel.Ops.lock_ref list;  (** may-acquire, sorted by name *)
  rw_reads : Ksurf_kernel.Ops.rw_ref list;
  rw_writes : Ksurf_kernel.Ops.rw_ref list;
  machinery : Ksurf_kernel.Ops.machinery list;
      (** background daemons coupled through the call's categories *)
  ipi : bool;  (** can broadcast TLB-shootdown IPIs *)
  rcu : bool;  (** can wait for a grace period *)
  block_io : bool;  (** can queue on the block device *)
  sleeps : bool;  (** can block voluntarily *)
  arg_points : int;  (** lattice points enumerated *)
}

val class_of_lock_ref : Ksurf_kernel.Ops.lock_ref -> string
(** The lock-class name the simulator's lock instances carry (after
    {!Ksurf_analysis.Lockdep.class_of_instance} normalisation):
    [Page_cache_tree] is class ["pct"], [Futex_bucket] is ["futex"],
    everything else matches {!Ksurf_kernel.Ops.lock_ref_name}. *)

val class_of_rw_ref : Ksurf_kernel.Ops.rw_ref -> string

val lattice_points : Ksurf_syscalls.Arg.model -> Ksurf_syscalls.Arg.t list
(** The argument lattice: one representative size per coverage bucket,
    every object stripe, every flag value.  Bounded and cheap. *)

val of_spec : Ksurf_syscalls.Spec.t -> t

val all : unit -> t list
(** Footprints of the whole stock table, cached after the first call. *)

val find : t list -> string -> t option

val lock_classes : t -> string list
(** All lock classes (mutex and rwlock) in the footprint, sorted —
    the set dynamically acquired lock classes must be a subset of. *)

val pp : Format.formatter -> t -> unit

val csv_header : string list
val csv_rows : t list -> string list list
