(** Static interference matrix: which call pairs can contend on the
    same instance-global lock (the Table-3 mechanism), computed from
    static footprints alone.  Striped locks are excluded — they only
    collide on objects tenants explicitly share. *)

type t = {
  classes : (string * string list) list;
      (** instance-global lock class -> calls that can acquire it *)
  pairs : (string * string * string list) list;
      (** interfering call pairs with the classes they share *)
}

val global_classes : string list

val of_footprints : Footprint.t list -> t
val of_table : unit -> t

val interfering_pairs : t -> int
val total_pairs : t -> int

val calls_on : t -> string -> string list
val shared_locks : t -> string -> string -> string list

val pp : Format.formatter -> t -> unit

val csv_header : string list
val csv_rows : t -> string list list
