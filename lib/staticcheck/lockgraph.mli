(** Whole-table static lock-order graph with potential-deadlock
    detection.

    Edges come from walking every syscall's op program over its
    argument lattice with a held-lock stack: {!Ksurf_kernel.Ops.op}
    [With_lock] is the only construct that holds a lock across further
    acquisitions, and every acquisition under it — explicit lock ops
    and the implied ones (cache-miss fills, slab refills, buddy
    allocations, charge spills) — adds a [held -> acquired] class
    edge.  Cycle detection reuses the dynamic validator's Tarjan SCC
    ({!Ksurf_analysis.Lockdep.strongly_connected_components}), so
    static and dynamic agree on what counts as a potential deadlock —
    the static pass just doesn't need a lucky interleaving to see the
    AB/BA pattern. *)

type edge = { src : string; dst : string; witness : string }
(** One lock-order edge between classes, with the first syscall and
    argument point that created it. *)

type t = { nodes : string list; edges : edge list }

val of_specs : Ksurf_syscalls.Spec.t list -> t
val of_table : unit -> t

val node_count : t -> int
val edge_count : t -> int

val cycles : t -> Ksurf_analysis.Finding.t list
(** One [static-lock-order-cycle] error per cyclic SCC (non-trivial
    SCC, or a self-edge from same-class nesting), with every
    in-cycle edge witness.  Empty list = the table is certified
    cycle-free. *)

val findings : t -> Ksurf_analysis.Finding.t list
(** Alias of {!cycles}. *)

val pp : Format.formatter -> t -> unit

val csv_header : string list
val csv_rows : t -> string list list
