(** CSV export of experiment results, for external plotting.

    Each function writes one or more files into [dir] and returns the
    paths written.  Filenames are stable ([table2.csv], [fig2.csv], …)
    so plotting scripts can be re-run against fresh results. *)

val table2 : dir:string -> Experiments.Table2.t -> string list
val fig2 : dir:string -> Experiments.Fig2.t -> string list
(** One row per (vm count, category): the violin's numeric summary. *)

val table3 : dir:string -> Experiments.Table3.t -> string list
val fig3 : dir:string -> Experiments.Fig3.t -> string list
val fig4 : dir:string -> Experiments.Fig4.t -> string list
val ablate : dir:string -> Experiments.Ablate.t -> string list
val lwvm : dir:string -> Experiments.Lwvm.t -> string list
val ablate_virt : dir:string -> Experiments.Ablate_virt.t -> string list

val dose : dir:string -> Experiments.Dose.t -> string list
(** One row per (environment, intensity) cell, stamped with the
    degraded flag and survivor count. *)

val specialize : dir:string -> Experiments.Specialize.t -> string list
(** Two rows (p99, max buckets) per environment, stamped with p50/p99,
    tail ratio, denial count and mean surface area. *)

val recover : dir:string -> Experiments.Recover.t -> string list
(** One row per (policy, crash rate) cell: runtime, runtime relative to
    the same policy's crash-free baseline, straggler factor, and the
    crash / restart / backup / death / transition / checkpoint
    counters. *)

val tenancy : dir:string -> Experiments.Tenancy.t -> string list
(** One row per (policy, tenants, churn) fleet cell: latency summary,
    SLO attainment, churn-storm and autoscaling counters, and the
    final placement-class census. *)

val drift : dir:string -> Experiments.Drift.t -> string list
(** One row per (policy, dose) cell of the kadapt drift study:
    false-positive ENOSYS rate, retained surface area, reconvergence
    time, and the promotion / demotion / swap / drift counters. *)

val torture : dir:string -> Experiments.Torture.t -> string list
(** One row per (writer path, dose) torture cell: crash-state
    enumeration counts and violations, torn-state refusals, live
    recovery rate, and the injected-fault / deferred-persist / litter
    counters. *)
