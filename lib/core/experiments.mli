(** Drivers that regenerate every table and figure of the paper.

    Each driver is deterministic given [seed] and returns a structured
    result plus a paper-style textual rendering.  [Quick] scale keeps
    everything under a few seconds for tests and smoke runs; [Full]
    scale is what the benchmark harness uses (minutes, larger corpora
    and sample counts).

    Every sweep-shaped driver takes [?pool]: a {!Ksurf_par.Pool.t} fans
    the sweep's cells across domains.  Cells are self-contained (each
    builds its own engine and PRNG stream from [seed]) and results
    merge in canonical input order, so the parallel run's output —
    tables, CSV exports, stable hashes — is bit-identical to the
    sequential one. *)

type scale = Quick | Full

val scale_of_string : string -> scale option
val default_corpus : ?seed:int -> scale -> Ksurf_syzgen.Corpus.t
(** The syzgen corpus used by every experiment at this scale. *)

(** Table 1: the VM configurations of the surface-area study. *)
module Table1 : sig
  type t = (int * Ksurf_env.Partition.t) list

  val run : unit -> t
  val pp : Format.formatter -> t -> unit
end

(** Table 2: latency breakdown — native vs 64 1-core VMs vs 64 1-core
    containers. *)
module Table2 : sig
  type row = {
    env : string;
    median : Ksurf_stats.Buckets.row;
    p99 : Ksurf_stats.Buckets.row;
    max : Ksurf_stats.Buckets.row;
  }

  type t = {
    rows : row list;
    corpus_calls : int;  (** unique call sites in the corpus *)
    invocations_per_env : int;
  }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t -> ?pool:Ksurf_par.Pool.t -> unit -> t

  val pp : Format.formatter -> t -> unit
end

(** Figure 2: per-category p99 violins across the Table 1 VM sweep. *)
module Fig2 : sig
  type cell = {
    vms : int;
    category : Ksurf_kernel.Category.t;
    violin : Ksurf_stats.Violin.t option;  (** [None]: no surviving sites *)
  }

  type t = {
    cells : cell list;
    filtered_sites : int;  (** sites passing the 10 µs native-median filter *)
    total_sites : int;
  }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t ->
    ?kernel_config:Ksurf_kernel.Config.t -> ?pool:Ksurf_par.Pool.t ->
    unit -> t

  val pp : Format.formatter -> t -> unit
  (** Numeric violin table per category plus ASCII violins. *)
end

(** Table 3: worst-case breakdown across Docker container counts. *)
module Table3 : sig
  type row = { containers : int; max : Ksurf_stats.Buckets.row }

  type t = { rows : row list }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t -> ?pool:Ksurf_par.Pool.t -> unit -> t

  val pp : Format.formatter -> t -> unit
end

(** Figure 3: single-node tailbench p99, isolated and contended. *)
module Fig3 : sig
  type t = {
    cells : Ksurf_tailbench.Runner.result list;
        (** 8 apps x {kvm,docker} x {isolated,contended} *)
  }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t ->
    ?apps:Ksurf_tailbench.Apps.t list -> ?pool:Ksurf_par.Pool.t -> unit -> t

  val cell : t -> app:string -> kind:string -> contended:bool ->
    Ksurf_tailbench.Runner.result option

  val pp : Format.formatter -> t -> unit
  (** Renders (a) isolated p99s, (b) contended p99s, (c) %% increase. *)
end

(** Figure 4: 64-node BSP runtimes. *)
module Fig4 : sig
  type t = { cells : Ksurf_cluster.Cluster.result list }

  val paper_apps : string list
  (** xapian, masstree, moses, sphinx, img-dnn, silo — no shore (no SSDs
      on the cluster nodes) or specjbb (Java runtime failures), as in
      the paper. *)

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t ->
    ?apps:Ksurf_tailbench.Apps.t list -> ?pool:Ksurf_par.Pool.t -> unit -> t

  val cell : t -> app:string -> kind:string -> contended:bool ->
    Ksurf_cluster.Cluster.result option

  val pp : Format.formatter -> t -> unit
end

(** E7 ablation: which modeled mechanism produces the native tails. *)
module Ablate : sig
  type row = {
    variant : string;
    p99 : Ksurf_stats.Buckets.row;
    max : Ksurf_stats.Buckets.row;
  }

  type t = { rows : row list }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t -> ?pool:Ksurf_par.Pool.t -> unit -> t
  (** Native 64-rank varbench under: default, no background daemons, no
      TLB shootdowns, no timer noise, all off. *)

  val pp : Format.formatter -> t -> unit
end

(** E9 extension (the paper's future work, §2): the Table-2 comparison
    repeated for lightweight-VM technologies — Firecracker, Kata, Nabla
    presets from {!Ksurf_virt.Lightweight} — next to native, Docker and
    stock KVM, all as 64 single-core isolation units. *)
module Lwvm : sig
  type row = {
    env : string;
    median : Ksurf_stats.Buckets.row;
    p99 : Ksurf_stats.Buckets.row;
    max : Ksurf_stats.Buckets.row;
  }

  type t = { rows : row list }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t -> ?pool:Ksurf_par.Pool.t -> unit -> t

  val pp : Format.formatter -> t -> unit
end

(** E10 diagnostic: attribute contention to specific kernel locks (the
    §3.3 discussion, made measurable).  Runs the corpus natively and on
    two VM partitions and reports, per kernel lock, how often it was
    contended and how long waiters waited. *)
module Locks : sig
  type row = {
    env : string;
    lock : string;
    acquisitions : int;
    contended_pct : float;
    mean_wait_ns : float;
    max_wait_ns : float;
  }

  type t = { rows : row list }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t -> ?pool:Ksurf_par.Pool.t -> unit -> t

  val pp : Format.formatter -> t -> unit
  (** Sorted by contention within each environment; quiet locks
      (contention < 0.1%%) are omitted. *)
end

(** E8 ablation: Figure 4 contended KVM cells as virtualisation hardware
    improves (exit costs scaled down). *)
module Ablate_virt : sig
  type row = {
    app : string;
    exit_scale : float;
    kvm_runtime_ns : float;
    docker_runtime_ns : float;  (** unscaled docker reference *)
  }

  type t = { rows : row list }

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t ->
    ?apps:Ksurf_tailbench.Apps.t list -> ?pool:Ksurf_par.Pool.t -> unit -> t

  val pp : Format.formatter -> t -> unit
end

(** Dose–response study: sweep a fault plan's intensity across
    environments and measure each environment's p99/CoV sensitivity.
    The shared-kernel environments amplify injected contention (a
    stretched critical section queues every rank behind it), so native
    p99 degrades faster with dose than the partitioned kvm-64. *)
module Dose : sig
  type cell = {
    env : string;
    intensity : float;  (** {!Ksurf_fault.Plan.scale} factor *)
    p99 : float;  (** ns, over every measured call site sample *)
    cov : float;  (** coefficient of variation of the same samples *)
    injections : int;  (** total fault firings (kfault counters) *)
    retries : int;  (** transient failures the harness retried *)
    degraded : bool;
    survivors : int;
  }

  type t = { plan_name : string; cells : cell list }

  val default_intensities : float list
  (** [0; 0.5; 1; 2] — zero dose is the per-environment baseline. *)

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t ->
    ?plan:Ksurf_fault.Plan.t -> ?intensities:float list ->
    ?journal:Ksurf_recov.Journal.t -> ?pool:Ksurf_par.Pool.t -> unit -> t
  (** One varbench run per (environment x intensity) cell; [plan]
      defaults to the ["mixed"] preset (every mechanism, no crashes).
      With [journal], cells already recorded (keys
      [dose:<env>:<intensity>]) are skipped and omitted from the result;
      each completed cell is journalled as it completes (persisted in
      batches, flushed when the sweep ends). *)

  val cell : t -> env:string -> intensity:float -> cell option

  val degradation : t -> env:string -> (float * float) list
  (** [(intensity, p99 / baseline p99)] pairs for one environment. *)

  val pp : Format.formatter -> t -> unit
end

(** Specialization study (kspec): can a profile-derived kernel recover
    part of KVM's variability reduction without partitioning?  The
    workload is the default corpus restricted to File_io + Fs_mgmt
    calls; its profile compiles to an allowlist plus a pruned kernel
    (kswapd, load balancer, timer tick and TLB machinery off; jbd2
    retained).  The same workload then runs on a stock shared native
    kernel, on the specialized shared native kernel (allowlist
    enforced on all 64 ranks), and on 64 single-core KVM VMs. *)
module Specialize : sig
  type row = {
    env : string;
    p50 : float;  (** ns, over every measured sample *)
    p99 : float;  (** ns *)
    tail_ratio : float;
        (** p99/p50 over the per-site statistics the bucket metric is
            built from: the fleet's median per-site p99 divided by its
            median per-site p50.  Per-site, because each site repeats
            one identical call — raw-sample quantile ratios would
            conflate jitter with workload heterogeneity. *)
    p99_bucket : Ksurf_stats.Buckets.row;
    max_bucket : Ksurf_stats.Buckets.row;
    denials : int;  (** policy denials (0 in this study: exact profile) *)
    surface_area : float;
        (** mean {!Ksurf_env.Env.surface_area_of_rank} over ranks *)
  }

  type t = {
    spec : Ksurf_spec.Spec.t;
    rows : row list;
        (** [native-64] (one shared kernel), [native-64-kspec]
            (per-tenant specialized kernels: {!Ksurf_env.Env.Multikernel}
            with the profile-pruned config and the allowlist installed),
            [kvm-64]. *)
    corpus_calls : int;
  }

  val retained : Ksurf_kernel.Category.t list
  (** The categories the study keeps: File_io, Fs_mgmt. *)

  val workload :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t -> unit ->
    Ksurf_syzgen.Corpus.t
  (** The restricted corpus ({!Ksurf_spec.Profile.restrict} to
      {!retained}; falls back to the full corpus if nothing survives). *)

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t ->
    ?journal:Ksurf_recov.Journal.t -> ?pool:Ksurf_par.Pool.t -> unit -> t
  (** With [journal], environments already recorded (keys
      [specialize:<env>]) are skipped and omitted from the result. *)

  val row : t -> env:string -> row option
  val pp : Format.formatter -> t -> unit
end

(** Recovery study (krecov): crash rate x recovery policy on the 64-node
    BSP synthesis.  One set of node simulations feeds an empirical
    iteration pool ({!Ksurf_cluster.Cluster.pool}); the supervised
    superstep-by-superstep re-synthesis
    ({!Ksurf_recov.Supervisor.run}) then sweeps every recovery policy
    across per-rank per-superstep crash probabilities, measuring how
    much runtime each policy pays to survive each crash rate. *)
module Recover : sig
  type cell = {
    policy : string;
    crash_rate : float;
    runtime_ns : float;
    straggler_factor : float;
    supersteps : int;
    survivors : int;
    degraded : bool;
    crashes : int;
    restarts : int;
    backups : int;
    deaths : int;
    transitions : int;  (** rank-transition probe events emitted *)
    checkpoints : int;
  }

  type t = {
    nodes : int;
    iterations : int;  (** supersteps per supervised run *)
    pool_mean_ns : float;  (** mean of the shared iteration pool *)
    cells : cell list;
  }

  val default_rates : float list
  (** [0; 0.005; 0.01; 0.02] — zero is each policy's baseline. *)

  val policies : Ksurf_recov.Supervisor.policy list
  (** Survivors, Readmit, Speculative ([Disabled] wedges by design and
      is exercised by the watchdog tests instead). *)

  val run :
    ?seed:int -> ?scale:scale -> ?corpus:Ksurf_syzgen.Corpus.t ->
    ?app:Ksurf_tailbench.Apps.t -> ?rates:float list ->
    ?journal:Ksurf_recov.Journal.t -> ?pool:Ksurf_par.Pool.t -> unit -> t
  (** [app] defaults to silo on isolated kvm-64.  With [journal], cells
      already recorded (keys [recover:<policy>:<rate>]) are skipped and
      omitted from the result. *)

  val cell : t -> policy:string -> crash_rate:float -> cell option

  val overhead : t -> policy:string -> (float * float) list
  (** [(crash_rate, runtime / crash-free runtime)] for one policy. *)

  val pp : Format.formatter -> t -> unit
end

(** Fleet tenancy study (ktenant): hundreds of churning tenants on
    shared or private kernels, with per-tenant p99 SLO autoscaling.
    The headline is the SLO frontier: for each placement policy, the
    largest (tenant count, churn rate) cell whose per-tenant SLO
    attainment stays above a floor. *)
module Tenancy : sig
  type cell = Ksurf_tenant.Fleet.result

  type t = { slo_ns : float; cells : cell list }

  val default_policies : Ksurf_tenant.Policy.t list
  (** All five: native-shared, docker, kvm, multikernel, adaptive. *)

  val default_tenants : scale -> int list
  val default_churns : scale -> float list

  val fleet_config :
    seed:int -> scale:scale -> policy:Ksurf_tenant.Policy.t ->
    tenants:int -> churn:float -> Ksurf_tenant.Fleet.config
  (** The per-cell fleet shape: [scale] only sets the virtual day
      length (cheap quick days, full-length full days). *)

  val run :
    ?seed:int -> ?scale:scale -> ?tenants:int list -> ?churns:float list ->
    ?policies:Ksurf_tenant.Policy.t list -> ?journal:Ksurf_recov.Journal.t ->
    ?pool:Ksurf_par.Pool.t -> unit -> t
  (** One fleet simulation per (policy x tenants x churn) cell through
      the kpar sweep.  With [journal], cells already recorded (keys
      [tenancy:<policy>:<tenants>:<churn>]) are skipped and omitted
      from the result. *)

  val cell_key : Ksurf_tenant.Policy.t * int * float -> string
  (** Journal key for one sweep cell:
      [tenancy:<policy>:<tenants>:<churn>]. *)

  val cell : t -> policy:string -> tenants:int -> churn:float -> cell option

  val frontier :
    ?floor:float -> t -> (string * cell option) list
  (** Per policy, the largest cell (by tenants, then churn) attaining
      the SLO for at least [floor] (default 0.95) of measured tenants;
      [None] if no cell qualifies.  Cells with [measured = 0] carry no
      verdict and are excluded — their reported attainment of 0 is
      no-data, not a failing policy. *)

  val pp : Format.formatter -> t -> unit
end

module Drift : sig
  type cell = Ksurf_adapt.Driftbench.result

  type t = { cells : cell list }

  val default_doses : float list
  (** [0; 1; 2; 3] — dose 0 is the no-drift control. *)

  val default_policies : Ksurf_adapt.Driftbench.policy list
  (** static-enforce, audit-only, adaptive. *)

  val cell_config :
    seed:int -> scale:scale -> policy:Ksurf_adapt.Driftbench.policy ->
    dose:float -> Ksurf_adapt.Driftbench.config
  (** The per-cell harness shape: [scale] sets epochs and programs per
      epoch (the question — fp ENOSYS vs retained surface vs
      reconvergence — is the same at both). *)

  val run :
    ?seed:int -> ?scale:scale -> ?doses:float list ->
    ?policies:Ksurf_adapt.Driftbench.policy list ->
    ?journal:Ksurf_recov.Journal.t -> ?pool:Ksurf_par.Pool.t -> unit -> t
  (** One {!Ksurf_adapt.Driftbench} run per (policy x dose) cell through
      the kpar sweep.  With [journal], cells already recorded (keys
      [drift:<policy>:<dose>]) are skipped and omitted from the
      result. *)

  val cell_key : Ksurf_adapt.Driftbench.policy * float -> string
  (** Journal key for one sweep cell: [drift:<policy>:<dose>]. *)

  val cell : t -> policy:string -> dose:float -> cell option

  val pp : Format.formatter -> t -> unit
end

module Torture : sig
  type cell = Ksurf_dur.Torture.result

  type t = { cells : cell list }

  val default_doses : float list
  (** [0; 1; 2; 3] — dose 0 is the fault-free control. *)

  val default_kinds : Ksurf_dur.Torture.kind list
  (** journal, checkpoint, export — every durable writer path. *)

  val default_scratch : string
  (** [$TMPDIR/ksurf-torture]; pass a private [scratch] when several
      torture processes may run concurrently. *)

  val cell_config :
    seed:int -> scale:scale -> scratch:string ->
    kind:Ksurf_dur.Torture.kind -> dose:float -> Ksurf_dur.Torture.config
  (** The per-cell harness shape: [scale] sets the live-run budget
      (enumeration covers every crash point at either scale). *)

  val run :
    ?seed:int -> ?scale:scale -> ?doses:float list ->
    ?kinds:Ksurf_dur.Torture.kind list -> ?scratch:string ->
    ?journal:Ksurf_recov.Journal.t -> ?pool:Ksurf_par.Pool.t -> unit -> t
  (** One {!Ksurf_dur.Torture} cell per (kind x dose) through the kpar
      sweep.  With [journal], cells already recorded (keys
      [torture:<kind>:<dose>]) are skipped and omitted from the
      result. *)

  val cell_key : Ksurf_dur.Torture.kind * float -> string
  (** Journal key for one sweep cell: [torture:<kind>:<dose>]. *)

  val cell : t -> kind:string -> dose:float -> cell option

  val violations : t -> int
  (** Total consistency violations across all cells; 0 required. *)

  val pp : Format.formatter -> t -> unit
end
