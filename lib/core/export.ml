module Csv = Ksurf_report.Csv
module Buckets = Ksurf_stats.Buckets
module Violin = Ksurf_stats.Violin
module Category = Ksurf_kernel.Category
module Runner = Ksurf_tailbench.Runner
module Cluster = Ksurf_cluster.Cluster
module E = Experiments

let bucket_header = [ "le_1us"; "le_10us"; "le_100us"; "le_1ms"; "le_10ms"; "gt_10ms" ]

let bucket_cells (r : Buckets.row) =
  List.map (Printf.sprintf "%.4f")
    [ r.Buckets.le_1us; r.Buckets.le_10us; r.Buckets.le_100us;
      r.Buckets.le_1ms; r.Buckets.le_10ms; r.Buckets.gt_10ms ]

(* Every export creates (and fsyncs) its target directory on first
   use, so `--export fresh/dir` just works and the new entry survives
   a crash. *)
let path dir name =
  Ksurf_util.Fileio.ensure_dir dir;
  Filename.concat dir name

let bucket_table ~dir ~file ~label_name rows =
  let p = path dir file in
  Csv.write ~path:p
    ~header:([ label_name; "statistic" ] @ bucket_header)
    ~rows:
      (List.concat_map
         (fun (label, stats) ->
           List.map (fun (stat, row) -> [ label; stat ] @ bucket_cells row) stats)
         rows);
  [ p ]

let table2 ~dir (t : E.Table2.t) =
  bucket_table ~dir ~file:"table2.csv" ~label_name:"environment"
    (List.map
       (fun (r : E.Table2.row) ->
         ( r.E.Table2.env,
           [ ("median", r.E.Table2.median); ("p99", r.E.Table2.p99);
             ("max", r.E.Table2.max) ] ))
       t.E.Table2.rows)

let fig2 ~dir (t : E.Fig2.t) =
  let p = path dir "fig2.csv" in
  let header =
    [ "vms"; "category"; "sites"; "min"; "lo95"; "q1"; "median"; "q3"; "hi95"; "max" ]
  in
  let rows =
    List.filter_map
      (fun (c : E.Fig2.cell) ->
        Option.map
          (fun (v : Violin.t) ->
            [
              string_of_int c.E.Fig2.vms;
              Category.to_string c.E.Fig2.category;
              string_of_int v.Violin.count;
              Printf.sprintf "%.1f" v.Violin.min;
              Printf.sprintf "%.1f" v.Violin.lo95;
              Printf.sprintf "%.1f" v.Violin.q1;
              Printf.sprintf "%.1f" v.Violin.median;
              Printf.sprintf "%.1f" v.Violin.q3;
              Printf.sprintf "%.1f" v.Violin.hi95;
              Printf.sprintf "%.1f" v.Violin.max;
            ])
          c.E.Fig2.violin)
      t.E.Fig2.cells
  in
  Csv.write ~path:p ~header ~rows;
  [ p ]

let table3 ~dir (t : E.Table3.t) =
  bucket_table ~dir ~file:"table3.csv" ~label_name:"containers"
    (List.map
       (fun (r : E.Table3.row) ->
         (string_of_int r.E.Table3.containers, [ ("max", r.E.Table3.max) ]))
       t.E.Table3.rows)

let fig3 ~dir (t : E.Fig3.t) =
  let p = path dir "fig3.csv" in
  Csv.write ~path:p
    ~header:
      [ "app"; "kind"; "contended"; "mean_ns"; "p95_ns"; "p99_ns"; "max_ns";
        "degraded"; "survivors" ]
    ~rows:
      (List.map
         (fun (r : Runner.result) ->
           [
             r.Runner.app_name;
             r.Runner.kind;
             string_of_bool r.Runner.contended;
             Printf.sprintf "%.0f" r.Runner.mean;
             Printf.sprintf "%.0f" r.Runner.p95;
             Printf.sprintf "%.0f" r.Runner.p99;
             Printf.sprintf "%.0f" r.Runner.max;
             string_of_bool r.Runner.degraded;
             string_of_int r.Runner.survivors;
           ])
         t.E.Fig3.cells);
  [ p ]

let fig4 ~dir (t : E.Fig4.t) =
  let p = path dir "fig4.csv" in
  Csv.write ~path:p
    ~header:
      [ "app"; "kind"; "contended"; "runtime_ns"; "node_mean_iter_ns";
        "node_p99_iter_ns"; "straggler_factor" ]
    ~rows:
      (List.map
         (fun (r : Cluster.result) ->
           [
             r.Cluster.app_name;
             r.Cluster.kind;
             string_of_bool r.Cluster.contended;
             Printf.sprintf "%.0f" r.Cluster.runtime_ns;
             Printf.sprintf "%.0f" r.Cluster.node_mean_iter_ns;
             Printf.sprintf "%.0f" r.Cluster.node_p99_iter_ns;
             Printf.sprintf "%.4f" r.Cluster.straggler_factor;
           ])
         t.E.Fig4.cells);
  [ p ]

let ablate ~dir (t : E.Ablate.t) =
  bucket_table ~dir ~file:"ablate.csv" ~label_name:"variant"
    (List.map
       (fun (r : E.Ablate.row) ->
         (r.E.Ablate.variant, [ ("p99", r.E.Ablate.p99); ("max", r.E.Ablate.max) ]))
       t.E.Ablate.rows)

let lwvm ~dir (t : E.Lwvm.t) =
  bucket_table ~dir ~file:"lwvm.csv" ~label_name:"environment"
    (List.map
       (fun (r : E.Lwvm.row) ->
         ( r.E.Lwvm.env,
           [ ("median", r.E.Lwvm.median); ("p99", r.E.Lwvm.p99);
             ("max", r.E.Lwvm.max) ] ))
       t.E.Lwvm.rows)

let ablate_virt ~dir (t : E.Ablate_virt.t) =
  let p = path dir "ablate_virt.csv" in
  Csv.write ~path:p
    ~header:[ "app"; "exit_scale"; "kvm_runtime_ns"; "docker_runtime_ns" ]
    ~rows:
      (List.map
         (fun (r : E.Ablate_virt.row) ->
           [
             r.E.Ablate_virt.app;
             Printf.sprintf "%.2f" r.E.Ablate_virt.exit_scale;
             Printf.sprintf "%.0f" r.E.Ablate_virt.kvm_runtime_ns;
             Printf.sprintf "%.0f" r.E.Ablate_virt.docker_runtime_ns;
           ])
         t.E.Ablate_virt.rows);
  [ p ]

let dose ~dir (t : E.Dose.t) =
  let p = path dir "dose.csv" in
  Csv.write ~path:p
    ~header:
      [ "environment"; "intensity"; "p99_ns"; "cov"; "injections"; "retries";
        "degraded"; "survivors" ]
    ~rows:
      (List.map
         (fun (c : E.Dose.cell) ->
           [
             c.E.Dose.env;
             Printf.sprintf "%.2f" c.E.Dose.intensity;
             Printf.sprintf "%.0f" c.E.Dose.p99;
             Printf.sprintf "%.4f" c.E.Dose.cov;
             string_of_int c.E.Dose.injections;
             string_of_int c.E.Dose.retries;
             string_of_bool c.E.Dose.degraded;
             string_of_int c.E.Dose.survivors;
           ])
         t.E.Dose.cells);
  [ p ]

let recover ~dir (t : E.Recover.t) =
  let p = path dir "recover.csv" in
  Csv.write ~path:p
    ~header:
      [ "policy"; "crash_rate"; "runtime_ns"; "vs_crash_free";
        "straggler_factor"; "supersteps"; "survivors"; "degraded"; "crashes";
        "restarts"; "backups"; "deaths"; "transitions"; "checkpoints" ]
    ~rows:
      (List.map
         (fun (c : E.Recover.cell) ->
           let rel =
             match
               E.Recover.cell t ~policy:c.E.Recover.policy ~crash_rate:0.0
             with
             | Some base when base.E.Recover.runtime_ns > 0.0 ->
                 Printf.sprintf "%.4f"
                   (c.E.Recover.runtime_ns /. base.E.Recover.runtime_ns)
             | _ -> ""
           in
           [
             c.E.Recover.policy;
             Printf.sprintf "%.4f" c.E.Recover.crash_rate;
             Printf.sprintf "%.0f" c.E.Recover.runtime_ns;
             rel;
             Printf.sprintf "%.4f" c.E.Recover.straggler_factor;
             string_of_int c.E.Recover.supersteps;
             string_of_int c.E.Recover.survivors;
             string_of_bool c.E.Recover.degraded;
             string_of_int c.E.Recover.crashes;
             string_of_int c.E.Recover.restarts;
             string_of_int c.E.Recover.backups;
             string_of_int c.E.Recover.deaths;
             string_of_int c.E.Recover.transitions;
             string_of_int c.E.Recover.checkpoints;
           ])
         t.E.Recover.cells);
  [ p ]

let specialize ~dir (t : E.Specialize.t) =
  let p = path dir "specialize.csv" in
  Csv.write ~path:p
    ~header:
      ([ "environment"; "p50_ns"; "p99_ns"; "tail_ratio"; "denials";
         "surface_area"; "statistic" ]
      @ bucket_header)
    ~rows:
      (List.concat_map
         (fun (r : E.Specialize.row) ->
           let base =
             [
               r.E.Specialize.env;
               Printf.sprintf "%.0f" r.E.Specialize.p50;
               Printf.sprintf "%.0f" r.E.Specialize.p99;
               Printf.sprintf "%.4f" r.E.Specialize.tail_ratio;
               string_of_int r.E.Specialize.denials;
               Printf.sprintf "%.4f" r.E.Specialize.surface_area;
             ]
           in
           [
             (base @ [ "p99" ]) @ bucket_cells r.E.Specialize.p99_bucket;
             (base @ [ "max" ]) @ bucket_cells r.E.Specialize.max_bucket;
           ])
         t.E.Specialize.rows);
  [ p ]

let tenancy ~dir (t : E.Tenancy.t) =
  let p = path dir "tenancy.csv" in
  Csv.write ~path:p
    ~header:
      [ "policy"; "tenants"; "churn_per_day"; "completed"; "mean_ns";
        "p50_ns"; "p95_ns"; "p99_ns"; "max_ns"; "slo_ns"; "measured";
        "slo_met"; "attainment"; "epoch_violations"; "arrivals";
        "departures"; "cgroup_creates"; "cgroup_destroys"; "migrations";
        "scale_ups"; "scale_downs"; "replica_imbalance"; "peak_cgroups";
        "final_native";
        "final_docker"; "final_kvm"; "final_mk" ]
    ~rows:
      (List.map
         (fun (c : E.Tenancy.cell) ->
           let module F = Ksurf_tenant.Fleet in
           [
             c.F.policy;
             string_of_int c.F.tenants;
             Printf.sprintf "%.2f" c.F.churn_per_day;
             string_of_int c.F.completed;
             Printf.sprintf "%.0f" c.F.mean;
             Printf.sprintf "%.0f" c.F.p50;
             Printf.sprintf "%.0f" c.F.p95;
             Printf.sprintf "%.0f" c.F.p99;
             Printf.sprintf "%.0f" c.F.max;
             Printf.sprintf "%.0f" c.F.slo_ns;
             string_of_int c.F.measured;
             string_of_int c.F.slo_met;
             Printf.sprintf "%.4f" c.F.attainment;
             string_of_int c.F.epoch_violations;
             string_of_int c.F.arrivals;
             string_of_int c.F.departures;
             string_of_int c.F.cgroup_creates;
             string_of_int c.F.cgroup_destroys;
             string_of_int c.F.migrations;
             string_of_int c.F.scale_ups;
             string_of_int c.F.scale_downs;
             string_of_int c.F.replica_imbalance;
             string_of_int c.F.peak_cgroups;
             string_of_int c.F.final_native;
             string_of_int c.F.final_docker;
             string_of_int c.F.final_kvm;
             string_of_int c.F.final_mk;
           ])
         t.E.Tenancy.cells);
  [ p ]

let drift ~dir (t : E.Drift.t) =
  let p = path dir "drift.csv" in
  let opt_ns = function
    | None -> ""
    | Some ns -> Printf.sprintf "%.0f" ns
  in
  Csv.write ~path:p
    ~header:
      [ "policy"; "dose"; "ranks"; "epochs"; "calls"; "denied";
        "calls_post_drift"; "denied_post_drift"; "fp_rate"; "p99_ns";
        "surface"; "surface_full"; "reduction"; "drift_at_ns";
        "reconverge_ns"; "promotions"; "demotions"; "respecializations";
        "swaps"; "drifts"; "mean_denial_rate"; "p95_divergence" ]
    ~rows:
      (List.map
         (fun (c : E.Drift.cell) ->
           let module D = Ksurf_adapt.Driftbench in
           [
             c.D.policy;
             Printf.sprintf "%.2f" c.D.dose;
             string_of_int c.D.ranks;
             string_of_int c.D.epochs;
             string_of_int c.D.calls;
             string_of_int c.D.denied;
             string_of_int c.D.calls_post_drift;
             string_of_int c.D.denied_post_drift;
             Printf.sprintf "%.6f" c.D.fp_rate;
             Printf.sprintf "%.0f" c.D.p99_ns;
             Printf.sprintf "%.4f" c.D.surface;
             Printf.sprintf "%.4f" c.D.surface_full;
             Printf.sprintf "%.4f" c.D.reduction;
             opt_ns c.D.drift_at_ns;
             opt_ns c.D.reconverge_ns;
             string_of_int c.D.promotions;
             string_of_int c.D.demotions;
             string_of_int c.D.respecializations;
             string_of_int c.D.swaps;
             string_of_int c.D.drifts;
             Printf.sprintf "%.6f" c.D.mean_denial_rate;
             Printf.sprintf "%.6f" c.D.p95_divergence;
           ])
         t.E.Drift.cells);
  [ p ]

let torture ~dir (t : E.Torture.t) =
  let p = path dir "torture.csv" in
  Csv.write ~path:p
    ~header:
      [ "path"; "dose"; "trace_ops"; "crash_points"; "crash_states";
        "enum_violations"; "torn_refused"; "live_runs"; "live_ok";
        "recovery_ok"; "crashes"; "transients"; "enospc"; "eio";
        "torn_writes"; "fsync_dropped"; "deferred_persists"; "cells_lost";
        "double_runs"; "litter"; "litter_after" ]
    ~rows:
      (List.map
         (fun (c : E.Torture.cell) ->
           let module T = Ksurf_dur.Torture in
           [
             c.T.kind;
             Printf.sprintf "%.2f" c.T.dose;
             string_of_int c.T.trace_ops;
             string_of_int c.T.crash_points;
             string_of_int c.T.crash_states;
             string_of_int c.T.enum_violations;
             string_of_int c.T.torn_refused;
             string_of_int c.T.live_runs;
             string_of_int c.T.live_ok;
             Printf.sprintf "%.4f" c.T.recovery_ok;
             string_of_int c.T.crashes;
             string_of_int c.T.transients;
             string_of_int c.T.enospc;
             string_of_int c.T.eio;
             string_of_int c.T.torn_writes;
             string_of_int c.T.fsync_dropped;
             string_of_int c.T.deferred_persists;
             string_of_int c.T.cells_lost;
             string_of_int c.T.double_runs;
             string_of_int c.T.litter;
             string_of_int c.T.litter_after;
           ])
         t.E.Torture.cells);
  [ p ]
