(** Umbrella module: one import for the whole library.

    [open Ksurf] (or [module K = Ksurf]) gives access to every layer:

    - {!Prng}, {!Dist}, {!Stats} — deterministic randomness & statistics
    - {!Engine}, {!Lock}, {!Rwlock}, {!Resource}, {!Barrier}, {!Mailbox}
      — the discrete-event simulation core
    - {!Kernel_config}, {!Instance}, {!Kernel}, {!Ops}, {!Category} —
      the Linux-like kernel model
    - {!Syscalls}, {!Spec}, {!Arg} — the modeled system-call table
    - {!Program}, {!Corpus}, {!Generator}, {!Coverage} — coverage-guided
      workload generation (the Syzkaller substitute)
    - {!Vm}, {!Hypervisor}, {!Virt_config}, {!Container} — isolation
      substrates
    - {!Machine}, {!Partition}, {!Env} — deployments and surface-area
      partitioning
    - {!Harness}, {!Study}, {!Noise} — the varbench measurement harness
    - {!Profile}, {!Kspec}, {!Specializer} — profile-guided kernel
      specialization (see [ksurf_cli specialize])
    - {!Analysis} — opt-in sanitizers: lockdep, determinism checker,
      engine invariants (see [ksurf_cli analyze])
    - {!Fault_plan}, {!Kfault} — deterministic fault injection (see
      [ksurf_cli inject])
    - {!Detector}, {!Supervisor}, {!Checkpoint}, {!Recov_journal} —
      failure detection, elastic BSP supervision and checkpoint/restart
      (see [ksurf_cli recover])
    - {!Apps}, {!Service}, {!Runner}, {!Cluster} — tailbench workloads,
      single-node and 64-node experiments
    - {!Adapt}, {!Driftbench} — online adaptive specialization: audit,
      promote, detect drift, re-specialize live (see [ksurf_cli drift])
    - {!Experiments} — drivers that regenerate every table and figure
    - {!Report} — terminal rendering *)

module Prng = Ksurf_util.Prng
module Dist = Ksurf_util.Dist
module Welford = Ksurf_util.Welford
module Stable_hash = Ksurf_util.Stable_hash

module Quantile = Ksurf_stats.Quantile
module Buckets = Ksurf_stats.Buckets
module Histogram = Ksurf_stats.Histogram
module Kde = Ksurf_stats.Kde
module Violin = Ksurf_stats.Violin
module P2_quantile = Ksurf_stats.P2_quantile
module Streamstat = Ksurf_stats.Streamstat

module Engine = Ksurf_sim.Engine
module Lock = Ksurf_sim.Lock
module Rwlock = Ksurf_sim.Rwlock
module Resource = Ksurf_sim.Resource
module Barrier = Ksurf_sim.Barrier
module Mailbox = Ksurf_sim.Mailbox
module Trace = Ksurf_sim.Trace

module Category = Ksurf_kernel.Category
module Kernel_config = Ksurf_kernel.Config
module Ops = Ksurf_kernel.Ops
module Caches = Ksurf_kernel.Caches
module Instance = Ksurf_kernel.Instance
module Background = Ksurf_kernel.Background
module Kernel = Ksurf_kernel.Kernel

module Arg = Ksurf_syscalls.Arg
module Spec = Ksurf_syscalls.Spec
module Syscalls = Ksurf_syscalls.Syscalls

module Program = Ksurf_syzgen.Program
module Coverage = Ksurf_syzgen.Coverage
module Mutate = Ksurf_syzgen.Mutate
module Corpus = Ksurf_syzgen.Corpus
module Generator = Ksurf_syzgen.Generator

module Virt_config = Ksurf_virt.Virt_config
module Vm = Ksurf_virt.Vm
module Lightweight = Ksurf_virt.Lightweight
module Hypervisor = Ksurf_virt.Hypervisor
module Container = Ksurf_container.Container

module Machine = Ksurf_env.Machine
module Partition = Ksurf_env.Partition
module Env = Ksurf_env.Env

module Profile = Ksurf_spec.Profile
module Kspec = Ksurf_spec.Spec
module Specializer = Ksurf_spec.Specializer

module Adapt = Ksurf_adapt.Controller
module Driftbench = Ksurf_adapt.Driftbench

module Samples = Ksurf_varbench.Samples
module Harness = Ksurf_varbench.Harness
module Study = Ksurf_varbench.Study
module Noise = Ksurf_varbench.Noise

module Workload = Ksurf_tenant.Workload
module Tenant_policy = Ksurf_tenant.Policy
module Fleet = Ksurf_tenant.Fleet

module Apps = Ksurf_tailbench.Apps
module Service = Ksurf_tailbench.Service
module Runner = Ksurf_tailbench.Runner
module Cluster = Ksurf_cluster.Cluster

module Analysis = Ksurf_analysis

module Fault_plan = Ksurf_fault.Plan
module Kfault = Ksurf_fault.Kfault

module Fileio = Ksurf_util.Fileio
module Iohook = Ksurf_util.Iohook
module Durplan = Ksurf_dur.Durplan
module Faultio = Ksurf_dur.Faultio
module Crashsim = Ksurf_dur.Crashsim
module Torture = Ksurf_dur.Torture

module Detector = Ksurf_recov.Detector
module Checkpoint = Ksurf_recov.Checkpoint
module Recov_journal = Ksurf_recov.Journal
module Supervisor = Ksurf_recov.Supervisor

module Clock = Ksurf_util.Clock
module Pool = Ksurf_par.Pool

module Report = Ksurf_report.Report
module Csv = Ksurf_report.Csv

module Footprint = Ksurf_static.Footprint
module Lockgraph = Ksurf_static.Lockgraph
module Interference = Ksurf_static.Interference
module Staticcheck = Ksurf_static.Staticcheck
module Experiments = Experiments
module Export = Export
