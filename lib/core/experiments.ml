module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Partition = Ksurf_env.Partition
module Harness = Ksurf_varbench.Harness
module Study = Ksurf_varbench.Study
module Buckets = Ksurf_stats.Buckets
module Violin = Ksurf_stats.Violin
module Category = Ksurf_kernel.Category
module Corpus = Ksurf_syzgen.Corpus
module Generator = Ksurf_syzgen.Generator
module Apps = Ksurf_tailbench.Apps
module Runner = Ksurf_tailbench.Runner
module Cluster = Ksurf_cluster.Cluster
module Report = Ksurf_report.Report

type scale = Quick | Full

let scale_of_string = function
  | "quick" -> Some Quick
  | "full" -> Some Full
  | _ -> None

let generator_params ~seed = function
  | Quick ->
      { Generator.default_params with Generator.seed; target_programs = 24 }
  | Full -> { Generator.default_params with Generator.seed }

let default_corpus ?(seed = 42) scale =
  (Generator.run ~params:(generator_params ~seed scale) ()).Generator.corpus

let harness_params = function
  | Quick -> { Harness.iterations = 8; warmup_iterations = 1 }
  | Full -> { Harness.iterations = 50; warmup_iterations = 2 }

let kvm_kind = Env.Kvm Ksurf_virt.Virt_config.default

module Pool = Ksurf_par.Pool

(* Resumable sweeps: a cell whose key is already journalled is skipped
   (omitted from the result); a freshly computed cell is journalled the
   moment it completes.  The journal batches persists internally, so a
   crash mid-sweep loses at most a handful of cells — recomputed on
   resume. *)
let journal_done journal key =
  match journal with
  | Some j -> Ksurf_recov.Journal.mem j key
  | None -> false

let journal_record journal key =
  match journal with
  | Some j -> Ksurf_recov.Journal.record j key
  | None -> ()

let journal_flush journal =
  match journal with
  | Some j -> Ksurf_recov.Journal.flush j
  | None -> ()

(* The shared sweep skeleton every study runs on: a list of
   self-contained cells, one function from cell to result, and an
   ordered merge.  With [pool], cells fan out across domains;
   [Pool.map] hands results back in canonical input order, so every
   downstream rendering (tables, CSV exports, stable hashes) is
   bit-identical to the sequential run — cells never share mutable
   state (each builds its own engine and PRNG stream from the seed).

   Journalling composes: already-journalled cells are filtered out
   before the fan-out, each remaining cell is recorded the moment it
   completes (the journal is the mutex-guarded single writer, so
   parallel completions serialise there), and the journal is flushed
   when the sweep ends. *)
module Sweep = struct
  let map ?pool f cells =
    match pool with
    | Some pool -> Pool.map ~pool f cells
    | None -> List.map f cells

  let run ?pool ?journal ~key f cells =
    let todo = List.filter (fun c -> not (journal_done journal (key c))) cells in
    let results =
      Fun.protect
        ~finally:(fun () -> journal_flush journal)
        (fun () ->
          map ?pool
            (fun c ->
              let r = f c in
              journal_record journal (key c);
              r)
            todo)
    in
    results
end

let run_varbench ?kernel_config ~seed ~scale ~corpus kind partition =
  let engine = Engine.create ~seed () in
  let env = Env.deploy ~engine ?kernel_config kind partition in
  Harness.run ~env ~corpus ~params:(harness_params scale) ()

(* ------------------------------------------------------------------ *)

module Table1 = struct
  type t = (int * Partition.t) list

  let run () = List.map (fun n -> (n, Partition.table1 n)) Partition.table1_rows

  let pp ppf t =
    let rows =
      List.map
        (fun (n, p) ->
          match p.Partition.units with
          | u :: _ ->
              [
                string_of_int n;
                string_of_int u.Partition.cores;
                Printf.sprintf "%.1f" (float_of_int u.Partition.mem_mb /. 1024.0);
              ]
          | [] -> [ string_of_int n; "-"; "-" ])
        t
    in
    Report.table ~header:[ "# VMs"; "Cores/VM"; "GB RAM/VM" ] ~rows ppf
end

module Table2 = struct
  type row = {
    env : string;
    median : Buckets.row;
    p99 : Buckets.row;
    max : Buckets.row;
  }

  type t = { rows : row list; corpus_calls : int; invocations_per_env : int }

  let envs = [ ("native", Env.Native, 1); ("kvm-64", kvm_kind, 64); ("docker-64", Env.Docker, 64) ]

  let run ?(seed = 42) ?(scale = Full) ?corpus ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let cells =
      Sweep.map ?pool
        (fun (name, kind, units) ->
          let result =
            run_varbench ~seed ~scale ~corpus kind (Partition.table1 units)
          in
          let stats = Study.site_stats result in
          ( {
              env = name;
              median = Study.bucket_row Study.Median stats;
              p99 = Study.bucket_row Study.P99 stats;
              max = Study.bucket_row Study.Max stats;
            },
            Harness.total_invocations result ))
        envs
    in
    let invocations_per_env =
      match List.rev cells with (_, n) :: _ -> n | [] -> 0
    in
    {
      rows = List.map fst cells;
      corpus_calls = Corpus.total_calls corpus;
      invocations_per_env;
    }

  let pp ppf t =
    Format.fprintf ppf
      "Table 2: cumulative %% of system calls with statistic below each \
       latency (corpus: %d call sites, %d invocations/environment)@.@."
      t.corpus_calls t.invocations_per_env;
    let cell row = Format.asprintf "%a" Buckets.pp row in
    let rows =
      List.concat_map
        (fun r ->
          [
            [ r.env; "median"; cell r.median ];
            [ ""; "p99"; cell r.p99 ];
            [ ""; "max"; cell r.max ];
          ])
        t.rows
    in
    Report.table ~header:[ "environment"; "stat"; Buckets.header ] ~rows ppf
end

module Fig2 = struct
  type cell = { vms : int; category : Category.t; violin : Violin.t option }

  type t = { cells : cell list; filtered_sites : int; total_sites : int }

  let vm_counts = Partition.table1_rows

  let run ?(seed = 42) ?(scale = Full) ?corpus ?kernel_config ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let stats_of kind units =
      Study.site_stats
        (run_varbench ?kernel_config ~seed ~scale ~corpus kind
           (Partition.table1 units))
    in
    (* The paper filters to call sites whose native median is >= 10 us. *)
    let native = stats_of Env.Native 1 in
    let cells =
      List.concat
        (Sweep.map ?pool
           (fun vms ->
             let stats = stats_of kvm_kind vms in
             let filtered =
               Study.filter_by_native_median ~native ~min_median:10_000.0 stats
             in
             List.map
               (fun category ->
                 {
                   vms;
                   category;
                   violin =
                     Study.category_violin ~label:(Printf.sprintf "%dvm" vms)
                       category filtered;
                 })
               Category.all)
           vm_counts)
    in
    let filtered_sites =
      Array.length
        (Study.filter_by_native_median ~native ~min_median:10_000.0 native)
    in
    { cells; filtered_sites; total_sites = Array.length native }

  let pp ppf t =
    Format.fprintf ppf
      "Figure 2: per-category 99th-percentile distributions across VM \
       counts (%d of %d call sites pass the 10us native-median filter)@.@."
      t.filtered_sites t.total_sites;
    List.iter
      (fun category ->
        let violins =
          List.filter_map
            (fun c ->
              if Category.equal c.category category then
                Option.map (fun v -> (c.vms, v)) c.violin
              else None)
            t.cells
        in
        if violins <> [] then begin
          Format.fprintf ppf "(%c) %s@."
            (Char.chr (Char.code 'a' + Category.index category))
            (Category.to_string category);
          Format.fprintf ppf "  %s@." Violin.header;
          List.iter
            (fun (_, v) -> Format.fprintf ppf "  %a@." Violin.pp_row v)
            violins;
          Format.fprintf ppf "%s@."
            (Violin.render_ascii (List.map snd violins))
        end)
      Category.all
end

module Table3 = struct
  type row = { containers : int; max : Buckets.row }

  type t = { rows : row list }

  let run ?(seed = 42) ?(scale = Full) ?corpus ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let rows =
      Sweep.map ?pool
        (fun containers ->
          let stats =
            Study.site_stats
              (run_varbench ~seed ~scale ~corpus Env.Docker
                 (Partition.table1 containers))
          in
          { containers; max = Study.bucket_row Study.Max stats })
        Partition.table1_rows
    in
    { rows }

  let pp ppf t =
    Format.fprintf ppf
      "Table 3: worst-case (max) breakdown across container counts@.@.";
    let rows =
      List.map
        (fun r ->
          [ string_of_int r.containers; Format.asprintf "%a" Buckets.pp r.max ])
        t.rows
    in
    Report.table ~header:[ "# ctnrs"; Buckets.header ] ~rows ppf
end

module Fig3 = struct
  type t = { cells : Runner.result list }

  let runner_config ~seed = function
    | Quick -> { Runner.default_config with Runner.requests = 800; seed }
    | Full -> { Runner.default_config with Runner.seed = seed }

  let run ?(seed = 42) ?(scale = Full) ?corpus ?(apps = Apps.all) ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let config = runner_config ~seed scale in
    let specs =
      List.concat_map
        (fun app ->
          List.concat_map
            (fun kind ->
              List.map (fun contended -> (app, kind, contended)) [ false; true ])
            [ kvm_kind; Env.Docker ])
        apps
    in
    let cells =
      Sweep.map ?pool
        (fun (app, kind, contended) ->
          Runner.run_single_node ~app ~kind ~contended ~config
            ~noise_corpus:corpus ())
        specs
    in
    { cells }

  let cell t ~app ~kind ~contended =
    List.find_opt
      (fun (r : Runner.result) ->
        r.Runner.app_name = app && r.Runner.kind = kind
        && r.Runner.contended = contended)
      t.cells

  let apps_of t =
    List.sort_uniq String.compare
      (List.map (fun (r : Runner.result) -> r.Runner.app_name) t.cells)

  let pp ppf t =
    let p99 app kind contended =
      match cell t ~app ~kind ~contended with
      | Some r -> r.Runner.p99 /. 1e6
      | None -> nan
    in
    let apps = apps_of t in
    Format.fprintf ppf "Figure 3(a): isolated p99 request latency@.";
    Report.grouped_bars ~title:"  isolated" ~unit_label:"ms"
      ~series:[ "kvm"; "docker" ]
      (List.map (fun a -> (a, [ p99 a "kvm" false; p99 a "docker" false ])) apps)
      ppf;
    Format.fprintf ppf "@.Figure 3(b): p99 with varbench competition@.";
    Report.grouped_bars ~title:"  contended" ~unit_label:"ms"
      ~series:[ "kvm"; "docker" ]
      (List.map (fun a -> (a, [ p99 a "kvm" true; p99 a "docker" true ])) apps)
      ppf;
    Format.fprintf ppf "@.Figure 3(c): p99 increase, isolated -> contended@.";
    let increase app kind =
      match (cell t ~app ~kind ~contended:false, cell t ~app ~kind ~contended:true) with
      | Some iso, Some cont -> Runner.percent_increase ~isolated:iso ~contended:cont
      | _ -> nan
    in
    Report.grouped_bars ~title:"  degradation" ~unit_label:"%"
      ~series:[ "kvm"; "docker" ]
      (List.map (fun a -> (a, [ increase a "kvm"; increase a "docker" ])) apps)
      ppf
end

module Fig4 = struct
  type t = { cells : Cluster.result list }

  let paper_apps = [ "xapian"; "masstree"; "moses"; "sphinx"; "img-dnn"; "silo" ]

  let cluster_config ~seed = function
    | Quick ->
        {
          Cluster.default_config with
          Cluster.nodes_simulated = 1;
          sim_iterations_per_node = 12;
          warmup_iterations = 1;
          requests_per_iteration = 15;
          seed;
        }
    | Full -> { Cluster.default_config with Cluster.seed = seed }

  let run ?(seed = 42) ?(scale = Full) ?corpus ?apps ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let apps =
      match apps with
      | Some l -> l
      | None -> List.filter_map Apps.by_name paper_apps
    in
    let config = cluster_config ~seed scale in
    let specs =
      List.concat_map
        (fun app ->
          List.concat_map
            (fun kind ->
              List.map (fun contended -> (app, kind, contended)) [ false; true ])
            [ kvm_kind; Env.Docker ])
        apps
    in
    let cells =
      Sweep.map ?pool
        (fun (app, kind, contended) ->
          Cluster.run ~app ~kind ~contended ~config ~noise_corpus:corpus ())
        specs
    in
    { cells }

  let cell t ~app ~kind ~contended =
    List.find_opt
      (fun (r : Cluster.result) ->
        r.Cluster.app_name = app && r.Cluster.kind = kind
        && r.Cluster.contended = contended)
      t.cells

  let apps_of t =
    List.sort_uniq String.compare
      (List.map (fun (r : Cluster.result) -> r.Cluster.app_name) t.cells)

  let pp ppf t =
    let runtime app kind contended =
      match cell t ~app ~kind ~contended with
      | Some r -> r.Cluster.runtime_ns /. 1e9
      | None -> nan
    in
    let apps = apps_of t in
    Format.fprintf ppf "Figure 4(a): isolated 64-node runtimes@.";
    Report.grouped_bars ~title:"  isolated" ~unit_label:"s"
      ~series:[ "kvm"; "docker" ]
      (List.map
         (fun a -> (a, [ runtime a "kvm" false; runtime a "docker" false ]))
         apps)
      ppf;
    Format.fprintf ppf "@.Figure 4(b): multi-tenant 64-node runtimes@.";
    Report.grouped_bars ~title:"  contended" ~unit_label:"s"
      ~series:[ "kvm"; "docker" ]
      (List.map
         (fun a -> (a, [ runtime a "kvm" true; runtime a "docker" true ]))
         apps)
      ppf;
    Format.fprintf ppf "@.Figure 4(c): relative loss, isolated -> multi-tenant@.";
    let loss app kind =
      match (cell t ~app ~kind ~contended:false, cell t ~app ~kind ~contended:true) with
      | Some iso, Some cont -> Cluster.relative_loss ~isolated:iso ~contended:cont
      | _ -> nan
    in
    Report.grouped_bars ~title:"  loss" ~unit_label:"%"
      ~series:[ "kvm"; "docker" ]
      (List.map (fun a -> (a, [ loss a "kvm"; loss a "docker" ])) apps)
      ppf
end

module Ablate = struct
  type row = { variant : string; p99 : Buckets.row; max : Buckets.row }

  type t = { rows : row list }

  let variants =
    let module C = Ksurf_kernel.Config in
    [
      ("default", C.default);
      ("no-background", C.without_background C.default);
      ("no-tlb-shootdown", C.without_tlb_shootdown C.default);
      ("no-timer-noise", C.without_timer_noise C.default);
      ("all-off", C.quiet);
    ]

  let run ?(seed = 42) ?(scale = Full) ?corpus ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let rows =
      Sweep.map ?pool
        (fun (variant, kernel_config) ->
          let stats =
            Study.site_stats
              (run_varbench ~kernel_config ~seed ~scale ~corpus Env.Native
                 (Partition.table1 1))
          in
          {
            variant;
            p99 = Study.bucket_row Study.P99 stats;
            max = Study.bucket_row Study.Max stats;
          })
        variants
    in
    { rows }

  let pp ppf t =
    Format.fprintf ppf
      "E7 ablation: native 64-rank varbench with mechanisms disabled@.@.";
    let rows =
      List.concat_map
        (fun r ->
          [
            [ r.variant; "p99"; Format.asprintf "%a" Buckets.pp r.p99 ];
            [ ""; "max"; Format.asprintf "%a" Buckets.pp r.max ];
          ])
        t.rows
    in
    Report.table ~header:[ "variant"; "stat"; Buckets.header ] ~rows ppf
end

module Lwvm = struct
  type row = {
    env : string;
    median : Buckets.row;
    p99 : Buckets.row;
    max : Buckets.row;
  }

  type t = { rows : row list }

  let environments =
    [ ("native", Env.Native, 1); ("docker-64", Env.Docker, 64) ]
    @ List.map
        (fun (name, virt) -> (name ^ "-64", Env.Kvm virt, 64))
        Ksurf_virt.Lightweight.all

  let run ?(seed = 42) ?(scale = Full) ?corpus ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let rows =
      Sweep.map ?pool
        (fun (env, kind, units) ->
          let stats =
            Study.site_stats
              (run_varbench ~seed ~scale ~corpus kind (Partition.table1 units))
          in
          {
            env;
            median = Study.bucket_row Study.Median stats;
            p99 = Study.bucket_row Study.P99 stats;
            max = Study.bucket_row Study.Max stats;
          })
        environments
    in
    { rows }

  let pp ppf t =
    Format.fprintf ppf
      "E9 extension: Table-2 breakdown across lightweight-VM technologies@.@.";
    let cell row = Format.asprintf "%a" Buckets.pp row in
    let rows =
      List.concat_map
        (fun r ->
          [
            [ r.env; "median"; cell r.median ];
            [ ""; "p99"; cell r.p99 ];
            [ ""; "max"; cell r.max ];
          ])
        t.rows
    in
    Report.table ~header:[ "environment"; "stat"; Buckets.header ] ~rows ppf
end

module Locks = struct
  module Instance = Ksurf_kernel.Instance

  type row = {
    env : string;
    lock : string;
    acquisitions : int;
    contended_pct : float;
    mean_wait_ns : float;
    max_wait_ns : float;
  }

  type t = { rows : row list }

  let environments =
    [ ("native", Env.Native, 1); ("kvm-8", kvm_kind, 8); ("kvm-64", kvm_kind, 64) ]

  let run ?(seed = 42) ?(scale = Full) ?corpus ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let rows =
      List.concat
        (Sweep.map ?pool (fun (env, kind, units) ->
          let engine = Engine.create ~seed () in
          let deployed = Env.deploy ~engine kind (Partition.table1 units) in
          ignore (Harness.run ~env:deployed ~corpus ~params:(harness_params scale) ());
          (* Aggregate each lock over every kernel instance of the
             deployment (one for native, one per guest for KVM). *)
          let merged = Hashtbl.create 16 in
          List.iter
            (fun instance ->
              List.iter
                (fun (r : Instance.lock_report) ->
                  let acc =
                    match Hashtbl.find_opt merged r.Instance.lock_name with
                    | Some acc -> acc
                    | None ->
                        let acc = ref (0, 0, 0.0, 0.0) in
                        Hashtbl.add merged r.Instance.lock_name acc;
                        acc
                  in
                  let a, c, wait_total, wmax = !acc in
                  acc :=
                    ( a + r.Instance.acquisitions,
                      c + r.Instance.contended,
                      wait_total
                      +. (r.Instance.mean_wait_ns
                         *. float_of_int r.Instance.acquisitions),
                      Float.max wmax r.Instance.max_wait_ns ))
                (Instance.lock_contention_report instance))
            (Env.instances deployed);
          Hashtbl.fold
            (fun lock acc rows ->
              let a, c, wait_total, wmax = !acc in
              if a = 0 then rows
              else
                {
                  env;
                  lock;
                  acquisitions = a;
                  contended_pct = 100.0 *. float_of_int c /. float_of_int a;
                  mean_wait_ns = wait_total /. float_of_int a;
                  max_wait_ns = wmax;
                }
                :: rows)
            merged []
          |> List.sort (fun x y -> Float.compare y.contended_pct x.contended_pct))
           environments)
    in
    { rows }

  let pp ppf t =
    Format.fprintf ppf
      "E10 diagnostic: per-lock contention under the corpus (>= 0.1%% contended)@.@.";
    let rows =
      List.filter (fun r -> r.contended_pct >= 0.1) t.rows
      |> List.map (fun r ->
             [
               r.env;
               r.lock;
               string_of_int r.acquisitions;
               Printf.sprintf "%.1f%%" r.contended_pct;
               Report.duration_ns r.mean_wait_ns;
               Report.duration_ns r.max_wait_ns;
             ])
    in
    Report.table
      ~header:[ "environment"; "lock"; "acq"; "contended"; "mean wait"; "max wait" ]
      ~rows ppf
end

module Ablate_virt = struct
  type row = {
    app : string;
    exit_scale : float;
    kvm_runtime_ns : float;
    docker_runtime_ns : float;
  }

  type t = { rows : row list }

  let scales = [ 1.0; 0.5; 0.25; 0.0 ]

  let run ?(seed = 42) ?(scale = Quick) ?corpus ?apps ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let apps =
      match apps with
      | Some l -> l
      | None -> List.filter_map Apps.by_name [ "silo"; "sphinx" ]
    in
    let config = Fig4.cluster_config ~seed scale in
    (* Two sweeps: one unscaled docker reference per app, then the
       (app x exit-scale) KVM grid — splitting them keeps every cell
       independent so both can fan out. *)
    let dockers =
      Sweep.map ?pool
        (fun app ->
          Cluster.run ~app ~kind:Env.Docker ~contended:true ~config
            ~noise_corpus:corpus ())
        apps
    in
    let docker_of = List.combine apps dockers in
    let specs =
      List.concat_map (fun app -> List.map (fun s -> (app, s)) scales) apps
    in
    let kvms =
      Sweep.map ?pool
        (fun (app, exit_scale) ->
          let virt =
            Ksurf_virt.Virt_config.scale exit_scale
              Ksurf_virt.Virt_config.default
          in
          Cluster.run ~app ~kind:(Env.Kvm virt) ~contended:true ~config
            ~noise_corpus:corpus ())
        specs
    in
    let rows =
      List.map2
        (fun (app, exit_scale) (kvm : Cluster.result) ->
          let docker = List.assq app docker_of in
          {
            app = app.Apps.name;
            exit_scale;
            kvm_runtime_ns = kvm.Cluster.runtime_ns;
            docker_runtime_ns = docker.Cluster.runtime_ns;
          })
        specs kvms
    in
    { rows }

  let pp ppf t =
    Format.fprintf ppf
      "E8 ablation: contended 64-node KVM runtime as exit costs shrink@.@.";
    let rows =
      List.map
        (fun r ->
          [
            r.app;
            Printf.sprintf "%.2f" r.exit_scale;
            Printf.sprintf "%.3f" (r.kvm_runtime_ns /. 1e9);
            Printf.sprintf "%.3f" (r.docker_runtime_ns /. 1e9);
            Printf.sprintf "%+.1f%%"
              (100.0
              *. (r.docker_runtime_ns -. r.kvm_runtime_ns)
              /. r.docker_runtime_ns);
          ])
        t.rows
    in
    Report.table
      ~header:[ "app"; "exit scale"; "kvm (s)"; "docker (s)"; "kvm advantage" ]
      ~rows ppf
end

module Dose = struct
  module Plan = Ksurf_fault.Plan
  module Kfault = Ksurf_fault.Kfault
  module Quantile = Ksurf_stats.Quantile
  module Streamstat = Ksurf_stats.Streamstat

  type cell = {
    env : string;
    intensity : float;
    p99 : float;
    cov : float;
    injections : int;
    retries : int;
    degraded : bool;
    survivors : int;
  }

  type t = { plan_name : string; cells : cell list }

  let environments =
    [
      ("native", Env.Native, 1);
      ("kvm-64", kvm_kind, 64);
      ("docker-64", Env.Docker, 64);
    ]

  let default_intensities = [ 0.0; 0.5; 1.0; 2.0 ]

  let default_plan () =
    match Plan.preset "mixed" with Some p -> p | None -> assert false

  let cell_key (env_name, _, _, intensity) =
    Printf.sprintf "dose:%s:%.2f" env_name intensity

  let run ?(seed = 42) ?(scale = Full) ?corpus ?plan
      ?(intensities = default_intensities) ?journal ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let plan = match plan with Some p -> p | None -> default_plan () in
    let specs =
      List.concat_map
        (fun (env_name, kind, units) ->
          List.map (fun i -> (env_name, kind, units, i)) intensities)
        environments
    in
    let cells =
      Sweep.run ?pool ?journal ~key:cell_key
        (fun (env_name, kind, units, intensity) ->
          let engine = Engine.create ~seed () in
          let env = Env.deploy ~engine kind (Partition.table1 units) in
          let kf = Kfault.arm ~env ~plan:(Plan.scale intensity plan) ~seed () in
          let result =
            Harness.run ~env ~corpus ~params:(harness_params scale) ()
          in
          Kfault.disarm kf;
          (* Exact at seed scale (byte-identical to the historical
             concatenated-array computation); streaming estimates from
             [result.overall] once any site spills its exact buffer. *)
          let p99, cov =
            match Study.pooled_samples result with
            | Some samples ->
                let n = Array.length samples in
                let mean =
                  if n = 0 then 0.0
                  else Array.fold_left ( +. ) 0.0 samples /. float_of_int n
                in
                let var =
                  if n = 0 then 0.0
                  else
                    Array.fold_left
                      (fun acc x ->
                        acc +. (((x -. mean) *. (x -. mean)) /. float_of_int n))
                      0.0 samples
                in
                ( (if n = 0 then 0.0 else Quantile.p99 samples),
                  if mean > 0.0 then sqrt var /. mean else 0.0 )
            | None ->
                let o = result.Harness.overall in
                let n = Streamstat.count o in
                let mean = Streamstat.mean o in
                let var =
                  if n < 2 then 0.0
                  else
                    Streamstat.variance o
                    *. (float_of_int (n - 1) /. float_of_int n)
                in
                ( Streamstat.p99 o,
                  if mean > 0.0 then sqrt var /. mean else 0.0 )
          in
          {
            env = env_name;
            intensity;
            p99;
            cov;
            injections = Kfault.total_injections kf;
            retries = result.Harness.transient_retries;
            degraded = result.Harness.degraded;
            survivors = result.Harness.survivors;
          })
        specs
    in
    { plan_name = plan.Plan.name; cells }

  let cell t ~env ~intensity =
    List.find_opt
      (fun c -> c.env = env && c.intensity = intensity)
      t.cells

  (* p99 at each dose relative to the same environment's zero-dose
     baseline: the sensitivity curve the study plots. *)
  let degradation t ~env =
    let mine = List.filter (fun c -> c.env = env) t.cells in
    match List.find_opt (fun c -> c.intensity = 0.0) mine with
    | None -> []
    | Some base when base.p99 <= 0.0 -> []
    | Some base ->
        List.map (fun c -> (c.intensity, c.p99 /. base.p99)) mine

  let pp ppf t =
    Format.fprintf ppf
      "Dose-response: varbench p99 sensitivity to injected faults (plan %s)@.@."
      t.plan_name;
    let rows =
      List.map
        (fun c ->
          let rel =
            match cell t ~env:c.env ~intensity:0.0 with
            | Some base when base.p99 > 0.0 ->
                Printf.sprintf "%.2fx" (c.p99 /. base.p99)
            | _ -> "-"
          in
          [
            c.env;
            Printf.sprintf "%.2f" c.intensity;
            Printf.sprintf "%.1f" (c.p99 /. 1e3);
            rel;
            Printf.sprintf "%.3f" c.cov;
            string_of_int c.injections;
            string_of_int c.retries;
            (if c.degraded then Printf.sprintf "yes (%d left)" c.survivors
             else "no");
          ])
        t.cells
    in
    Report.table
      ~header:
        [
          "environment"; "dose"; "p99 (us)"; "vs baseline"; "CoV";
          "injections"; "retries"; "degraded";
        ]
      ~rows ppf
end

module Specialize = struct
  module Profile = Ksurf_spec.Profile
  module Specializer = Ksurf_spec.Specializer
  module Quantile = Ksurf_stats.Quantile
  module Streamstat = Ksurf_stats.Streamstat

  type row = {
    env : string;
    p50 : float;
    p99 : float;
    tail_ratio : float;
    p99_bucket : Buckets.row;
    max_bucket : Buckets.row;
    denials : int;
    surface_area : float;
  }

  type t = {
    spec : Ksurf_spec.Spec.t;
    rows : row list;
    corpus_calls : int;
  }

  let retained = [ Category.File_io; Category.Fs_mgmt ]

  let workload ?(seed = 42) ?(scale = Full) ?corpus () =
    let full =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    match Profile.restrict full ~keep:retained with
    | Some c -> c
    | None -> full

  (* Variability, the varbench way: the bucket metric summarizes the
     distribution of per-site statistics, so the headline ratio does
     too — the fleet's median per-site p99 over its median per-site
     p50.  Raw-sample p99/p50 would conflate jitter with workload
     heterogeneity: a 256 KiB write is slower than a stat at p50 *and*
     p99, and that is not variability. *)
  let site_tail_ratio (stats : Study.site_stats array) =
    let p50s = Array.map (fun (s : Study.site_stats) -> s.Study.median) stats in
    let p99s = Array.map (fun (s : Study.site_stats) -> s.Study.p99) stats in
    Quantile.median p99s /. Quantile.median p50s

  let measure ~name ~env (result : Harness.result) =
    let p50, p99 =
      match Study.pooled_samples result with
      | Some samples -> (Quantile.median samples, Quantile.p99 samples)
      | None ->
          ( Streamstat.p50 result.Harness.overall,
            Streamstat.p99 result.Harness.overall )
    in
    let stats = Study.site_stats result in
    let ranks = Env.rank_count env in
    let surface = ref 0.0 in
    let denials = ref 0 in
    for rank = 0 to ranks - 1 do
      surface := !surface +. Env.surface_area_of_rank env rank;
      denials := !denials + Specializer.denials env ~rank
    done;
    {
      env = name;
      p50;
      p99;
      tail_ratio = site_tail_ratio stats;
      p99_bucket = Study.bucket_row Study.P99 stats;
      max_bucket = Study.bucket_row Study.Max stats;
      denials = !denials;
      surface_area = !surface /. float_of_int ranks;
    }

  let run ?(seed = 42) ?(scale = Full) ?corpus ?journal ?pool () =
    let corpus = workload ~seed ~scale ?corpus () in
    let spec =
      Specializer.compile (Profile.of_corpus ~name:"varbench-fs" corpus)
    in
    let cell ?kernel_config ?(specialized = false) name kind units =
      let engine = Engine.create ~seed () in
      let env = Env.deploy ~engine ?kernel_config kind (Partition.table1 units) in
      if specialized then Specializer.install_all env spec;
      measure ~name ~env (Harness.run ~env ~corpus ~params:(harness_params scale) ())
    in
    let rows =
      Sweep.run ?pool ?journal
        ~key:(fun (name, _) -> "specialize:" ^ name)
        (fun (_, make) -> make ())
        [
          ("native-64", fun () -> cell "native-64" Env.Native 1);
          (* "Per-tenant specialized kernels": a MultiK-style multikernel
             deployment — each rank gets a private pruned kernel at native
             syscall cost, so the shared-kernel lock convoys disappear
             without paying the KVM cpu_cost_factor tax. *)
          ( "native-64-kspec",
            fun () ->
              cell "native-64-kspec" Env.Multikernel 64
                ~kernel_config:(Specializer.kernel_config spec)
                ~specialized:true );
          ("kvm-64", fun () -> cell "kvm-64" kvm_kind 64);
        ]
    in
    { spec; rows; corpus_calls = Corpus.total_calls corpus }

  let row t ~env = List.find_opt (fun r -> r.env = env) t.rows

  let pp ppf t =
    Format.fprintf ppf
      "Specialization (kspec): fs-restricted varbench (%d call sites), \
       64 ranks per environment@.@.%a@.@."
      t.corpus_calls Ksurf_spec.Spec.pp t.spec;
    let cell row = Format.asprintf "%a" Buckets.pp row in
    let rows =
      List.concat_map
        (fun r ->
          [
            [
              r.env;
              "p99";
              cell r.p99_bucket;
              Printf.sprintf "%.1f" (r.p50 /. 1e3);
              Printf.sprintf "%.1f" (r.p99 /. 1e3);
              Printf.sprintf "%.2f" r.tail_ratio;
              string_of_int r.denials;
              Printf.sprintf "%.3f" r.surface_area;
            ];
            [ ""; "max"; cell r.max_bucket; ""; ""; ""; ""; "" ];
          ])
        t.rows
    in
    Report.table
      ~header:
        [
          "environment"; "stat"; Buckets.header; "p50 (us)"; "p99 (us)";
          "site p99/p50"; "denials"; "surface";
        ]
      ~rows ppf
end

module Recover = struct
  module Supervisor = Ksurf_recov.Supervisor

  type cell = {
    policy : string;
    crash_rate : float;
    runtime_ns : float;
    straggler_factor : float;
    supersteps : int;
    survivors : int;
    degraded : bool;
    crashes : int;
    restarts : int;
    backups : int;
    deaths : int;
    transitions : int;
    checkpoints : int;
  }

  type t = {
    nodes : int;
    iterations : int;
    pool_mean_ns : float;
    cells : cell list;
  }

  let default_rates = [ 0.0; 0.005; 0.01; 0.02 ]

  let policies =
    [ Supervisor.Survivors; Supervisor.Readmit; Supervisor.Speculative ]

  let run ?(seed = 42) ?(scale = Full) ?corpus ?app ?(rates = default_rates)
      ?journal ?pool () =
    let corpus =
      match corpus with Some c -> c | None -> default_corpus ~seed scale
    in
    let app =
      match app with
      | Some a -> a
      | None -> (
          match Apps.by_name "silo" with
          | Some a -> a
          | None -> List.hd Apps.all)
    in
    let cconfig = Fig4.cluster_config ~seed scale in
    (* One set of node simulations feeds every (policy x rate) cell: the
       sweep varies only the supervision, never the empirical pool.  The
       node simulations themselves fan out across [pool]. *)
    let iter_pool =
      Cluster.pool ~app ~kind:kvm_kind ~contended:false ~config:cconfig
        ~noise_corpus:corpus ?par:pool ()
    in
    let iterations =
      match scale with Quick -> 12 | Full -> cconfig.Cluster.iterations
    in
    let barrier =
      Cluster.barrier_cost_for ~kind:kvm_kind
        ~nodes_total:cconfig.Cluster.nodes_total
    in
    let base =
      {
        Supervisor.default_config with
        Supervisor.nodes = cconfig.Cluster.nodes_total;
        iterations;
        barrier_cost_ns = barrier;
        seed;
      }
    in
    let specs =
      List.concat_map
        (fun policy -> List.map (fun rate -> (policy, rate)) rates)
        policies
    in
    let cells =
      Sweep.run ?pool ?journal
        ~key:(fun (policy, crash_rate) ->
          Printf.sprintf "recover:%s:%.4f"
            (Supervisor.policy_name policy)
            crash_rate)
        (fun (policy, crash_rate) ->
          let o =
            Supervisor.run ~pool:iter_pool
              ~config:{ base with Supervisor.policy; crash_rate }
              ()
          in
          {
            policy = o.Supervisor.policy;
            crash_rate;
            runtime_ns = o.Supervisor.runtime_ns;
            straggler_factor = o.Supervisor.straggler_factor;
            supersteps = o.Supervisor.supersteps;
            survivors = o.Supervisor.survivors;
            degraded = o.Supervisor.degraded;
            crashes = o.Supervisor.crashes;
            restarts = o.Supervisor.restarts;
            backups = o.Supervisor.backups;
            deaths = o.Supervisor.deaths;
            transitions = o.Supervisor.transitions;
            checkpoints = o.Supervisor.checkpoints;
          })
        specs
    in
    let n = Array.length iter_pool in
    let pool_mean_ns =
      if n = 0 then 0.0
      else Array.fold_left ( +. ) 0.0 iter_pool /. float_of_int n
    in
    { nodes = cconfig.Cluster.nodes_total; iterations; pool_mean_ns; cells }

  let cell t ~policy ~crash_rate =
    List.find_opt
      (fun c -> c.policy = policy && c.crash_rate = crash_rate)
      t.cells

  (* Runtime at each crash rate relative to the same policy's crash-free
     baseline: the recovery-cost curve the study plots. *)
  let overhead t ~policy =
    let mine = List.filter (fun c -> c.policy = policy) t.cells in
    match List.find_opt (fun c -> c.crash_rate = 0.0) mine with
    | None -> []
    | Some base when base.runtime_ns <= 0.0 -> []
    | Some base ->
        List.map (fun c -> (c.crash_rate, c.runtime_ns /. base.runtime_ns)) mine

  let pp ppf t =
    Format.fprintf ppf
      "Recovery study: crash rate x policy on the %d-node BSP synthesis \
       (%d supersteps, pool mean %.2f ms)@.@."
      t.nodes t.iterations (t.pool_mean_ns /. 1e6);
    let rows =
      List.map
        (fun c ->
          let rel =
            match cell t ~policy:c.policy ~crash_rate:0.0 with
            | Some base when base.runtime_ns > 0.0 ->
                Printf.sprintf "%.2fx" (c.runtime_ns /. base.runtime_ns)
            | _ -> "-"
          in
          [
            c.policy;
            Printf.sprintf "%.3f" c.crash_rate;
            Printf.sprintf "%.3f" (c.runtime_ns /. 1e9);
            rel;
            Printf.sprintf "%.2f" c.straggler_factor;
            string_of_int c.survivors;
            (if c.degraded then "yes" else "no");
            string_of_int c.crashes;
            string_of_int c.restarts;
            string_of_int c.backups;
            string_of_int c.deaths;
            string_of_int c.checkpoints;
          ])
        t.cells
    in
    Report.table
      ~header:
        [
          "policy"; "crash rate"; "runtime (s)"; "vs crash-free"; "straggler";
          "survivors"; "degraded"; "crashes"; "restarts"; "backups"; "deaths";
          "ckpts";
        ]
      ~rows ppf
end

module Tenancy = struct
  module Fleet = Ksurf_tenant.Fleet
  module Policy = Ksurf_tenant.Policy

  type cell = Fleet.result

  type t = { slo_ns : float; cells : cell list }

  let default_policies =
    [
      Policy.Static Policy.Native;
      Policy.Static Policy.Docker;
      Policy.Static Policy.Kvm;
      Policy.Static Policy.Multikernel;
      Policy.Adaptive;
    ]

  let default_tenants = function Quick -> [ 32 ] | Full -> [ 128; 512 ]
  let default_churns = function Quick -> [ 0.0; 8.0 ] | Full -> [ 0.0; 4.0; 16.0 ]

  (* The fleet shape a sweep cell gets: the scale knob only sets how
     much virtual time each cell simulates — the tenant population and
     churn come from the sweep axes. *)
  let fleet_config ~seed ~scale ~policy ~tenants ~churn =
    let base = Fleet.default_config in
    let day_ns = match scale with Quick -> 5e8 | Full -> 2e9 in
    {
      base with
      Fleet.tenants;
      churn_per_day = churn;
      policy;
      seed;
      day_ns;
    }

  let cell_key (policy, tenants, churn) =
    Printf.sprintf "tenancy:%s:%d:%.2f" (Policy.name policy) tenants churn

  let run ?(seed = 42) ?(scale = Full) ?tenants ?churns ?policies ?journal
      ?pool () =
    let tenants =
      match tenants with Some l -> l | None -> default_tenants scale
    in
    let churns = match churns with Some l -> l | None -> default_churns scale in
    let policies =
      match policies with Some l -> l | None -> default_policies
    in
    let specs =
      List.concat_map
        (fun policy ->
          List.concat_map
            (fun n -> List.map (fun churn -> (policy, n, churn)) churns)
            tenants)
        policies
    in
    let cells =
      Sweep.run ?pool ?journal ~key:cell_key
        (fun (policy, tenants, churn) ->
          Fleet.run (fleet_config ~seed ~scale ~policy ~tenants ~churn))
        specs
    in
    { slo_ns = Fleet.default_config.Fleet.slo_ns; cells }

  let cell t ~policy ~tenants ~churn =
    List.find_opt
      (fun (c : cell) ->
        c.Fleet.policy = policy
        && c.Fleet.tenants = tenants
        && c.Fleet.churn_per_day = churn)
      t.cells

  (* The headline: per policy, the largest (tenants, churn) cell that
     still attains the SLO for at least [floor] of its tenants.  Cells
     with no measured tenant carry no verdict — their attainment of 0 is
     no-data, not failure — so they can neither anchor nor be part of
     the frontier. *)
  let frontier ?(floor = 0.95) t =
    let policies =
      List.sort_uniq compare
        (List.map (fun (c : cell) -> c.Fleet.policy) t.cells)
    in
    List.map
      (fun p ->
        let mine =
          List.filter
            (fun (c : cell) ->
              c.Fleet.policy = p
              && c.Fleet.measured > 0
              && c.Fleet.attainment >= floor)
            t.cells
        in
        let best =
          List.fold_left
            (fun acc (c : cell) ->
              match acc with
              | None -> Some c
              | Some (b : cell) ->
                  if
                    c.Fleet.tenants > b.Fleet.tenants
                    || (c.Fleet.tenants = b.Fleet.tenants
                        && c.Fleet.churn_per_day > b.Fleet.churn_per_day)
                  then Some c
                  else acc)
            None mine
        in
        (p, best))
      policies

  let pp ppf t =
    Format.fprintf ppf
      "Tenancy study: fleet p99 and SLO attainment (p99 <= %.0f us per \
       tenant) by policy x tenants x churn@.@."
      (t.slo_ns /. 1e3);
    let rows =
      List.map
        (fun (c : cell) ->
          [
            c.Fleet.policy;
            string_of_int c.Fleet.tenants;
            Printf.sprintf "%.1f" c.Fleet.churn_per_day;
            string_of_int c.Fleet.completed;
            Printf.sprintf "%.1f" (c.Fleet.p50 /. 1e3);
            Printf.sprintf "%.1f" (c.Fleet.p99 /. 1e3);
            (if c.Fleet.measured = 0 then "n/a"
             else Printf.sprintf "%.3f" c.Fleet.attainment);
            string_of_int c.Fleet.epoch_violations;
            string_of_int (c.Fleet.cgroup_creates + c.Fleet.cgroup_destroys);
            string_of_int c.Fleet.migrations;
            string_of_int
              (c.Fleet.scale_ups + c.Fleet.scale_downs);
          ])
        t.cells
    in
    Report.table
      ~header:
        [
          "policy"; "tenants"; "churn/day"; "requests"; "p50 (us)"; "p99 (us)";
          "slo attain"; "viol epochs"; "cg storms"; "migr"; "scale";
        ]
      ~rows ppf;
    Format.fprintf ppf
      "@.SLO frontier (largest cell with >= 95%% of measured tenants \
       attaining):@.";
    List.iter
      (fun (p, best) ->
        match best with
        | Some (c : cell) ->
            Format.fprintf ppf
              "  %-13s  %4d tenants at churn %4.1f/day  (attainment %.3f, \
               p99 %.1f us)@."
              p c.Fleet.tenants c.Fleet.churn_per_day c.Fleet.attainment
              (c.Fleet.p99 /. 1e3)
        | None -> Format.fprintf ppf "  %-13s  no cell attains the floor@." p)
      (frontier t)
end

(* ------------------------------------------------------------------ *)

module Drift = struct
  module Driftbench = Ksurf_adapt.Driftbench

  type cell = Driftbench.result

  type t = { cells : cell list }

  let default_doses = [ 0.0; 1.0; 2.0; 3.0 ]
  let default_policies = Driftbench.all_policies

  (* The scale knob sizes the run, not the question: more epochs mean
     the adaptive policy's audit windows amortise over a longer enforced
     life, exactly as they would in a long-running deployment. *)
  let cell_config ~seed ~scale ~policy ~dose =
    let base = Driftbench.default_config in
    let epochs, programs_per_epoch, drift_at_ns =
      match scale with
      | Quick -> (36, 16, 16_000_000.0)
      | Full -> (96, 24, 24_000_000.0)
    in
    {
      base with
      Driftbench.policy;
      dose;
      epochs;
      programs_per_epoch;
      drift_at_ns;
      seed;
    }

  let cell_key (policy, dose) =
    Printf.sprintf "drift:%s:%.2f" (Driftbench.policy_name policy) dose

  let run ?(seed = 42) ?(scale = Full) ?(doses = default_doses)
      ?(policies = default_policies) ?journal ?pool () =
    let specs =
      List.concat_map
        (fun policy -> List.map (fun dose -> (policy, dose)) doses)
        policies
    in
    let cells =
      Sweep.run ?pool ?journal ~key:cell_key
        (fun (policy, dose) ->
          Driftbench.run (cell_config ~seed ~scale ~policy ~dose))
        specs
    in
    { cells }

  let cell t ~policy ~dose =
    List.find_opt
      (fun (c : cell) ->
        c.Driftbench.policy = policy && c.Driftbench.dose = dose)
      t.cells

  let pp ppf t =
    Format.fprintf ppf
      "Drift study: false-positive ENOSYS vs retained surface area vs \
       time-to-reconverge, per policy x dose@.@.";
    let rows =
      List.map
        (fun (c : cell) ->
          [
            c.Driftbench.policy;
            Printf.sprintf "%.1f" c.Driftbench.dose;
            string_of_int c.Driftbench.calls;
            Printf.sprintf "%.4f" c.Driftbench.fp_rate;
            Printf.sprintf "%.3f" c.Driftbench.reduction;
            (match c.Driftbench.reconverge_ns with
            | None -> "n/a"
            | Some ns -> Printf.sprintf "%.0f" (ns /. 1e3));
            string_of_int c.Driftbench.promotions;
            string_of_int c.Driftbench.demotions;
            string_of_int c.Driftbench.respecializations;
            string_of_int c.Driftbench.drifts;
          ])
        t.cells
    in
    Report.table
      ~header:
        [
          "policy"; "dose"; "calls"; "fp rate"; "surface red.";
          "reconverge (us)"; "promote"; "demote"; "respec"; "drifts";
        ]
      ~rows ppf;
    (* The headline comparison at each drifted dose. *)
    let doses =
      List.sort_uniq compare
        (List.filter_map
           (fun (c : cell) ->
             if c.Driftbench.dose > 0.0 then Some c.Driftbench.dose else None)
           t.cells)
    in
    List.iter
      (fun dose ->
        match
          (cell t ~policy:"static" ~dose, cell t ~policy:"adaptive" ~dose)
        with
        | Some s, Some a ->
            Format.fprintf ppf
              "@.dose %.1f: adaptive fp %.4f vs static %.4f; adaptive \
               retains %.0f%% of static's surface reduction@."
              dose a.Driftbench.fp_rate s.Driftbench.fp_rate
              (if s.Driftbench.reduction > 0.0 then
                 100.0 *. a.Driftbench.reduction /. s.Driftbench.reduction
               else 0.0)
        | _ -> ())
      doses
end

(* ------------------------------------------------------------------ *)

module Torture = struct
  module T = Ksurf_dur.Torture

  type cell = T.result

  type t = { cells : cell list }

  let default_doses = [ 0.0; 1.0; 2.0; 3.0 ]
  let default_kinds = T.all_kinds

  let default_scratch =
    Filename.concat (Filename.get_temp_dir_name ()) "ksurf-torture"

  (* The scale knob sizes the live-run budget; enumeration is exact at
     both scales (it covers every crash point of the trace either
     way). *)
  let cell_config ~seed ~scale ~scratch ~kind ~dose =
    {
      T.kind;
      dose;
      runs = (match scale with Quick -> 4 | Full -> 8);
      seed;
      scratch =
        Filename.concat scratch
          (Printf.sprintf "%s-%.2f" (T.kind_name kind) dose);
    }

  let cell_key (kind, dose) =
    Printf.sprintf "torture:%s:%.2f" (T.kind_name kind) dose

  let run ?(seed = 42) ?(scale = Full) ?(doses = default_doses)
      ?(kinds = default_kinds) ?(scratch = default_scratch) ?journal ?pool () =
    let specs =
      List.concat_map
        (fun kind -> List.map (fun dose -> (kind, dose)) doses)
        kinds
    in
    let cells =
      Sweep.run ?pool ?journal ~key:cell_key
        (fun (kind, dose) -> T.run (cell_config ~seed ~scale ~scratch ~kind ~dose))
        specs
    in
    { cells }

  let cell t ~kind ~dose =
    List.find_opt
      (fun (c : cell) -> c.T.kind = kind && c.T.dose = dose)
      t.cells

  let violations t =
    List.fold_left (fun acc c -> acc + T.violations c) 0 t.cells

  let pp ppf t =
    Format.fprintf ppf
      "Torture study: crash-state enumeration + live fault injection per \
       writer path x dose@.@.";
    let rows =
      List.map
        (fun (c : cell) ->
          [
            c.T.kind;
            Printf.sprintf "%.1f" c.T.dose;
            string_of_int c.T.crash_points;
            string_of_int c.T.crash_states;
            string_of_int c.T.enum_violations;
            string_of_int c.T.torn_refused;
            Printf.sprintf "%d/%d" c.T.live_ok c.T.live_runs;
            Printf.sprintf "%.2f" c.T.recovery_ok;
            string_of_int c.T.crashes;
            string_of_int c.T.transients;
            string_of_int c.T.enospc;
            string_of_int c.T.deferred_persists;
            string_of_int c.T.cells_lost;
            string_of_int c.T.double_runs;
            string_of_int c.T.litter;
            string_of_int c.T.litter_after;
          ])
        t.cells
    in
    Report.table
      ~header:
        [
          "path"; "dose"; "crash pts"; "states"; "viol"; "torn ref";
          "recovered"; "rate"; "crashes"; "transient"; "enospc"; "deferred";
          "lost"; "dbl-run"; "litter"; "litter after";
        ]
      ~rows ppf;
    Format.fprintf ppf
      "@.%d consistency violations across %d cells (0 = every invariant \
       held at every crash point)@."
      (violations t) (List.length t.cells)
end
