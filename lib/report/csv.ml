let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let line fields = String.concat "," (List.map escape fields)

let write ~path ~header ~rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Csv.write: ragged row")
    rows;
  (* Atomic replacement: a crash (or ENOSPC) mid-export must not leave a
     truncated CSV that a plotting script would silently accept. *)
  Ksurf_util.Fileio.write_atomic ~path (fun oc ->
      output_string oc (line header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (line row);
          output_char oc '\n')
        rows)
