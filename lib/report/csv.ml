let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let line fields = String.concat "," (List.map escape fields)

let write ~path ~header ~rows =
  (* Hoisted: recomputing [List.length header] inside the per-row check
     made validation O(rows x header) on large exports. *)
  let width = List.length header in
  List.iteri
    (fun i row ->
      let w = List.length row in
      if w <> width then
        invalid_arg
          (Printf.sprintf
             "Csv.write: ragged row %d (%d fields, header has %d)" i w width))
    rows;
  (* Atomic replacement: a crash (or ENOSPC) mid-export must not leave a
     truncated CSV that a plotting script would silently accept. *)
  Ksurf_util.Fileio.write_atomic ~path (fun oc ->
      output_string oc (line header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (line row);
          output_char oc '\n')
        rows)
