(** Minimal CSV writing (RFC-4180 quoting) for exporting experiment
    results to plotting tools. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val line : string list -> string
(** One CSV record (no trailing newline). *)

val write : path:string -> header:string list -> rows:string list list -> unit
(** Write a whole file, header first, atomically (temp + rename): a
    crash or full disk never leaves a truncated CSV behind.  Raises
    [Invalid_argument] if a row's width differs from the header's and
    {!Ksurf_util.Fileio.Io_error} on file-system failure. *)
